module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  (* Leftist heap: the rank (null-path length) of the left child is always
     >= that of the right child, so the right spine has length O(log n). *)
  type t =
    | Leaf
    | Node of { rank : int; size : int; elt : Elt.t; left : t; right : t }

  let empty = Leaf

  let is_empty = function Leaf -> true | Node _ -> false

  let rank = function Leaf -> 0 | Node { rank; _ } -> rank

  let size = function Leaf -> 0 | Node { size; _ } -> size

  let node elt a b =
    let sz = 1 + size a + size b in
    if rank a >= rank b then
      Node { rank = rank b + 1; size = sz; elt; left = a; right = b }
    else Node { rank = rank a + 1; size = sz; elt; left = b; right = a }

  let rec merge a b =
    match (a, b) with
    | Leaf, h | h, Leaf -> h
    | Node na, Node nb ->
        if Elt.compare na.elt nb.elt <= 0 then
          node na.elt na.left (merge na.right b)
        else node nb.elt nb.left (merge a nb.right)

  let insert h elt = merge h (Node { rank = 1; size = 1; elt; left = Leaf; right = Leaf })

  let min = function Leaf -> None | Node { elt; _ } -> Some elt

  let pop = function
    | Leaf -> None
    | Node { elt; left; right; _ } -> Some (elt, merge left right)

  let of_list l = List.fold_left insert empty l

  let to_sorted_list h =
    let rec loop acc h =
      match pop h with None -> List.rev acc | Some (e, h') -> loop (e :: acc) h'
    in
    loop [] h

  let rec fold f h acc =
    match h with
    | Leaf -> acc
    | Node { elt; left; right; _ } -> fold f right (fold f left (f elt acc))
end
