type 'msg envelope = {
  src : Proc_id.t;
  dst : Proc_id.t;
  sent_at : int;
  msg : 'msg;
}

module Event = struct
  type t = { at : int; seq : int; run : unit -> unit }

  let compare a b =
    match Int.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
end

module Queue = Heap.Make (Event)

module Link = struct
  type t = Proc_id.t * Proc_id.t

  let compare (a1, a2) (b1, b2) =
    match Proc_id.compare a1 b1 with 0 -> Proc_id.compare a2 b2 | c -> c
end

module Link_map = Map.Make (Link)
module Link_set = Set.Make (Link)

(* Dense per-process tables.  Proc ids are contiguous small integers
   within each rank (Writer; Reader 1..r; Obj 1..s), so a handler or
   crash lookup is two bounds checks and an array read instead of a
   balanced-tree descent — this sits on the per-message hot path. *)
module Ptab = struct
  type 'a t = {
    mutable writer : 'a option;
    mutable readers : 'a option array;
    mutable objs : 'a option array;
  }

  let create () = { writer = None; readers = [||]; objs = [||] }

  let grown arr i =
    let n = Array.length arr in
    if i < n then arr
    else begin
      let a = Array.make (max (i + 1) (max 4 (2 * n))) None in
      Array.blit arr 0 a 0 n;
      a
    end

  let set t id v =
    match (id : Proc_id.t) with
    | Proc_id.Writer -> t.writer <- v
    | Proc_id.Reader j ->
        if j < 0 then invalid_arg "Engine: negative reader index";
        t.readers <- grown t.readers j;
        t.readers.(j) <- v
    | Proc_id.Obj i ->
        if i < 0 then invalid_arg "Engine: negative object index";
        t.objs <- grown t.objs i;
        t.objs.(i) <- v

  let get t id =
    match (id : Proc_id.t) with
    | Proc_id.Writer -> t.writer
    | Proc_id.Reader j ->
        if j >= 0 && j < Array.length t.readers then
          Array.unsafe_get t.readers j
        else None
    | Proc_id.Obj i ->
        if i >= 0 && i < Array.length t.objs then Array.unsafe_get t.objs i
        else None

  (* Registered ids in descending {!Proc_id.compare} order (Obj s..1,
     Reader r..1, Writer) — the same sequence the previous
     [Proc_id.Map.fold]-with-cons enumeration produced.  Callers rely on
     this order when releasing buffered links (it fixes the rng-draw
     order of the redelivery delays). *)
  let ids_desc t =
    let acc = ref [] in
    (match t.writer with
    | Some _ -> acc := Proc_id.Writer :: !acc
    | None -> ());
    for j = 0 to Array.length t.readers - 1 do
      match t.readers.(j) with
      | Some _ -> acc := Proc_id.Reader j :: !acc
      | None -> ()
    done;
    for i = 0 to Array.length t.objs - 1 do
      match t.objs.(i) with
      | Some _ -> acc := Proc_id.Obj i :: !acc
      | None -> ()
    done;
    !acc
end

(* Message accounting with pre-interned metric handles: the counter and
   histogram names are resolved against the registry once (per engine,
   and per wire class for the classified counters) instead of being
   re-concatenated and re-hashed on every send/deliver/drop. *)
type stage = Sent | Delivered | Dropped

let stage_name = function
  | Sent -> "sent"
  | Delivered -> "delivered"
  | Dropped -> "dropped"

let stage_rank = function Sent -> 0 | Delivered -> 1 | Dropped -> 2

type 'msg meters = {
  reg : Obs.Metrics.t;
  classify : ('msg -> Obs.Wire.t) option;
  (* handles resolve lazily on first use so a run that never drops (or
     never even steps) registers exactly the counters it touched — the
     exported registry stays byte-identical to the string-keyed path *)
  mutable c_sent : Obs.Metrics.counter option;
  mutable c_delivered : Obs.Metrics.counter option;
  mutable c_dropped : Obs.Metrics.counter option;
  mutable c_events : Obs.Metrics.counter option;
  mutable h_depth : Obs.Metrics.Histogram.t option;
  mutable h_wall : Obs.Metrics.Histogram.t option;
  wire : (Obs.Wire.t * int, Obs.Metrics.counter) Hashtbl.t;
}

type 'msg t = {
  mutable queue : Queue.t;
  mutable queue_size : int;  (* cached so depth metering is O(1) *)
  mutable now : int;
  mutable seq : int;
  handlers : ('msg envelope -> unit) Ptab.t;
  crashed : bool Ptab.t;
  mutable endpoints : Proc_id.t list option;
      (* cached [Ptab.ids_desc handlers]; invalidated on [register] *)
  mutable blocked : Link_set.t;
  mutable buffered : 'msg envelope list Link_map.t;  (* newest first *)
  mutable duplicating : int Link_map.t;  (* extra copies per send *)
  mutable faults_active : bool;
      (* [blocked] or [duplicating] non-empty; when false, [send] skips
         both per-message link lookups entirely *)
  mutable delivered : int;
  mutable dropped : int;
  rng : Prng.t;
  delay : Delay.t;
  trace : Trace.t option;
  msg_info : 'msg -> string;
  meters : 'msg meters option;
  clock : (unit -> float) option;
}

let create ?trace ?(msg_info = fun _ -> "msg") ?metrics ?classify ?clock ~seed
    ~delay () =
  let meters =
    Option.map
      (fun reg ->
        {
          reg;
          classify;
          c_sent = None;
          c_delivered = None;
          c_dropped = None;
          c_events = None;
          h_depth = None;
          h_wall = None;
          wire = Hashtbl.create 16;
        })
      metrics
  in
  {
    queue = Queue.empty;
    queue_size = 0;
    now = 0;
    seq = 0;
    handlers = Ptab.create ();
    crashed = Ptab.create ();
    endpoints = None;
    blocked = Link_set.empty;
    buffered = Link_map.empty;
    duplicating = Link_map.empty;
    faults_active = false;
    delivered = 0;
    dropped = 0;
    rng = Prng.create ~seed;
    delay;
    trace;
    msg_info;
    meters;
    clock;
  }

let direction_counter ms stage =
  let cached =
    match stage with
    | Sent -> ms.c_sent
    | Delivered -> ms.c_delivered
    | Dropped -> ms.c_dropped
  in
  match cached with
  | Some c -> c
  | None ->
      let c = Obs.Metrics.counter ms.reg ("engine." ^ stage_name stage) in
      (match stage with
      | Sent -> ms.c_sent <- Some c
      | Delivered -> ms.c_delivered <- Some c
      | Dropped -> ms.c_dropped <- Some c);
      c

let wire_counter ms stage w =
  let key = (w, stage_rank stage) in
  match Hashtbl.find_opt ms.wire key with
  | Some c -> c
  | None ->
      let c =
        Obs.Metrics.counter ms.reg
          ("wire." ^ Obs.Wire.to_string w ^ "." ^ stage_name stage)
      in
      Hashtbl.replace ms.wire key c;
      c

(* Per-class message counters ("wire.read.r1.req.sent", ...) when the
   scenario supplied a classifier; the direction-level counters are
   recorded unconditionally. *)
let meter_msg t stage msg =
  match t.meters with
  | None -> ()
  | Some ms ->
      Obs.Metrics.counter_incr (direction_counter ms stage);
      (match ms.classify with
      | None -> ()
      | Some classify ->
          Obs.Metrics.counter_incr (wire_counter ms stage (classify msg)))

let rng t = t.rng

let now t = t.now

let tracing t f = match t.trace with None -> () | Some tr -> Trace.record tr (f ())

let register t id handler =
  Ptab.set t.handlers id (Some handler);
  t.endpoints <- None

let is_crashed t id = Ptab.get t.crashed id = Some true

let enqueue t ~at run =
  if at < t.now then invalid_arg "Engine: scheduling in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  t.queue <- Queue.insert t.queue { Event.at; seq; run };
  t.queue_size <- t.queue_size + 1

let deliver t env =
  if is_crashed t env.dst then begin
    t.dropped <- t.dropped + 1;
    meter_msg t Dropped env.msg;
    tracing t (fun () ->
        Trace.Drop
          {
            time = t.now;
            src = env.src;
            dst = env.dst;
            info = t.msg_info env.msg;
            reason = "destination crashed";
          })
  end
  else
    match Ptab.get t.handlers env.dst with
    | None ->
        t.dropped <- t.dropped + 1;
        meter_msg t Dropped env.msg;
        tracing t (fun () ->
            Trace.Drop
              {
                time = t.now;
                src = env.src;
                dst = env.dst;
                info = t.msg_info env.msg;
                reason = "no handler";
              })
    | Some handler ->
        t.delivered <- t.delivered + 1;
        meter_msg t Delivered env.msg;
        tracing t (fun () ->
            Trace.Deliver
              {
                time = t.now;
                src = env.src;
                dst = env.dst;
                info = t.msg_info env.msg;
              });
        handler env

let schedule_delivery t env =
  let d =
    Delay.sample t.delay ~rng:t.rng ~src:env.src ~dst:env.dst ~now:t.now
  in
  enqueue t ~at:(t.now + d) (fun () -> deliver t env)

let send t ~src ~dst msg =
  (* A crashed process takes no further steps, hence sends nothing. *)
  if is_crashed t src then ()
  else begin
    meter_msg t Sent msg;
    tracing t (fun () ->
        Trace.Send { time = t.now; src; dst; info = t.msg_info msg });
    if not t.faults_active then
      (* fast path: no link blocked or duplicating anywhere, so skip the
         per-message [Link_map]/[Link_set] lookups *)
      schedule_delivery t { src; dst; sent_at = t.now; msg }
    else begin
      let copies =
        1 + Option.value (Link_map.find_opt (src, dst) t.duplicating) ~default:0
      in
      for _ = 1 to copies do
        let env = { src; dst; sent_at = t.now; msg } in
        if Link_set.mem (src, dst) t.blocked then
          t.buffered <-
            Link_map.update (src, dst)
              (fun prev -> Some (env :: Option.value prev ~default:[]))
              t.buffered
        else schedule_delivery t env
      done
    end
  end

let at t ~time action = enqueue t ~at:time action

let after t ~delay action = enqueue t ~at:(t.now + delay) action

let crash t id =
  if not (is_crashed t id) then begin
    Ptab.set t.crashed id (Some true);
    tracing t (fun () -> Trace.Crash { time = t.now; proc = id });
    (* Envelopes already buffered on blocked links towards the crashed
       process can never be delivered: account for them now rather than
       releasing them into the drop path at unblock time (which would
       date the drops wrong and skew [dropped_count]). *)
    if not (Link_map.is_empty t.buffered) then
      t.buffered <-
        Link_map.filter_map
          (fun (_, dst) envs ->
            if Proc_id.equal dst id then begin
              List.iter
                (fun env ->
                  t.dropped <- t.dropped + 1;
                  tracing t (fun () ->
                      Trace.Drop
                        {
                          time = t.now;
                          src = env.src;
                          dst = env.dst;
                          info = t.msg_info env.msg;
                          reason = "destination crashed";
                        }))
                (List.rev envs);
              None
            end
            else Some envs)
          t.buffered
  end

let recover t id =
  if is_crashed t id then begin
    Ptab.set t.crashed id (Some false);
    tracing t (fun () -> Trace.Recover { time = t.now; proc = id })
  end

let refresh_faults_active t =
  t.faults_active <-
    (not (Link_set.is_empty t.blocked))
    || not (Link_map.is_empty t.duplicating)

let block_link t ~src ~dst =
  t.blocked <- Link_set.add (src, dst) t.blocked;
  t.faults_active <- true

let set_duplication t ~src ~dst ~copies =
  if copies < 0 then invalid_arg "Engine.set_duplication: negative copies";
  t.duplicating <-
    (if copies = 0 then Link_map.remove (src, dst) t.duplicating
     else Link_map.add (src, dst) copies t.duplicating);
  refresh_faults_active t

let clear_duplication t ~src ~dst =
  t.duplicating <- Link_map.remove (src, dst) t.duplicating;
  refresh_faults_active t

let unblock_link t ~src ~dst =
  t.blocked <- Link_set.remove (src, dst) t.blocked;
  (match Link_map.find_opt (src, dst) t.buffered with
  | None -> ()
  | Some envs ->
      t.buffered <- Link_map.remove (src, dst) t.buffered;
      List.iter (schedule_delivery t) (List.rev envs));
  refresh_faults_active t

(* The registered endpoint list is derived once and cached (register
   invalidates); block/unblock of a whole process used to rebuild it —
   plus a per-endpoint intermediate list — on every call. *)
let endpoints t =
  match t.endpoints with
  | Some ps -> ps
  | None ->
      let ps = Ptab.ids_desc t.handlers in
      t.endpoints <- Some ps;
      ps

let all_links_of t id =
  List.fold_left
    (fun acc p -> (id, p) :: (p, id) :: acc)
    [] (endpoints t)

let block_process t id =
  List.iter
    (fun p ->
      block_link t ~src:id ~dst:p;
      block_link t ~src:p ~dst:id)
    (endpoints t)

let unblock_process t id =
  List.iter
    (fun p ->
      unblock_link t ~src:id ~dst:p;
      unblock_link t ~src:p ~dst:id)
    (endpoints t)

let step t =
  match Queue.pop t.queue with
  | None -> false
  | Some (ev, rest) ->
      (match t.meters with
      | None -> ()
      | Some ms ->
          let c =
            match ms.c_events with
            | Some c -> c
            | None ->
                let c = Obs.Metrics.counter ms.reg "engine.events" in
                ms.c_events <- Some c;
                c
          in
          Obs.Metrics.counter_incr c;
          let h =
            match ms.h_depth with
            | Some h -> h
            | None ->
                let h =
                  Obs.Metrics.histogram ms.reg "engine.queue_depth"
                    ~bounds:Obs.Metrics.depth_bounds
                in
                ms.h_depth <- Some h;
                h
          in
          (* the cached size still includes the event being popped,
             matching the pre-cache [Queue.size] observation point *)
          Obs.Metrics.Histogram.observe_int h t.queue_size);
      t.queue <- rest;
      t.queue_size <- t.queue_size - 1;
      t.now <- ev.Event.at;
      (* Host wall-clock per simulated event, only when the caller opted
         in with a clock — the default stays free of ambient state so
         runs (and their exports) are bit-deterministic. *)
      (match (t.clock, t.meters) with
      | Some clock, Some ms ->
          let t0 = clock () in
          ev.Event.run ();
          let h =
            match ms.h_wall with
            | Some h -> h
            | None ->
                let h =
                  Obs.Metrics.histogram ms.reg "engine.event_wallclock_us"
                    ~bounds:Obs.Metrics.wallclock_bounds
                in
                ms.h_wall <- Some h;
                h
          in
          Obs.Metrics.Histogram.observe h ((clock () -. t0) *. 1e6)
      | _ -> ev.Event.run ());
      true

let run ?until ?max_events t =
  let budget = Option.value max_events ~default:max_int in
  let horizon = Option.value until ~default:max_int in
  let rec loop n =
    if n >= budget then n
    else
      match Queue.min t.queue with
      | None -> n
      | Some ev when ev.Event.at > horizon -> n
      | Some _ ->
          ignore (step t);
          loop (n + 1)
  in
  loop 0

let pending_events t = t.queue_size

let delivered_count t = t.delivered

let dropped_count t = t.dropped
