type 'msg envelope = {
  src : Proc_id.t;
  dst : Proc_id.t;
  sent_at : int;
  msg : 'msg;
}

module Event = struct
  type t = { at : int; seq : int; run : unit -> unit }

  let compare a b =
    match Int.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
end

module Queue = Heap.Make (Event)

module Link = struct
  type t = Proc_id.t * Proc_id.t

  let compare (a1, a2) (b1, b2) =
    match Proc_id.compare a1 b1 with 0 -> Proc_id.compare a2 b2 | c -> c
end

module Link_map = Map.Make (Link)
module Link_set = Set.Make (Link)

type 'msg t = {
  mutable queue : Queue.t;
  mutable now : int;
  mutable seq : int;
  mutable handlers : ('msg envelope -> unit) Proc_id.Map.t;
  mutable crashed : Proc_id.Set.t;
  mutable blocked : Link_set.t;
  mutable buffered : 'msg envelope list Link_map.t;  (* newest first *)
  mutable duplicating : int Link_map.t;  (* extra copies per send *)
  mutable delivered : int;
  mutable dropped : int;
  rng : Prng.t;
  delay : Delay.t;
  trace : Trace.t option;
  msg_info : 'msg -> string;
  metrics : Obs.Metrics.t option;
  classify : ('msg -> Obs.Wire.t) option;
  clock : (unit -> float) option;
}

let create ?trace ?(msg_info = fun _ -> "msg") ?metrics ?classify ?clock ~seed
    ~delay () =
  {
    queue = Queue.empty;
    now = 0;
    seq = 0;
    handlers = Proc_id.Map.empty;
    crashed = Proc_id.Set.empty;
    blocked = Link_set.empty;
    buffered = Link_map.empty;
    duplicating = Link_map.empty;
    delivered = 0;
    dropped = 0;
    rng = Prng.create ~seed;
    delay;
    trace;
    msg_info;
    metrics;
    classify;
    clock;
  }

let metering t f = match t.metrics with None -> () | Some m -> f m

(* Per-class message counters ("wire.read.r1.req.sent", ...) when the
   scenario supplied a classifier; the direction-level counters are
   recorded unconditionally. *)
let meter_msg t ~stage msg =
  metering t (fun m ->
      Obs.Metrics.incr m ("engine." ^ stage);
      match t.classify with
      | None -> ()
      | Some classify ->
          Obs.Metrics.incr m
            ("wire." ^ Obs.Wire.to_string (classify msg) ^ "." ^ stage))

let rng t = t.rng

let now t = t.now

let tracing t f = match t.trace with None -> () | Some tr -> Trace.record tr (f ())

let register t id handler = t.handlers <- Proc_id.Map.add id handler t.handlers

let enqueue t ~at run =
  if at < t.now then invalid_arg "Engine: scheduling in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  t.queue <- Queue.insert t.queue { Event.at; seq; run }

let deliver t env =
  if Proc_id.Set.mem env.dst t.crashed then begin
    t.dropped <- t.dropped + 1;
    meter_msg t ~stage:"dropped" env.msg;
    tracing t (fun () ->
        Trace.Drop
          {
            time = t.now;
            src = env.src;
            dst = env.dst;
            info = t.msg_info env.msg;
            reason = "destination crashed";
          })
  end
  else
    match Proc_id.Map.find_opt env.dst t.handlers with
    | None ->
        t.dropped <- t.dropped + 1;
        meter_msg t ~stage:"dropped" env.msg;
        tracing t (fun () ->
            Trace.Drop
              {
                time = t.now;
                src = env.src;
                dst = env.dst;
                info = t.msg_info env.msg;
                reason = "no handler";
              })
    | Some handler ->
        t.delivered <- t.delivered + 1;
        meter_msg t ~stage:"delivered" env.msg;
        tracing t (fun () ->
            Trace.Deliver
              {
                time = t.now;
                src = env.src;
                dst = env.dst;
                info = t.msg_info env.msg;
              });
        handler env

let schedule_delivery t env =
  let d =
    Delay.sample t.delay ~rng:t.rng ~src:env.src ~dst:env.dst ~now:t.now
  in
  enqueue t ~at:(t.now + d) (fun () -> deliver t env)

let send t ~src ~dst msg =
  (* A crashed process takes no further steps, hence sends nothing. *)
  if Proc_id.Set.mem src t.crashed then ()
  else begin
    meter_msg t ~stage:"sent" msg;
    tracing t (fun () ->
        Trace.Send { time = t.now; src; dst; info = t.msg_info msg });
    let copies =
      1 + Option.value (Link_map.find_opt (src, dst) t.duplicating) ~default:0
    in
    for _ = 1 to copies do
      let env = { src; dst; sent_at = t.now; msg } in
      if Link_set.mem (src, dst) t.blocked then
        t.buffered <-
          Link_map.update (src, dst)
            (fun prev -> Some (env :: Option.value prev ~default:[]))
            t.buffered
      else schedule_delivery t env
    done
  end

let at t ~time action = enqueue t ~at:time action

let after t ~delay action = enqueue t ~at:(t.now + delay) action

let crash t id =
  if not (Proc_id.Set.mem id t.crashed) then begin
    t.crashed <- Proc_id.Set.add id t.crashed;
    tracing t (fun () -> Trace.Crash { time = t.now; proc = id });
    (* Envelopes already buffered on blocked links towards the crashed
       process can never be delivered: account for them now rather than
       releasing them into the drop path at unblock time (which would
       date the drops wrong and skew [dropped_count]). *)
    t.buffered <-
      Link_map.filter_map
        (fun (_, dst) envs ->
          if Proc_id.equal dst id then begin
            List.iter
              (fun env ->
                t.dropped <- t.dropped + 1;
                tracing t (fun () ->
                    Trace.Drop
                      {
                        time = t.now;
                        src = env.src;
                        dst = env.dst;
                        info = t.msg_info env.msg;
                        reason = "destination crashed";
                      }))
              (List.rev envs);
            None
          end
          else Some envs)
        t.buffered
  end

let recover t id =
  if Proc_id.Set.mem id t.crashed then begin
    t.crashed <- Proc_id.Set.remove id t.crashed;
    tracing t (fun () -> Trace.Recover { time = t.now; proc = id })
  end

let is_crashed t id = Proc_id.Set.mem id t.crashed

let block_link t ~src ~dst = t.blocked <- Link_set.add (src, dst) t.blocked

let set_duplication t ~src ~dst ~copies =
  if copies < 0 then invalid_arg "Engine.set_duplication: negative copies";
  t.duplicating <-
    (if copies = 0 then Link_map.remove (src, dst) t.duplicating
     else Link_map.add (src, dst) copies t.duplicating)

let clear_duplication t ~src ~dst =
  t.duplicating <- Link_map.remove (src, dst) t.duplicating

let unblock_link t ~src ~dst =
  t.blocked <- Link_set.remove (src, dst) t.blocked;
  match Link_map.find_opt (src, dst) t.buffered with
  | None -> ()
  | Some envs ->
      t.buffered <- Link_map.remove (src, dst) t.buffered;
      List.iter (schedule_delivery t) (List.rev envs)

let all_links_of t id =
  let endpoints =
    Proc_id.Map.fold (fun p _ acc -> p :: acc) t.handlers []
  in
  List.concat_map (fun p -> [ (id, p); (p, id) ]) endpoints

let block_process t id =
  List.iter (fun (src, dst) -> block_link t ~src ~dst) (all_links_of t id)

let unblock_process t id =
  List.iter (fun (src, dst) -> unblock_link t ~src ~dst) (all_links_of t id)

let step t =
  match Queue.pop t.queue with
  | None -> false
  | Some (ev, rest) ->
      metering t (fun m ->
          Obs.Metrics.incr m "engine.events";
          Obs.Metrics.observe_int m "engine.queue_depth"
            ~bounds:Obs.Metrics.depth_bounds (Queue.size t.queue));
      t.queue <- rest;
      t.now <- ev.Event.at;
      (* Host wall-clock per simulated event, only when the caller opted
         in with a clock — the default stays free of ambient state so
         runs (and their exports) are bit-deterministic. *)
      (match (t.clock, t.metrics) with
      | Some clock, Some m ->
          let t0 = clock () in
          ev.Event.run ();
          Obs.Metrics.observe m "engine.event_wallclock_us"
            ~bounds:Obs.Metrics.wallclock_bounds
            ((clock () -. t0) *. 1e6)
      | _ -> ev.Event.run ());
      true

let run ?until ?max_events t =
  let budget = Option.value max_events ~default:max_int in
  let horizon = Option.value until ~default:max_int in
  let rec loop n =
    if n >= budget then n
    else
      match Queue.min t.queue with
      | None -> n
      | Some ev when ev.Event.at > horizon -> n
      | Some _ ->
          ignore (step t);
          loop (n + 1)
  in
  loop 0

let pending_events t = Queue.size t.queue

let delivered_count t = t.delivered

let dropped_count t = t.dropped
