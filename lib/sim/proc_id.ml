type t = Writer | Reader of int | Obj of int

let rank = function Writer -> 0 | Reader _ -> 1 | Obj _ -> 2

let compare a b =
  match (a, b) with
  | Writer, Writer -> 0
  | Reader i, Reader j | Obj i, Obj j -> Int.compare i j
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = Hashtbl.hash

let to_string = function
  | Writer -> "w"
  | Reader j -> "r" ^ string_of_int j
  | Obj i -> "s" ^ string_of_int i

let pp ppf id = Format.pp_print_string ppf (to_string id)

let is_object = function Obj _ -> true | Writer | Reader _ -> false

let is_client = function Writer | Reader _ -> true | Obj _ -> false

let objects ~s = List.init s (fun i -> Obj (i + 1))

let readers ~r = List.init r (fun j -> Reader (j + 1))

let obj_index = function
  | Obj i -> i
  | (Writer | Reader _) as id ->
      invalid_arg ("Proc_id.obj_index: " ^ to_string id)

let reader_index = function
  | Reader j -> j
  | (Writer | Obj _) as id ->
      invalid_arg ("Proc_id.reader_index: " ^ to_string id)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
