type t = {
  sample : rng:Prng.t -> src:Proc_id.t -> dst:Proc_id.t -> now:int -> int;
}

let sample t ~rng ~src ~dst ~now = t.sample ~rng ~src ~dst ~now

let constant d =
  if d < 0 then invalid_arg "Delay.constant: negative delay";
  { sample = (fun ~rng:_ ~src:_ ~dst:_ ~now:_ -> d) }

let uniform ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Delay.uniform: bad range";
  { sample = (fun ~rng ~src:_ ~dst:_ ~now:_ -> Prng.int_in_range rng ~lo ~hi) }

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Delay.exponential: mean must be positive";
  {
    sample =
      (fun ~rng ~src:_ ~dst:_ ~now:_ ->
        max 1 (int_of_float (ceil (Prng.exponential rng ~mean))));
  }

let bimodal ~fast ~slow ~slow_fraction =
  if slow_fraction < 0.0 || slow_fraction > 1.0 then
    invalid_arg "Delay.bimodal: slow_fraction not in [0,1]";
  {
    sample =
      (fun ~rng ~src ~dst ~now ->
        let pick = if Prng.float rng ~bound:1.0 < slow_fraction then slow else fast in
        pick.sample ~rng ~src ~dst ~now);
  }

module Link_map = Map.Make (struct
  type t = Proc_id.t * Proc_id.t

  let compare (a1, a2) (b1, b2) =
    match Proc_id.compare a1 b1 with 0 -> Proc_id.compare a2 b2 | c -> c
end)

let per_link ~default overrides =
  let table =
    List.fold_left
      (fun acc (link, model) -> Link_map.add link model acc)
      Link_map.empty overrides
  in
  {
    sample =
      (fun ~rng ~src ~dst ~now ->
        let model =
          match Link_map.find_opt (src, dst) table with
          | Some m -> m
          | None -> default
        in
        model.sample ~rng ~src ~dst ~now);
  }

let slow_process ~slow ~factor base =
  if factor < 1 then invalid_arg "Delay.slow_process: factor < 1";
  {
    sample =
      (fun ~rng ~src ~dst ~now ->
        let d = base.sample ~rng ~src ~dst ~now in
        if Proc_id.Set.mem src slow || Proc_id.Set.mem dst slow then d * factor
        else d);
  }

let jitter ~base ~amplitude =
  if amplitude < 0 then invalid_arg "Delay.jitter: negative amplitude";
  {
    sample =
      (fun ~rng ~src ~dst ~now ->
        base.sample ~rng ~src ~dst ~now + Prng.int_in_range rng ~lo:0 ~hi:amplitude);
  }
