(** Execution traces.

    The engine can record every network- and fault-event; traces are the
    raw material for debugging runs, for the lower-bound demonstrator's
    human-readable transcripts, and for asserting fine-grained scheduling
    properties in tests. *)

type entry =
  | Send of { time : int; src : Proc_id.t; dst : Proc_id.t; info : string }
  | Deliver of { time : int; src : Proc_id.t; dst : Proc_id.t; info : string }
  | Drop of {
      time : int;
      src : Proc_id.t;
      dst : Proc_id.t;
      info : string;
      reason : string;
    }
  | Crash of { time : int; proc : Proc_id.t }
  | Recover of { time : int; proc : Proc_id.t }
  | Note of { time : int; text : string }

type t

val create : unit -> t

val record : t -> entry -> unit

val note : t -> time:int -> string -> unit

val entries : t -> entry list
(** In chronological (recording) order. *)

val length : t -> int

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit

val count : t -> pred:(entry -> bool) -> int

val sends_between : t -> src:Proc_id.t -> dst:Proc_id.t -> int
(** Number of [Send] entries on the given directed link. *)

val delivered_to : t -> dst:Proc_id.t -> int
(** Number of [Deliver] entries at [dst]. *)

(** {2 One-pass aggregation}

    [count] and friends are single traversals; [stats] replaces repeated
    per-kind [count] scans in reports with one pass over the trace. *)

type stats = {
  sends : int;
  delivers : int;
  drops : int;
  crashes : int;
  recovers : int;
  notes : int;
}

val stats : t -> stats

val entry_to_json : entry -> Obs.Export.Json.t

val to_jsonl : t -> string
(** Deterministic JSONL rendering, one entry per line, chronological. *)
