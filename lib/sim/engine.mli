(** Deterministic discrete-event simulation engine.

    Realizes the paper's asynchronous message-passing model (§2.1):
    processes take atomic steps on message delivery, channels are reliable
    point-to-point with arbitrary (model-drawn) delays, and at most [t]
    objects may be faulty.  Every run is a pure function of the scenario
    seed: the event queue breaks time ties on a global sequence number and
    all randomness flows from one {!Prng.t}.

    The engine is polymorphic in the protocol's message type ['msg]; each
    protocol library wraps its pure state machines into handlers.

    Link blocking ([block_link] / [unblock_link]) scripts asynchrony: a
    blocked link buffers messages (they are "in transit" in the paper's
    sense) and releases them on unblock — exactly the "delayed until after
    t1" device used throughout the Proposition 1 runs. *)

type 'msg envelope = {
  src : Proc_id.t;
  dst : Proc_id.t;
  sent_at : int;
  msg : 'msg;
}

type 'msg t

val create :
  ?trace:Trace.t ->
  ?msg_info:('msg -> string) ->
  ?metrics:Obs.Metrics.t ->
  ?classify:('msg -> Obs.Wire.t) ->
  ?clock:(unit -> float) ->
  seed:int ->
  delay:Delay.t ->
  unit ->
  'msg t
(** [create ~seed ~delay ()] builds an empty engine.  [msg_info] renders
    messages for the trace (defaults to ["msg"]).

    With [metrics], the engine records event counts, queue-depth
    histograms and sent/delivered/dropped message counters into the
    registry — per message class too when [classify] is given.  With
    [clock] (host seconds, e.g. [Sys.time]), it additionally histograms
    the wall-clock cost of each simulated event; omit it to keep runs
    free of ambient nondeterminism. *)

val rng : 'msg t -> Prng.t
(** The engine's generator; split it rather than sharing when a component
    needs its own stream. *)

val now : 'msg t -> int
(** Current virtual time. *)

val register : 'msg t -> Proc_id.t -> ('msg envelope -> unit) -> unit
(** [register t id handler] installs (or replaces) the delivery handler of
    process [id].  Replacing mid-run models a process turning Byzantine. *)

val send : 'msg t -> src:Proc_id.t -> dst:Proc_id.t -> 'msg -> unit
(** Enqueue a message; its delivery time is [now + delay] drawn from the
    model, unless the link is blocked, in which case it is buffered. *)

val at : 'msg t -> time:int -> (unit -> unit) -> unit
(** Schedule an action at an absolute virtual time (>= now). *)

val after : 'msg t -> delay:int -> (unit -> unit) -> unit
(** Schedule an action [delay] units from now. *)

val crash : 'msg t -> Proc_id.t -> unit
(** Crash a process: all its future deliveries are dropped, and envelopes
    already buffered towards it on blocked links are dropped (and counted)
    immediately.  Idempotent. *)

val recover : 'msg t -> Proc_id.t -> unit
(** Undo a {!crash}: subsequent deliveries reach the process's handler
    again.  Messages dropped while it was down stay lost — crash-recovery
    loses in-flight traffic.  The caller is responsible for re-installing
    an appropriate handler (wiped or persisted state) via {!register}.
    No-op on a live process. *)

val is_crashed : 'msg t -> Proc_id.t -> bool

val block_link : 'msg t -> src:Proc_id.t -> dst:Proc_id.t -> unit
(** Buffer (instead of scheduling) every subsequent message on the link. *)

val unblock_link : 'msg t -> src:Proc_id.t -> dst:Proc_id.t -> unit
(** Release buffered messages on the link; each gets a freshly drawn delay
    from the current time. *)

val block_process : 'msg t -> Proc_id.t -> unit
(** Block every link to and from the given process.  The endpoint list
    is derived from the registered processes and cached across calls. *)

val unblock_process : 'msg t -> Proc_id.t -> unit

val all_links_of : 'msg t -> Proc_id.t -> (Proc_id.t * Proc_id.t) list
(** Both directed links between [id] and every registered process
    (including [id] itself) — the link set {!block_process} operates
    on.  Order is unspecified. *)

val set_duplication : 'msg t -> src:Proc_id.t -> dst:Proc_id.t -> copies:int -> unit
(** Every subsequent send on the link schedules [copies] extra deliveries,
    each with an independently drawn delay — models a duplicating network
    layer (retransmission storms).  [copies = 0] clears the link.
    @raise Invalid_argument on negative [copies]. *)

val clear_duplication : 'msg t -> src:Proc_id.t -> dst:Proc_id.t -> unit

val run : ?until:int -> ?max_events:int -> 'msg t -> int
(** Process events until the queue is empty, virtual time would exceed
    [until], or [max_events] events have fired.  Returns the number of
    events processed. *)

val step : 'msg t -> bool
(** Process exactly one event; [false] if the queue was empty. *)

val pending_events : 'msg t -> int

val delivered_count : 'msg t -> int

val dropped_count : 'msg t -> int
