(** Deterministic pseudo-random number generator.

    A hand-rolled splitmix64 generator: fast, statistically adequate for
    simulation workloads, and — crucially for reproducible distributed-runs
    — fully deterministic from its integer seed and splittable, so every
    simulated process can own an independent stream derived from the
    scenario seed.  [Stdlib.Random] is deliberately not used anywhere in
    this code base. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose whole future output is a pure
    function of [seed]. *)

val copy : t -> t
(** [copy g] is an independent generator with [g]'s current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator seeded from the
    drawn value; the two streams are (statistically) independent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int g ~bound] draws uniformly from [0, bound).  @raise Invalid_argument
    if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range g ~lo ~hi] draws uniformly from the inclusive range
    [lo, hi].  @raise Invalid_argument if [hi < lo]. *)

val float : t -> bound:float -> float
(** [float g ~bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** [exponential g ~mean] draws from the exponential distribution with the
    given mean (inverse-CDF method). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty arrays. *)
