(** Process identities of the paper's model (§2): one writer [w], readers
    [r_1 … r_R], and base objects [s_1 … s_S].  Objects are indexed from 1
    to match the paper's notation; readers likewise. *)

type t =
  | Writer
  | Reader of int  (** [Reader j], 1-based. *)
  | Obj of int  (** [Obj i], 1-based: base storage object s_i. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val is_object : t -> bool

val is_client : t -> bool
(** Clients are the writer and the readers (paper §2). *)

val objects : s:int -> t list
(** [objects ~s] is [[Obj 1; …; Obj s]]. *)

val readers : r:int -> t list
(** [readers ~r] is [[Reader 1; …; Reader r]]. *)

val obj_index : t -> int
(** Index of an object id.  @raise Invalid_argument on non-objects. *)

val reader_index : t -> int
(** Index of a reader id.  @raise Invalid_argument on non-readers. *)

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
