(** Message-delay models for the simulated asynchronous network.

    The paper's model is fully asynchronous: correctness results must hold
    for every delay assignment, while the latency experiments (E7) need
    realistic stochastic ones.  A model maps (link, time, randomness) to a
    non-negative integer delay in simulated time units. *)

type t

val sample :
  t -> rng:Prng.t -> src:Proc_id.t -> dst:Proc_id.t -> now:int -> int
(** Draw the delay for one message. *)

val constant : int -> t
(** Every message takes exactly the given delay. *)

val uniform : lo:int -> hi:int -> t
(** Uniform integer delay in the inclusive range. *)

val exponential : mean:float -> t
(** Exponentially distributed delay (rounded up, at least 1): the classic
    heavy-ish tail model for loaded networks. *)

val bimodal : fast:t -> slow:t -> slow_fraction:float -> t
(** With probability [slow_fraction] draw from [slow], otherwise from
    [fast]: models sporadic congestion / a straggler path. *)

val per_link : default:t -> ((Proc_id.t * Proc_id.t) * t) list -> t
(** Override the model on specific directed links; symmetric links must be
    listed in both directions. *)

val slow_process : slow:Proc_id.Set.t -> factor:int -> t -> t
(** Multiply by [factor] every delay on links whose source or destination
    is in [slow]: models slow or distant replicas. *)

val jitter : base:t -> amplitude:int -> t
(** Add uniform jitter in [0, amplitude] to the base model. *)
