type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finalizer: Stafford's mix13 variant. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  { state = seed }

let int g ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take 62 non-negative bits and reduce; bias is negligible for
     simulation-scale bounds. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  raw mod bound

let int_in_range g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int g ~bound:(hi - lo + 1)

let float g ~bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let exponential g ~mean =
  let u = ref (float g ~bound:1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g ~bound:(Array.length a))
