type entry =
  | Send of { time : int; src : Proc_id.t; dst : Proc_id.t; info : string }
  | Deliver of { time : int; src : Proc_id.t; dst : Proc_id.t; info : string }
  | Drop of {
      time : int;
      src : Proc_id.t;
      dst : Proc_id.t;
      info : string;
      reason : string;
    }
  | Crash of { time : int; proc : Proc_id.t }
  | Recover of { time : int; proc : Proc_id.t }
  | Note of { time : int; text : string }

type t = { mutable rev_entries : entry list; mutable length : int }

let create () = { rev_entries = []; length = 0 }

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.length <- t.length + 1

let note t ~time text = record t (Note { time; text })

let entries t = List.rev t.rev_entries

let length t = t.length

let pp_entry ppf = function
  | Send { time; src; dst; info } ->
      Format.fprintf ppf "[%6d] %a -> %a : send %s" time Proc_id.pp src
        Proc_id.pp dst info
  | Deliver { time; src; dst; info } ->
      Format.fprintf ppf "[%6d] %a => %a : deliver %s" time Proc_id.pp src
        Proc_id.pp dst info
  | Drop { time; src; dst; info; reason } ->
      Format.fprintf ppf "[%6d] %a -x %a : drop %s (%s)" time Proc_id.pp src
        Proc_id.pp dst info reason
  | Crash { time; proc } ->
      Format.fprintf ppf "[%6d] %a crashes" time Proc_id.pp proc
  | Recover { time; proc } ->
      Format.fprintf ppf "[%6d] %a recovers" time Proc_id.pp proc
  | Note { time; text } -> Format.fprintf ppf "[%6d] note: %s" time text

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

(* One pass over the raw (reversed) entries — counting is order-blind,
   so no [entries] reversal or intermediate list. *)
let count t ~pred =
  List.fold_left (fun acc e -> if pred e then acc + 1 else acc) 0 t.rev_entries

type stats = {
  sends : int;
  delivers : int;
  drops : int;
  crashes : int;
  recovers : int;
  notes : int;
}

let stats t =
  List.fold_left
    (fun acc e ->
      match e with
      | Send _ -> { acc with sends = acc.sends + 1 }
      | Deliver _ -> { acc with delivers = acc.delivers + 1 }
      | Drop _ -> { acc with drops = acc.drops + 1 }
      | Crash _ -> { acc with crashes = acc.crashes + 1 }
      | Recover _ -> { acc with recovers = acc.recovers + 1 }
      | Note _ -> { acc with notes = acc.notes + 1 })
    { sends = 0; delivers = 0; drops = 0; crashes = 0; recovers = 0; notes = 0 }
    t.rev_entries

let entry_to_json e =
  let open Obs.Export.Json in
  let msg kind time src dst info extra =
    Obj
      ([
         ("kind", Str kind);
         ("time", Int time);
         ("src", Str (Proc_id.to_string src));
         ("dst", Str (Proc_id.to_string dst));
         ("info", Str info);
       ]
      @ extra)
  in
  match e with
  | Send { time; src; dst; info } -> msg "send" time src dst info []
  | Deliver { time; src; dst; info } -> msg "deliver" time src dst info []
  | Drop { time; src; dst; info; reason } ->
      msg "drop" time src dst info [ ("reason", Str reason) ]
  | Crash { time; proc } ->
      Obj
        [
          ("kind", Str "crash"); ("time", Int time);
          ("proc", Str (Proc_id.to_string proc));
        ]
  | Recover { time; proc } ->
      Obj
        [
          ("kind", Str "recover"); ("time", Int time);
          ("proc", Str (Proc_id.to_string proc));
        ]
  | Note { time; text } ->
      Obj [ ("kind", Str "note"); ("time", Int time); ("text", Str text) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Obs.Export.Json.to_string (entry_to_json e));
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let sends_between t ~src ~dst =
  count t ~pred:(function
    | Send s -> Proc_id.equal s.src src && Proc_id.equal s.dst dst
    | Deliver _ | Drop _ | Crash _ | Recover _ | Note _ -> false)

let delivered_to t ~dst =
  count t ~pred:(function
    | Deliver d -> Proc_id.equal d.dst dst
    | Send _ | Drop _ | Crash _ | Recover _ | Note _ -> false)
