type entry =
  | Send of { time : int; src : Proc_id.t; dst : Proc_id.t; info : string }
  | Deliver of { time : int; src : Proc_id.t; dst : Proc_id.t; info : string }
  | Drop of {
      time : int;
      src : Proc_id.t;
      dst : Proc_id.t;
      info : string;
      reason : string;
    }
  | Crash of { time : int; proc : Proc_id.t }
  | Recover of { time : int; proc : Proc_id.t }
  | Note of { time : int; text : string }

type t = { mutable rev_entries : entry list; mutable length : int }

let create () = { rev_entries = []; length = 0 }

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.length <- t.length + 1

let note t ~time text = record t (Note { time; text })

let entries t = List.rev t.rev_entries

let length t = t.length

let pp_entry ppf = function
  | Send { time; src; dst; info } ->
      Format.fprintf ppf "[%6d] %a -> %a : send %s" time Proc_id.pp src
        Proc_id.pp dst info
  | Deliver { time; src; dst; info } ->
      Format.fprintf ppf "[%6d] %a => %a : deliver %s" time Proc_id.pp src
        Proc_id.pp dst info
  | Drop { time; src; dst; info; reason } ->
      Format.fprintf ppf "[%6d] %a -x %a : drop %s (%s)" time Proc_id.pp src
        Proc_id.pp dst info reason
  | Crash { time; proc } ->
      Format.fprintf ppf "[%6d] %a crashes" time Proc_id.pp proc
  | Recover { time; proc } ->
      Format.fprintf ppf "[%6d] %a recovers" time Proc_id.pp proc
  | Note { time; text } -> Format.fprintf ppf "[%6d] note: %s" time text

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

let count t ~pred = List.length (List.filter pred (entries t))

let sends_between t ~src ~dst =
  count t ~pred:(function
    | Send s -> Proc_id.equal s.src src && Proc_id.equal s.dst dst
    | Deliver _ | Drop _ | Crash _ | Recover _ | Note _ -> false)

let delivered_to t ~dst =
  count t ~pred:(function
    | Deliver d -> Proc_id.equal d.dst dst
    | Send _ | Drop _ | Crash _ | Recover _ | Note _ -> false)
