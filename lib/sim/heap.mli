(** Purely functional leftist min-heap.

    Backs the simulation event queue.  Implemented from scratch (no
    external dependency): O(log n) [insert] and [pop], O(log (n+m))
    [merge], structural persistence so snapshots of the queue are free —
    the bounded model checker exploits this to fork explorations. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val empty : t

  val is_empty : t -> bool

  val size : t -> int
  (** O(1): the size is cached in every node. *)

  val insert : t -> Elt.t -> t

  val min : t -> Elt.t option
  (** Smallest element without removing it. *)

  val pop : t -> (Elt.t * t) option
  (** Smallest element and the remaining heap. *)

  val merge : t -> t -> t

  val of_list : Elt.t list -> t

  val to_sorted_list : t -> Elt.t list
  (** Ascending order; O(n log n). *)

  val fold : (Elt.t -> 'a -> 'a) -> t -> 'a -> 'a
  (** Folds in unspecified order. *)
end
