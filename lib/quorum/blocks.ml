type t = { t1 : int list; t2 : int list; b1 : int list; b2 : int list }

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let partition ~t ~b =
  if t < 1 then Error "t must be at least 1"
  else if b < 1 then Error "b must be at least 1 (the paper assumes b > 0)"
  else
    Ok
      {
        t1 = range 1 t;
        t2 = range (t + 1) (2 * t);
        b1 = range ((2 * t) + 1) ((2 * t) + b);
        b2 = range ((2 * t) + b + 1) ((2 * t) + (2 * b));
      }

let partition_exn ~t ~b =
  match partition ~t ~b with
  | Ok p -> p
  | Error e -> invalid_arg ("Blocks.partition: " ^ e)

let size p =
  List.length p.t1 + List.length p.t2 + List.length p.b1 + List.length p.b2

let all_objects p = p.t1 @ p.t2 @ p.b1 @ p.b2

let members p = function
  | `T1 -> p.t1
  | `T2 -> p.t2
  | `B1 -> p.b1
  | `B2 -> p.b2

let block_of p i =
  if List.mem i p.t1 then `T1
  else if List.mem i p.t2 then `T2
  else if List.mem i p.b1 then `B1
  else if List.mem i p.b2 then `B2
  else raise Not_found

let complement p blocks =
  let excluded = List.concat_map (members p) blocks in
  List.filter (fun i -> not (List.mem i excluded)) (all_objects p)

let pp ppf p =
  let pp_block name l =
    Format.fprintf ppf "%s={%s} " name
      (String.concat "," (List.map string_of_int l))
  in
  pp_block "T1" p.t1;
  pp_block "T2" p.t2;
  pp_block "B1" p.b1;
  pp_block "B2" p.b2
