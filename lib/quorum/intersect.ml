module Int_set = Set.Make (Int)

let universe s = Int_set.of_list (List.init s (fun i -> i + 1))

let subsets_of_size s ~size =
  let rec go candidates size =
    if size = 0 then [ Int_set.empty ]
    else
      match candidates with
      | [] -> []
      | x :: rest ->
          let with_x = List.map (Int_set.add x) (go rest (size - 1)) in
          let without_x = go rest size in
          with_x @ without_x
  in
  if size < 0 || size > s then []
  else go (List.init s (fun i -> i + 1)) size

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let min_pairwise_intersection ~s ~q = max 0 ((2 * q) - s)

let check_crash_intersection (c : Config.t) =
  let q = Config.quorum c in
  min_pairwise_intersection ~s:c.s ~q >= 1

let check_byzantine_intersection (c : Config.t) =
  let q = Config.quorum c in
  min_pairwise_intersection ~s:c.s ~q >= c.b + 1

let check_byzantine_intersection_by_enumeration (c : Config.t) =
  let q = Config.quorum c in
  let quorums = subsets_of_size c.s ~size:q in
  let byz_placements = subsets_of_size c.s ~size:c.b in
  List.for_all
    (fun q1 ->
      List.for_all
        (fun q2 ->
          let inter = Int_set.inter q1 q2 in
          List.for_all
            (fun byz -> Int_set.cardinal (Int_set.diff inter byz) >= 1)
            byz_placements)
        quorums)
    quorums

let check_write_persistence (c : Config.t) = Config.quorum c - c.t >= c.b + 1
