(** Quorum-intersection laws, checked by enumeration.

    For small universes these functions exhaustively verify the set-
    theoretic facts the protocols rest on: any two [(s-t)]-sized reply
    sets intersect in at least [s - 2t] objects, of which at least
    [s - 2t - b] are correct — with [s = 2t + b + 1] that is exactly
    [b + 1], the magic threshold behind the [safe]/[invalid] predicates. *)

module Int_set : Set.S with type elt = int

val universe : int -> Int_set.t
(** [universe s] = {1, …, s}. *)

val subsets_of_size : int -> size:int -> Int_set.t list
(** All [size]-subsets of [universe s]; intended for small [s] (<= ~12). *)

val choose : int -> int -> int
(** Binomial coefficient; exact for the small arguments used here. *)

val min_pairwise_intersection : s:int -> q:int -> int
(** Smallest [|Q1 ∩ Q2|] over all pairs of [q]-subsets of [universe s]
    (computed in closed form [max 0 (2q - s)], validated by tests against
    enumeration). *)

val check_crash_intersection : Config.t -> bool
(** Any two quorums of size [s - t] intersect in at least one object —
    the crash-tolerant (ABD) requirement.  True iff [s >= 2t + 1]. *)

val check_byzantine_intersection : Config.t -> bool
(** Any two quorums of size [s - t] intersect in at least [b + 1]
    objects — hence in at least one {e correct} object even with [b]
    Byzantine members.  Holds iff [s >= 2t + b + 1]: the property that
    lets a reader see at least one honest copy of the last written
    value in a single reply quorum. *)

val check_byzantine_intersection_by_enumeration : Config.t -> bool
(** Same property established by brute force over all quorum pairs and
    all placements of [b] Byzantine objects.  Exponential; only for
    test-sized configurations. *)

val check_write_persistence : Config.t -> bool
(** A write quorum of size [s - t] contains at least [b + 1] objects
    that are correct {e forever} ([s - 2t >= b + 1]) — the vouching
    threshold behind the [safe] predicate (Theorem 1): those objects
    will eventually confirm the written value to any reader. *)
