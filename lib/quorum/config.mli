(** Failure/resilience configurations.

    A configuration fixes the number of base objects [s], the failure
    bound [t], and the Byzantine sub-bound [b] (paper §2: at most [t]
    objects fail, of which at most [b] arbitrarily; the paper assumes
    [b > 0], while the crash-only baselines use [b = 0]). *)

type t = private { s : int; t : int; b : int }

val make : s:int -> t:int -> b:int -> (t, string) result
(** Validates [0 <= b <= t], [t >= 0], and [s >= 1].  Resilience bounds
    are checked separately ({!meets_resilience_bound}) because the lower-
    bound experiments intentionally build under-provisioned systems. *)

val make_exn : s:int -> t:int -> b:int -> t
(** @raise Invalid_argument on invalid parameters. *)

val optimal_s : t:int -> b:int -> int
(** The optimal resilience threshold [2t + b + 1] ([17], paper §1). *)

val optimal : t:int -> b:int -> t
(** The optimally resilient configuration [s = 2t + b + 1]. *)

val is_optimally_resilient : t -> bool

val meets_resilience_bound : t -> bool
(** [s >= 2t + b + 1]: any wait-free robust storage needs this many
    objects. *)

val fast_read_admissible : t -> bool
(** [s >= 2t + 2b + 1]: by the paper's Proposition 1, fast (single-round)
    reads from safe storage are impossible at or below [2t + 2b]. *)

val quorum : t -> int
(** [s - t]: the number of replies a client can always wait for (the
    round-termination threshold of §2.3). *)

val byz_quorum_excess : t -> int
(** [quorum - (t + b)]: how many replies in a quorum are guaranteed to
    originate at correct objects that also answered some other quorum. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
