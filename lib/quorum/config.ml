type t = { s : int; t : int; b : int }

let make ~s ~t ~b =
  if b < 0 then Error "b must be non-negative"
  else if t < b then Error "t must be at least b (Byzantine failures count towards t)"
  else if s < 1 then Error "s must be at least 1"
  else Ok { s; t; b }

let make_exn ~s ~t ~b =
  match make ~s ~t ~b with Ok c -> c | Error e -> invalid_arg ("Config.make: " ^ e)

let optimal_s ~t ~b = (2 * t) + b + 1

let optimal ~t ~b = make_exn ~s:(optimal_s ~t ~b) ~t ~b

let is_optimally_resilient c = c.s = optimal_s ~t:c.t ~b:c.b

let meets_resilience_bound c = c.s >= optimal_s ~t:c.t ~b:c.b

let fast_read_admissible c = c.s >= (2 * c.t) + (2 * c.b) + 1

let quorum c = c.s - c.t

let byz_quorum_excess c = quorum c - (c.t + c.b)

let pp ppf c = Format.fprintf ppf "S=%d t=%d b=%d" c.s c.t c.b

let to_string c = Format.asprintf "%a" pp c

let equal a b = a.s = b.s && a.t = b.t && a.b = b.b
