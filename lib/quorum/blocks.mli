(** The block partition of the Proposition 1 proof (paper §3).

    For a system of [s = 2t + 2b] base objects, the proof partitions the
    objects into four blocks: [T1] and [T2] of size exactly [t], and [B1]
    and [B2] of size between 1 and [b].  The five runs of Figure 1 are
    phrased entirely in terms of which blocks an operation round skips. *)

type t = private {
  t1 : int list;  (** crashes at the start of run1 / is delayed elsewhere *)
  t2 : int list;  (** crashes at t1 in run''2 / is delayed in run3 *)
  b1 : int list;  (** malicious in run4: replays the reader's round-1 state *)
  b2 : int list;  (** malicious in run5: pretends the write happened *)
}

val partition : t:int -> b:int -> (t, string) result
(** Canonical partition of [{1, …, 2t+2b}]: [T1 = 1…t], [T2 = t+1…2t],
    [B1 = 2t+1…2t+b], [B2 = 2t+b+1…2t+2b].  Requires [t >= 1] and
    [b >= 1] (the paper assumes both blocks T non-empty and [b > 0]). *)

val partition_exn : t:int -> b:int -> t

val size : t -> int

val all_objects : t -> int list
(** Ascending object indices of the whole universe. *)

val members : t -> [ `T1 | `T2 | `B1 | `B2 ] -> int list

val block_of : t -> int -> [ `T1 | `T2 | `B1 | `B2 ]
(** @raise Not_found if the index is outside the universe. *)

val complement : t -> [ `T1 | `T2 | `B1 | `B2 ] list -> int list
(** Objects in none of the given blocks, ascending. *)

val pp : Format.formatter -> t -> unit
