(** Workload generators.

    Produce {!Core.Schedule.t} values for the experiment harness: the
    read-mostly storage traffic the paper's introduction motivates
    ("the read operation is considered the most frequent in practice"),
    plus targeted shapes — write bursts, read storms around writes (to
    manufacture read/write concurrency), and quiet sequential phases
    (where safety fully constrains results).

    All generators label write payloads ["v1", "v2", …] so histories
    have distinct write values and the atomicity checker's
    observed-write mapping is unambiguous. *)

val payload : int -> Core.Value.t
(** ["v<k>"]. *)

val sequential : writes:int -> readers:int -> gap:int -> Core.Schedule.t
(** Alternating phases: write k, then one read per reader, [gap] time
    units apart — no intended concurrency. *)

val read_mostly :
  rng:Sim.Prng.t ->
  writes:int ->
  readers:int ->
  reads_per_reader:int ->
  horizon:int ->
  Core.Schedule.t
(** Writes evenly spread over the horizon; each reader issues reads at
    uniformly random times — the paper's motivating regime. *)

val write_storm :
  writes:int -> readers:int -> every:int -> Core.Schedule.t
(** Back-to-back writes with each reader reading continuously — maximal
    read/write concurrency. *)

val read_burst :
  readers:int -> reads_per_reader:int -> at:int -> Core.Schedule.t
(** All readers fire a burst of reads at the same instant — contention
    among readers (stresses the per-reader [tsr] discipline). *)

val poisson_reads :
  rng:Sim.Prng.t ->
  readers:int ->
  mean_gap:float ->
  horizon:int ->
  Core.Schedule.t
(** Per-reader Poisson arrival process with the given mean inter-read
    gap. *)
