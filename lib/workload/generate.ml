open Core

let payload k = Value.v (Printf.sprintf "v%d" k)

let sequential ~writes ~readers ~gap =
  let items = ref [] in
  let time = ref 0 in
  for k = 1 to writes do
    items := (!time, Schedule.Write (payload k)) :: !items;
    time := !time + gap;
    for j = 1 to readers do
      items := (!time, Schedule.Read { reader = j }) :: !items;
      time := !time + gap
    done
  done;
  Schedule.sorted (List.rev !items)

let read_mostly ~rng ~writes ~readers ~reads_per_reader ~horizon =
  let write_items =
    List.init writes (fun i ->
        let time = (i * horizon) / max 1 writes in
        (time, Schedule.Write (payload (i + 1))))
  in
  let read_items =
    List.concat_map
      (fun j ->
        List.init reads_per_reader (fun _ ->
            ( Sim.Prng.int_in_range rng ~lo:0 ~hi:horizon,
              Schedule.Read { reader = j } )))
      (List.init readers (fun j -> j + 1))
  in
  Schedule.merge write_items read_items

let write_storm ~writes ~readers ~every =
  let write_items =
    List.init writes (fun i -> (i * every, Schedule.Write (payload (i + 1))))
  in
  let read_items =
    List.concat_map
      (fun j ->
        List.init writes (fun i ->
            ((i * every) + (every / 2), Schedule.Read { reader = j })))
      (List.init readers (fun j -> j + 1))
  in
  Schedule.merge write_items read_items

let read_burst ~readers ~reads_per_reader ~at =
  List.concat_map
    (fun j ->
      List.init reads_per_reader (fun _ -> (at, Schedule.Read { reader = j })))
    (List.init readers (fun j -> j + 1))

let poisson_reads ~rng ~readers ~mean_gap ~horizon =
  let reads_of_reader j =
    let rec go acc time =
      let time =
        time + max 1 (int_of_float (Sim.Prng.exponential rng ~mean:mean_gap))
      in
      if time > horizon then List.rev acc
      else go ((time, Schedule.Read { reader = j }) :: acc) time
    in
    go [] 0
  in
  Schedule.sorted
    (List.concat_map reads_of_reader (List.init readers (fun j -> j + 1)))
