(** Keyspace workloads: skewed read/write traffic over many registers.

    The multi-register experiments (E19) need the traffic shape real
    key-value stores see: a large key universe where popularity is
    heavily skewed — a few hot keys take most of the traffic while the
    long tail stays cold — and reads dominate writes.  This generator
    produces exactly that, deterministically: the whole op stream is a
    pure function of [(keys, skew, write_ratio, seed)], so two runs (or
    a run and its re-check) see identical traffic.

    Key popularity follows the standard zipfian construction (Gray et
    al., as popularized by YCSB's ZipfianGenerator): key 0 is the most
    popular and rank [r]'s probability falls off as [1/(r+1)^skew].
    [skew = 0] degenerates to the uniform distribution; YCSB's default
    hot-spot regime is [skew = 0.99].  Below [skew = 1] the zeta
    normalization constant is precomputed once in O(keys) and each draw
    is O(1) via YCSB's closed-form CDF inverse; that inverse has a pole
    at [skew = 1] ([alpha = 1/(1-skew)]), so at or above it — proper
    Zipf, where the hot key takes a constant fraction of all traffic —
    draws invert the exact cumulative table by binary search
    (O(keys) once, O(log keys) per draw).

    Write values are ["k<key>.<n>"] with [n] a per-key sequence number,
    so every key's history has distinct write values and the checkers'
    observed-write mapping stays unambiguous.

    The registers are SWMR: when several processes share one seed-split
    workload, at most one of them may write any given key.  That is what
    [write_filter] is for — a process passes a predicate accepting only
    the keys it owns (e.g. [Shard.Map.mix key mod procs = me]), and the
    generator converts non-owned write draws into reads, keeping the
    key-popularity marginal identical across processes. *)

type op =
  | Read of { key : int }
  | Write of { key : int; value : Core.Value.t }

val op_key : op -> int

val op_is_write : op -> bool

type t
(** Mutable generator state (PRNG position and per-key write
    sequence numbers). *)

val make :
  ?skew:float ->
  ?write_ratio:float ->
  ?write_filter:(int -> bool) ->
  keys:int ->
  seed:int ->
  unit ->
  (t, string) result
(** [make ~keys ~seed ()] builds a generator over key ids [0, keys).
    [skew] (default 0 = uniform) must be finite and nonnegative;
    [write_ratio] (default 0.05) in [0, 1]; [write_filter] (default:
    accept all) restricts which keys this generator is allowed to
    write. *)

val make_exn :
  ?skew:float ->
  ?write_ratio:float ->
  ?write_filter:(int -> bool) ->
  keys:int ->
  seed:int ->
  unit ->
  t
(** @raise Invalid_argument where {!make} errors. *)

val keys : t -> int

val skew : t -> float

val write_ratio : t -> float

val next : t -> op
(** Draw the next operation: a zipfian key, then a write with
    probability [write_ratio] if [write_filter] admits the key, else a
    read. *)

val ops : t -> int -> op array
(** [ops t n] draws [n] operations.  @raise Invalid_argument on a
    negative count. *)
