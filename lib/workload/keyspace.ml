type op =
  | Read of { key : int }
  | Write of { key : int; value : Core.Value.t }

let op_key = function Read { key } | Write { key; _ } -> key

let op_is_write = function Read _ -> false | Write _ -> true

type t = {
  keys : int;
  skew : float;
  write_ratio : float;
  write_filter : int -> bool;
  rng : Sim.Prng.t;
  (* YCSB zipfian constants, all pure functions of (keys, skew) *)
  zetan : float;
  eta : float;
  alpha : float;
  half_pow_theta : float;
  (* skew >= 1: cumulative distribution, one slot per key (the YCSB
     closed form needs alpha = 1/(1-skew), which blows up at 1) *)
  cdf : float array;
  (* per-key write sequence numbers, so every write value is unique *)
  seqs : (int, int) Hashtbl.t;
}

(* zeta(n, theta) = sum_{i=1..n} 1/i^theta *)
let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let make ?(skew = 0.0) ?(write_ratio = 0.05) ?(write_filter = fun _ -> true)
    ~keys ~seed () =
  if keys < 1 then Error (Printf.sprintf "keyspace: keys = %d" keys)
  else if skew < 0.0 || not (Float.is_finite skew) then
    Error (Printf.sprintf "keyspace: skew %g outside [0, inf)" skew)
  else if write_ratio < 0.0 || write_ratio > 1.0 then
    Error (Printf.sprintf "keyspace: write ratio %g outside [0, 1]" write_ratio)
  else begin
    let zetan, eta, alpha, half_pow_theta =
      if skew = 0.0 || skew >= 1.0 then (0.0, 0.0, 0.0, 0.0)
      else begin
        let n = float_of_int keys in
        let zetan = zeta keys skew in
        let zeta2 = zeta 2 skew in
        let eta =
          (1.0 -. Float.pow (2.0 /. n) (1.0 -. skew))
          /. (1.0 -. (zeta2 /. zetan))
        in
        (zetan, eta, 1.0 /. (1.0 -. skew), Float.pow 0.5 skew)
      end
    in
    (* The YCSB closed form inverts the CDF analytically via
       alpha = 1/(1-skew), which has a pole at skew 1.  At or above it
       (proper Zipf territory: the hot key takes a constant fraction of
       ALL traffic regardless of keyspace size) fall back to the exact
       cumulative table + binary search: O(keys) once, O(log keys) per
       draw. *)
    let cdf =
      if skew < 1.0 then [||]
      else begin
        let a = Array.make keys 0.0 in
        let acc = ref 0.0 in
        for i = 0 to keys - 1 do
          acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) skew);
          a.(i) <- !acc
        done;
        let z = !acc in
        Array.map (fun x -> x /. z) a
      end
    in
    Ok
      {
        keys;
        skew;
        write_ratio;
        write_filter;
        rng = Sim.Prng.create ~seed;
        zetan;
        eta;
        alpha;
        half_pow_theta;
        cdf;
        seqs = Hashtbl.create 64;
      }
  end

let make_exn ?skew ?write_ratio ?write_filter ~keys ~seed () =
  match make ?skew ?write_ratio ?write_filter ~keys ~seed () with
  | Ok t -> t
  | Error e -> invalid_arg e

let keys t = t.keys

let skew t = t.skew

let write_ratio t = t.write_ratio

(* One zipfian draw (Gray et al. via YCSB's ZipfianGenerator): key 0 is
   the most popular, popularity of rank r falls off as 1/(r+1)^skew.
   skew >= 1 inverts the exact CDF instead (see [make]): find the first
   slot whose cumulative mass covers the uniform draw. *)
let draw_key t =
  if t.skew = 0.0 then Sim.Prng.int t.rng ~bound:t.keys
  else if t.skew >= 1.0 then begin
    let u = Sim.Prng.float t.rng ~bound:1.0 in
    let lo = ref 0 and hi = ref (t.keys - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  end
  else begin
    let u = Sim.Prng.float t.rng ~bound:1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else begin
      let n = float_of_int t.keys in
      let k =
        int_of_float (n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      (* guard the floating-point edge where the power lands on 1.0 *)
      if k >= t.keys then t.keys - 1 else if k < 0 then 0 else k
    end
  end

let value_for t key =
  let n = match Hashtbl.find_opt t.seqs key with Some n -> n | None -> 0 in
  Hashtbl.replace t.seqs key (n + 1);
  Core.Value.v (Printf.sprintf "k%d.%d" key n)

let next t =
  let key = draw_key t in
  let wants_write = Sim.Prng.float t.rng ~bound:1.0 < t.write_ratio in
  if wants_write && t.write_filter key then Write { key; value = value_for t key }
  else Read { key }

let ops t n =
  if n < 0 then invalid_arg "Keyspace.ops: negative count";
  Array.init n (fun _ -> next t)
