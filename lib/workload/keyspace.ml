type op =
  | Read of { key : int }
  | Write of { key : int; value : Core.Value.t }

let op_key = function Read { key } | Write { key; _ } -> key

let op_is_write = function Read _ -> false | Write _ -> true

type t = {
  keys : int;
  skew : float;
  write_ratio : float;
  write_filter : int -> bool;
  rng : Sim.Prng.t;
  (* YCSB zipfian constants, all pure functions of (keys, skew) *)
  zetan : float;
  eta : float;
  alpha : float;
  half_pow_theta : float;
  (* per-key write sequence numbers, so every write value is unique *)
  seqs : (int, int) Hashtbl.t;
}

(* zeta(n, theta) = sum_{i=1..n} 1/i^theta *)
let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let make ?(skew = 0.0) ?(write_ratio = 0.05) ?(write_filter = fun _ -> true)
    ~keys ~seed () =
  if keys < 1 then Error (Printf.sprintf "keyspace: keys = %d" keys)
  else if skew < 0.0 || skew >= 1.0 then
    Error (Printf.sprintf "keyspace: skew %g outside [0, 1)" skew)
  else if write_ratio < 0.0 || write_ratio > 1.0 then
    Error (Printf.sprintf "keyspace: write ratio %g outside [0, 1]" write_ratio)
  else begin
    let zetan, eta, alpha, half_pow_theta =
      if skew = 0.0 then (0.0, 0.0, 0.0, 0.0)
      else begin
        let n = float_of_int keys in
        let zetan = zeta keys skew in
        let zeta2 = zeta 2 skew in
        let eta =
          (1.0 -. Float.pow (2.0 /. n) (1.0 -. skew))
          /. (1.0 -. (zeta2 /. zetan))
        in
        (zetan, eta, 1.0 /. (1.0 -. skew), Float.pow 0.5 skew)
      end
    in
    Ok
      {
        keys;
        skew;
        write_ratio;
        write_filter;
        rng = Sim.Prng.create ~seed;
        zetan;
        eta;
        alpha;
        half_pow_theta;
        seqs = Hashtbl.create 64;
      }
  end

let make_exn ?skew ?write_ratio ?write_filter ~keys ~seed () =
  match make ?skew ?write_ratio ?write_filter ~keys ~seed () with
  | Ok t -> t
  | Error e -> invalid_arg e

let keys t = t.keys

let skew t = t.skew

let write_ratio t = t.write_ratio

(* One zipfian draw (Gray et al. via YCSB's ZipfianGenerator): key 0 is
   the most popular, popularity of rank r falls off as 1/(r+1)^skew. *)
let draw_key t =
  if t.skew = 0.0 then Sim.Prng.int t.rng ~bound:t.keys
  else begin
    let u = Sim.Prng.float t.rng ~bound:1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else begin
      let n = float_of_int t.keys in
      let k =
        int_of_float (n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      (* guard the floating-point edge where the power lands on 1.0 *)
      if k >= t.keys then t.keys - 1 else if k < 0 then 0 else k
    end
  end

let value_for t key =
  let n = match Hashtbl.find_opt t.seqs key with Some n -> n | None -> 0 in
  Hashtbl.replace t.seqs key (n + 1);
  Core.Value.v (Printf.sprintf "k%d.%d" key n)

let next t =
  let key = draw_key t in
  let wants_write = Sim.Prng.float t.rng ~bound:1.0 < t.write_ratio in
  if wants_write && t.write_filter key then Write { key; value = value_for t key }
  else Read { key }

let ops t n =
  if n < 0 then invalid_arg "Keyspace.ops: negative count";
  Array.init n (fun _ -> next t)
