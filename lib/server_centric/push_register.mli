(** The server-centric model of paper §6, executably.

    Here base objects are first-class {e servers}: they may send
    unsolicited messages, in particular {e push} every write they apply
    to every reader.  Readers accumulate pushed state and may answer a
    READ from it without contacting anyone ([zero_round = true]: a
    "0-round" read), falling back to a one-round poll with the
    [b + 1]-endorsement rule otherwise.

    What the experiments (E9) demonstrate with this module:

    - pushes {e do not} make reads safe "for free": a 0-round read
      returns stale values whenever the latest write's pushes are still
      in transit — asynchrony makes locally-cached state unverifiable,
      at {e any} number of servers ({!run} with [freeze_pushes_at]
      scripts the adversarial delay deterministically);
    - with the 0-round path disabled, the server-centric storage is
      exactly as constrained as the data-centric one: its 1-round polls
      are safe iff [s >= 2t + 2b + 1] — Proposition 1 migrates to the
      server-centric model just as §6 claims.

    This subsystem deliberately does not implement
    {!Core.Protocol_intf.S} (whose objects are reply-only); it owns a
    small runtime over the engine. *)

type read_mode =
  | Pushed  (** answered from pushed state, zero rounds *)
  | Polled  (** one-round poll *)

type outcome = {
  op : Core.Schedule.op;
  invoked_at : int;
  completed_at : int;
  mode : read_mode option;  (** [None] for writes *)
  result : Core.Value.t option;
}

type report = {
  history : string Histories.Op.t list;
  outcomes : outcome list;
  pushes_delivered : int;  (** update messages that reached readers *)
  zero_round_reads : int;
  polled_reads : int;
}

val run :
  ?zero_round:bool ->
  ?freeze_pushes_at:int ->
  ?unfreeze_pushes_at:int ->
  ?byz_forgers:int list ->
  ?crashes:(Sim.Proc_id.t * int) list ->
  ?max_events:int ->
  cfg:Quorum.Config.t ->
  seed:int ->
  delay:Sim.Delay.t ->
  Core.Schedule.t ->
  report
(** Simulate the schedule.  [zero_round] (default true) enables the
    pushed-state fast path.  [freeze_pushes_at]/[unfreeze_pushes_at]
    block and release every server→reader link at the given virtual
    times — the §6 adversary delaying pushes (polls use the same links,
    so freeze windows also delay poll replies; the staleness
    demonstration completes its read before polling).  [byz_forgers]
    are servers that push and reply forged high-timestamp values. *)
