open Core

type msg =
  | Write_req of { ts : int; v : Value.t }
  | Write_ack of { ts : int }
  | Update of { ts : int; v : Value.t }  (* server push to readers *)
  | Read_req of { rid : int }
  | Read_ack of { rid : int; ts : int; v : Value.t }

let msg_info = function
  | Write_req { ts; _ } -> Printf.sprintf "WRITE(ts=%d)" ts
  | Write_ack { ts } -> Printf.sprintf "WRITE_ACK(ts=%d)" ts
  | Update { ts; _ } -> Printf.sprintf "PUSH(ts=%d)" ts
  | Read_req { rid } -> Printf.sprintf "READ(rid=%d)" rid
  | Read_ack { rid; ts; _ } -> Printf.sprintf "READ_ACK(rid=%d,ts=%d)" rid ts

type read_mode = Pushed | Polled

type outcome = {
  op : Schedule.op;
  invoked_at : int;
  completed_at : int;
  mode : read_mode option;
  result : Value.t option;
}

type report = {
  history : string Histories.Op.t list;
  outcomes : outcome list;
  pushes_delivered : int;
  zero_round_reads : int;
  polled_reads : int;
}

let value_to_result = function
  | Value.Bottom -> Histories.Op.Bottom
  | Value.V s -> Histories.Op.Value s

(* Highest (ts, v) pair endorsed by at least [threshold] distinct servers
   in the per-server latest-knowledge map. *)
let best_endorsed ~threshold known =
  let counts = Hashtbl.create 8 in
  Ints.Map.iter
    (fun _ pair ->
      Hashtbl.replace counts pair
        (1 + Option.value (Hashtbl.find_opt counts pair) ~default:0))
    known;
  Hashtbl.fold
    (fun (ts, v) n best ->
      match best with
      | Some (bts, _) when bts >= ts -> best
      | _ -> if n >= threshold then Some (ts, v) else best)
    counts None

let run ?(zero_round = true) ?freeze_pushes_at ?unfreeze_pushes_at
    ?(byz_forgers = []) ?(crashes = []) ?(max_events = 1_000_000) ~cfg ~seed
    ~delay schedule =
  let eng = Sim.Engine.create ~msg_info ~seed ~delay () in
  let s = cfg.Quorum.Config.s in
  let b = cfg.Quorum.Config.b in
  let quorum = Quorum.Config.quorum cfg in
  let servers = Sim.Proc_id.objects ~s in
  let reader_indices = Schedule.reader_indices schedule in
  let readers = List.map (fun j -> Sim.Proc_id.Reader j) reader_indices in
  let recorder : string Histories.Recorder.t = Histories.Recorder.create () in
  let outcomes = ref [] in
  let pushes = ref 0 in
  let zero_round_reads = ref 0 in
  let polled_reads = ref 0 in

  (* --- servers: apply writes, ack, push to every reader ---------------- *)
  List.iter
    (fun id ->
      let i = Sim.Proc_id.obj_index id in
      let forger = List.mem i byz_forgers in
      let ts = ref 0 and v = ref Value.bottom in
      Sim.Engine.register eng id (fun env ->
          match env.Sim.Engine.msg with
          | Write_req { ts = ts'; v = v' } ->
              if ts' > !ts then begin
                ts := ts';
                v := v'
              end;
              Sim.Engine.send eng ~src:id ~dst:env.Sim.Engine.src
                (Write_ack { ts = ts' });
              (* the server-centric liberty: unsolicited pushes *)
              let push_ts, push_v =
                if forger then (ts' + 100, Value.v "forged") else (!ts, !v)
              in
              List.iter
                (fun r ->
                  Sim.Engine.send eng ~src:id ~dst:r
                    (Update { ts = push_ts; v = push_v }))
                readers
          | Read_req { rid } ->
              let ts, v =
                if forger then (!ts + 100, Value.v "forged") else (!ts, !v)
              in
              Sim.Engine.send eng ~src:id ~dst:env.Sim.Engine.src
                (Read_ack { rid; ts; v })
          | Write_ack _ | Update _ | Read_ack _ -> ()))
    servers;

  (* --- writer ----------------------------------------------------------- *)
  let wts = ref 0 in
  let wqueue = Queue.create () in
  let winflight = ref None in
  let wacks = ref Ints.Set.empty in
  let writer_try_start () =
    if Option.is_none !winflight && not (Queue.is_empty wqueue) then begin
      let v = Queue.pop wqueue in
      incr wts;
      let now = Sim.Engine.now eng in
      let payload = Option.value (Value.payload v) ~default:"" in
      let handle = Histories.Recorder.invoke_write recorder ~time:now payload in
      winflight := Some (v, handle, now, !wts);
      wacks := Ints.Set.empty;
      List.iter
        (fun dst ->
          Sim.Engine.send eng ~src:Sim.Proc_id.Writer ~dst
            (Write_req { ts = !wts; v }))
        servers
    end
  in
  Sim.Engine.register eng Sim.Proc_id.Writer (fun env ->
      match (env.Sim.Engine.msg, env.Sim.Engine.src, !winflight) with
      | Write_ack { ts }, Sim.Proc_id.Obj i, Some (v, handle, invoked_at, wts')
        when ts = wts' ->
          wacks := Ints.Set.add i !wacks;
          if Ints.Set.cardinal !wacks >= quorum then begin
            let now = Sim.Engine.now eng in
            Histories.Recorder.respond_write recorder handle ~time:now;
            outcomes :=
              {
                op = Schedule.Write v;
                invoked_at;
                completed_at = now;
                mode = None;
                result = None;
              }
              :: !outcomes;
            winflight := None;
            writer_try_start ()
          end
      | _ -> ());

  (* --- readers ----------------------------------------------------------- *)
  let reader_starters = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let id = Sim.Proc_id.Reader j in
      let known = ref Ints.Map.empty in  (* server -> latest (ts, v) *)
      let queue = ref 0 in
      let rid = ref 0 in
      let inflight = ref None in  (* handle, invoked_at, poll replies *)
      let learn i (ts, v) =
        match Ints.Map.find_opt i !known with
        | Some (ts', _) when ts' >= ts -> ()
        | _ -> known := Ints.Map.add i (ts, v) !known
      in
      let finish handle invoked_at mode value =
        let now = Sim.Engine.now eng in
        Histories.Recorder.respond_read recorder handle ~time:now
          (value_to_result value);
        (match mode with
        | Pushed -> incr zero_round_reads
        | Polled -> incr polled_reads);
        outcomes :=
          {
            op = Schedule.Read { reader = j };
            invoked_at;
            completed_at = now;
            mode = Some mode;
            result = Some value;
          }
          :: !outcomes;
        inflight := None
      in
      let rec try_start () =
        if Option.is_none !inflight && !queue > 0 then begin
          decr queue;
          let now = Sim.Engine.now eng in
          let handle =
            Histories.Recorder.invoke_read recorder ~time:now ~reader:j
          in
          match
            if zero_round then best_endorsed ~threshold:(b + 1) !known
            else None
          with
          | Some (_, v) ->
              (* answered from pushed state: zero communication *)
              finish handle now Pushed v;
              try_start ()
          | None ->
              incr rid;
              inflight := Some (handle, now, ref Ints.Set.empty);
              List.iter
                (fun dst ->
                  Sim.Engine.send eng ~src:id ~dst (Read_req { rid = !rid }))
                servers
        end
      in
      Hashtbl.replace reader_starters j (fun () ->
          incr queue;
          try_start ());
      Sim.Engine.register eng id (fun env ->
          match (env.Sim.Engine.msg, env.Sim.Engine.src) with
          | Update { ts; v }, Sim.Proc_id.Obj i ->
              incr pushes;
              learn i (ts, v)
          | Read_ack { rid = rid'; ts; v }, Sim.Proc_id.Obj i -> (
              learn i (ts, v);
              match !inflight with
              | Some (handle, invoked_at, replies) when rid' = !rid ->
                  replies := Ints.Set.add i !replies;
                  if Ints.Set.cardinal !replies >= quorum then begin
                    let value =
                      match best_endorsed ~threshold:(b + 1) !known with
                      | Some (_, v) -> v
                      | None -> Value.bottom
                    in
                    finish handle invoked_at Polled value;
                    try_start ()
                  end
              | _ -> ())
          | _ -> ()))
    reader_indices;

  (* --- faults and the push-delaying adversary --------------------------- *)
  List.iter
    (fun (proc, time) ->
      Sim.Engine.at eng ~time (fun () -> Sim.Engine.crash eng proc))
    crashes;
  let block_all () =
    List.iter
      (fun srv ->
        List.iter
          (fun r -> Sim.Engine.block_link eng ~src:srv ~dst:r)
          readers)
      servers
  in
  let unblock_all () =
    List.iter
      (fun srv ->
        List.iter
          (fun r -> Sim.Engine.unblock_link eng ~src:srv ~dst:r)
          readers)
      servers
  in
  Option.iter (fun time -> Sim.Engine.at eng ~time block_all) freeze_pushes_at;
  Option.iter (fun time -> Sim.Engine.at eng ~time unblock_all) unfreeze_pushes_at;

  (* --- schedule ----------------------------------------------------------- *)
  List.iter
    (fun (time, op) ->
      Sim.Engine.at eng ~time (fun () ->
          match op with
          | Schedule.Write v ->
              Queue.push v wqueue;
              writer_try_start ()
          | Schedule.Read { reader } -> (Hashtbl.find reader_starters reader) ()))
    schedule;

  ignore (Sim.Engine.run ~max_events eng);
  {
    history = Histories.Recorder.ops recorder;
    outcomes = List.rev !outcomes;
    pushes_delivered = !pushes;
    zero_round_reads = !zero_round_reads;
    polled_reads = !polled_reads;
  }
