type op = Read | Write | Other

type t = { op : op; round : int; request : bool }

let read ~round ~request = { op = Read; round; request }

let write ~round ~request = { op = Write; round; request }

let other = { op = Other; round = 0; request = false }

let op_to_string = function Read -> "read" | Write -> "write" | Other -> "other"

let to_string c =
  match c.op with
  | Other -> "other"
  | Read | Write ->
      Printf.sprintf "%s.r%d.%s" (op_to_string c.op) c.round
        (if c.request then "req" else "ack")

let pp ppf c = Format.pp_print_string ppf (to_string c)

let equal a b = a.op = b.op && a.round = b.round && a.request = b.request
