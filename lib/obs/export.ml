module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* Deterministic float rendering: shortest decimal round-trip would be
     ideal, but a fixed %g with enough digits is stable and readable;
     non-finite floats (histogram sentinels) encode as strings. *)
  let float_repr x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.9g" x

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
        if Float.is_finite x then Buffer.add_string buf (float_repr x)
        else begin
          Buffer.add_char buf '"';
          Buffer.add_string buf (if x > 0.0 then "inf" else if x < 0.0 then "-inf" else "nan");
          Buffer.add_char buf '"'
        end
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  let of_option f = function None -> Null | Some x -> f x

  (* Minimal recursive-descent parser covering exactly what [write]
     emits (plus arbitrary whitespace): the inverse needed to merge
     per-process metric exports without an external dependency. *)
  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "at %d: %s" !pos msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'; advance ()
                 | '\\' -> Buffer.add_char buf '\\'; advance ()
                 | '/' -> Buffer.add_char buf '/'; advance ()
                 | 'n' -> Buffer.add_char buf '\n'; advance ()
                 | 'r' -> Buffer.add_char buf '\r'; advance ()
                 | 't' -> Buffer.add_char buf '\t'; advance ()
                 | 'b' -> Buffer.add_char buf '\b'; advance ()
                 | 'f' -> Buffer.add_char buf '\012'; advance ()
                 | 'u' ->
                     advance ();
                     if !pos + 4 > n then fail "truncated \\u escape";
                     let code =
                       try int_of_string ("0x" ^ String.sub s !pos 4)
                       with Failure _ -> fail "bad \\u escape"
                     in
                     pos := !pos + 4;
                     (* The writer only emits \u for control chars; be
                        lenient and UTF-8 encode anything else. *)
                     if code < 0x80 then Buffer.add_char buf (Char.chr code)
                     else if code < 0x800 then begin
                       Buffer.add_char buf
                         (Char.chr (0xC0 lor (code lsr 6)));
                       Buffer.add_char buf
                         (Char.chr (0x80 lor (code land 0x3F)))
                     end
                     else begin
                       Buffer.add_char buf
                         (Char.chr (0xE0 lor (code lsr 12)));
                       Buffer.add_char buf
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                       Buffer.add_char buf
                         (Char.chr (0x80 lor (code land 0x3F)))
                     end
                 | c -> fail (Printf.sprintf "bad escape \\%C" c));
              go ()
          | c ->
              Buffer.add_char buf c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
            advance ();
            go ()
        | Some ('.' | 'e' | 'E') ->
            is_float := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      let tok = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            (* out-of-range integer literal: keep it as a float *)
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let items = ref [ parse_value () ] in
            let rec more () =
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items := parse_value () :: !items;
                  more ()
              | Some ']' -> advance ()
              | _ -> fail "expected ',' or ']'"
            in
            more ();
            List (List.rev !items)
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let fields = ref [ field () ] in
            let rec more () =
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields := field () :: !fields;
                  more ()
              | Some '}' -> advance ()
              | _ -> fail "expected ',' or '}'"
            in
            more ();
            Obj (List.rev !fields)
          end
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "at %d: trailing input" !pos)
        else Ok v
    | exception Parse msg -> Error msg

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

let span_json (s : Span.t) =
  Json.Obj
    [
      ("id", Json.Int s.Span.id);
      ("kind", Json.Str (Span.kind_to_string s.Span.kind));
      ("proc", Json.Str s.Span.proc);
      ( "reader",
        match s.Span.kind with
        | Span.Read { reader } -> Json.Int reader
        | Span.Write -> Json.Null );
      ("start", Json.Int s.Span.started_at);
      ("end", Json.of_option (fun t -> Json.Int t) s.Span.completed_at);
      ("rounds", Json.Int s.Span.rounds);
      ( "reported_rounds",
        Json.of_option (fun r -> Json.Int r) s.Span.reported_rounds );
      ( "transitions",
        Json.List
          (List.map
             (fun (round, at) -> Json.List [ Json.Int round; Json.Int at ])
             (Span.transitions s)) );
      ( "contacted",
        Json.List (List.map (fun i -> Json.Int i) (Span.contacted s)) );
      ("replies", Json.Int s.Span.replies);
      ("result", Json.of_option (fun v -> Json.Str v) s.Span.result);
      ("trace_first", Json.Int s.Span.trace_first);
      ("trace_len", Json.Int s.Span.trace_len);
    ]

let span_line s = Json.to_string (span_json s)

let spans_jsonl spans =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (span_line s);
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Metrics.Histogram.count h));
      ("sum", Json.Float (Metrics.Histogram.sum h));
      ( "min",
        if Metrics.Histogram.count h = 0 then Json.Null
        else Json.Float (Metrics.Histogram.min_exn h) );
      ( "max",
        if Metrics.Histogram.count h = 0 then Json.Null
        else Json.Float (Metrics.Histogram.max_exn h) );
      ( "buckets",
        Json.List
          (List.map
             (fun (_, hi, c) -> Json.List [ Json.Float hi; Json.Int c ])
             (Metrics.Histogram.buckets h)) );
    ]

let metrics_jsonl ?(labels = []) m =
  let buf = Buffer.create 4096 in
  let base = List.map (fun (k, v) -> (k, Json.Str v)) labels in
  let line fields =
    Buffer.add_string buf (Json.to_string (Json.Obj (base @ fields)));
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (name, v) ->
      line
        [
          ("metric", Json.Str name); ("type", Json.Str "counter");
          ("value", Json.Int v);
        ])
    (Metrics.counters m);
  List.iter
    (fun (name, v) ->
      line
        [
          ("metric", Json.Str name); ("type", Json.Str "gauge");
          ("value", Json.Float v);
        ])
    (Metrics.gauges m);
  List.iter
    (fun (name, h) ->
      line
        [
          ("metric", Json.Str name); ("type", Json.Str "histogram");
          ("data", histogram_json h);
        ])
    (Metrics.histograms m);
  Buffer.contents buf

(* Inverse of {!metrics_jsonl}: fold every metric line into a registry.
   This is what lets a multi-process load driver merge per-process
   op.*/wire.* registries — counters add, gauges keep the max, and
   histograms rebuild from their buckets and merge. *)
let metrics_of_jsonl ?(into = Metrics.create ()) text =
  let float_field = function
    | Json.Int i -> Some (float_of_int i)
    | Json.Float f -> Some f
    | Json.Str "inf" -> Some infinity
    | Json.Str "-inf" -> Some neg_infinity
    | Json.Str "nan" -> Some nan
    | _ -> None
  in
  let histogram_of_data data =
    match Json.member "buckets" data with
    | Some (Json.List entries) -> (
        let parsed =
          List.map
            (function
              | Json.List [ hi; Json.Int c ] -> (
                  match float_field hi with
                  | Some hi -> Some (hi, c)
                  | None -> None)
              | _ -> None)
            entries
        in
        if List.exists Option.is_none parsed then Error "bad bucket entry"
        else
          let parsed = List.map Option.get parsed in
          (* Finite upper bounds are the histogram's bounds; the final
             "inf" bucket is the overflow slot. *)
          let bounds =
            parsed
            |> List.filter (fun (hi, _) -> Float.is_finite hi)
            |> List.map fst |> Array.of_list
          in
          let counts = Array.of_list (List.map snd parsed) in
          if Array.length counts <> Array.length bounds + 1 then
            Error "buckets must end with one overflow bucket"
          else
            let get name d =
              match Json.member name data with
              | Some v -> Option.value (float_field v) ~default:d
              | None -> d
            in
            match
              Metrics.Histogram.restore ~bounds ~counts ~sum:(get "sum" 0.0)
                ~minv:(get "min" infinity)
                ~maxv:(get "max" neg_infinity)
            with
            | h -> Ok h
            | exception Invalid_argument msg -> Error msg)
    | _ -> Error "histogram data without buckets"
  in
  let line_error lineno msg =
    Error (Printf.sprintf "line %d: %s" lineno msg)
  in
  let fold_line lineno line =
    match Json.of_string line with
    | Error msg -> line_error lineno msg
    | Ok json -> (
        match (Json.member "metric" json, Json.member "type" json) with
        | Some (Json.Str name), Some (Json.Str kind) -> (
            match (kind, Json.member "value" json, Json.member "data" json) with
            | "counter", Some (Json.Int v), _ ->
                Metrics.add into name v;
                Ok ()
            | "gauge", Some v, _ -> (
                match float_field v with
                | Some v ->
                    Metrics.max_gauge into name v;
                    Ok ()
                | None -> line_error lineno "gauge without numeric value")
            | "histogram", _, Some data -> (
                match histogram_of_data data with
                | Ok h ->
                    Metrics.add_histogram into name h;
                    Ok ()
                | Error msg -> line_error lineno msg)
            | _ -> line_error lineno ("malformed " ^ kind ^ " line"))
        | _ -> line_error lineno "line without metric/type")
  in
  let rec go lineno = function
    | [] -> Ok into
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) rest
        else (
          match fold_line lineno line with
          | Ok () -> go (lineno + 1) rest
          | Error _ as e -> e)
  in
  go 1 (String.split_on_char '\n' text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file ~path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
