module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* Deterministic float rendering: shortest decimal round-trip would be
     ideal, but a fixed %g with enough digits is stable and readable;
     non-finite floats (histogram sentinels) encode as strings. *)
  let float_repr x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.9g" x

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
        if Float.is_finite x then Buffer.add_string buf (float_repr x)
        else begin
          Buffer.add_char buf '"';
          Buffer.add_string buf (if x > 0.0 then "inf" else if x < 0.0 then "-inf" else "nan");
          Buffer.add_char buf '"'
        end
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  let of_option f = function None -> Null | Some x -> f x
end

let span_json (s : Span.t) =
  Json.Obj
    [
      ("id", Json.Int s.Span.id);
      ("kind", Json.Str (Span.kind_to_string s.Span.kind));
      ("proc", Json.Str s.Span.proc);
      ( "reader",
        match s.Span.kind with
        | Span.Read { reader } -> Json.Int reader
        | Span.Write -> Json.Null );
      ("start", Json.Int s.Span.started_at);
      ("end", Json.of_option (fun t -> Json.Int t) s.Span.completed_at);
      ("rounds", Json.Int s.Span.rounds);
      ( "reported_rounds",
        Json.of_option (fun r -> Json.Int r) s.Span.reported_rounds );
      ( "transitions",
        Json.List
          (List.map
             (fun (round, at) -> Json.List [ Json.Int round; Json.Int at ])
             (Span.transitions s)) );
      ( "contacted",
        Json.List (List.map (fun i -> Json.Int i) (Span.contacted s)) );
      ("replies", Json.Int s.Span.replies);
      ("result", Json.of_option (fun v -> Json.Str v) s.Span.result);
      ("trace_first", Json.Int s.Span.trace_first);
      ("trace_len", Json.Int s.Span.trace_len);
    ]

let span_line s = Json.to_string (span_json s)

let spans_jsonl spans =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (span_line s);
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Metrics.Histogram.count h));
      ("sum", Json.Float (Metrics.Histogram.sum h));
      ( "min",
        if Metrics.Histogram.count h = 0 then Json.Null
        else Json.Float (Metrics.Histogram.min_exn h) );
      ( "max",
        if Metrics.Histogram.count h = 0 then Json.Null
        else Json.Float (Metrics.Histogram.max_exn h) );
      ( "buckets",
        Json.List
          (List.map
             (fun (_, hi, c) -> Json.List [ Json.Float hi; Json.Int c ])
             (Metrics.Histogram.buckets h)) );
    ]

let metrics_jsonl ?(labels = []) m =
  let buf = Buffer.create 4096 in
  let base = List.map (fun (k, v) -> (k, Json.Str v)) labels in
  let line fields =
    Buffer.add_string buf (Json.to_string (Json.Obj (base @ fields)));
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (name, v) ->
      line
        [
          ("metric", Json.Str name); ("type", Json.Str "counter");
          ("value", Json.Int v);
        ])
    (Metrics.counters m);
  List.iter
    (fun (name, v) ->
      line
        [
          ("metric", Json.Str name); ("type", Json.Str "gauge");
          ("value", Json.Float v);
        ])
    (Metrics.gauges m);
  List.iter
    (fun (name, h) ->
      line
        [
          ("metric", Json.Str name); ("type", Json.Str "histogram");
          ("data", histogram_json h);
        ])
    (Metrics.histograms m);
  Buffer.contents buf

let write_file ~path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
