type kind = Read of { reader : int } | Write

let kind_to_string = function Read _ -> "read" | Write -> "write"

type t = {
  id : int;
  kind : kind;
  proc : string;
  started_at : int;
  trace_first : int;
  mutable rounds : int;
  mutable rev_transitions : (int * int) list;
  mutable rev_contacted : int list;  (* distinct object indices, newest first *)
  mutable replies : int;
  mutable completed_at : int option;
  mutable reported_rounds : int option;
  mutable result : string option;
  mutable trace_len : int;
}

let completed s = Option.is_some s.completed_at

let transitions s = List.rev s.rev_transitions

let contacted s = List.sort_uniq Int.compare s.rev_contacted

type collector = { mutable next_id : int; mutable rev_spans : t list }

let collector () = { next_id = 0; rev_spans = [] }

let start c kind ~proc ~now ~trace_pos =
  let s =
    {
      id = c.next_id;
      kind;
      proc;
      started_at = now;
      trace_first = trace_pos;
      rounds = 1;
      rev_transitions = [];
      rev_contacted = [];
      replies = 0;
      completed_at = None;
      reported_rounds = None;
      result = None;
      trace_len = 0;
    }
  in
  c.next_id <- c.next_id + 1;
  c.rev_spans <- s :: c.rev_spans;
  s

let transition s ~now =
  s.rounds <- s.rounds + 1;
  s.rev_transitions <- (s.rounds, now) :: s.rev_transitions

let contact s ~obj =
  s.replies <- s.replies + 1;
  if not (List.mem obj s.rev_contacted) then
    s.rev_contacted <- obj :: s.rev_contacted

let finish s ~now ~rounds ?result ~trace_pos () =
  s.completed_at <- Some now;
  s.reported_rounds <- Some rounds;
  s.result <- result;
  s.trace_len <- trace_pos - s.trace_first

let spans c = List.rev c.rev_spans

let completed_spans c = List.filter completed (spans c)

let pp ppf s =
  Format.fprintf ppf "#%d %s %s [%d, %s] rounds=%d contacted={%s}" s.id
    (kind_to_string s.kind) s.proc s.started_at
    (match s.completed_at with Some t -> string_of_int t | None -> "open")
    s.rounds
    (String.concat "," (List.map string_of_int (contacted s)))
