(** Protocol-independent classification of wire messages.

    Every {!Core.Protocol_intf.S} implementation maps its concrete
    message type onto this small vocabulary ([msg_class]), which is what
    lets the engine and the metrics layer count messages per operation
    kind and per round without knowing any protocol's wire format. *)

type op = Read | Write | Other

type t = {
  op : op;
  round : int;  (** 1-based protocol round; 0 for [Other] *)
  request : bool;  (** client-to-object direction *)
}

val read : round:int -> request:bool -> t

val write : round:int -> request:bool -> t

val other : t

val op_to_string : op -> string

val to_string : t -> string
(** Stable metric-label rendering, e.g. ["read.r1.req"], ["write.r2.ack"],
    ["other"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
