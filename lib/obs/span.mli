(** Span-based operation tracing.

    Every READ/WRITE a scenario drives opens a span at invocation and
    closes it at completion.  A span carries the issuing process, the
    virtual start/end times, each round transition (the instant the
    client broadcast the next round's request), the set of base objects
    the client heard from, and the index range of the raw {!Sim.Trace}
    entries recorded while it was open — the low-level messages the span
    subsumes.

    [rounds] counts rounds {e initiated} (1 + transitions): the paper's
    "every READ and WRITE completes in exactly 2 rounds" is a statement
    about initiated rounds, and the conformance suite asserts it on this
    field.  [reported_rounds] is the round count the protocol's own
    state machine reported at completion, which can be lower when a read
    decides on round-1 evidence while its round-2 message is in flight. *)

type kind = Read of { reader : int } | Write

val kind_to_string : kind -> string

type t = {
  id : int;  (** dense, in invocation order *)
  kind : kind;
  proc : string;  (** issuing process, e.g. ["w"], ["r2"] *)
  started_at : int;
  trace_first : int;  (** raw-trace index at invocation *)
  mutable rounds : int;
  mutable rev_transitions : (int * int) list;
  mutable rev_contacted : int list;
  mutable replies : int;  (** object messages received while open *)
  mutable completed_at : int option;
  mutable reported_rounds : int option;
  mutable result : string option;  (** rendered read result *)
  mutable trace_len : int;  (** raw-trace entries recorded while open *)
}

val completed : t -> bool

val transitions : t -> (int * int) list
(** [(round, at)] in chronological order; empty for 1-round operations. *)

val contacted : t -> int list
(** Distinct object indices heard from, sorted. *)

val pp : Format.formatter -> t -> unit

(** {2 Collector} *)

type collector

val collector : unit -> collector

val start :
  collector -> kind -> proc:string -> now:int -> trace_pos:int -> t

val transition : t -> now:int -> unit
(** The client just broadcast its next round. *)

val contact : t -> obj:int -> unit
(** The client received a message from base object [obj]. *)

val finish :
  t -> now:int -> rounds:int -> ?result:string -> trace_pos:int -> unit -> unit

val spans : collector -> t list
(** Every span started, in invocation order (open ones included). *)

val completed_spans : collector -> t list
