(** Deterministic JSONL export for spans and metrics.

    The encoders are hand-rolled so the byte stream is a pure function
    of the data: field order is fixed, map iteration is sorted, floats
    render through one fixed formatter, and nothing (timestamps, host
    names, hash order) leaks in from the environment.  That determinism
    is load-bearing: the golden-trace tests compare exports byte for
    byte across runs and against checked-in files. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val of_option : ('a -> t) -> 'a option -> t
end

val span_json : Span.t -> Json.t

val span_line : Span.t -> string
(** One JSONL line, no trailing newline. *)

val spans_jsonl : Span.t list -> string
(** Newline-terminated line per span, in the given order. *)

val histogram_json : Metrics.Histogram.t -> Json.t

val metrics_jsonl : ?labels:(string * string) list -> Metrics.t -> string
(** One line per metric, counters then gauges then histograms, each
    group sorted by name; [labels] are prepended to every line. *)

val write_file : path:string -> string -> unit
