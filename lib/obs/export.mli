(** Deterministic JSONL export for spans and metrics.

    The encoders are hand-rolled so the byte stream is a pure function
    of the data: field order is fixed, map iteration is sorted, floats
    render through one fixed formatter, and nothing (timestamps, host
    names, hash order) leaks in from the environment.  That determinism
    is load-bearing: the golden-trace tests compare exports byte for
    byte across runs and against checked-in files. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val of_string : string -> (t, string) result
  (** Parse one JSON value (the subset {!to_string} emits, with
      arbitrary whitespace).  Integer-looking numbers come back as
      [Int], everything else as [Float]. *)

  val member : string -> t -> t option
  (** Field lookup; [None] on non-objects and absent keys. *)

  val of_option : ('a -> t) -> 'a option -> t
end

val span_json : Span.t -> Json.t

val span_line : Span.t -> string
(** One JSONL line, no trailing newline. *)

val spans_jsonl : Span.t list -> string
(** Newline-terminated line per span, in the given order. *)

val histogram_json : Metrics.Histogram.t -> Json.t

val metrics_jsonl : ?labels:(string * string) list -> Metrics.t -> string
(** One line per metric, counters then gauges then histograms, each
    group sorted by name; [labels] are prepended to every line. *)

val metrics_of_jsonl :
  ?into:Metrics.t -> string -> (Metrics.t, string) result
(** Inverse of {!metrics_jsonl}: fold every line into [into] (a fresh
    registry by default) — counters add, gauges keep the max,
    histograms rebuild from their buckets and merge.  Labels and
    unknown fields are ignored; blank lines are skipped.  Feeding
    several exports into one [into] registry is exactly
    {!Metrics.merge_into} across processes.  Errors name the first
    offending line. *)

val read_file : string -> string
(** The whole file as a string (binary mode). *)

val write_file : path:string -> string -> unit
