module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing inclusive upper bounds *)
    counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
    mutable total : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create ~bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Histogram.create: no bounds";
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Histogram.create: bounds not strictly increasing"
    done;
    {
      bounds = Array.copy bounds;
      counts = Array.make (n + 1) 0;
      total = 0;
      sum = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let bounds t = Array.copy t.bounds

  (* First bucket whose upper bound is >= x; the extra slot is the
     overflow bucket (x above every bound). *)
  let bucket_index t x =
    let n = Array.length t.bounds in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if x <= t.bounds.(mid) then search lo mid else search (mid + 1) hi
    in
    search 0 n

  let observe t x =
    let i = bucket_index t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x;
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x

  let observe_int t x = observe t (float_of_int x)

  let count t = t.total

  let sum t = t.sum

  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

  let min_exn t =
    if t.total = 0 then invalid_arg "Histogram.min_exn: empty";
    t.minv

  let max_exn t =
    if t.total = 0 then invalid_arg "Histogram.max_exn: empty";
    t.maxv

  let counts t = Array.copy t.counts

  let buckets t =
    let n = Array.length t.bounds in
    List.init (n + 1) (fun i ->
        let lo = if i = 0 then neg_infinity else t.bounds.(i - 1) in
        let hi = if i = n then infinity else t.bounds.(i) in
        (lo, hi, t.counts.(i)))

  let compatible a b =
    Array.length a.bounds = Array.length b.bounds
    && Array.for_all2 (fun x y -> Float.equal x y) a.bounds b.bounds

  let merge a b =
    if not (compatible a b) then invalid_arg "Histogram.merge: bounds differ";
    let t = create ~bounds:a.bounds in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.total <- a.total + b.total;
    t.sum <- a.sum +. b.sum;
    t.minv <- Float.min a.minv b.minv;
    t.maxv <- Float.max a.maxv b.maxv;
    t

  let equal a b =
    compatible a b
    && a.total = b.total
    && Array.for_all2 Int.equal a.counts b.counts

  (* Rebuild a histogram from exported state (the JSONL round-trip for
     cross-process merging).  The total is recomputed from the bucket
     counts, so a tampered count/total mismatch cannot arise. *)
  let restore ~bounds ~counts ~sum ~minv ~maxv =
    let t = create ~bounds in
    if Array.length counts <> Array.length t.counts then
      invalid_arg "Histogram.restore: counts length mismatch";
    let total = ref 0 in
    Array.iteri
      (fun i c ->
        if c < 0 then invalid_arg "Histogram.restore: negative count";
        t.counts.(i) <- c;
        total := !total + c)
      counts;
    t.total <- !total;
    if !total > 0 then begin
      t.sum <- sum;
      t.minv <- minv;
      t.maxv <- maxv
    end;
    t

  (* Nearest-rank quantile at bucket resolution: the upper bound of the
     bucket holding the rank-th smallest observation (the observed max
     for the overflow bucket, whose upper bound is infinite). *)
  let quantile t p =
    if t.total = 0 then invalid_arg "Histogram.quantile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Histogram.quantile: p not in [0,100]";
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.total)))
    in
    let n = Array.length t.bounds in
    let rec walk i cum =
      let cum = cum + t.counts.(i) in
      if cum >= rank || i = n then if i = n then t.maxv else t.bounds.(i)
      else walk (i + 1) cum
    in
    walk 0 0

  let pp ppf t =
    if t.total = 0 then Format.fprintf ppf "n=0"
    else begin
      let biggest = Array.fold_left Stdlib.max 1 t.counts in
      List.iter
        (fun (lo, hi, c) ->
          if c > 0 || (Float.is_finite lo && Float.is_finite hi) then
            Format.fprintf ppf "(%8.1f, %8.1f] %6d %s@." lo hi c
              (String.make (c * 40 / biggest) '#'))
        (buckets t)
    end
end

(* Canonical bucket layouts, shared so that histograms recorded by
   independent runs (campaign cells, engine instances) stay mergeable. *)
let round_bounds = [| 1.0; 2.0; 3.0; 4.0; 5.0; 8.0 |]

let depth_bounds =
  [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 1024.0; 4096.0 |]

let count_bounds =
  [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 512.0; 2048.0 |]

let latency_bounds =
  [| 5.0; 10.0; 20.0; 40.0; 80.0; 160.0; 320.0; 640.0; 1280.0; 5120.0 |]

let wallclock_bounds =
  [| 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1_000.0; 10_000.0; 100_000.0 |]

let batch_bounds = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 |]

let bytes_bounds =
  [| 8.0; 16.0; 24.0; 32.0; 48.0; 64.0; 96.0; 128.0; 256.0; 1024.0; 4096.0; 65536.0 |]

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 16;
  }

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let incr t name = add t name 1

(* Interned counter handles: hot paths resolve the name once and then
   bump the shared ref directly, skipping the per-event hash lookup and
   any name construction. *)
type counter = int ref

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let counter_incr (r : counter) = Stdlib.incr r

let counter_add (r : counter) n = r := !r + n

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let max_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge_value t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.gauges name)

let histogram t name ~bounds =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create ~bounds in
      Hashtbl.replace t.histograms name h;
      h

let observe t name ~bounds x = Histogram.observe (histogram t name ~bounds) x

let observe_int t name ~bounds x = observe t name ~bounds (float_of_int x)

let find_histogram t name = Hashtbl.find_opt t.histograms name

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )

let gauges t = sorted_bindings t.gauges ( ! )

let histograms t = sorted_bindings t.histograms Fun.id

let add_histogram t name h =
  match Hashtbl.find_opt t.histograms name with
  | None ->
      (* fresh copy so the source stays independent *)
      Hashtbl.replace t.histograms name
        (Histogram.merge h (Histogram.create ~bounds:h.Histogram.bounds))
  | Some existing ->
      Hashtbl.replace t.histograms name (Histogram.merge existing h)

let merge_into ~dst src =
  List.iter (fun (name, v) -> add dst name v) (counters src);
  List.iter (fun (name, v) -> max_gauge dst name v) (gauges src);
  List.iter (fun (name, h) -> add_histogram dst name h) (histograms src)

let table t =
  let tbl =
    Stats.Table.create
      ~headers:[ "metric"; "kind"; "count"; "value"; "mean"; "p50"; "p99"; "max" ]
  in
  List.iter
    (fun (name, v) ->
      Stats.Table.add_row tbl
        [ name; "counter"; ""; string_of_int v; ""; ""; ""; "" ])
    (counters t);
  List.iter
    (fun (name, v) ->
      Stats.Table.add_row tbl
        [ name; "gauge"; ""; Printf.sprintf "%g" v; ""; ""; ""; "" ])
    (gauges t);
  List.iter
    (fun (name, h) ->
      let f fmt x = Printf.sprintf fmt x in
      if Histogram.count h = 0 then
        Stats.Table.add_row tbl [ name; "histogram"; "0"; ""; ""; ""; ""; "" ]
      else
        Stats.Table.add_row tbl
          [
            name; "histogram";
            string_of_int (Histogram.count h);
            f "%g" (Histogram.sum h);
            f "%.2f" (Histogram.mean h);
            f "%g" (Histogram.quantile h 50.0);
            f "%g" (Histogram.quantile h 99.0);
            f "%g" (Histogram.max_exn h);
          ])
    (histograms t);
  tbl
