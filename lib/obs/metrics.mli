(** Metrics registry: counters, gauges, and mergeable fixed-bucket
    histograms.

    The registry is the accumulation point for everything the
    observability layer measures — read/write round counts per protocol,
    messages per operation, event-queue depth, wall-clock per simulated
    event.  All structures are deterministic: iteration orders are
    sorted by metric name, and histograms use caller-fixed bucket
    bounds, so two registries fed the same observations render and
    export identically.  Histograms with identical bounds merge
    associatively and commutatively, which is what lets a chaos campaign
    aggregate per-run registries into one per-cell registry. *)

module Histogram : sig
  type t

  val create : bounds:float array -> t
  (** Fixed buckets with the given strictly-increasing inclusive upper
      bounds, plus an implicit overflow bucket.  @raise Invalid_argument
      on empty or non-increasing bounds. *)

  val bounds : t -> float array

  val observe : t -> float -> unit

  val observe_int : t -> int -> unit

  val count : t -> int

  val sum : t -> float

  val mean : t -> float
  (** 0. when empty. *)

  val min_exn : t -> float
  (** @raise Invalid_argument when empty. *)

  val max_exn : t -> float
  (** @raise Invalid_argument when empty. *)

  val counts : t -> int array
  (** Per-bucket counts, overflow last. *)

  val buckets : t -> (float * float * int) list
  (** [(lo, hi, count)] with half-open [(lo, hi]] semantics; the first
      [lo] is [neg_infinity] and the last [hi] is [infinity]. *)

  val compatible : t -> t -> bool
  (** Same bucket bounds — the precondition for {!merge}. *)

  val merge : t -> t -> t
  (** Sum of both histograms; associative and commutative over any set
      of histograms with equal bounds.  @raise Invalid_argument if the
      bounds differ. *)

  val equal : t -> t -> bool
  (** Same bounds and same per-bucket counts. *)

  val restore :
    bounds:float array ->
    counts:int array ->
    sum:float ->
    minv:float ->
    maxv:float ->
    t
  (** Rebuild a histogram from exported state ([counts] includes the
      trailing overflow bucket); the inverse of an export, used to merge
      registries across processes.  The total is recomputed from
      [counts]; [sum]/[minv]/[maxv] are ignored when the counts are all
      zero.  @raise Invalid_argument on bad bounds, a length mismatch
      or a negative count. *)

  val quantile : t -> float -> float
  (** Nearest-rank quantile at bucket resolution: the inclusive upper
      bound of the bucket containing the rank-th smallest observation
      (the observed maximum for the overflow bucket).  Agrees with
      {!Stats.Summary.percentile} up to one bucket width.
      @raise Invalid_argument when empty or [p] outside [0,100]. *)

  val pp : Format.formatter -> t -> unit
end

(** {2 Canonical bucket layouts}

    Shared bounds keep independently recorded histograms mergeable. *)

val round_bounds : float array
(** Per-operation protocol round counts (the paper's 1/2-round claims). *)

val depth_bounds : float array
(** Event-queue depth. *)

val count_bounds : float array
(** Small cardinalities: messages per operation, replies, words. *)

val latency_bounds : float array
(** Virtual-time operation latencies. *)

val wallclock_bounds : float array
(** Microseconds of host wall-clock per simulated event. *)

val batch_bounds : float array
(** Batching widths: frames coalesced into one socket write
    ([wire.batch_size]) and reads coalesced into one quorum round
    ([op.coalesce_width] — observed once per batch member, so the
    histogram weights by op; a median above its lowest bucket means
    most reads shared a round). *)

val bytes_bounds : float array
(** Encoded frame sizes in bytes ([wire.bytes_per_frame]), fine-grained
    at the small end where a key tag's +1–2 bytes must stay visible. *)

(** {2 Registry} *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val counter_value : t -> string -> int
(** 0 for a counter never touched. *)

(** {2 Interned counter handles}

    Hot paths (the engine's per-message accounting) resolve a counter
    by name once and then bump the handle, avoiding a hash lookup and
    any name construction per event. *)

type counter

val counter : t -> string -> counter
(** Get-or-create: the counter is registered (and will appear in
    {!counters} and exports, initially at 0) as soon as it is interned,
    so intern on first use if an untouched counter must stay absent. *)

val counter_incr : counter -> unit

val counter_add : counter -> int -> unit

val set_gauge : t -> string -> float -> unit

val max_gauge : t -> string -> float -> unit
(** Keep the maximum of all reported values. *)

val gauge_value : t -> string -> float option

val histogram : t -> string -> bounds:float array -> Histogram.t
(** Get-or-create; the bounds only apply on creation. *)

val observe : t -> string -> bounds:float array -> float -> unit

val observe_int : t -> string -> bounds:float array -> int -> unit

val find_histogram : t -> string -> Histogram.t option

val add_histogram : t -> string -> Histogram.t -> unit
(** Merge [h] into the registry's histogram of that name (a fresh copy
    when absent, so the argument stays independent).
    @raise Invalid_argument if an existing histogram's bounds differ. *)

val counters : t -> (string * int) list
(** Sorted by name, as are {!gauges} and {!histograms}. *)

val gauges : t -> (string * float) list

val histograms : t -> (string * Histogram.t) list

val merge_into : dst:t -> t -> unit
(** Fold [src] into [dst]: counters add, gauges keep the max, histograms
    merge.  [src] is left untouched. *)

val table : t -> Stats.Table.t
(** One row per metric, sorted by name. *)
