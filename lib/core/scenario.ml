module Make (P : Protocol_intf.S) = struct
  type fault_plan = {
    crashes : (Sim.Proc_id.t * int) list;
    byzantine : (int * P.msg Byz.factory) list;
  }

  let no_faults = { crashes = []; byzantine = [] }

  type chaos_event =
    | Chaos_crash of { proc : Sim.Proc_id.t; at : int }
    | Chaos_recover of { obj : int; at : int; wipe : bool }
    | Chaos_block of {
        src : Sim.Proc_id.t;
        dst : Sim.Proc_id.t;
        from_ : int;
        until : int;
      }
    | Chaos_isolate of { obj : int; from_ : int; until : int }
    | Chaos_duplicate of {
        src : Sim.Proc_id.t;
        dst : Sim.Proc_id.t;
        copies : int;
        from_ : int;
        until : int;
      }
    | Chaos_switch of { obj : int; at : int; factory : P.msg Byz.factory }

  type outcome = {
    op : Schedule.op;
    invoked_at : int;
    completed_at : int;
    rounds : int;
    result : Value.t option;
  }

  type report = {
    history : string Histories.Op.t list;
    outcomes : outcome list;
    trace : Sim.Trace.t option;
    spans : Obs.Span.t list;
    words_to_readers : int;
    messages_delivered : int;
    events_processed : int;
    quiescent : bool;
    final_time : int;
  }

  let value_to_result = function
    | Value.Bottom -> Histories.Op.Bottom
    | Value.V s -> Histories.Op.Value s

  let run ?(max_events = 1_000_000) ?(trace = false) ?(chaos = []) ?metrics
      ?clock ~cfg ~seed ~delay ~faults schedule =
    let tr = if trace then Some (Sim.Trace.create ()) else None in
    let eng =
      Sim.Engine.create ?trace:tr ~msg_info:P.msg_info ?metrics
        ~classify:P.msg_class ?clock ~seed ~delay ()
    in
    let object_ids = Sim.Proc_id.objects ~s:cfg.Quorum.Config.s in
    let recorder : string Histories.Recorder.t = Histories.Recorder.create () in
    let outcomes = ref [] in
    let words_to_readers = ref 0 in
    let collector = Obs.Span.collector () in
    let trace_pos () = match tr with Some tr -> Sim.Trace.length tr | None -> 0 in

    let broadcast ~src m =
      List.iter (fun dst -> Sim.Engine.send eng ~src ~dst m) object_ids
    in

    (* Base objects: honest automata or injected Byzantine behaviours.
       Handlers are built by (re-)installable closures so chaos events can
       restart an object (with wiped or persisted state) or swap in a
       Byzantine behaviour mid-run. *)
    let obj_states : (int, P.obj ref) Hashtbl.t = Hashtbl.create 8 in
    let install_honest ~wipe id =
      let i = Sim.Proc_id.obj_index id in
      let state =
        match Hashtbl.find_opt obj_states i with
        | Some r when not wipe -> r
        | Some _ | None ->
            let r = ref (P.obj_init ~cfg ~index:i) in
            Hashtbl.replace obj_states i r;
            r
      in
      Sim.Engine.register eng id (fun env ->
          let state', reply =
            P.obj_handle !state ~src:env.Sim.Engine.src env.Sim.Engine.msg
          in
          state := state';
          Option.iter
            (fun m -> Sim.Engine.send eng ~src:id ~dst:env.Sim.Engine.src m)
            reply)
    in
    let install_byz id factory =
      let i = Sim.Proc_id.obj_index id in
      let rng = Sim.Prng.split (Sim.Engine.rng eng) in
      let behaviour = factory ~cfg ~index:i ~rng in
      Sim.Engine.register eng id (fun env ->
          let sends =
            behaviour.Byz.handle ~src:env.Sim.Engine.src
              ~now:(Sim.Engine.now eng) env.Sim.Engine.msg
          in
          List.iter (fun (dst, m) -> Sim.Engine.send eng ~src:id ~dst m) sends)
    in
    List.iter
      (fun id ->
        let i = Sim.Proc_id.obj_index id in
        match List.assoc_opt i faults.byzantine with
        | Some factory -> install_byz id factory
        | None -> install_honest ~wipe:true id)
      object_ids;

    (* Writer driver: a closed loop around the pure writer machine. *)
    let writer_sm = ref (P.writer_init ~cfg) in
    let writer_queue = Queue.create () in
    let writer_inflight = ref None in
    let rec writer_try_start () =
      if Option.is_none !writer_inflight && not (Queue.is_empty writer_queue)
      then begin
        let v = Queue.pop writer_queue in
        match P.writer_start !writer_sm v with
        | Error e -> invalid_arg ("Scenario: writer_start: " ^ e)
        | Ok (sm, m) ->
            writer_sm := sm;
            let now = Sim.Engine.now eng in
            let payload = Option.value (Value.payload v) ~default:"" in
            let handle =
              Histories.Recorder.invoke_write recorder ~time:now payload
            in
            let span =
              Obs.Span.start collector Obs.Span.Write ~proc:"w" ~now
                ~trace_pos:(trace_pos ())
            in
            writer_inflight := Some (v, handle, now, span);
            broadcast ~src:Sim.Proc_id.Writer m
      end
    and writer_apply_events events =
      List.iter
        (function
          | Events.Broadcast m ->
              (* a broadcast while a write is open starts its next round *)
              Option.iter
                (fun (_, _, _, span) ->
                  Obs.Span.transition span ~now:(Sim.Engine.now eng))
                !writer_inflight;
              broadcast ~src:Sim.Proc_id.Writer m
          | Events.Write_done { rounds } -> (
              match !writer_inflight with
              | None -> ()
              | Some (v, handle, invoked_at, span) ->
                  let now = Sim.Engine.now eng in
                  Histories.Recorder.respond_write recorder handle ~time:now;
                  Obs.Span.finish span ~now ~rounds ~trace_pos:(trace_pos ()) ();
                  outcomes :=
                    {
                      op = Schedule.Write v;
                      invoked_at;
                      completed_at = now;
                      rounds;
                      result = None;
                    }
                    :: !outcomes;
                  writer_inflight := None;
                  writer_try_start ())
          | Events.Read_done _ -> ())
        events
    in
    Sim.Engine.register eng Sim.Proc_id.Writer (fun env ->
        match env.Sim.Engine.src with
        | Sim.Proc_id.Obj i ->
            Option.iter
              (fun (_, _, _, span) -> Obs.Span.contact span ~obj:i)
              !writer_inflight;
            let sm, events =
              P.writer_on_msg !writer_sm ~obj:i env.Sim.Engine.msg
            in
            writer_sm := sm;
            writer_apply_events events
        | Sim.Proc_id.Writer | Sim.Proc_id.Reader _ -> ());

    (* Reader drivers, one closed loop per reader index in the schedule. *)
    let reader_indices = Schedule.reader_indices schedule in
    let reader_starters = Hashtbl.create 8 in
    List.iter
      (fun j ->
        let id = Sim.Proc_id.Reader j in
        let sm = ref (P.reader_init ~cfg ~j) in
        let queue = ref 0 in
        let inflight = ref None in
        let rec try_start () =
          if Option.is_none !inflight && !queue > 0 then begin
            decr queue;
            match P.reader_start !sm with
            | Error e -> invalid_arg ("Scenario: reader_start: " ^ e)
            | Ok (sm', m) ->
                sm := sm';
                let now = Sim.Engine.now eng in
                let handle =
                  Histories.Recorder.invoke_read recorder ~time:now ~reader:j
                in
                let span =
                  Obs.Span.start collector
                    (Obs.Span.Read { reader = j })
                    ~proc:(Sim.Proc_id.to_string id) ~now
                    ~trace_pos:(trace_pos ())
                in
                inflight := Some (handle, now, span);
                broadcast ~src:id m
          end
        and apply_events events =
          List.iter
            (function
              | Events.Broadcast m ->
                  Option.iter
                    (fun (_, _, span) ->
                      Obs.Span.transition span ~now:(Sim.Engine.now eng))
                    !inflight;
                  broadcast ~src:id m
              | Events.Read_done { value; rounds } -> (
                  match !inflight with
                  | None -> ()
                  | Some (handle, invoked_at, span) ->
                      let now = Sim.Engine.now eng in
                      Histories.Recorder.respond_read recorder handle ~time:now
                        (value_to_result value);
                      Obs.Span.finish span ~now ~rounds
                        ~result:(Value.to_string value)
                        ~trace_pos:(trace_pos ()) ();
                      outcomes :=
                        {
                          op = Schedule.Read { reader = j };
                          invoked_at;
                          completed_at = now;
                          rounds;
                          result = Some value;
                        }
                        :: !outcomes;
                      inflight := None;
                      try_start ())
              | Events.Write_done _ -> ())
            events
        in
        Hashtbl.replace reader_starters j (fun () ->
            incr queue;
            try_start ());
        Sim.Engine.register eng id (fun env ->
            match env.Sim.Engine.src with
            | Sim.Proc_id.Obj i ->
                words_to_readers :=
                  !words_to_readers + P.msg_size_words env.Sim.Engine.msg;
                Option.iter
                  (fun (_, _, span) -> Obs.Span.contact span ~obj:i)
                  !inflight;
                let sm', events = P.reader_on_msg !sm ~obj:i env.Sim.Engine.msg in
                sm := sm';
                apply_events events
            | Sim.Proc_id.Writer | Sim.Proc_id.Reader _ -> ()))
      reader_indices;

    (* Fault plan. *)
    List.iter
      (fun (proc, time) ->
        Sim.Engine.at eng ~time (fun () -> Sim.Engine.crash eng proc))
      faults.crashes;

    (* Scripted chaos events. *)
    List.iter
      (function
        | Chaos_crash { proc; at } ->
            Sim.Engine.at eng ~time:at (fun () -> Sim.Engine.crash eng proc)
        | Chaos_recover { obj; at; wipe } ->
            let id = Sim.Proc_id.Obj obj in
            Sim.Engine.at eng ~time:at (fun () ->
                Sim.Engine.recover eng id;
                install_honest ~wipe id)
        | Chaos_block { src; dst; from_; until } ->
            Sim.Engine.at eng ~time:from_ (fun () ->
                Sim.Engine.block_link eng ~src ~dst);
            Sim.Engine.at eng ~time:until (fun () ->
                Sim.Engine.unblock_link eng ~src ~dst)
        | Chaos_isolate { obj; from_; until } ->
            let id = Sim.Proc_id.Obj obj in
            Sim.Engine.at eng ~time:from_ (fun () ->
                Sim.Engine.block_process eng id);
            Sim.Engine.at eng ~time:until (fun () ->
                Sim.Engine.unblock_process eng id)
        | Chaos_duplicate { src; dst; copies; from_; until } ->
            Sim.Engine.at eng ~time:from_ (fun () ->
                Sim.Engine.set_duplication eng ~src ~dst ~copies);
            Sim.Engine.at eng ~time:until (fun () ->
                Sim.Engine.clear_duplication eng ~src ~dst)
        | Chaos_switch { obj; at; factory } ->
            Sim.Engine.at eng ~time:at (fun () ->
                install_byz (Sim.Proc_id.Obj obj) factory))
      chaos;

    (* Operation schedule. *)
    List.iter
      (fun (time, op) ->
        Sim.Engine.at eng ~time (fun () ->
            match op with
            | Schedule.Write v ->
                Queue.push v writer_queue;
                writer_try_start ()
            | Schedule.Read { reader } -> (Hashtbl.find reader_starters reader) ()))
      schedule;

    let events_processed = Sim.Engine.run ~max_events eng in
    let spans = Obs.Span.spans collector in
    (* Per-operation metrics derived from the spans, so every consumer
       (CLI tables, campaign cells, bench) aggregates the same way. *)
    Option.iter
      (fun m ->
        Obs.Metrics.add m "reader.words" !words_to_readers;
        List.iter
          (fun (s : Obs.Span.t) ->
            let k = "op." ^ Obs.Span.kind_to_string s.Obs.Span.kind in
            match s.Obs.Span.completed_at with
            | None -> Obs.Metrics.incr m (k ^ ".open")
            | Some completed_at ->
                Obs.Metrics.incr m (k ^ ".completed");
                Obs.Metrics.observe_int m (k ^ ".rounds")
                  ~bounds:Obs.Metrics.round_bounds s.Obs.Span.rounds;
                Obs.Metrics.observe_int m (k ^ ".latency")
                  ~bounds:Obs.Metrics.latency_bounds
                  (completed_at - s.Obs.Span.started_at);
                Obs.Metrics.observe_int m (k ^ ".replies")
                  ~bounds:Obs.Metrics.count_bounds s.Obs.Span.replies;
                Obs.Metrics.observe_int m (k ^ ".contacted")
                  ~bounds:Obs.Metrics.count_bounds
                  (List.length (Obs.Span.contacted s)))
          spans)
      metrics;
    {
      history = Histories.Recorder.ops recorder;
      outcomes = List.rev !outcomes;
      trace = tr;
      spans;
      words_to_readers = !words_to_readers;
      messages_delivered = Sim.Engine.delivered_count eng;
      events_processed;
      quiescent = events_processed < max_events;
      final_time = Sim.Engine.now eng;
    }
end
