(** The regular storage of Figures 2, 5, 6 packaged as protocols.

    [Plain] is the unoptimized Figure 6 algorithm (objects ship full
    histories); [Optimized] is the S5.1 variant (readers cache the last
    returned timestamp, objects ship history suffixes). *)

module Make (_ : sig
  val name : string

  val cached : bool
end) : Protocol_intf.S with type msg = Messages.t

module Plain : Protocol_intf.S with type msg = Messages.t

module Optimized : Protocol_intf.S with type msg = Messages.t
