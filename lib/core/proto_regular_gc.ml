module Make (C : sig
  val readers : int
end) : Protocol_intf.S with type msg = Messages.t = struct
  let name = "regular-gc"

  type msg = Messages.t

  let msg_info = Messages.info

  let msg_size_words = Messages.size_words

  let msg_class = Messages.classify

  type obj = Regular_object_gc.t

  let obj_init ~cfg:_ ~index = Regular_object_gc.init ~index ~readers:C.readers

  let obj_handle = Regular_object_gc.handle

  type writer = Writer.t

  let writer_init ~cfg = Writer.init ~cfg

  let writer_start = Writer.start_write

  let writer_on_msg w ~obj msg =
    let w, event = Writer.on_message w ~obj msg in
    let events =
      match event with
      | Writer.Nothing -> []
      | Writer.Broadcast m -> [ Events.Broadcast m ]
      | Writer.Done { rounds } -> [ Events.Write_done { rounds } ]
    in
    (w, events)

  type reader = Regular_reader.t

  (* The one-round decision is admissible only at S >= 2t+2b+1
     (Proposition 1); below the bound the reader always runs both
     rounds, so a gated configuration can never report a 1-round read. *)
  let reader_init ~cfg ~j =
    Regular_reader.init
      ~fast:(Quorum.Config.fast_read_admissible cfg)
      ~cfg ~j ~cached:true ()

  let reader_start = Regular_reader.start_read

  let reader_on_reconnect = Regular_reader.on_reconnect

  let reader_on_msg r ~obj msg =
    let r, events = Regular_reader.on_message r ~obj msg in
    let events =
      List.map
        (function
          | Regular_reader.Broadcast m -> Events.Broadcast m
          | Regular_reader.Return { value; rounds } ->
              Events.Read_done { value; rounds })
        events
    in
    (r, events)
end
