type phase =
  | Idle
  | Pw_wait of { acks : Ints.Set.t; current : Tsr_matrix.t }
  | W_wait of { acks : Ints.Set.t }

type t = {
  cfg : Quorum.Config.t;
  ts : int;
  pw : Tsval.t;
  w : Wtuple.t;
  phase : phase;
}

type event = Nothing | Broadcast of Messages.t | Done of { rounds : int }

let init ~cfg = { cfg; ts = 0; pw = Tsval.init; w = Wtuple.init; phase = Idle }

let ts t = t.ts

let is_idle t = match t.phase with Idle -> true | Pw_wait _ | W_wait _ -> false

let quorum t = Quorum.Config.quorum t.cfg

let start_write t v =
  match t.phase with
  | Pw_wait _ | W_wait _ -> Error "write already in progress"
  | Idle ->
      if Value.is_bottom v then Error "bottom is not a valid input value"
      else
        (* Figure 2 lines 3-5. *)
        let ts = t.ts + 1 in
        let pw = Tsval.make ~ts ~v in
        let t =
          {
            t with
            ts;
            pw;
            phase = Pw_wait { acks = Ints.Set.empty; current = Tsr_matrix.empty };
          }
        in
        Ok (t, Messages.Pw { ts; pw; w = t.w })

let on_message t ~obj msg =
  match (t.phase, msg) with
  | Pw_wait { acks; current }, Messages.Pw_ack { ts; tsr } when ts = t.ts ->
      if Ints.Set.mem obj acks then (t, Nothing)
      else
        (* Figure 2 line 11: currenttsrarray[i] := tsr. *)
        let acks = Ints.Set.add obj acks in
        let current = Tsr_matrix.set_row current ~obj tsr in
        if Ints.Set.cardinal acks >= quorum t then
          (* Figure 2 lines 7-8: complete the tuple and start round W. *)
          let w = Wtuple.make ~tsval:t.pw ~tsrarray:current in
          let t = { t with w; phase = W_wait { acks = Ints.Set.empty } } in
          (t, Broadcast (Messages.W { ts = t.ts; pw = t.pw; w }))
        else ({ t with phase = Pw_wait { acks; current } }, Nothing)
  | W_wait { acks }, Messages.W_ack { ts } when ts = t.ts ->
      if Ints.Set.mem obj acks then (t, Nothing)
      else
        let acks = Ints.Set.add obj acks in
        if Ints.Set.cardinal acks >= quorum t then
          ({ t with phase = Idle }, Done { rounds = 2 })
        else ({ t with phase = W_wait { acks } }, Nothing)
  | (Idle | Pw_wait _ | W_wait _), _ -> (t, Nothing)
