type t = {
  index : int;
  ts : int;
  pw : Tsval.t;
  w : Wtuple.t;
  tsr : int Ints.Map.t;  (* reader j -> tsr[j], absent = 0 *)
}

let init ~index =
  { index; ts = 0; pw = Tsval.init; w = Wtuple.init; tsr = Ints.Map.empty }

let index t = t.index

let ts t = t.ts

let pw t = t.pw

let w t = t.w

let tsr t ~reader = Option.value (Ints.Map.find_opt reader t.tsr) ~default:0

let handle t ~src msg =
  match (msg, src) with
  | Messages.Pw { ts = ts'; pw = pw'; w = w' }, Sim.Proc_id.Writer ->
      (* Figure 3 lines 3-7: adopt strictly fresher state, ack with the
         current reader-timestamp row. *)
      if ts' > t.ts then
        let t = { t with ts = ts'; pw = pw'; w = w' } in
        (t, Some (Messages.Pw_ack { ts = t.ts; tsr = t.tsr }))
      else (t, None)
  | Messages.W { ts = ts'; pw = pw'; w = w' }, Sim.Proc_id.Writer ->
      (* Figure 3 lines 8-12: [>=] so the W of the write whose PW was
         already applied still installs the completed tuple. *)
      if ts' >= t.ts then
        let t = { t with ts = ts'; pw = pw'; w = w' } in
        (t, Some (Messages.W_ack { ts = t.ts }))
      else (t, None)
  | Messages.Read1 { tsr = tsr'; _ }, Sim.Proc_id.Reader j
  | Messages.Read2 { tsr = tsr'; _ }, Sim.Proc_id.Reader j ->
      (* Figure 3 lines 13-17. *)
      if tsr' > tsr t ~reader:j then
        let t = { t with tsr = Ints.Map.add j tsr' t.tsr } in
        let ack =
          match msg with
          | Messages.Read1 _ ->
              Messages.Read1_ack { tsr = tsr'; pw = t.pw; w = t.w }
          | _ -> Messages.Read2_ack { tsr = tsr'; pw = t.pw; w = t.w }
        in
        (t, Some ack)
      else (t, None)
  | _ -> (t, None)
