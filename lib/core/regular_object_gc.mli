(** Bounded-storage regular objects: Figure 5 plus garbage collection.

    The paper keeps full per-object write histories and notes that this
    "might raise issues of storage exhaustion and needs careful garbage
    collection" (§1).  This variant implements that collection for a
    {e fixed, known} set of [readers] running the §5.1 cached protocol:

    - every READ message carries the reader's cache timestamp
      ([from_ts]); the object records each reader's highest reported
      cache as that reader's {e floor};
    - once every reader has reported at least once, entries strictly
      below [min(floors ∪ {latest complete entry})] are dropped.

    Soundness: the §5.1 reader only ever consults history entries at or
    above its own cache timestamp, caches are per-reader monotone, and
    the latest complete entry — what Theorem 3's argument needs every
    correct object to retain — is never dropped.  Until a reader has
    read once its floor is 0 and nothing is pruned, which is what makes
    fixed membership necessary: an unknown late joiner would need
    entries the collector may already have dropped.

    Measured in experiment E10: per-object history length stays bounded
    by the write/read interleaving depth instead of growing with the
    total number of writes. *)

type t

val init : index:int -> readers:int -> t

val index : t -> int

val history_length : t -> int
(** Current number of retained history entries — the E10 metric. *)

val floor : t -> reader:int -> int
(** The reader's recorded cache floor (0 until its first READ). *)

val handle : t -> src:Sim.Proc_id.t -> Messages.t -> t * Messages.t option
(** Exactly {!Regular_object.handle} followed by floor recording and
    pruning. *)
