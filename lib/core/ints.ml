(** Integer-keyed maps and sets shared across the core protocol modules
    (object indices, reader indices, timestamps). *)

module Map = Map.Make (Int)
module Set = Set.Make (Int)

let pp_set ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (Set.elements s)))
