type round_data = {
  ts_fr : int;  (* tsrFR: the reader's timestamp in round 1 *)
  c : Wtuple.Set.t;  (* candidate set C *)
  first_rw : Ints.Set.t Wtuple.Map.t;  (* FirstRW *)
  rw : Ints.Set.t Wtuple.Map.t;  (* RW *)
  rpw : Ints.Set.t Tsval.Map.t;  (* RPW *)
  resp1 : Ints.Set.t;  (* Resp1 *)
  resp2 : Ints.Set.t;
}

type phase = Idle | Round1 of round_data | Round2 of round_data

type knobs = {
  conflict_detection : bool;
  elimination : bool;
  vouchers : int option;  (* overrides the b+1 safety threshold *)
}

type t = {
  cfg : Quorum.Config.t;
  j : int;
  tsr' : int;
  phase : phase;
  knobs : knobs;
}

type event =
  | Broadcast of Messages.t
  | Return of { value : Value.t; rounds : int }

let default_knobs =
  { conflict_detection = true; elimination = true; vouchers = None }

let init ?(knobs = default_knobs) ~cfg ~j () =
  { cfg; j; tsr' = 0; phase = Idle; knobs }

let reader_index t = t.j

let tsr t = t.tsr'

let is_idle t = match t.phase with Idle -> true | Round1 _ | Round2 _ -> false

let quorum t = Quorum.Config.quorum t.cfg

let elimination_threshold t = t.cfg.Quorum.Config.t + t.cfg.Quorum.Config.b + 1

let safety_threshold t =
  match t.knobs.vouchers with
  | Some n -> n
  | None -> t.cfg.Quorum.Config.b + 1

let start_read t =
  match t.phase with
  | Round1 _ | Round2 _ -> Error "read already in progress"
  | Idle ->
      (* Figure 4 lines 7-10. *)
      let tsr' = t.tsr' + 1 in
      let data =
        {
          ts_fr = tsr';
          c = Wtuple.Set.empty;
          first_rw = Wtuple.Map.empty;
          rw = Wtuple.Map.empty;
          rpw = Tsval.Map.empty;
          resp1 = Ints.Set.empty;
          resp2 = Ints.Set.empty;
        }
      in
      Ok
        ( { t with tsr'; phase = Round1 data },
          Messages.Read1 { tsr = tsr'; from_ts = 0 } )

let add_to_multimap add_empty find key obj map =
  match find key map with
  | None -> add_empty key (Ints.Set.singleton obj) map
  | Some set -> add_empty key (Ints.Set.add obj set) map

let add_rw = add_to_multimap Wtuple.Map.add Wtuple.Map.find_opt

let add_rpw = add_to_multimap Tsval.Map.add Tsval.Map.find_opt

(* RespondedWO(c) = { i : exists c' <> c with i in RW(c') } (Fig. 4 line 2). *)
let responded_without data c =
  Wtuple.Map.fold
    (fun c' objs acc ->
      if Wtuple.equal c' c then acc else Ints.Set.union objs acc)
    data.rw Ints.Set.empty

(* Figure 4 lines 27-28: drop candidates with >= t+b+1 dissenters. *)
let eliminate t data =
  if not t.knobs.elimination then data
  else
    let keep c =
      Ints.Set.cardinal (responded_without data c) < elimination_threshold t
    in
    { data with c = Wtuple.Set.filter keep data.c }

(* conflict(i,k) (Fig. 4 line 1): some candidate that k reported in round 1
   claims i told the writer a timestamp of reader j above tsrFR. *)
let conflict t data ~i ~k =
  t.knobs.conflict_detection
  && Wtuple.Set.exists
    (fun c ->
      let first_reporters =
        Option.value (Wtuple.Map.find_opt c data.first_rw)
          ~default:Ints.Set.empty
      in
      Ints.Set.mem k first_reporters
      && Tsr_matrix.exceeds c.Wtuple.tsrarray ~obj:i ~reader:t.j
           ~bound:data.ts_fr)
    data.c

(* Exact minimum-vertex-cover search: returns true iff at most [budget]
   vertices can be deleted to kill every edge. *)
let rec coverable edges budget =
  match edges with
  | [] -> true
  | _ when budget = 0 -> false
  | (i, k) :: rest ->
      let drop v = List.filter (fun (a, b) -> a <> v && b <> v) rest in
      coverable (drop i) (budget - 1) || coverable (drop k) (budget - 1)

(* Figure 4 line 11: does Resp1 contain a conflict-free subset of size
   >= s - t?  Self-conflicting objects are forced out; among the rest we
   need a vertex cover of size <= slack. *)
let round1_complete t data =
  let members = Ints.Set.elements data.resp1 in
  let self_conflicted =
    List.filter (fun i -> conflict t data ~i ~k:i) members
  in
  let rest = List.filter (fun i -> not (List.mem i self_conflicted)) members in
  let slack =
    Ints.Set.cardinal data.resp1 - List.length self_conflicted - quorum t
  in
  if slack < 0 then false
  else
    let edges =
      List.concat_map
        (fun i ->
          List.filter_map
            (fun k ->
              if i < k && (conflict t data ~i ~k || conflict t data ~i:k ~k:i)
              then Some (i, k)
              else None)
            rest)
        rest
    in
    coverable edges slack

(* safe(c) (Fig. 4 line 3): objects vouching for c — reporting c (or a
   higher-timestamped tuple) in w, or c.tsval (or a higher-timestamped
   pair) in pw. *)
let supporters data c =
  let cts = Wtuple.ts c in
  let from_rw =
    Wtuple.Map.fold
      (fun c' objs acc ->
        if Wtuple.equal c' c || Wtuple.ts c' > cts then Ints.Set.union objs acc
        else acc)
      data.rw Ints.Set.empty
  in
  Tsval.Map.fold
    (fun pv objs acc ->
      if Tsval.equal pv c.Wtuple.tsval || pv.Tsval.ts > cts then
        Ints.Set.union objs acc
      else acc)
    data.rpw from_rw

let is_safe t data c = Ints.Set.cardinal (supporters data c) >= safety_threshold t

let high_candidate data c =
  Wtuple.Set.mem c data.c
  && not (Wtuple.Set.exists (fun c' -> Wtuple.ts c' > Wtuple.ts c) data.c)

(* Figure 4 lines 14-19: the round-2 exit condition and returned value. *)
let try_decide t data =
  if Wtuple.Set.is_empty data.c then
    let rounds = if Ints.Set.is_empty data.resp2 then 1 else 2 in
    Some (Return { value = Value.bottom; rounds })
  else
    let winners =
      Wtuple.Set.filter (fun c -> high_candidate data c && is_safe t data c) data.c
    in
    match Wtuple.Set.min_elt_opt winners with
    | None -> None
    | Some cret ->
        let rounds = if Ints.Set.is_empty data.resp2 then 1 else 2 in
        Some (Return { value = Wtuple.value cret; rounds })

let on_message t ~obj msg =
  match (t.phase, msg) with
  | Round1 data, Messages.Read1_ack { tsr; pw = pw'; w = w' }
    when tsr = data.ts_fr && not (Ints.Set.mem obj data.resp1) ->
      (* Figure 4 lines 21-24 then the elimination rule. *)
      let data =
        {
          data with
          first_rw = add_rw w' obj data.first_rw;
          rw = add_rw w' obj data.rw;
          rpw = add_rpw pw' obj data.rpw;
          c = Wtuple.Set.add w' data.c;
          resp1 = Ints.Set.add obj data.resp1;
        }
      in
      let data = eliminate t data in
      if round1_complete t data then begin
        (* Figure 4 lines 12-13, then check line 14 immediately: round-1
           information alone may already make a candidate safe. *)
        let tsr' = t.tsr' + 1 in
        let read2 = Messages.Read2 { tsr = tsr'; from_ts = 0 } in
        let t = { t with tsr'; phase = Round2 data } in
        match try_decide t data with
        | Some decision -> ({ t with phase = Idle }, [ Broadcast read2; decision ])
        | None -> (t, [ Broadcast read2 ])
      end
      else ({ t with phase = Round1 data }, [])
  | Round2 data, Messages.Read2_ack { tsr; pw = pw'; w = w' }
    when tsr = data.ts_fr + 1 && not (Ints.Set.mem obj data.resp2) ->
      (* Figure 4 lines 25-26 then the elimination rule. *)
      let data =
        {
          data with
          rw = add_rw w' obj data.rw;
          rpw = add_rpw pw' obj data.rpw;
          resp2 = Ints.Set.add obj data.resp2;
        }
      in
      let data = eliminate t data in
      let t = { t with phase = Round2 data } in
      (match try_decide t data with
      | Some decision -> ({ t with phase = Idle }, [ decision ])
      | None -> (t, []))
  | (Idle | Round1 _ | Round2 _), _ -> (t, [])

let candidates t =
  match t.phase with
  | Idle -> Wtuple.Set.empty
  | Round1 data | Round2 data -> data.c

let responded_round1 t =
  match t.phase with
  | Idle -> Ints.Set.empty
  | Round1 data | Round2 data -> data.resp1

let responded_round2 t =
  match t.phase with
  | Idle -> Ints.Set.empty
  | Round1 data | Round2 data -> data.resp2

module Private = struct
  let coverable = coverable
end
