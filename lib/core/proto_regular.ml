(** The regular storage (Figures 2, 5, 6) packaged as {!Protocol_intf.S}:
    [Plain] is the unoptimized Figure 6 algorithm, [Optimized] the §5.1
    variant with reader caches and history-suffix replies. *)

module Make (Variant : sig
  val name : string

  val cached : bool
end) : Protocol_intf.S with type msg = Messages.t = struct
  let name = Variant.name

  type msg = Messages.t

  let msg_info = Messages.info

  let msg_size_words = Messages.size_words

  let msg_class = Messages.classify

  type obj = Regular_object.t

  let obj_init ~cfg:_ ~index = Regular_object.init ~index

  let obj_handle = Regular_object.handle

  type writer = Writer.t

  let writer_init ~cfg = Writer.init ~cfg

  let writer_start = Writer.start_write

  let writer_on_msg w ~obj msg =
    let w, event = Writer.on_message w ~obj msg in
    let events =
      match event with
      | Writer.Nothing -> []
      | Writer.Broadcast m -> [ Events.Broadcast m ]
      | Writer.Done { rounds } -> [ Events.Write_done { rounds } ]
    in
    (w, events)

  type reader = Regular_reader.t

  let reader_init ~cfg ~j =
    Regular_reader.init ~cfg ~j ~cached:Variant.cached ()

  let reader_start = Regular_reader.start_read

  let reader_on_reconnect = Regular_reader.on_reconnect

  let reader_on_msg r ~obj msg =
    let r, events = Regular_reader.on_message r ~obj msg in
    let events =
      List.map
        (function
          | Regular_reader.Broadcast m -> Events.Broadcast m
          | Regular_reader.Return { value; rounds } ->
              Events.Read_done { value; rounds })
        events
    in
    (r, events)
end

module Plain = Make (struct
  let name = "regular"

  let cached = false
end)

module Optimized = Make (struct
  let name = "regular-opt"

  let cached = true
end)
