type entry = { pw : Tsval.t; w : Wtuple.t option }

type t = entry Ints.Map.t

let empty = Ints.Map.empty

let init = Ints.Map.singleton 0 { pw = Tsval.init; w = Some Wtuple.init }

let find t ~ts = Ints.Map.find_opt ts t

let set t ~ts entry = Ints.Map.add ts entry t

let on_pw t ~ts' ~pw' ~w' =
  let t = Ints.Map.add ts' { pw = pw'; w = None } t in
  Ints.Map.add (ts' - 1) { pw = w'.Wtuple.tsval; w = Some w' } t

let on_w t ~ts' ~pw' ~w' = Ints.Map.add ts' { pw = pw'; w = Some w' } t

let suffix t ~from_ts = Ints.Map.filter (fun ts _ -> ts >= from_ts) t

let max_ts t = match Ints.Map.max_binding_opt t with None -> -1 | Some (ts, _) -> ts

let length t = Ints.Map.cardinal t

let tuples t =
  Ints.Map.fold
    (fun _ entry acc -> match entry.w with None -> acc | Some w -> w :: acc)
    t []
  |> List.rev

let bindings t = Ints.Map.bindings t

let compare_entry a b =
  match Tsval.compare a.pw b.pw with
  | 0 -> Option.compare Wtuple.compare a.w b.w
  | c -> c

let compare = Ints.Map.compare compare_entry

let equal a b = compare a b = 0

let pp ppf t =
  let pp_entry ts { pw; w } =
    let pp_w ppf = function
      | None -> Format.pp_print_string ppf "nil"
      | Some w -> Wtuple.pp ppf w
    in
    Format.fprintf ppf "%d:<%a,%a> " ts Tsval.pp pw pp_w w
  in
  Ints.Map.iter pp_entry t
