(** Register values.

    The storage holds opaque byte strings; [Bottom] is the paper's special
    initial value ⊥, which is never a valid WRITE input (§2.2). *)

type t =
  | Bottom
  | V of string

val bottom : t

val v : string -> t
(** [v s] wraps a payload.  Unlike [V], never produces [Bottom]. *)

val is_bottom : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val payload : t -> string option
(** [Some s] for [V s], [None] for [Bottom]. *)
