(** The writer — Figure 2, verbatim.

    Shared by the safe and regular storages (the paper reuses the same
    WRITE implementation, §5).  A WRITE takes exactly two rounds:

    + {b PW}: write ⟨pw, w⟩ and collect each responding object's reader
      timestamps into [currenttsrarray];
    + {b W}: write the completed tuple [w = ⟨pw, currenttsrarray⟩].

    Each round terminates on [s - t] acknowledgments.  The state machine
    is pure: callers broadcast the returned message to all objects and
    feed acknowledgments back in. *)

type t

type event =
  | Nothing  (** keep waiting *)
  | Broadcast of Messages.t  (** round PW done: broadcast the W message *)
  | Done of { rounds : int }  (** WRITE complete (always 2 rounds) *)

val init : cfg:Quorum.Config.t -> t

val ts : t -> int
(** Timestamp of the latest (possibly in-progress) write. *)

val is_idle : t -> bool

val start_write : t -> Value.t -> (t * Messages.t, string) result
(** Begin [WRITE(v)]; broadcast the returned PW message.  Errors if a
    write is in progress or [v] is ⊥ (not a valid input, §2.2). *)

val on_message : t -> obj:int -> Messages.t -> t * event
(** Feed an acknowledgment received from object [obj].  Stale or
    unexpected messages are ignored ([Nothing]). *)
