type t =
  | Pw of { ts : int; pw : Tsval.t; w : Wtuple.t }
  | Pw_ack of { ts : int; tsr : int Ints.Map.t }
  | W of { ts : int; pw : Tsval.t; w : Wtuple.t }
  | W_ack of { ts : int }
  | Read1 of { tsr : int; from_ts : int }
  | Read2 of { tsr : int; from_ts : int }
  | Read1_ack of { tsr : int; pw : Tsval.t; w : Wtuple.t }
  | Read2_ack of { tsr : int; pw : Tsval.t; w : Wtuple.t }
  | Read1_ack_h of { tsr : int; history : History_store.t }
  | Read2_ack_h of { tsr : int; history : History_store.t }

let info = function
  | Pw { ts; _ } -> Printf.sprintf "PW(ts=%d)" ts
  | Pw_ack { ts; _ } -> Printf.sprintf "PW_ACK(ts=%d)" ts
  | W { ts; _ } -> Printf.sprintf "W(ts=%d)" ts
  | W_ack { ts } -> Printf.sprintf "W_ACK(ts=%d)" ts
  | Read1 { tsr; _ } -> Printf.sprintf "READ1(tsr=%d)" tsr
  | Read2 { tsr; _ } -> Printf.sprintf "READ2(tsr=%d)" tsr
  | Read1_ack { tsr; w; _ } ->
      Printf.sprintf "READ1_ACK(tsr=%d,w.ts=%d)" tsr (Wtuple.ts w)
  | Read2_ack { tsr; w; _ } ->
      Printf.sprintf "READ2_ACK(tsr=%d,w.ts=%d)" tsr (Wtuple.ts w)
  | Read1_ack_h { tsr; history } ->
      Printf.sprintf "READ1_ACK(tsr=%d,|h|=%d)" tsr (History_store.length history)
  | Read2_ack_h { tsr; history } ->
      Printf.sprintf "READ2_ACK(tsr=%d,|h|=%d)" tsr (History_store.length history)

let pp ppf m = Format.pp_print_string ppf (info m)

let value_words = function Value.Bottom -> 1 | Value.V s -> 1 + (String.length s / 8)

let tsval_words (tv : Tsval.t) = 1 + value_words tv.v

let matrix_words m =
  List.fold_left
    (fun acc i ->
      match Tsr_matrix.row m ~obj:i with
      | None -> acc
      | Some row -> acc + 1 + Ints.Map.cardinal row)
    0 (Tsr_matrix.rows_present m)

let wtuple_words (w : Wtuple.t) = tsval_words w.tsval + matrix_words w.tsrarray

let history_words h =
  List.fold_left
    (fun acc (_, { History_store.pw; w }) ->
      acc + 1 + tsval_words pw
      + match w with None -> 1 | Some w -> wtuple_words w)
    0 (History_store.bindings h)

let size_words = function
  | Pw { pw; w; _ } | W { pw; w; _ } -> 1 + tsval_words pw + wtuple_words w
  | Pw_ack { tsr; _ } -> 1 + Ints.Map.cardinal tsr
  | W_ack _ -> 1
  | Read1 _ | Read2 _ -> 2
  | Read1_ack { pw; w; _ } | Read2_ack { pw; w; _ } ->
      1 + tsval_words pw + wtuple_words w
  | Read1_ack_h { history; _ } | Read2_ack_h { history; _ } ->
      1 + history_words history

let classify = function
  | Pw _ -> Obs.Wire.write ~round:1 ~request:true
  | Pw_ack _ -> Obs.Wire.write ~round:1 ~request:false
  | W _ -> Obs.Wire.write ~round:2 ~request:true
  | W_ack _ -> Obs.Wire.write ~round:2 ~request:false
  | Read1 _ -> Obs.Wire.read ~round:1 ~request:true
  | Read2 _ -> Obs.Wire.read ~round:2 ~request:true
  | Read1_ack _ | Read1_ack_h _ -> Obs.Wire.read ~round:1 ~request:false
  | Read2_ack _ | Read2_ack_h _ -> Obs.Wire.read ~round:2 ~request:false

let is_read_round = function
  | Read1 _ -> Some 1
  | Read2 _ -> Some 2
  | Pw _ | Pw_ack _ | W _ | W_ack _ | Read1_ack _ | Read2_ack _
  | Read1_ack_h _ | Read2_ack_h _ ->
      None
