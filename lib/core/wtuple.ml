type t = { tsval : Tsval.t; tsrarray : Tsr_matrix.t }

let init = { tsval = Tsval.init; tsrarray = Tsr_matrix.empty }

let make ~tsval ~tsrarray = { tsval; tsrarray }

let ts t = t.tsval.Tsval.ts

let value t = t.tsval.Tsval.v

(* Interned decodes make repeated tuples physically shared, so the
   candidate maps' key comparisons short-circuit without walking the
   matrix. *)
let compare a b =
  if a == b then 0
  else
    match Tsval.compare a.tsval b.tsval with
    | 0 -> Tsr_matrix.compare a.tsrarray b.tsrarray
    | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "<%a,%a>" Tsval.pp t.tsval Tsr_matrix.pp t.tsrarray

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
