(** The reader-timestamp matrix [tsrarray[1..S][1..R]] (Figure 2).

    Row [i] holds the reader timestamps object [s_i] reported to the
    writer in its [PW_ACK]; an absent row is the paper's [nil] (the object
    did not answer the PW round).  Within a present row, an absent reader
    entry stands for that object's initial [tsr[j] = 0].

    The representation is a sparse immutable map-of-maps so that tuples
    containing matrices can be compared, hashed, and used as map keys —
    which the reader's candidate bookkeeping and the model checker
    require. *)

type t

val empty : t
(** The writer's [inittsrarray]: all rows nil. *)

val set_row : t -> obj:int -> int Map.Make(Int).t -> t
(** [set_row m ~obj row] installs the reader→timestamp map reported by
    object [obj] (the writer's [currenttsrarray[i] := tsr], Figure 2
    line 11). *)

val row : t -> obj:int -> int Map.Make(Int).t option
(** [None] is the paper's nil row. *)

val row_present : t -> obj:int -> bool

val rows_present : t -> int list
(** Ascending object indices with non-nil rows. *)

val row_count : t -> int
(** Number of non-nil rows, without materialising the index list. *)

val fold_rows : (int -> int Map.Make(Int).t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over non-nil rows in ascending object order.  Lets encoders
    walk the matrix without building an intermediate binding list. *)

val get : t -> obj:int -> reader:int -> int option
(** [None] iff the row is nil; [Some ts] otherwise, where an absent
    reader entry yields [Some 0]. *)

val exceeds : t -> obj:int -> reader:int -> bound:int -> bool
(** [exceeds m ~obj ~reader ~bound] is true iff the matrix claims object
    [obj] reported a timestamp of [reader] strictly above [bound] — the
    core of the [conflict] predicate (Figure 4, line 1). *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
