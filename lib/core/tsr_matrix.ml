module Int_map = Map.Make (Int)

type t = int Int_map.t Int_map.t

let empty = Int_map.empty

let set_row m ~obj row = Int_map.add obj row m

let row m ~obj = Int_map.find_opt obj m

let row_present m ~obj = Int_map.mem obj m

let rows_present m = List.map fst (Int_map.bindings m)

let row_count = Int_map.cardinal

let fold_rows f m acc = Int_map.fold f m acc

let get m ~obj ~reader =
  match Int_map.find_opt obj m with
  | None -> None
  | Some r -> Some (Option.value (Int_map.find_opt reader r) ~default:0)

let exceeds m ~obj ~reader ~bound =
  match get m ~obj ~reader with None -> false | Some ts -> ts > bound

let compare a b =
  if a == b then 0 else Int_map.compare (Int_map.compare Int.compare) a b

let equal a b = a == b || compare a b = 0

let pp ppf m =
  let pp_row ppf r =
    Int_map.iter (fun j ts -> Format.fprintf ppf "r%d:%d " j ts) r
  in
  Int_map.iter (fun i r -> Format.fprintf ppf "[s%d: %a]" i pp_row r) m
