(** The regular storage with garbage-collected objects
    ({!Regular_object_gc}) and §5.1 cached readers, for a fixed reader
    set of size [readers].  Same wire protocol and semantics as
    {!Proto_regular.Optimized}; bounded per-object storage. *)

module Make (_ : sig
  val readers : int
end) : Protocol_intf.S with type msg = Messages.t
