(** Wire messages of the paper's protocols.

    One message type serves both the safe (Figures 2–4) and the regular
    (Figures 2, 5–6) storage: the WRITE side (PW/W and their acks) is
    identical — the protocols differ only in what objects store and in
    the READ acks ([Read*_ack] carry ⟨pw, w⟩ for the safe storage,
    [Read*_ack_h] carry a history for the regular one).

    [Read1]/[Read2] carry [from_ts], the §5.1 cache timestamp; the safe
    protocol and the unoptimized regular protocol always send 0
    ("everything"). *)

type t =
  | Pw of { ts : int; pw : Tsval.t; w : Wtuple.t }
      (** Writer round 1: write ⟨pw, w⟩, read back reader timestamps. *)
  | Pw_ack of { ts : int; tsr : int Ints.Map.t }
      (** Object reply: its [tsr[*]] field (absent reader = 0). *)
  | W of { ts : int; pw : Tsval.t; w : Wtuple.t }  (** Writer round 2. *)
  | W_ack of { ts : int }
  | Read1 of { tsr : int; from_ts : int }
  | Read2 of { tsr : int; from_ts : int }
  | Read1_ack of { tsr : int; pw : Tsval.t; w : Wtuple.t }
  | Read2_ack of { tsr : int; pw : Tsval.t; w : Wtuple.t }
  | Read1_ack_h of { tsr : int; history : History_store.t }
  | Read2_ack_h of { tsr : int; history : History_store.t }

val info : t -> string
(** Compact rendering for traces. *)

val pp : Format.formatter -> t -> unit

val size_words : t -> int
(** Abstract message size in "words" (timestamps, value payloads and
    matrix entries each count 1) — the unit for the E3 message-size
    experiment comparing full-history and pruned-history replies. *)

val is_read_round : t -> int option
(** [Some 1] for [Read1], [Some 2] for [Read2], [None] otherwise. *)

val classify : t -> Obs.Wire.t
(** Observability classification shared by every protocol speaking this
    wire format (safe, regular, and their variants). *)
