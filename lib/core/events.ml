(** Events emitted by client state machines towards the scenario runtime,
    polymorphic in the protocol's wire message type so that the paper's
    protocols and the baselines share one driver (see {!Scenario}). *)

type 'msg client_event =
  | Broadcast of 'msg  (** send to every base object *)
  | Write_done of { rounds : int }
  | Read_done of { value : Value.t; rounds : int }
