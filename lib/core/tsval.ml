type t = { ts : int; v : Value.t }

let init = { ts = 0; v = Value.bottom }

let make ~ts ~v = { ts; v }

let equal a b = a.ts = b.ts && Value.equal a.v b.v

let compare a b =
  match Int.compare a.ts b.ts with 0 -> Value.compare a.v b.v | c -> c

let newer a ~than = a.ts > than.ts

let pp ppf { ts; v } = Format.fprintf ppf "<%d,%a>" ts Value.pp v

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
