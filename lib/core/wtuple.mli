(** Write tuples ⟨tsval, tsrarray⟩ — the contents of the [w] field
    (Figure 2) and the reader's candidate values (Figure 4).

    A tuple binds a timestamp-value pair to the matrix of reader
    timestamps the writer collected in the PW round of the same WRITE;
    the matrix is what lets readers catch objects forging concurrency
    (the [conflict] predicate). *)

type t = { tsval : Tsval.t; tsrarray : Tsr_matrix.t }

val init : t
(** w0 = ⟨⟨0, ⊥⟩, inittsrarray⟩. *)

val make : tsval:Tsval.t -> tsrarray:Tsr_matrix.t -> t

val ts : t -> int

val value : t -> Value.t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
