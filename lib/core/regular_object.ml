type t = {
  index : int;
  ts : int;
  history : History_store.t;
  tsr : int Ints.Map.t;
}

let init ~index =
  { index; ts = 0; history = History_store.init; tsr = Ints.Map.empty }

let index t = t.index

let ts t = t.ts

let history t = t.history

let tsr t ~reader = Option.value (Ints.Map.find_opt reader t.tsr) ~default:0

let latest_complete_ts t =
  List.fold_left
    (fun acc (ts, entry) ->
      match entry.History_store.w with Some _ -> max acc ts | None -> acc)
    0
    (History_store.bindings t.history)

let prune t ~keep_from =
  { t with history = History_store.suffix t.history ~from_ts:keep_from }

let handle t ~src msg =
  match (msg, src) with
  | Messages.Pw { ts = ts'; pw = pw'; w = w' }, Sim.Proc_id.Writer ->
      (* Figure 5 lines 4-9. *)
      if ts' > t.ts then
        let history = History_store.on_pw t.history ~ts' ~pw' ~w' in
        let t = { t with ts = ts'; history } in
        (t, Some (Messages.Pw_ack { ts = t.ts; tsr = t.tsr }))
      else (t, None)
  | Messages.W { ts = ts'; pw = pw'; w = w' }, Sim.Proc_id.Writer ->
      (* Figure 5 lines 10-14. *)
      if ts' >= t.ts then
        let history = History_store.on_w t.history ~ts' ~pw' ~w' in
        let t = { t with ts = ts'; history } in
        (t, Some (Messages.W_ack { ts = t.ts }))
      else (t, None)
  | Messages.Read1 { tsr = tsr'; from_ts }, Sim.Proc_id.Reader j
  | Messages.Read2 { tsr = tsr'; from_ts }, Sim.Proc_id.Reader j ->
      (* Figure 5 lines 15-19, with the §5.1 suffix pruning. *)
      if tsr' > tsr t ~reader:j then
        let t = { t with tsr = Ints.Map.add j tsr' t.tsr } in
        let suffix = History_store.suffix t.history ~from_ts in
        let ack =
          match msg with
          | Messages.Read1 _ ->
              Messages.Read1_ack_h { tsr = tsr'; history = suffix }
          | _ -> Messages.Read2_ack_h { tsr = tsr'; history = suffix }
        in
        (t, Some ack)
      else (t, None)
  | _ -> (t, None)
