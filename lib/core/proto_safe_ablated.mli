(** Ablated variants of the safe storage for the E6 experiment: the same
    wire protocol, objects and writer, with one of the reader's defensive
    mechanisms disabled (see {!Safe_reader.knobs}).  Each variant
    demonstrably loses a theorem: no candidate elimination loses
    wait-freedom under forgery; fewer than [b + 1] vouchers loses safety;
    no conflict detection loses the Lemma 3 case (2.b) termination
    argument. *)

module Make (_ : sig
  val name : string

  val knobs : Safe_reader.knobs
end) : Protocol_intf.S with type msg = Messages.t

module No_conflict_detection : Protocol_intf.S with type msg = Messages.t

module No_elimination : Protocol_intf.S with type msg = Messages.t

module Single_voucher : Protocol_intf.S with type msg = Messages.t
