(** Timestamp-value pairs ⟨ts, v⟩ (the [pw] field contents, Figure 2).

    The writer's timestamps count its WRITEs: [wr_k] carries [ts = k];
    the initial pair is ⟨0, ⊥⟩. *)

type t = { ts : int; v : Value.t }

val init : t
(** ⟨0, ⊥⟩. *)

val make : ts:int -> v:Value.t -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by timestamp, breaking ties on the value — a total order so
    the pair can key maps; protocol decisions only ever compare
    timestamps. *)

val newer : t -> than:t -> bool
(** Strictly higher timestamp. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
