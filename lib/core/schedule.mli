(** Operation schedules — protocol-independent workload descriptions.

    A schedule lists (earliest start time, operation) pairs; the scenario
    runtime serializes each client's operations (closed loop).  Keeping
    the type outside {!Scenario.Make} lets one workload drive every
    protocol in a comparison experiment. *)

type op =
  | Write of Value.t
  | Read of { reader : int }

type item = int * op

type t = item list

val writes : t -> int

val reads : t -> int

val reader_indices : t -> int list
(** Sorted, deduplicated. *)

val merge : t -> t -> t
(** Union of two schedules, sorted by time. *)

val sorted : t -> t

val pp : Format.formatter -> t -> unit
