(** Ablated variants of the safe storage for the E6 experiment: identical
    wire protocol and object/writer code, but the reader runs with one of
    its defensive mechanisms disabled — demonstrating that each knob in
    {!Safe_reader.knobs} is load-bearing. *)

module Make (K : sig
  val name : string

  val knobs : Safe_reader.knobs
end) : Protocol_intf.S with type msg = Messages.t = struct
  let name = K.name

  type msg = Messages.t

  let msg_info = Messages.info

  let msg_size_words = Messages.size_words

  let msg_class = Messages.classify

  type obj = Safe_object.t

  let obj_init ~cfg:_ ~index = Safe_object.init ~index

  let obj_handle = Safe_object.handle

  type writer = Writer.t

  let writer_init ~cfg = Writer.init ~cfg

  let writer_start = Writer.start_write

  let writer_on_msg w ~obj msg =
    let w, event = Writer.on_message w ~obj msg in
    let events =
      match event with
      | Writer.Nothing -> []
      | Writer.Broadcast m -> [ Events.Broadcast m ]
      | Writer.Done { rounds } -> [ Events.Write_done { rounds } ]
    in
    (w, events)

  type reader = Safe_reader.t

  let reader_init ~cfg ~j = Safe_reader.init ~knobs:K.knobs ~cfg ~j ()

  let reader_start = Safe_reader.start_read

  let reader_on_msg r ~obj msg =
    let r, events = Safe_reader.on_message r ~obj msg in
    let events =
      List.map
        (function
          | Safe_reader.Broadcast m -> Events.Broadcast m
          | Safe_reader.Return { value; rounds } ->
              Events.Read_done { value; rounds })
        events
    in
    (r, events)

  (* No client-side cached state to resync after a reconnect. *)
  let reader_on_reconnect r = r
end

module No_conflict_detection = Make (struct
  let name = "safe/no-conflict"

  let knobs = { Safe_reader.default_knobs with conflict_detection = false }
end)

module No_elimination = Make (struct
  let name = "safe/no-elimination"

  let knobs = { Safe_reader.default_knobs with elimination = false }
end)

module Single_voucher = Make (struct
  let name = "safe/1-voucher"

  let knobs = { Safe_reader.default_knobs with vouchers = Some 1 }
end)
