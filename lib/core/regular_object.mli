(** Base object of the regular storage — Figure 5.

    Differs from {!Safe_object} in keeping the {e whole history} of
    values received from the writer: entry [ts'] is installed on the PW
    of write [ts'] (with [w = nil]) and completed on its W — and, since
    the PW of write [ts'] carries the finished tuple of write [ts' - 1],
    that entry is installed retroactively too.

    READ acknowledgments carry the history suffix from the reader's
    cached timestamp onwards ([from_ts], §5.1); unoptimized readers send
    [from_ts = 0] and receive everything. *)

type t

val init : index:int -> t

val index : t -> int

val ts : t -> int

val history : t -> History_store.t

val tsr : t -> reader:int -> int

val handle : t -> src:Sim.Proc_id.t -> Messages.t -> t * Messages.t option

(** {2 Garbage-collection hooks}

    Not part of Figure 5 — extension points for the bounded-storage
    variant ({!Regular_object_gc}), addressing the paper's remark that
    keeping full histories "might raise issues of storage exhaustion and
    needs careful garbage collection" (§1). *)

val latest_complete_ts : t -> int
(** Highest timestamp whose history entry has a non-nil [w]. *)

val prune : t -> keep_from:int -> t
(** Drop history entries strictly below [keep_from]; the caller is
    responsible for [keep_from] being at most every current and future
    reader's cache timestamp. *)
