(** The regular-storage reader — Figure 6, plus the §5.1 optimization.

    Structure mirrors {!Safe_reader} (two rounds, timestamp writes in
    both, conflict-free round-1 quorum), but decisions are taken over the
    objects' {e histories}: a candidate [c] is [safe] once [b + 1]
    objects confirm the entry at [c]'s timestamp, and [invalid] (dropped)
    once [t + b + 1] objects contradict or miss that entry.

    With [cached = true] the reader remembers the timestamp-value pair it
    last returned, asks objects only for the history suffix from that
    timestamp on (drastically smaller replies, §5.1), and falls back to
    the cached value when the candidate set empties.  With
    [cached = false] the behaviour is the unoptimized Figure 6: the
    initial tuple w0 keeps the candidate set non-empty forever, and the
    cache stays ⟨0, ⊥⟩, so both variants share this one implementation. *)

type t

type event =
  | Broadcast of Messages.t
  | Return of { value : Value.t; rounds : int }

val init : ?fast:bool -> cfg:Quorum.Config.t -> j:int -> cached:bool -> unit -> t
(** [fast] (default [true]) enables the opportunistic one-round decision
    at round-1 completion.  Pass
    [~fast:(Quorum.Config.fast_read_admissible cfg)] to gate it on the
    paper's lower bound: below [S = 2t + 2b + 1] every read then takes
    the full two rounds, which is exactly what Proposition 1 proves
    unavoidable. *)

val on_reconnect : t -> t
(** Transport hook: the connection to a base object was re-established
    (client reconnect or server restart), so suffix replies computed
    against the cached timestamp can no longer be trusted.  Clears the
    timestamp cache when idle; during an in-flight read it marks the
    cache stale instead (the fallback of the current read still needs
    it) and the next {!start_read} clears it.  No-op when
    [cached = false]. *)

val reader_index : t -> int

val tsr : t -> int

val cache : t -> Tsval.t
(** Last returned timestamp-value pair (⟨0, ⊥⟩ initially and always when
    [cached = false]). *)

val is_idle : t -> bool

val start_read : t -> (t * Messages.t, string) result

val on_message : t -> obj:int -> Messages.t -> t * event list

(** {2 Introspection for tests and experiments} *)

val candidates : t -> Wtuple.Set.t

val responded_round1 : t -> Ints.Set.t

val responded_round2 : t -> Ints.Set.t
