(** The safe-storage reader — Figure 4, the paper's central algorithm.

    A READ takes at most two rounds.  In {e both} rounds the reader
    writes a fresh timestamp into the objects' [tsr[j]] fields and reads
    back ⟨pw, w⟩ — the "readers modify base-object state" trick that
    beats the conjectured [b+1]-round bound.

    Round 1 terminates once the replies contain a {e conflict-free}
    sub-quorum [Resp1OK] of at least [s - t] objects, where objects [i]
    and [k] conflict if [k] reported a candidate tuple whose timestamp
    matrix claims [i] told the writer a reader timestamp higher than the
    reader has issued (Figure 4 line 1) — a smoking gun that one of the
    two lies.  Finding [Resp1OK] is a minimum-vertex-cover search on the
    conflict graph, exact and cheap because at most
    [|Resp1| - (s - t)] <= t vertices may be dropped.

    Round 2 terminates once some candidate is [safe] (at least [b + 1]
    objects vouch for it or for a later value) and carries the highest
    candidate timestamp, or once the candidate set has been emptied by
    the [t + b + 1]-dissenters rule, in which case the read returns ⊥
    (only possible under concurrency, Theorem 1). *)

type t

type knobs = {
  conflict_detection : bool;
      (** Figure 4's [conflict] predicate; disabling it voids the Lemma 3
          case (2.b) termination argument *)
  elimination : bool;
      (** the lines 27-28 candidate-removal rule; disabling it lets a
          forged high candidate block reads forever *)
  vouchers : int option;
      (** overrides the [b + 1] [safe] threshold; values below [b + 1]
          let Byzantine objects validate forged values *)
}
(** Ablation switches for the E6 experiment.  Production readers use
    {!default_knobs}; every knob is load-bearing for Theorems 1-2. *)

val default_knobs : knobs

type event =
  | Broadcast of Messages.t  (** send to all objects *)
  | Return of { value : Value.t; rounds : int }
      (** READ completes; [rounds] is 1 when round-1 replies alone
          decided the value, else 2. *)

val init : ?knobs:knobs -> cfg:Quorum.Config.t -> j:int -> unit -> t

val reader_index : t -> int

val tsr : t -> int
(** The reader's persistent timestamp [tsr'_j]. *)

val is_idle : t -> bool

val start_read : t -> (t * Messages.t, string) result
(** Begin a READ; broadcast the returned READ1 message.  Errors if a
    read is in progress. *)

val on_message : t -> obj:int -> Messages.t -> t * event list
(** Feed an acknowledgment from object [obj].  The event list is empty
    while waiting, [\[Broadcast read2\]] on round-1 completion, and ends
    with [Return] when the read decides (possibly in the same step as
    the broadcast). *)

(** {2 Introspection for tests and experiments} *)

val candidates : t -> Wtuple.Set.t
(** Current candidate set [C] (empty when idle). *)

val responded_round1 : t -> Ints.Set.t

val responded_round2 : t -> Ints.Set.t

(** {2 Exposed for property-based testing} *)

module Private : sig
  val coverable : (int * int) list -> int -> bool
  (** [coverable edges budget]: can deleting at most [budget] vertices
      remove every edge?  The exact bounded-vertex-cover search behind
      the Figure 4 line 11 [Resp1OK] existence check. *)
end
