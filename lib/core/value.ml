type t = Bottom | V of string

let bottom = Bottom

let v s = V s

let is_bottom = function Bottom -> true | V _ -> false

let equal a b =
  match (a, b) with
  | Bottom, Bottom -> true
  | V x, V y -> String.equal x y
  | Bottom, V _ | V _, Bottom -> false

let compare a b =
  match (a, b) with
  | Bottom, Bottom -> 0
  | Bottom, V _ -> -1
  | V _, Bottom -> 1
  | V x, V y -> String.compare x y

let pp ppf = function
  | Bottom -> Format.pp_print_string ppf "_|_"
  | V s -> Format.fprintf ppf "%S" s

let to_string = function Bottom -> "_|_" | V s -> s

let payload = function Bottom -> None | V s -> Some s
