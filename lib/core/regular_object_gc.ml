type t = { inner : Regular_object.t; readers : int; floors : int Ints.Map.t }

let init ~index ~readers =
  { inner = Regular_object.init ~index; readers; floors = Ints.Map.empty }

let index t = Regular_object.index t.inner

let history_length t = History_store.length (Regular_object.history t.inner)

let floor t ~reader = Option.value (Ints.Map.find_opt reader t.floors) ~default:0

let prune t =
  (* Collect only once every reader has revealed a cache floor. *)
  if Ints.Map.cardinal t.floors < t.readers then t
  else
    let min_floor = Ints.Map.fold (fun _ f acc -> min f acc) t.floors max_int in
    let keep_from = min min_floor (Regular_object.latest_complete_ts t.inner) in
    { t with inner = Regular_object.prune t.inner ~keep_from }

let handle t ~src msg =
  let inner, reply = Regular_object.handle t.inner ~src msg in
  let t = { t with inner } in
  let t =
    match (msg, src) with
    | (Messages.Read1 { from_ts; _ } | Messages.Read2 { from_ts; _ }),
      Sim.Proc_id.Reader j ->
        { t with floors = Ints.Map.add j (max from_ts (floor t ~reader:j)) t.floors }
    | _ -> t
  in
  (prune t, reply)
