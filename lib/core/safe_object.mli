(** Base object of the safe storage — Figure 3, verbatim.

    The object is a read-modify-write automaton holding the fields [ts]
    (latest writer timestamp seen), [pw], [w], and [tsr[1..R]] (latest
    timestamp seen from each reader).  It replies only when the incoming
    message carries fresher information (Figure 3 conditions), which is
    what lets the reader match acknowledgments to rounds by echoing
    timestamps. *)

type t

val init : index:int -> t

val index : t -> int

val ts : t -> int

val pw : t -> Tsval.t

val w : t -> Wtuple.t

val tsr : t -> reader:int -> int
(** Latest timestamp stored for the reader (0 initially). *)

val handle : t -> src:Sim.Proc_id.t -> Messages.t -> t * Messages.t option
(** One atomic step: apply the message, optionally produce the reply to
    [src].  Messages that the automaton has no transition for (e.g. acks
    mis-delivered to an object) are ignored. *)
