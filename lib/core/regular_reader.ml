type round_data = {
  ts_fr : int;
  c : Wtuple.Set.t;
  hist1 : History_store.t Ints.Map.t;  (* history[1][i] *)
  hist2 : History_store.t Ints.Map.t;  (* history[2][i] *)
}

type phase = Idle | Round1 of round_data | Round2 of round_data

type t = {
  cfg : Quorum.Config.t;
  j : int;
  tsr' : int;
  cached : bool;
  cache : Tsval.t;
  fast : bool;
  stale : bool;
  phase : phase;
}

type event =
  | Broadcast of Messages.t
  | Return of { value : Value.t; rounds : int }

let init ?(fast = true) ~cfg ~j ~cached () =
  { cfg; j; tsr' = 0; cached; cache = Tsval.init; fast; stale = false;
    phase = Idle }

let reader_index t = t.j

let tsr t = t.tsr'

let cache t = t.cache

let is_idle t = match t.phase with Idle -> true | Round1 _ | Round2 _ -> false

let quorum t = Quorum.Config.quorum t.cfg

let invalid_threshold t = t.cfg.Quorum.Config.t + t.cfg.Quorum.Config.b + 1

let safe_threshold t = t.cfg.Quorum.Config.b + 1

let from_ts t = if t.cached then t.cache.Tsval.ts else 0

(* Transport hook: a connection to a base object was re-established
   (reconnect, or server restart).  The object behind it may have been
   wiped, so the suffix it would ship for our cached timestamp can no
   longer be trusted to carry every entry we pruned client-side.  Reset
   the cache so the next read asks for the full history (from_ts = 0).
   Mid-operation we only mark the cache stale: the in-flight read still
   needs [t.cache] for the §5.1 empty-candidate fallback, and dropping it
   now would return ⊥ for a value that was legitimately read — the flag
   is consumed by the next [start_read] instead. *)
let on_reconnect t =
  if not t.cached then t
  else
    match t.phase with
    | Idle -> { t with cache = Tsval.init; stale = false }
    | Round1 _ | Round2 _ -> { t with stale = true }

let start_read t =
  match t.phase with
  | Round1 _ | Round2 _ -> Error "read already in progress"
  | Idle ->
      let t =
        if t.stale then { t with cache = Tsval.init; stale = false } else t
      in
      let tsr' = t.tsr' + 1 in
      let data =
        {
          ts_fr = tsr';
          c = Wtuple.Set.empty;
          hist1 = Ints.Map.empty;
          hist2 = Ints.Map.empty;
        }
      in
      Ok
        ( { t with tsr'; phase = Round1 data },
          Messages.Read1 { tsr = tsr'; from_ts = from_ts t } )

(* The entry object [i] reported for timestamp [ts] in the given round's
   history map; [None] when the object has not responded in that round. *)
let entry_of hist_map i ~ts =
  Option.map (fun h -> History_store.find h ~ts) (Ints.Map.find_opt i hist_map)

(* A responding object contradicts candidate [c] when its entry at c's
   timestamp is missing, has nil w, or deviates in pw or w (Fig. 6 line 2). *)
let deviates hist_map i c =
  match entry_of hist_map i ~ts:(Wtuple.ts c) with
  | None -> false  (* no response in this round: does not count *)
  | Some None -> true  (* entry missing: <nil, nil> *)
  | Some (Some { History_store.pw; w }) -> (
      (not (Tsval.equal pw c.Wtuple.tsval))
      || match w with None -> true | Some w' -> not (Wtuple.equal w' c))

(* A responding object vouches for [c] when its entry at c's timestamp
   matches in pw or in w (Fig. 6 line 3). *)
let vouches hist_map i c =
  match entry_of hist_map i ~ts:(Wtuple.ts c) with
  | None | Some None -> false
  | Some (Some { History_store.pw; w }) -> (
      Tsval.equal pw c.Wtuple.tsval
      || match w with None -> false | Some w' -> Wtuple.equal w' c)

let all_responders data =
  Ints.Set.union
    (Ints.Set.of_list (List.map fst (Ints.Map.bindings data.hist1)))
    (Ints.Set.of_list (List.map fst (Ints.Map.bindings data.hist2)))

let count_objects data pred =
  Ints.Set.cardinal (Ints.Set.filter pred (all_responders data))

let is_invalid t data c =
  count_objects data (fun i -> deviates data.hist1 i c || deviates data.hist2 i c)
  >= invalid_threshold t

let is_safe t data c =
  count_objects data (fun i -> vouches data.hist1 i c || vouches data.hist2 i c)
  >= safe_threshold t

let eliminate t data =
  { data with c = Wtuple.Set.filter (fun c -> not (is_invalid t data c)) data.c }

(* conflict(i,k) (Fig. 6 line 1): object k's round-1 history contains a
   candidate whose matrix defames object i. *)
let conflict t data ~i ~k =
  match Ints.Map.find_opt k data.hist1 with
  | None -> false
  | Some h ->
      List.exists
        (fun c ->
          Wtuple.Set.mem c data.c
          && Tsr_matrix.exceeds c.Wtuple.tsrarray ~obj:i ~reader:t.j
               ~bound:data.ts_fr)
        (History_store.tuples h)

let rec coverable edges budget =
  match edges with
  | [] -> true
  | _ when budget = 0 -> false
  | (i, k) :: rest ->
      let drop v = List.filter (fun (a, b) -> a <> v && b <> v) rest in
      coverable (drop i) (budget - 1) || coverable (drop k) (budget - 1)

let round1_complete t data =
  let members = List.map fst (Ints.Map.bindings data.hist1) in
  let self_conflicted =
    List.filter (fun i -> conflict t data ~i ~k:i) members
  in
  let rest = List.filter (fun i -> not (List.mem i self_conflicted)) members in
  let slack = List.length members - List.length self_conflicted - quorum t in
  if slack < 0 then false
  else
    let edges =
      List.concat_map
        (fun i ->
          List.filter_map
            (fun k ->
              if i < k && (conflict t data ~i ~k || conflict t data ~i:k ~k:i)
              then Some (i, k)
              else None)
            rest)
        rest
    in
    coverable edges slack

let high_candidate data c =
  Wtuple.Set.mem c data.c
  && not (Wtuple.Set.exists (fun c' -> Wtuple.ts c' > Wtuple.ts c) data.c)

let decided_rounds data = if Ints.Map.is_empty data.hist2 then 1 else 2

(* Figure 6 lines 14-16 (+ §5.1 cache fallback): return the highest safe
   candidate, or the cached value once the candidate set is empty and a
   full quorum has answered round 2. *)
let try_decide t data =
  let winners =
    Wtuple.Set.filter (fun c -> high_candidate data c && is_safe t data c) data.c
  in
  match Wtuple.Set.min_elt_opt winners with
  | Some cret ->
      let t =
        if t.cached then { t with cache = cret.Wtuple.tsval } else t
      in
      Some (t, Return { value = Wtuple.value cret; rounds = decided_rounds data })
  | None ->
      if
        Wtuple.Set.is_empty data.c
        && Ints.Map.cardinal data.hist2 >= quorum t
      then
        Some
          (t, Return { value = t.cache.Tsval.v; rounds = decided_rounds data })
      else None

let on_message t ~obj msg =
  match (t.phase, msg) with
  | Round1 data, Messages.Read1_ack_h { tsr; history }
    when tsr = data.ts_fr && not (Ints.Map.mem obj data.hist1) ->
      (* Figure 6 lines 17-21. *)
      let data =
        {
          data with
          hist1 = Ints.Map.add obj history data.hist1;
          c =
            List.fold_left
              (fun c w -> Wtuple.Set.add w c)
              data.c (History_store.tuples history);
        }
      in
      let data = eliminate t data in
      if round1_complete t data then begin
        let tsr' = t.tsr' + 1 in
        let read2 = Messages.Read2 { tsr = tsr'; from_ts = from_ts t } in
        let t = { t with tsr'; phase = Round2 data } in
        (* The opportunistic one-round decision exists only above the
           S >= 2t+2b+1 lower bound; with [fast = false] the evidence is
           kept but the decision waits for round-2 acks. *)
        match (if t.fast then try_decide t data else None) with
        | Some (t, decision) ->
            ({ t with phase = Idle }, [ Broadcast read2; decision ])
        | None -> (t, [ Broadcast read2 ])
      end
      else ({ t with phase = Round1 data }, [])
  | Round2 data, Messages.Read2_ack_h { tsr; history }
    when tsr = data.ts_fr + 1 && not (Ints.Map.mem obj data.hist2) ->
      (* Figure 6 lines 22-25. *)
      let data = { data with hist2 = Ints.Map.add obj history data.hist2 } in
      let data = eliminate t data in
      let t = { t with phase = Round2 data } in
      (match try_decide t data with
      | Some (t, decision) -> ({ t with phase = Idle }, [ decision ])
      | None -> (t, []))
  | (Idle | Round1 _ | Round2 _), _ -> (t, [])

let candidates t =
  match t.phase with
  | Idle -> Wtuple.Set.empty
  | Round1 data | Round2 data -> data.c

let responders hist_map =
  Ints.Set.of_list (List.map fst (Ints.Map.bindings hist_map))

let responded_round1 t =
  match t.phase with
  | Idle -> Ints.Set.empty
  | Round1 data | Round2 data -> responders data.hist1

let responded_round2 t =
  match t.phase with
  | Idle -> Ints.Set.empty
  | Round1 data | Round2 data -> responders data.hist2
