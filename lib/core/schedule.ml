type op = Write of Value.t | Read of { reader : int }

type item = int * op

type t = item list

let writes t =
  List.length (List.filter (function _, Write _ -> true | _ -> false) t)

let reads t =
  List.length (List.filter (function _, Read _ -> true | _ -> false) t)

let reader_indices t =
  List.sort_uniq Int.compare
    (List.filter_map
       (function _, Read { reader } -> Some reader | _, Write _ -> None)
       t)

let by_time (t1, _) (t2, _) = Int.compare t1 t2

let sorted t = List.stable_sort by_time t

let merge a b = sorted (a @ b)

let pp ppf t =
  List.iter
    (fun (time, op) ->
      match op with
      | Write v -> Format.fprintf ppf "@%d write(%a)@." time Value.pp v
      | Read { reader } -> Format.fprintf ppf "@%d read(r%d)@." time reader)
    t
