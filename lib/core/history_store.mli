(** Per-object write histories for the regular protocol (Figure 5).

    Object [s_i] keeps, for every writer timestamp it has heard of, the
    pair ⟨pw, w⟩ it received; [w = None] is the paper's nil (the object
    saw the PW round of that write but not yet its W round, or the entry
    was implied by a later PW).  Entry 0 is pre-installed as
    ⟨pw0, w0⟩. *)

type entry = { pw : Tsval.t; w : Wtuple.t option }

type t

val init : t
(** history[0] = ⟨⟨0,⊥⟩, w0⟩. *)

val empty : t
(** No entries at all — only for representing pruned suffixes and
    Byzantine forgeries; honest objects start from {!init}. *)

val find : t -> ts:int -> entry option
(** [None] is the paper's "entry does not exist", to be read as
    ⟨nil, nil⟩ (§5, Figure 6 preamble). *)

val set : t -> ts:int -> entry -> t

val on_pw : t -> ts':int -> pw':Tsval.t -> w':Wtuple.t -> t
(** Figure 5 lines 5–7: [history[ts'] := ⟨pw', nil⟩];
    [history[ts'-1] := ⟨w'.tsval, w'⟩] (the PW of write [ts'] certifies
    the complete tuple of write [ts'-1]). *)

val on_w : t -> ts':int -> pw':Tsval.t -> w':Wtuple.t -> t
(** Figure 5 line 12: [history[ts'] := ⟨pw', w'⟩]. *)

val suffix : t -> from_ts:int -> t
(** Entries with timestamp >= [from_ts] — the §5.1 optimization's
    reply pruning. *)

val max_ts : t -> int
(** Highest timestamp present; -1 when empty. *)

val length : t -> int

val tuples : t -> Wtuple.t list
(** All non-nil [w] tuples, ascending timestamp — the candidates an
    object's reply contributes (Figure 6 line 20). *)

val bindings : t -> (int * entry) list

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
