(** Byzantine object behaviours.

    The paper's malicious processes may change state arbitrarily and put
    arbitrary messages into any channel (§2.1).  A behaviour is therefore
    just a stateful handler from a delivered message to the messages the
    adversary chooses to send; it is polymorphic in the wire message type
    so that one strategy library serves every protocol sharing that
    type.  Factories receive a private random stream so that randomized
    adversaries stay deterministic per scenario seed. *)

type 'msg behaviour = {
  handle : src:Sim.Proc_id.t -> now:int -> 'msg -> (Sim.Proc_id.t * 'msg) list;
}

type 'msg factory =
  cfg:Quorum.Config.t -> index:int -> rng:Sim.Prng.t -> 'msg behaviour

let silent : 'msg factory =
 fun ~cfg:_ ~index:_ ~rng:_ -> { handle = (fun ~src:_ ~now:_ _ -> []) }
