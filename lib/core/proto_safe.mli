(** The safe storage of Figures 2-4 packaged as a protocol: Figure 3
    objects, the Figure 2 writer, and the Figure 4 reader behind the
    {!Protocol_intf.S} interface the scenario runtime, model checker and
    lower-bound analysis all consume. *)

include Protocol_intf.S with type msg = Messages.t
