(** The shape every storage protocol exposes to the scenario runtime.

    A protocol bundles three pure state machines — base object, writer,
    reader — over its own wire message type.  The runtime ({!Scenario})
    owns all side effects: it broadcasts the messages the machines
    return, feeds deliveries back in, and records operations.  The
    paper's safe and regular storages and every baseline implement this
    signature, which is what makes the cross-protocol experiments (E4)
    one table loop instead of per-protocol drivers. *)

module type S = sig
  val name : string

  (** {2 Wire messages} *)

  type msg

  val msg_info : msg -> string

  val msg_size_words : msg -> int

  val msg_class : msg -> Obs.Wire.t
  (** Observability classification (operation kind, round, direction);
      lets the engine and metrics layer attribute traffic to protocol
      rounds without decoding the wire format. *)

  (** {2 Base object} *)

  type obj

  val obj_init : cfg:Quorum.Config.t -> index:int -> obj

  val obj_handle : obj -> src:Sim.Proc_id.t -> msg -> obj * msg option
  (** One atomic step; the optional message is the reply to [src]. *)

  (** {2 Writer} *)

  type writer

  val writer_init : cfg:Quorum.Config.t -> writer

  val writer_start : writer -> Value.t -> (writer * msg, string) result
  (** Returns the round-1 broadcast. *)

  val writer_on_msg :
    writer -> obj:int -> msg -> writer * msg Events.client_event list

  (** {2 Reader} *)

  type reader

  val reader_init : cfg:Quorum.Config.t -> j:int -> reader

  val reader_start : reader -> (reader * msg, string) result
  (** Returns the round-1 broadcast. *)

  val reader_on_msg :
    reader -> obj:int -> msg -> reader * msg Events.client_event list

  val reader_on_reconnect : reader -> reader
  (** Transport hook: a connection to a base object was re-established
      (client reconnect or server restart).  Protocols that keep
      client-side cached state derived from object replies (the §5.1
      timestamp cache of regular-gc) resync it here; pure protocols
      return the reader unchanged.  The simulator never calls this —
      its channels do not fail — but the network client calls it on
      every successful re-dial. *)
end
