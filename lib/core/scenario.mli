(** End-to-end simulated runs of a storage protocol.

    [Make (P)] drives [P]'s pure state machines over the discrete-event
    engine: it spawns the base objects (honest or Byzantine), serializes
    each client's operations (one outstanding operation per client, §2.2),
    records the resulting history for the {!Histories} checkers, and
    accumulates the per-operation metrics (latency, rounds, reply bytes)
    the experiments tabulate. *)

module Make (P : Protocol_intf.S) : sig
  type fault_plan = {
    crashes : (Sim.Proc_id.t * int) list;  (** process, crash time *)
    byzantine : (int * P.msg Byz.factory) list;  (** object index, behaviour *)
  }

  val no_faults : fault_plan

  type outcome = {
    op : Schedule.op;
    invoked_at : int;
    completed_at : int;
    rounds : int;
    result : Value.t option;  (** [Some] for reads *)
  }

  type report = {
    history : string Histories.Op.t list;
        (** the run's operation history (⊥ mapped to {!Histories.Op.Bottom}) *)
    outcomes : outcome list;  (** completed operations, completion order *)
    trace : Sim.Trace.t option;
    words_to_readers : int;
        (** total abstract size of messages delivered to readers *)
    messages_delivered : int;
    events_processed : int;
    final_time : int;
  }

  val run :
    ?max_events:int ->
    ?trace:bool ->
    cfg:Quorum.Config.t ->
    seed:int ->
    delay:Sim.Delay.t ->
    faults:fault_plan ->
    Schedule.t ->
    report
  (** Execute the schedule to quiescence (or [max_events], default 1e6).
      Deterministic in [(cfg, seed, delay, faults, schedule)]. *)
end
