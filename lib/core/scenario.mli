(** End-to-end simulated runs of a storage protocol.

    [Make (P)] drives [P]'s pure state machines over the discrete-event
    engine: it spawns the base objects (honest or Byzantine), serializes
    each client's operations (one outstanding operation per client, §2.2),
    records the resulting history for the {!Histories} checkers, and
    accumulates the per-operation metrics (latency, rounds, reply bytes)
    the experiments tabulate. *)

module Make (P : Protocol_intf.S) : sig
  type fault_plan = {
    crashes : (Sim.Proc_id.t * int) list;  (** process, crash time *)
    byzantine : (int * P.msg Byz.factory) list;  (** object index, behaviour *)
  }

  val no_faults : fault_plan

  (** Scripted chaos events, beyond the static [fault_plan]: the devices
      a fault-injection campaign composes.  All times are absolute
      virtual times; windows are half-open [[from_, until)]. *)
  type chaos_event =
    | Chaos_crash of { proc : Sim.Proc_id.t; at : int }
        (** like [fault_plan.crashes], but schedulable alongside the
            other chaos actions *)
    | Chaos_recover of { obj : int; at : int; wipe : bool }
        (** restart base object [obj]: clear its crash flag and
            re-install the honest automaton — with freshly initialized
            state if [wipe], with the state persisted at crash time
            otherwise.  Messages dropped while it was down stay lost. *)
    | Chaos_block of {
        src : Sim.Proc_id.t;
        dst : Sim.Proc_id.t;
        from_ : int;
        until : int;
      }  (** transient one-way link outage (messages buffered, not lost) *)
    | Chaos_isolate of { obj : int; from_ : int; until : int }
        (** transient partition: block every link to and from [obj] *)
    | Chaos_duplicate of {
        src : Sim.Proc_id.t;
        dst : Sim.Proc_id.t;
        copies : int;
        from_ : int;
        until : int;
      }  (** the link delivers [1 + copies] copies of each message *)
    | Chaos_switch of { obj : int; at : int; factory : P.msg Byz.factory }
        (** object [obj] turns Byzantine mid-run with the given
            behaviour (its honest state is abandoned) *)

  type outcome = {
    op : Schedule.op;
    invoked_at : int;
    completed_at : int;
    rounds : int;
    result : Value.t option;  (** [Some] for reads *)
  }

  type report = {
    history : string Histories.Op.t list;
        (** the run's operation history (⊥ mapped to {!Histories.Op.Bottom}) *)
    outcomes : outcome list;  (** completed operations, completion order *)
    trace : Sim.Trace.t option;
    spans : Obs.Span.t list;
        (** one span per invoked operation, invocation order; spans link
            to the raw trace entries recorded while they were open (when
            tracing) and stay open if the operation never completed *)
    words_to_readers : int;
        (** total abstract size of messages delivered to readers *)
    messages_delivered : int;
    events_processed : int;
    quiescent : bool;
        (** the run drained its event queue (did not hit [max_events]);
            only then is a pending operation a liveness verdict *)
    final_time : int;
  }

  val run :
    ?max_events:int ->
    ?trace:bool ->
    ?chaos:chaos_event list ->
    ?metrics:Obs.Metrics.t ->
    ?clock:(unit -> float) ->
    cfg:Quorum.Config.t ->
    seed:int ->
    delay:Sim.Delay.t ->
    faults:fault_plan ->
    Schedule.t ->
    report
  (** Execute the schedule to quiescence (or [max_events], default 1e6).
      Deterministic in [(cfg, seed, delay, faults, chaos, schedule)].

      With [metrics], the run populates the registry: engine counters
      and queue-depth histograms, per-class wire counters, and
      per-operation histograms derived from the spans ([op.read.rounds],
      [op.write.latency], ...).  [clock] additionally meters host
      wall-clock per simulated event (see {!Sim.Engine.create}); leave
      it unset wherever determinism matters. *)
end
