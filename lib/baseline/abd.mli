(** The ABD register (Attiya-Bar-Noy-Dolev [3]) — the paper's crash-only
    ancestor ([b = 0]).

    SWMR emulation over [s >= 2t + 1] objects: a WRITE broadcasts
    ⟨ts, v⟩ and waits for [s - t] acknowledgments (one round — the
    single writer needs no timestamp discovery); a READ queries all
    objects, waits for [s - t] replies and returns the highest-timestamp
    pair.

    [Regular] returns immediately (one-round reads, regular semantics).
    [Atomic] adds the write-back phase: the reader propagates the chosen
    pair to a quorum before returning, upgrading to atomic semantics —
    with the classic fast-path optimization of skipping the write-back
    when all replies already agree on the timestamp (cf. the paper's
    refs [8, 9] on reads that are fast absent contention).

    Byzantine objects defeat ABD trivially — see the E4 experiment; the
    protocol is benchmarked under crash faults only, its design regime. *)

type msg =
  | Write_req of { ts : int; v : Core.Value.t }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; ts : int; v : Core.Value.t }
  | Write_back of { rid : int; ts : int; v : Core.Value.t }
  | Write_back_ack of { rid : int }

module Regular : Core.Protocol_intf.S with type msg = msg

module Atomic : Core.Protocol_intf.S with type msg = msg

(** {2 Byzantine strategies for the attack experiments} *)

val byz_forge_high : value:string -> ts_boost:int -> msg Core.Byz.factory
(** Replies to reads with a forged pair above every timestamp seen —
    breaks ABD's safety with a single malicious object. *)
