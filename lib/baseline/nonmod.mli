(** Safe storage with {e non-modifying} readers — the regime of the
    paper's reference [1], where the read-complexity lower bound is
    [b + 1] rounds (the conjecture the core algorithm refutes for
    state-modifying readers).

    The WRITE mirrors the paper's two-round pre-write/write pattern but
    carries plain timestamp-value pairs (there is no reader timestamp
    machinery — readers never write).  A READ proceeds in {e phases}:
    each phase re-queries all objects and waits for [s - t] fresh
    replies; evidence accumulates across phases.  A candidate (a [w]
    pair from a phase-1 reply) is returnable once [b + 1] distinct
    objects vouch for it (same pair, or a newer one, in [pw] or [w]) and
    no live candidate carries a higher timestamp; a candidate dies once
    [t + b + 1] distinct objects contradict it.  An empty candidate set
    (possible only under concurrency) returns ⊥.

    This is a faithful-in-regime reconstruction of [1]'s non-modifying
    reader rather than a line-by-line port (the original is specified
    for [t = b]); its round count grows with Byzantine interference —
    one fake high candidate costs roughly one extra phase to dissent
    away — which is exactly the behaviour the E4 experiment contrasts
    with the core protocol's constant two rounds.  Under a worst-case
    asynchronous adversary its phase count is not bounded by [b + 1];
    DESIGN.md records this substitution. *)

type msg =
  | Pw of { ts : int; tv : Core.Tsval.t }
  | Pw_ack of { ts : int }
  | W of { ts : int; tv : Core.Tsval.t }
  | W_ack of { ts : int }
  | Read of { rid : int; phase : int }
  | Read_ack of { rid : int; phase : int; pw : Core.Tsval.t; w : Core.Tsval.t }

include Core.Protocol_intf.S with type msg := msg

val byz_forge_high : value:string -> ts_boost:int -> msg Core.Byz.factory
(** Vouch for a fake high candidate in every reply — forces extra read
    phases but never [b + 1] matching vouchers, so safety holds. *)

val byz_stale : msg Core.Byz.factory
(** Always reply with the initial state. *)
