(** Regular storage over {e self-verifying} (authenticated) data — the
    paper's remark that with data authentication [19], regular storage
    with fast reads and writes at optimal resilience is "fairly simple"
    [15].

    Signatures are simulated: a {!sigval} carries a [genuine] bit that
    only the writer's code path sets; Byzantine strategies may replay
    genuine pairs or fabricate pairs with [genuine = false], never forge
    [genuine = true] for an unwritten pair — the same unforgeability a
    real signature scheme provides (DESIGN.md records this
    substitution).

    WRITE: one round (broadcast the signed pair, await [s - t] acks).
    READ: one round (await [s - t] replies, return the
    highest-timestamp genuine pair).  Correctness needs only that read
    and write quorums intersect in a correct object:
    [2(s - t) - s - b >= 1], satisfied at optimal resilience. *)

type sigval = { ts : int; v : Core.Value.t; genuine : bool }

type msg =
  | Write_req of { sv : sigval }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; sv : sigval }

include Core.Protocol_intf.S with type msg := msg

val byz_forge : value:string -> ts_boost:int -> msg Core.Byz.factory
(** Fabricates high-timestamp pairs — necessarily with
    [genuine = false], so verifying readers discard them. *)

val byz_replay_stale : msg Core.Byz.factory
(** Replays the oldest genuine pair it ever stored. *)
