open Core

type msg =
  | Write_req of { ts : int; v : Value.t }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; ts : int; v : Value.t }

let name = "fast-safe"

let msg_info = function
  | Write_req { ts; _ } -> Printf.sprintf "WRITE(ts=%d)" ts
  | Write_ack { ts } -> Printf.sprintf "WRITE_ACK(ts=%d)" ts
  | Read_req { rid } -> Printf.sprintf "READ(rid=%d)" rid
  | Read_ack { rid; ts; _ } -> Printf.sprintf "READ_ACK(rid=%d,ts=%d)" rid ts

let value_words = function Value.Bottom -> 1 | Value.V s -> 1 + (String.length s / 8)

let msg_size_words = function
  | Write_req { v; _ } | Read_ack { v; _ } -> 2 + value_words v
  | Write_ack _ | Read_req _ -> 2

let msg_class = function
  | Write_req _ -> Obs.Wire.write ~round:1 ~request:true
  | Write_ack _ -> Obs.Wire.write ~round:1 ~request:false
  | Read_req _ -> Obs.Wire.read ~round:1 ~request:true
  | Read_ack _ -> Obs.Wire.read ~round:1 ~request:false

type obj = { index : int; ts : int; v : Value.t }

let obj_init ~cfg:_ ~index = { index; ts = 0; v = Value.bottom }

let obj_handle o ~src:_ msg =
  match msg with
  | Write_req { ts; v } ->
      let o = if ts > o.ts then { o with ts; v } else o in
      (o, Some (Write_ack { ts }))
  | Read_req { rid } -> (o, Some (Read_ack { rid; ts = o.ts; v = o.v }))
  | Write_ack _ | Read_ack _ -> (o, None)

type writer = { cfg : Quorum.Config.t; wts : int; acks : Ints.Set.t option }

let writer_init ~cfg = { cfg; wts = 0; acks = None }

let writer_start w v =
  match w.acks with
  | Some _ -> Error "write already in progress"
  | None ->
      if Value.is_bottom v then Error "bottom is not a valid input value"
      else
        let ts = w.wts + 1 in
        ( Ok ({ w with wts = ts; acks = Some Ints.Set.empty }, Write_req { ts; v })
          : (writer * msg, string) result )

let writer_on_msg w ~obj msg =
  match (w.acks, msg) with
  | Some acks, Write_ack { ts } when ts = w.wts ->
      let acks = Ints.Set.add obj acks in
      if Ints.Set.cardinal acks >= Quorum.Config.quorum w.cfg then
        ({ w with acks = None }, [ Events.Write_done { rounds = 1 } ])
      else ({ w with acks = Some acks }, [])
  | _ -> (w, [])

type reader = {
  rcfg : Quorum.Config.t;
  j : int;
  rid : int;
  replies : (int * Value.t) Ints.Map.t option;
}

let reader_init ~cfg ~j = { rcfg = cfg; j; rid = 0; replies = None }

let reader_start r =
  match r.replies with
  | Some _ -> Error "read already in progress"
  | None ->
      let rid = r.rid + 1 in
      ( Ok ({ r with rid; replies = Some Ints.Map.empty }, Read_req { rid })
        : (reader * msg, string) result )

(* Highest pair endorsed identically by >= b+1 objects; bottom if none. *)
let best_endorsed ~threshold replies =
  let counts = Hashtbl.create 8 in
  Ints.Map.iter
    (fun _ pair ->
      Hashtbl.replace counts pair (1 + Option.value (Hashtbl.find_opt counts pair) ~default:0))
    replies;
  Hashtbl.fold
    (fun (ts, v) n ((best_ts, _) as best) ->
      if n >= threshold && ts > best_ts then (ts, v) else best)
    counts (0, Value.bottom)

let reader_on_msg r ~obj msg =
  match (r.replies, msg) with
  | Some replies, Read_ack { rid; ts; v } when rid = r.rid ->
      let replies = Ints.Map.add obj (ts, v) replies in
      if Ints.Map.cardinal replies >= Quorum.Config.quorum r.rcfg then
        let threshold = r.rcfg.Quorum.Config.b + 1 in
        let _, v = best_endorsed ~threshold replies in
        ({ r with replies = None }, [ Events.Read_done { value = v; rounds = 1 } ])
      else ({ r with replies = Some replies }, [])
  | _ -> (r, [])

let wrap_read_ack f : msg Byz.factory =
 fun ~cfg ~index ~rng:_ ->
  let state = ref (obj_init ~cfg ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = obj_handle !state ~src msg in
        state := state';
        match reply with
        | None -> []
        | Some (Read_ack { rid; ts; v }) ->
            let ts, v = f ~honest:(ts, v) in
            [ (src, Read_ack { rid; ts; v }) ]
        | Some m -> [ (src, m) ])
  }

let byz_forge_high ~value ~ts_boost =
  wrap_read_ack (fun ~honest:(ts, _) -> (ts + ts_boost, Value.v value))

let byz_endorse_forgery ~value ~ts =
  wrap_read_ack (fun ~honest:_ -> (ts, Value.v value))

(* No client-side cached state to resync after a reconnect. *)
let reader_on_reconnect r = r
