open Core

type msg =
  | Write_req of { ts : int; v : Value.t }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; ts : int; v : Value.t }
  | Write_back of { rid : int; ts : int; v : Value.t }
  | Write_back_ack of { rid : int }

let msg_info = function
  | Write_req { ts; _ } -> Printf.sprintf "WRITE(ts=%d)" ts
  | Write_ack { ts } -> Printf.sprintf "WRITE_ACK(ts=%d)" ts
  | Read_req { rid } -> Printf.sprintf "READ(rid=%d)" rid
  | Read_ack { rid; ts; _ } -> Printf.sprintf "READ_ACK(rid=%d,ts=%d)" rid ts
  | Write_back { rid; ts; _ } -> Printf.sprintf "WB(rid=%d,ts=%d)" rid ts
  | Write_back_ack { rid } -> Printf.sprintf "WB_ACK(rid=%d)" rid

let value_words = function Value.Bottom -> 1 | Value.V s -> 1 + (String.length s / 8)

let msg_size_words = function
  | Write_req { v; _ } | Read_ack { v; _ } | Write_back { v; _ } ->
      2 + value_words v
  | Write_ack _ | Read_req _ | Write_back_ack _ -> 2

(* The reader's write-back is its second round. *)
let msg_class = function
  | Write_req _ -> Obs.Wire.write ~round:1 ~request:true
  | Write_ack _ -> Obs.Wire.write ~round:1 ~request:false
  | Read_req _ -> Obs.Wire.read ~round:1 ~request:true
  | Read_ack _ -> Obs.Wire.read ~round:1 ~request:false
  | Write_back _ -> Obs.Wire.read ~round:2 ~request:true
  | Write_back_ack _ -> Obs.Wire.read ~round:2 ~request:false

(* Object: the classic ⟨ts, v⟩ cell; adopts any fresher pair, including
   reader write-backs. *)
type obj = { index : int; ts : int; v : Value.t }

let obj_init ~cfg:_ ~index = { index; ts = 0; v = Value.bottom }

let obj_handle o ~src:_ msg =
  match msg with
  | Write_req { ts; v } ->
      let o = if ts > o.ts then { o with ts; v } else o in
      (o, Some (Write_ack { ts }))
  | Write_back { rid; ts; v } ->
      let o = if ts > o.ts then { o with ts; v } else o in
      (o, Some (Write_back_ack { rid }))
  | Read_req { rid } -> (o, Some (Read_ack { rid; ts = o.ts; v = o.v }))
  | Write_ack _ | Read_ack _ | Write_back_ack _ -> (o, None)

(* Writer: one round. *)
type writer = {
  cfg : Quorum.Config.t;
  wts : int;
  pending : (int * Ints.Set.t) option;  (* ts awaited, acks *)
}

let writer_init ~cfg = { cfg; wts = 0; pending = None }

let writer_start w v =
  match w.pending with
  | Some _ -> Error "write already in progress"
  | None ->
      if Value.is_bottom v then Error "bottom is not a valid input value"
      else
        let ts = w.wts + 1 in
        ( Ok
            ( { w with wts = ts; pending = Some (ts, Ints.Set.empty) },
              Write_req { ts; v } )
          : (writer * msg, string) result )

let writer_on_msg w ~obj msg =
  match (w.pending, msg) with
  | Some (ts, acks), Write_ack { ts = ts' } when ts' = ts ->
      let acks = Ints.Set.add obj acks in
      if Ints.Set.cardinal acks >= Quorum.Config.quorum w.cfg then
        ({ w with pending = None }, [ Events.Write_done { rounds = 1 } ])
      else ({ w with pending = Some (ts, acks) }, [])
  | _ -> (w, [])

(* Reader: collect a quorum, pick the highest pair, optionally write it
   back. *)
type read_phase =
  | Collect of { replies : (int * Value.t) Ints.Map.t }  (* obj -> ts,v *)
  | Writing_back of { ts : int; v : Value.t; acks : Ints.Set.t }

type reader = {
  rcfg : Quorum.Config.t;
  j : int;
  rid : int;
  phase : read_phase option;
}

let reader_init ~cfg ~j = { rcfg = cfg; j; rid = 0; phase = None }

let reader_start r =
  match r.phase with
  | Some _ -> Error "read already in progress"
  | None ->
      let rid = r.rid + 1 in
      ( Ok
          ( { r with rid; phase = Some (Collect { replies = Ints.Map.empty }) },
            Read_req { rid } )
        : (reader * msg, string) result )

let best replies =
  Ints.Map.fold
    (fun _ (ts, v) (bts, bv) -> if ts > bts then (ts, v) else (bts, bv))
    replies
    (0, Value.bottom)

let make_reader ~write_back =
  let reader_on_msg r ~obj msg =
    match (r.phase, msg) with
    | Some (Collect { replies }), Read_ack { rid; ts; v } when rid = r.rid ->
        let replies = Ints.Map.add obj (ts, v) replies in
        if Ints.Map.cardinal replies >= Quorum.Config.quorum r.rcfg then begin
          let ts, v = best replies in
          let unanimous =
            Ints.Map.for_all (fun _ (ts', _) -> ts' = ts) replies
          in
          if write_back && not unanimous then
            ( {
                r with
                phase = Some (Writing_back { ts; v; acks = Ints.Set.empty });
              },
              [ Events.Broadcast (Write_back { rid = r.rid; ts; v }) ] )
          else
            ({ r with phase = None }, [ Events.Read_done { value = v; rounds = 1 } ])
        end
        else ({ r with phase = Some (Collect { replies }) }, [])
    | Some (Writing_back { ts; v; acks }), Write_back_ack { rid } when rid = r.rid
      ->
        let acks = Ints.Set.add obj acks in
        if Ints.Set.cardinal acks >= Quorum.Config.quorum r.rcfg then
          ({ r with phase = None }, [ Events.Read_done { value = v; rounds = 2 } ])
        else ({ r with phase = Some (Writing_back { ts; v; acks }) }, [])
    | _ -> (r, [])
  in
  reader_on_msg

module Common = struct
  type nonrec msg = msg

  let msg_info = msg_info

  let msg_size_words = msg_size_words

  let msg_class = msg_class

  type nonrec obj = obj

  let obj_init = obj_init

  let obj_handle o ~src msg = obj_handle o ~src msg

  type nonrec writer = writer

  let writer_init = writer_init

  let writer_start = writer_start

  let writer_on_msg = writer_on_msg

  type nonrec reader = reader

  let reader_init = reader_init

  let reader_start = reader_start

  (* No client-side cached state to resync after a reconnect. *)
  let reader_on_reconnect r = r
end

module Regular = struct
  let name = "abd"

  include Common

  let reader_on_msg = make_reader ~write_back:false
end

module Atomic = struct
  let name = "abd-atomic"

  include Common

  let reader_on_msg = make_reader ~write_back:true
end

let byz_forge_high ~value ~ts_boost : msg Byz.factory =
 fun ~cfg:_ ~index ~rng:_ ->
  let state = ref (obj_init ~cfg:(Quorum.Config.make_exn ~s:1 ~t:0 ~b:0) ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = obj_handle !state ~src msg in
        state := state';
        match reply with
        | None -> []
        | Some (Read_ack { rid; ts; v = _ }) ->
            [ (src, Read_ack { rid; ts = ts + ts_boost; v = Value.v value }) ]
        | Some m -> [ (src, m) ])
  }
