open Core

type sigval = { ts : int; v : Value.t; genuine : bool }

type msg =
  | Write_req of { sv : sigval }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; sv : sigval }

let name = "auth"

let initial_sv = { ts = 0; v = Value.bottom; genuine = true }

let msg_info = function
  | Write_req { sv } -> Printf.sprintf "WRITE(ts=%d)" sv.ts
  | Write_ack { ts } -> Printf.sprintf "WRITE_ACK(ts=%d)" ts
  | Read_req { rid } -> Printf.sprintf "READ(rid=%d)" rid
  | Read_ack { rid; sv } -> Printf.sprintf "READ_ACK(rid=%d,ts=%d)" rid sv.ts

let value_words = function Value.Bottom -> 1 | Value.V s -> 1 + (String.length s / 8)

let msg_size_words = function
  | Write_req { sv } | Read_ack { sv; _ } -> 3 + value_words sv.v
  | Write_ack _ | Read_req _ -> 2

let msg_class = function
  | Write_req _ -> Obs.Wire.write ~round:1 ~request:true
  | Write_ack _ -> Obs.Wire.write ~round:1 ~request:false
  | Read_req _ -> Obs.Wire.read ~round:1 ~request:true
  | Read_ack _ -> Obs.Wire.read ~round:1 ~request:false

type obj = { index : int; sv : sigval }

let obj_init ~cfg:_ ~index = { index; sv = initial_sv }

let obj_handle o ~src:_ msg =
  match msg with
  | Write_req { sv } ->
      let o = if sv.ts > o.sv.ts then { o with sv } else o in
      (o, Some (Write_ack { ts = sv.ts }))
  | Read_req { rid } -> (o, Some (Read_ack { rid; sv = o.sv }))
  | Write_ack _ | Read_ack _ -> (o, None)

type writer = { cfg : Quorum.Config.t; wts : int; acks : Ints.Set.t option }

let writer_init ~cfg = { cfg; wts = 0; acks = None }

let writer_start w v =
  match w.acks with
  | Some _ -> Error "write already in progress"
  | None ->
      if Value.is_bottom v then Error "bottom is not a valid input value"
      else
        let ts = w.wts + 1 in
        (* The genuine bit is the simulated signature: only this code
           path creates [genuine = true] pairs with fresh timestamps. *)
        ( Ok
            ( { w with wts = ts; acks = Some Ints.Set.empty },
              Write_req { sv = { ts; v; genuine = true } } )
          : (writer * msg, string) result )

let writer_on_msg w ~obj msg =
  match (w.acks, msg) with
  | Some acks, Write_ack { ts } when ts = w.wts ->
      let acks = Ints.Set.add obj acks in
      if Ints.Set.cardinal acks >= Quorum.Config.quorum w.cfg then
        ({ w with acks = None }, [ Events.Write_done { rounds = 1 } ])
      else ({ w with acks = Some acks }, [])
  | _ -> (w, [])

type reader = {
  rcfg : Quorum.Config.t;
  j : int;
  rid : int;
  replies : sigval Ints.Map.t option;
}

let reader_init ~cfg ~j = { rcfg = cfg; j; rid = 0; replies = None }

let reader_start r =
  match r.replies with
  | Some _ -> Error "read already in progress"
  | None ->
      let rid = r.rid + 1 in
      ( Ok ({ r with rid; replies = Some Ints.Map.empty }, Read_req { rid })
        : (reader * msg, string) result )

let reader_on_msg r ~obj msg =
  match (r.replies, msg) with
  | Some replies, Read_ack { rid; sv } when rid = r.rid ->
      let replies = Ints.Map.add obj sv replies in
      if Ints.Map.cardinal replies >= Quorum.Config.quorum r.rcfg then
        (* Return the highest-timestamp pair whose signature verifies. *)
        let best =
          Ints.Map.fold
            (fun _ sv acc ->
              if sv.genuine && sv.ts > acc.ts then sv else acc)
            replies initial_sv
        in
        ({ r with replies = None },
         [ Events.Read_done { value = best.v; rounds = 1 } ])
      else ({ r with replies = Some replies }, [])
  | _ -> (r, [])

let byz_forge ~value ~ts_boost : msg Byz.factory =
 fun ~cfg ~index ~rng:_ ->
  let state = ref (obj_init ~cfg ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = obj_handle !state ~src msg in
        state := state';
        match reply with
        | None -> []
        | Some (Read_ack { rid; sv }) ->
            (* Cannot forge the writer's signature: the fabricated pair is
               necessarily non-genuine. *)
            let fake =
              { ts = sv.ts + ts_boost; v = Value.v value; genuine = false }
            in
            [ (src, Read_ack { rid; sv = fake }) ]
        | Some m -> [ (src, m) ])
  }

let byz_replay_stale : msg Byz.factory =
 fun ~cfg ~index ~rng:_ ->
  let state = ref (obj_init ~cfg ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = obj_handle !state ~src msg in
        state := state';
        match reply with
        | None -> []
        | Some (Read_ack { rid; _ }) ->
            [ (src, Read_ack { rid; sv = initial_sv }) ]
        | Some m -> [ (src, m) ])
  }

(* No client-side cached state to resync after a reconnect. *)
let reader_on_reconnect r = r
