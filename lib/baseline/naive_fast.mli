(** The strawman every-READ-is-fast protocol that Proposition 1 dooms.

    One-round unauthenticated reads over any [s]: the reader collects
    [s - t] replies and trusts the highest-timestamp pair it sees.  On
    [s <= 2t + 2b] objects this {e cannot} be safe — the E1 experiment
    replays the paper's [run4]/[run5] adversary against it and exhibits
    the violation, and E4 quantifies how often random Byzantine
    strategies break it.  It doubles as the negative control proving our
    checkers can fail protocols, not just pass them.

    WRITE is one round too (broadcast ⟨ts, v⟩, await [s - t] acks). *)

type msg =
  | Write_req of { ts : int; v : Core.Value.t }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; ts : int; v : Core.Value.t }

include Core.Protocol_intf.S with type msg := msg

val byz_forge_high : value:string -> ts_boost:int -> msg Core.Byz.factory
(** One forged reply is enough to steer every read. *)

val byz_simulate_write : value:string -> ts:int -> msg Core.Byz.factory
(** The [run5] adversary: pretend a WRITE happened that never did. *)

val byz_replay_initial : msg Core.Byz.factory
(** The [run4] adversary: pretend the completed WRITE never happened. *)
