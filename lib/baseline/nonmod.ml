open Core

type msg =
  | Pw of { ts : int; tv : Tsval.t }
  | Pw_ack of { ts : int }
  | W of { ts : int; tv : Tsval.t }
  | W_ack of { ts : int }
  | Read of { rid : int; phase : int }
  | Read_ack of { rid : int; phase : int; pw : Tsval.t; w : Tsval.t }

let name = "nonmod"

let msg_info = function
  | Pw { ts; _ } -> Printf.sprintf "PW(ts=%d)" ts
  | Pw_ack { ts } -> Printf.sprintf "PW_ACK(ts=%d)" ts
  | W { ts; _ } -> Printf.sprintf "W(ts=%d)" ts
  | W_ack { ts } -> Printf.sprintf "W_ACK(ts=%d)" ts
  | Read { rid; phase } -> Printf.sprintf "READ(rid=%d,ph=%d)" rid phase
  | Read_ack { rid; phase; _ } ->
      Printf.sprintf "READ_ACK(rid=%d,ph=%d)" rid phase

let value_words = function Value.Bottom -> 1 | Value.V s -> 1 + (String.length s / 8)

let tsval_words (tv : Tsval.t) = 1 + value_words tv.Tsval.v

let msg_size_words = function
  | Pw { tv; _ } | W { tv; _ } -> 1 + tsval_words tv
  | Pw_ack _ | W_ack _ -> 1
  | Read _ -> 2
  | Read_ack { pw; w; _ } -> 2 + tsval_words pw + tsval_words w

let msg_class = function
  | Pw _ -> Obs.Wire.write ~round:1 ~request:true
  | Pw_ack _ -> Obs.Wire.write ~round:1 ~request:false
  | W _ -> Obs.Wire.write ~round:2 ~request:true
  | W_ack _ -> Obs.Wire.write ~round:2 ~request:false
  | Read { phase; _ } -> Obs.Wire.read ~round:phase ~request:true
  | Read_ack { phase; _ } -> Obs.Wire.read ~round:phase ~request:false

(* Object: pre-written and written pairs; readers never change it. *)
type obj = { index : int; ts : int; opw : Tsval.t; ow : Tsval.t }

let obj_init ~cfg:_ ~index =
  { index; ts = 0; opw = Tsval.init; ow = Tsval.init }

let obj_handle o ~src:_ msg =
  match msg with
  | Pw { ts; tv } ->
      if ts > o.ts then ({ o with ts; opw = tv }, Some (Pw_ack { ts }))
      else (o, None)
  | W { ts; tv } ->
      if ts >= o.ts then
        ({ o with ts; opw = tv; ow = tv }, Some (W_ack { ts }))
      else (o, None)
  | Read { rid; phase } ->
      (o, Some (Read_ack { rid; phase; pw = o.opw; w = o.ow }))
  | Pw_ack _ | W_ack _ | Read_ack _ -> (o, None)

(* Writer: the paper's two-round pre-write/write, without the reader
   timestamp collection. *)
type wphase = Wpw of Ints.Set.t | Ww of Ints.Set.t

type writer = {
  cfg : Quorum.Config.t;
  wts : int;
  wtv : Tsval.t;  (* the pair being written *)
  wphase : wphase option;
}

let writer_init ~cfg = { cfg; wts = 0; wtv = Tsval.init; wphase = None }

let writer_start w v =
  match w.wphase with
  | Some _ -> Error "write already in progress"
  | None ->
      if Value.is_bottom v then Error "bottom is not a valid input value"
      else
        let ts = w.wts + 1 in
        let tv = Tsval.make ~ts ~v in
        ( Ok
            ( { w with wts = ts; wtv = tv; wphase = Some (Wpw Ints.Set.empty) },
              Pw { ts; tv } )
          : (writer * msg, string) result )

let writer_on_msg w ~obj msg =
  let quorum = Quorum.Config.quorum w.cfg in
  match (w.wphase, msg) with
  | Some (Wpw acks), Pw_ack { ts } when ts = w.wts ->
      let acks = Ints.Set.add obj acks in
      if Ints.Set.cardinal acks >= quorum then
        ( { w with wphase = Some (Ww Ints.Set.empty) },
          [ Events.Broadcast (W { ts = w.wts; tv = w.wtv }) ] )
      else ({ w with wphase = Some (Wpw acks) }, [])
  | Some (Ww acks), W_ack { ts } when ts = w.wts ->
      let acks = Ints.Set.add obj acks in
      if Ints.Set.cardinal acks >= quorum then
        ({ w with wphase = None }, [ Events.Write_done { rounds = 2 } ])
      else ({ w with wphase = Some (Ww acks) }, [])
  | _ -> (w, [])

(* Reader: evidence accumulates across phases; each phase is a fresh
   quorum-wide poll. *)
type rdata = {
  phase : int;
  phase_replies : Ints.Set.t;  (* objects heard in the current phase *)
  reports : (Tsval.t * Tsval.t) list Ints.Map.t;  (* cumulative per object *)
  candidates : Tsval.t list;  (* from phase-1 w fields, eliminations applied *)
  phase1_complete : bool;
}

type reader = {
  rcfg : Quorum.Config.t;
  j : int;
  rid : int;
  rdata : rdata option;
}

let reader_init ~cfg ~j = { rcfg = cfg; j; rid = 0; rdata = None }

let reader_start r =
  match r.rdata with
  | Some _ -> Error "read already in progress"
  | None ->
      let rid = r.rid + 1 in
      let rdata =
        {
          phase = 1;
          phase_replies = Ints.Set.empty;
          reports = Ints.Map.empty;
          candidates = [];
          phase1_complete = false;
        }
      in
      ( Ok ({ r with rid; rdata = Some rdata }, Read { rid; phase = 1 })
        : (reader * msg, string) result )

let reports_of data i =
  Option.value (Ints.Map.find_opt i data.reports) ~default:[]

let vouches data i (c : Tsval.t) =
  List.exists
    (fun (pw, w) ->
      Tsval.equal pw c || pw.Tsval.ts > c.Tsval.ts || Tsval.equal w c
      || w.Tsval.ts > c.Tsval.ts)
    (reports_of data i)

let dissents data i (c : Tsval.t) =
  List.exists (fun (_, w) -> not (Tsval.equal w c)) (reports_of data i)

let count data pred =
  Ints.Map.fold (fun i _ acc -> if pred i then acc + 1 else acc) data.reports 0

let eliminate cfg data =
  let threshold = cfg.Quorum.Config.t + cfg.Quorum.Config.b + 1 in
  {
    data with
    candidates =
      List.filter
        (fun c -> count data (fun i -> dissents data i c) < threshold)
        data.candidates;
  }

let try_decide cfg data =
  if not data.phase1_complete then None
  else if data.candidates = [] then Some (Value.bottom, data.phase)
  else
    let safe_th = cfg.Quorum.Config.b + 1 in
    let high =
      List.fold_left (fun acc (c : Tsval.t) -> max acc c.Tsval.ts) 0
        data.candidates
    in
    List.find_map
      (fun (c : Tsval.t) ->
        if c.Tsval.ts = high && count data (fun i -> vouches data i c) >= safe_th
        then Some (c.Tsval.v, data.phase)
        else None)
      data.candidates

let reader_on_msg r ~obj msg =
  match (r.rdata, msg) with
  | Some data, Read_ack { rid; phase; pw; w }
    when rid = r.rid && phase <= data.phase ->
      let data =
        {
          data with
          reports = Ints.Map.add obj ((pw, w) :: reports_of data obj) data.reports;
          phase_replies =
            (if phase = data.phase then Ints.Set.add obj data.phase_replies
             else data.phase_replies);
          candidates =
            (if phase = 1 && not (List.exists (Tsval.equal w) data.candidates)
             then w :: data.candidates
             else data.candidates);
        }
      in
      let data = eliminate r.rcfg data in
      let quorum = Quorum.Config.quorum r.rcfg in
      let data =
        if
          (not data.phase1_complete)
          && data.phase = 1
          && Ints.Set.cardinal data.phase_replies >= quorum
        then { data with phase1_complete = true }
        else data
      in
      (match try_decide r.rcfg data with
      | Some (value, rounds) ->
          ({ r with rdata = None }, [ Events.Read_done { value; rounds } ])
      | None ->
          if Ints.Set.cardinal data.phase_replies >= quorum then begin
            (* Phase exhausted without a decision: poll again. *)
            let data =
              {
                data with
                phase = data.phase + 1;
                phase_replies = Ints.Set.empty;
              }
            in
            ( { r with rdata = Some data },
              [ Events.Broadcast (Read { rid = r.rid; phase = data.phase }) ] )
          end
          else ({ r with rdata = Some data }, []))
  | _ -> (r, [])

let byz_forge_high ~value ~ts_boost : msg Byz.factory =
 fun ~cfg ~index ~rng:_ ->
  let state = ref (obj_init ~cfg ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = obj_handle !state ~src msg in
        state := state';
        match reply with
        | None -> []
        | Some (Read_ack { rid; phase; pw = _; w = _ }) ->
            let fake =
              Tsval.make ~ts:(!state.ts + ts_boost) ~v:(Value.v value)
            in
            [ (src, Read_ack { rid; phase; pw = fake; w = fake }) ]
        | Some m -> [ (src, m) ])
  }

let byz_stale : msg Byz.factory =
 fun ~cfg ~index ~rng:_ ->
  let state = ref (obj_init ~cfg ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = obj_handle !state ~src msg in
        state := state';
        match reply with
        | None -> []
        | Some (Read_ack { rid; phase; _ }) ->
            [ (src, Read_ack { rid; phase; pw = Tsval.init; w = Tsval.init }) ]
        | Some m -> [ (src, m) ])
  }

(* No client-side cached state to resync after a reconnect. *)
let reader_on_reconnect r = r
