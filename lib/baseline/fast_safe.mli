(** The matching upper bound {e above} the Proposition 1 threshold: a
    safe storage with single-round READs {e and} WRITEs once
    [s >= 2t + 2b + 1] base objects are available.

    The paper (and its reference [1]) notes that with more than [2t + 2b]
    objects one round suffices for writing; this protocol completes the
    picture on the read side, making the lower bound's tightness visible
    from both directions in the E1/E8 experiments:

    - deployed at [s = 2t + 2b + 1] it is safe with 1-round operations;
    - deployed at [s = 2t + 2b] (as the lower-bound construction forces)
      its fast reads violate safety exactly as Proposition 1 predicts.

    WRITE: broadcast ⟨ts, v⟩, await [s - t] acks.  Why one round is
    enough: a read quorum later intersects the write quorum in at least
    [2(s-t) - s - b >= b + 1] {e correct} objects, so the written pair
    always has [b + 1] honest endorsements in any reply quorum.

    READ: await [s - t] replies and return the highest-timestamp pair
    reported identically by at least [b + 1] objects ([endorsement]
    rule); ⊥ if none qualifies (possible only under concurrency).
    Byzantine objects can never assemble [b + 1] endorsements for a
    forged pair.

    Semantics: {e safe} (not regular — under read/write concurrency the
    [>= k] reporters can split between val_k and val_k+1, starving both
    of endorsements). *)

type msg =
  | Write_req of { ts : int; v : Core.Value.t }
  | Write_ack of { ts : int }
  | Read_req of { rid : int }
  | Read_ack of { rid : int; ts : int; v : Core.Value.t }

include Core.Protocol_intf.S with type msg := msg

val byz_forge_high : value:string -> ts_boost:int -> msg Core.Byz.factory

val byz_endorse_forgery : value:string -> ts:int -> msg Core.Byz.factory
(** All Byzantine objects running this strategy report the {e same}
    forged pair, trying to reach the [b + 1] endorsement bar — they fall
    exactly one short. *)
