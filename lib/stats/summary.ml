type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable rev_samples : float list;
  mutable sorted_cache : float array option;
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    minv = infinity;
    maxv = neg_infinity;
    rev_samples = [];
    sorted_cache = None;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.rev_samples <- x :: t.rev_samples;
  t.sorted_cache <- None

let add_int t x = add t (float_of_int x)

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Summary.min: empty";
  t.minv

let max t =
  if t.n = 0 then invalid_arg "Summary.max: empty";
  t.maxv

let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
      let a = Array.of_list t.rev_samples in
      Array.sort Float.compare a;
      t.sorted_cache <- Some a;
      a

let percentile t p =
  if t.n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p not in [0,100]";
  let a = sorted t in
  (* Nearest-rank with ceil, 1-based, per the classic definition. *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
  let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
  a.(idx)

let median t = percentile t 50.0

let samples t = List.rev t.rev_samples

let merge a b =
  let t = create () in
  List.iter (add t) (samples a);
  List.iter (add t) (samples b);
  t

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f" t.n
      (mean t) (median t) (percentile t 99.0) t.maxv

module Histogram = struct
  type summary = t

  type t = { lo : float; width : float; counts : int array }

  let of_summary (s : summary) ~buckets =
    if s.n = 0 then invalid_arg "Histogram.of_summary: empty summary";
    if buckets <= 0 then invalid_arg "Histogram.of_summary: buckets <= 0";
    let lo = s.minv and hi = s.maxv in
    let span = if hi > lo then hi -. lo else 1.0 in
    let width = span /. float_of_int buckets in
    let counts = Array.make buckets 0 in
    let place x =
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (buckets - 1) i) in
      counts.(i) <- counts.(i) + 1
    in
    List.iter place (samples s);
    { lo; width; counts }

  let buckets t =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let lo = t.lo +. (float_of_int i *. t.width) in
           (lo, lo +. t.width, c))
         t.counts)

  let pp ppf t =
    let biggest = Array.fold_left Stdlib.max 1 t.counts in
    List.iter
      (fun (lo, hi, c) ->
        let bar = String.make (c * 40 / biggest) '#' in
        Format.fprintf ppf "[%8.1f, %8.1f) %6d %s@." lo hi c bar)
      (buckets t)
end
