(** Online summary statistics.

    Collects samples (latencies, round counts, message sizes) and reports
    count, extrema, mean, variance (Welford's algorithm, numerically
    stable), and exact percentiles.  Used by every experiment table. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0. with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]: nearest-rank percentile over the
    retained samples.  @raise Invalid_argument when empty or p outside the
    range. *)

val median : t -> float

val samples : t -> float list
(** All samples in insertion order. *)

val merge : t -> t -> t
(** Combined summary over both sample sets. *)

val pp : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p99/max] rendering. *)

module Histogram : sig
  type summary := t

  type t

  val of_summary : summary -> buckets:int -> t
  (** Equal-width buckets spanning [min, max].  @raise Invalid_argument if
      the summary is empty or [buckets <= 0]. *)

  val buckets : t -> (float * float * int) list
  (** [(lo, hi, count)] per bucket, ascending. *)

  val pp : Format.formatter -> t -> unit
  (** ASCII-art rendering for terminal reports. *)
end
