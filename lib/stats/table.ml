type line = Row of string list | Separator

type t = { headers : string list; mutable rev_lines : line list; width : int }

let create ~headers =
  { headers; rev_lines = []; width = List.length headers }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg "Table.add_row: row width mismatch";
  t.rev_lines <- Row row :: t.rev_lines

let add_separator t = t.rev_lines <- Separator :: t.rev_lines

let row_count t =
  List.length
    (List.filter (function Row _ -> true | Separator -> false) t.rev_lines)

let lines t = List.rev t.rev_lines

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  let widen = function
    | Separator -> ()
    | Row cells ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cells
  in
  List.iter widen (lines t);
  widths

let pad width s = s ^ String.make (width - String.length s) ' '

let pp ppf t =
  let widths = column_widths t in
  let render_row cells =
    let padded = List.mapi (fun i c -> pad widths.(i) c) cells in
    Format.fprintf ppf "| %s |@." (String.concat " | " padded)
  in
  let rule () =
    let dashes =
      Array.to_list (Array.map (fun w -> String.make w '-') widths)
    in
    Format.fprintf ppf "+-%s-+@." (String.concat "-+-" dashes)
  in
  rule ();
  render_row t.headers;
  rule ();
  List.iter
    (function Row cells -> render_row cells | Separator -> rule ())
    (lines t);
  rule ()

let to_string t = Format.asprintf "%a" pp t

let to_csv t =
  let escape cell = String.map (fun c -> if c = ',' then ';' else c) cell in
  let line cells = String.concat "," (List.map escape cells) in
  let rows =
    List.filter_map
      (function Row cells -> Some (line cells) | Separator -> None)
      (lines t)
  in
  String.concat "\n" (line t.headers :: rows) ^ "\n"

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_bool b = if b then "yes" else "no"
