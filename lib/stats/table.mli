(** Plain-text table rendering for experiment reports.

    Every experiment in the bench harness prints its results as one of
    these tables, mirroring how the paper's claims are tabulated in
    EXPERIMENTS.md. *)

type t

val create : headers:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header's. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val row_count : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_csv : t -> string
(** Comma-separated rendering (headers first, separators dropped, commas
    in cells replaced by semicolons) for downstream plotting. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_bool : bool -> string
(** Renders as "yes"/"no". *)
