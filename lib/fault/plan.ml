type proc = W | R of int | O of int

let proc_id = function
  | W -> Sim.Proc_id.Writer
  | R j -> Sim.Proc_id.Reader j
  | O i -> Sim.Proc_id.Obj i

let proc_to_string = function
  | W -> "w"
  | R j -> "r" ^ string_of_int j
  | O i -> "s" ^ string_of_int i

type byz_kind =
  | Mute
  | Forge
  | Replay
  | Simulate
  | Garbage
  | Flaky of { down_from : int; down_until : int }

let kind_to_string = function
  | Mute -> "mute"
  | Forge -> "forge"
  | Replay -> "replay"
  | Simulate -> "simulate"
  | Garbage -> "garbage"
  | Flaky { down_from; down_until } ->
      Printf.sprintf "flaky[%d,%d)" down_from down_until

type action =
  | Byz of { obj : int; kind : byz_kind }
  | Switch of { obj : int; at : int; kind : byz_kind }
  | Crash of { obj : int; at : int }
  | Recover of { obj : int; at : int; wipe : bool }
  | Block of { src : proc; dst : proc; from_ : int; until : int }
  | Isolate of { obj : int; from_ : int; until : int }
  | Duplicate of { src : proc; dst : proc; copies : int; from_ : int; until : int }

type t = { horizon : int; actions : action list }

let empty ~horizon = { horizon; actions = [] }

let length plan = List.length plan.actions

let action_to_string = function
  | Byz { obj; kind } -> Printf.sprintf "byz(s%d,%s)" obj (kind_to_string kind)
  | Switch { obj; at; kind } ->
      Printf.sprintf "switch(s%d@%d,%s)" obj at (kind_to_string kind)
  | Crash { obj; at } -> Printf.sprintf "crash(s%d@%d)" obj at
  | Recover { obj; at; wipe } ->
      Printf.sprintf "recover(s%d@%d,%s)" obj at (if wipe then "wiped" else "persisted")
  | Block { src; dst; from_; until } ->
      Printf.sprintf "block(%s->%s,[%d,%d))" (proc_to_string src)
        (proc_to_string dst) from_ until
  | Isolate { obj; from_; until } ->
      Printf.sprintf "isolate(s%d,[%d,%d))" obj from_ until
  | Duplicate { src; dst; copies; from_; until } ->
      Printf.sprintf "dup(%s->%s,x%d,[%d,%d))" (proc_to_string src)
        (proc_to_string dst) (1 + copies) from_ until

let to_compact plan =
  Printf.sprintf "horizon=%d [%s]" plan.horizon
    (String.concat "; " (List.map action_to_string plan.actions))

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan (horizon %d, %d actions)" plan.horizon
    (length plan);
  List.iter
    (fun a -> Format.fprintf ppf "@,  %s" (action_to_string a))
    plan.actions;
  Format.fprintf ppf "@]"

(* ----- budget accounting ------------------------------------------------ *)

module Int_set = Set.Make (Int)

(* Objects whose behaviour may deviate arbitrarily from an honest
   automaton's: Byzantine from the start, switched mid-run, or restarted
   with wiped state (a wiped object "forgets" writes it acknowledged,
   which no crash-faulty object does). *)
let byzantine_objects plan =
  List.fold_left
    (fun acc -> function
      | Byz { obj; _ } | Switch { obj; _ } -> Int_set.add obj acc
      | Recover { obj; wipe = true; _ } -> Int_set.add obj acc
      | Recover _ | Crash _ | Block _ | Isolate _ | Duplicate _ -> acc)
    Int_set.empty plan.actions

(* Objects that are faulty at all: the Byzantine ones plus every object
   that crashes (even if it later recovers with persisted state — it
   lost messages while down, which a correct object never does). *)
let faulty_objects plan =
  List.fold_left
    (fun acc -> function
      | Crash { obj; _ } -> Int_set.add obj acc
      | Byz _ | Switch _ | Recover _ | Block _ | Isolate _ | Duplicate _ -> acc)
    (byzantine_objects plan) plan.actions

let well_formed ~cfg plan =
  let s = cfg.Quorum.Config.s in
  let obj_ok i = i >= 1 && i <= s in
  let proc_ok = function O i -> obj_ok i | W | R _ -> true in
  let window_ok from_ until = 0 <= from_ && from_ <= until && until <= plan.horizon in
  plan.horizon > 0
  && List.for_all
       (function
         | Byz { obj; _ } -> obj_ok obj
         | Switch { obj; at; _ } -> obj_ok obj && at >= 0 && at <= plan.horizon
         | Crash { obj; at } -> obj_ok obj && at >= 0 && at <= plan.horizon
         | Recover { obj; at; _ } -> obj_ok obj && at >= 0 && at <= plan.horizon
         | Block { src; dst; from_; until } ->
             proc_ok src && proc_ok dst && window_ok from_ until
         | Isolate { obj; from_; until } -> obj_ok obj && window_ok from_ until
         | Duplicate { src; dst; copies; from_; until } ->
             proc_ok src && proc_ok dst && copies >= 1 && window_ok from_ until)
       plan.actions

let within_budget ~cfg plan =
  well_formed ~cfg plan
  && Int_set.cardinal (byzantine_objects plan) <= cfg.Quorum.Config.b
  && Int_set.cardinal (faulty_objects plan) <= cfg.Quorum.Config.t

(* ----- random generation ------------------------------------------------ *)

type budget = { horizon : int; max_actions : int }

let small = { horizon = 800; max_actions = 4 }

let medium = { horizon = 1_500; max_actions = 8 }

let large = { horizon = 3_000; max_actions = 14 }

let budget_of_string = function
  | "small" -> Some small
  | "medium" -> Some medium
  | "large" -> Some large
  | _ -> None

(* Weighted toward the lying kinds (forge/simulate/garbage): omission
   faults rarely distinguish protocols, forgeries do. *)
let gen_kind ~rng ~horizon =
  match Sim.Prng.int rng ~bound:8 with
  | 0 -> Mute
  | 1 | 2 -> Forge
  | 3 -> Replay
  | 4 | 5 -> Simulate
  | 6 -> Garbage
  | _ ->
      let down_from = Sim.Prng.int rng ~bound:(horizon / 2) in
      let down_until =
        down_from + 1 + Sim.Prng.int rng ~bound:(horizon - down_from)
      in
      Flaky { down_from; down_until = min down_until horizon }

let gen_window ~rng ~horizon =
  let from_ = Sim.Prng.int rng ~bound:(max 1 (horizon - 20)) in
  let until = from_ + 1 + Sim.Prng.int rng ~bound:(max 1 (horizon - from_ - 1)) in
  (from_, min until horizon)

let gen_proc ~rng ~cfg ~readers =
  match Sim.Prng.int rng ~bound:(1 + readers + cfg.Quorum.Config.s) with
  | 0 -> W
  | k when k <= readers -> R k
  | k -> O (k - readers)

let gen ~rng ~cfg ~budget:{ horizon; max_actions } =
  let s = cfg.Quorum.Config.s
  and t = cfg.Quorum.Config.t
  and b = cfg.Quorum.Config.b in
  let readers = 2 in
  (* Pick the faulty cast first: nf <= t objects, of which nb <= b may lie. *)
  let objs = Array.init s (fun i -> i + 1) in
  Sim.Prng.shuffle rng objs;
  (* Bias toward spending the whole budget: a chaos campaign that mostly
     draws fault-free plans tests nothing. *)
  let maxed ~cap = if Sim.Prng.int rng ~bound:4 = 0 then Sim.Prng.int rng ~bound:(cap + 1) else cap in
  let nf = maxed ~cap:(min t s) in
  let nb = if b = 0 || nf = 0 then 0 else maxed ~cap:(min b nf) in
  let byz_actions =
    List.concat
      (List.init nb (fun k ->
           let obj = objs.(k) in
           match Sim.Prng.int rng ~bound:3 with
           | 0 -> [ Byz { obj; kind = gen_kind ~rng ~horizon } ]
           | 1 ->
               let at = Sim.Prng.int rng ~bound:horizon in
               [ Switch { obj; at; kind = gen_kind ~rng ~horizon } ]
           | _ ->
               let at = Sim.Prng.int rng ~bound:(horizon / 2) in
               let back = at + 1 + Sim.Prng.int rng ~bound:(horizon - at) in
               [
                 Crash { obj; at };
                 Recover { obj; at = min back horizon; wipe = true };
               ]))
  in
  let crash_actions =
    List.concat
      (List.init (nf - nb) (fun k ->
           let obj = objs.(nb + k) in
           let at = Sim.Prng.int rng ~bound:horizon in
           if Sim.Prng.bool rng && at < horizon - 1 then
             let back = at + 1 + Sim.Prng.int rng ~bound:(horizon - at - 1) in
             [ Crash { obj; at }; Recover { obj; at = back; wipe = false } ]
           else [ Crash { obj; at } ]))
  in
  let fault_actions = byz_actions @ crash_actions in
  let slots = max 0 (max_actions - List.length fault_actions) in
  let network_actions =
    List.init
      (if slots = 0 then 0 else Sim.Prng.int rng ~bound:(slots + 1))
      (fun _ ->
        match Sim.Prng.int rng ~bound:3 with
        | 0 ->
            let from_, until = gen_window ~rng ~horizon in
            Block
              {
                src = gen_proc ~rng ~cfg ~readers;
                dst = gen_proc ~rng ~cfg ~readers;
                from_;
                until;
              }
        | 1 ->
            let from_, until = gen_window ~rng ~horizon in
            Isolate { obj = 1 + Sim.Prng.int rng ~bound:s; from_; until }
        | _ ->
            let from_, until = gen_window ~rng ~horizon in
            Duplicate
              {
                src = gen_proc ~rng ~cfg ~readers;
                dst = gen_proc ~rng ~cfg ~readers;
                copies = 1 + Sim.Prng.int rng ~bound:2;
                from_;
                until;
              })
  in
  { horizon; actions = fault_actions @ network_actions }
