(** Chaos campaigns: sweep seeds × fault plans × protocols and report a
    survival matrix.

    A campaign draws random {!Plan}s within the resilience budget of
    each protocol's configuration, compiles the symbolic Byzantine kinds
    down to that protocol's concrete strategies, runs the scenario, and
    holds the resulting history to the {!Histories.Checks} oracles plus
    the wait-freedom watchdog.  The robust protocols must survive every
    within-budget plan (Theorems 1–4); [naive-fast] at [s = 2t + 2b] is
    the negative control Proposition 1 dooms, and its failures feed the
    {!Shrink} minimizer. *)

type protocol = Safe | Regular | Regular_opt | Abd | Fast_safe | Naive_fast

val all_protocols : protocol list

val robust_protocols : protocol list
(** Every protocol except [Naive_fast] — the ones expected to survive. *)

val protocol_name : protocol -> string

val protocol_of_string : string -> protocol option

val claims_regularity : protocol -> bool
(** Whether regularity violations count against the protocol ([Regular],
    [Regular_opt], [Abd]) or only safety/wait-freedom do. *)

val default_cfg : protocol -> t:int -> b:int -> Quorum.Config.t
(** The configuration each protocol is campaigned at: optimal [2t+b+1]
    for the paper's protocols, [2t+1] crash-only for ABD, [2t+2b+1] for
    fast-safe — and the doomed [2t+2b] for [Naive_fast]. *)

(** {2 Single runs} *)

type verdict = {
  safety : int;  (** safety violations found *)
  regularity : int;
  liveness : int;  (** wait-freedom violations (0 unless [quiescent]) *)
  completed : int;  (** operations that completed *)
  total : int;  (** operations scheduled *)
  quiescent : bool;  (** the run drained its event queue *)
  spans : Obs.Span.t list;  (** per-operation spans, invocation order *)
}

val workload : seed:int -> plan:Plan.t -> Core.Schedule.t
(** The campaign workload a plan is judged under: a sequential spine
    merged with seeded read-mostly traffic over the plan's horizon.
    Deterministic in [(seed, plan.horizon)] — every backend runs this
    exact schedule, which is what makes a live history comparable to
    the simulated replay of the same (seed, plan). *)

val workload_readers : int
(** Number of reader processes {!workload} schedules (the live backend
    sizes its cluster from this). *)

val run_plan :
  ?max_events:int ->
  ?metrics:Obs.Metrics.t ->
  protocol ->
  cfg:Quorum.Config.t ->
  seed:int ->
  Plan.t ->
  verdict
(** Execute one (seed, plan) against [protocol] at [cfg] {e in the
    simulator} and check the history.  Deterministic in
    [(protocol, cfg, seed, plan)].  With [metrics], the run's
    observations accumulate into the registry (pass the same registry
    to many runs to aggregate a cell). *)

type backend = {
  backend_name : string;  (** ["sim"], ["live"], … — labels exports *)
  backend_run :
    ?metrics:Obs.Metrics.t ->
    protocol ->
    cfg:Quorum.Config.t ->
    seed:int ->
    Plan.t ->
    verdict;
}
(** An execution backend: anything that can run one (seed, plan) via
    {!Injector.apply} and produce a {!verdict} from the checkers.  The
    simulator is {!sim_backend}; [Net.Live.backend] drives a real
    socket cluster.  The same {!Plan.t} value runs unchanged on any
    backend — sweeps, matrices and the shrinker are parameterized over
    this record. *)

val sim_backend : backend
(** The default: {!run_plan} at its default event bound. *)

val verdict_violates : protocol -> verdict -> bool
(** Did this verdict break the protocol's contract (safety or
    wait-freedom always; regularity additionally when
    {!claims_regularity})? *)

val violates :
  ?max_events:int ->
  ?backend:backend ->
  protocol ->
  cfg:Quorum.Config.t ->
  seed:int ->
  Plan.t ->
  bool
(** The shrinker's repro predicate: {!verdict_violates} of one run on
    [backend] (default {!sim_backend}; [max_events] applies to the sim
    backend only). *)

(** {2 Sweeps} *)

type cell_error = {
  seed : int;
  plan : Plan.t;
  error : string;  (** [Printexc.to_string] of the raised exception *)
}
(** A run that raised instead of producing a verdict.  Errors are
    campaign findings: they surface in the matrix (verdict [ERROR])
    with their (seed, plan) reproduction instead of aborting the whole
    sweep. *)

type cell = {
  protocol : protocol;
  cfg : Quorum.Config.t;
  runs : int;
  safety_runs : int;  (** runs with ≥ 1 safety violation *)
  regularity_runs : int;
  liveness_runs : int;
  incomplete_runs : int;  (** runs that hit [max_events] *)
  failures : (int * Plan.t) list;  (** (seed, plan) witnesses, in order *)
  errors : cell_error list;  (** runs that raised, in order *)
  metrics : Obs.Metrics.t;
      (** merged observability registry over every run in the cell:
          round-count/latency histograms, wire counters, queue depth *)
}

val run_plan_result :
  ?max_events:int ->
  ?backend:backend ->
  ?metrics:Obs.Metrics.t ->
  protocol ->
  cfg:Quorum.Config.t ->
  seed:int ->
  Plan.t ->
  (verdict, cell_error) result
(** One run on [backend] (default {!sim_backend}) with the sweep's
    error containment: a raising run becomes a structured [Error]
    instead of propagating. *)

val sweep_protocol :
  ?jobs:int ->
  ?max_events:int ->
  ?backend:backend ->
  ?budget:Plan.budget ->
  ?plans_per_seed:int ->
  protocol ->
  t:int ->
  b:int ->
  seeds:int list ->
  cell
(** Run [plans_per_seed] (default 3) random plans per seed (drawn from a
    per-seed PRNG, so the campaign is reproducible) at
    [default_cfg protocol ~t ~b].

    With [jobs] (default {!Exec.Pool.recommended_jobs}), seeds are
    fanned across an OCaml 5 domain pool; each seed is an isolated
    simulation (own engine, PRNG and metrics registry built from the
    seed) and the per-seed results reduce in seed order, so the cell —
    including its merged registry and every export derived from it — is
    byte-identical to the serial ([jobs = 1]) sweep. *)

val sweep :
  ?jobs:int ->
  ?max_events:int ->
  ?backend:backend ->
  ?budget:Plan.budget ->
  ?plans_per_seed:int ->
  protocols:protocol list ->
  t:int ->
  b:int ->
  seeds:int list ->
  unit ->
  cell list
(** Sweep the whole protocol x seed matrix through one domain pool (a
    slow cell in one protocol overlaps work from the others); results
    are deterministic in the inputs and independent of [jobs].  With a
    non-sim [backend], run with [jobs:1]: a live backend owns real
    sockets and one wall clock, so parallel cells would contend for
    both. *)

val matrix_table : cell list -> Stats.Table.t
(** The survival matrix: one row per protocol with per-property
    survival counts and a verdict ([Naive_fast] is {e expected} to
    break). *)

val metrics_table : cell list -> Stats.Table.t
(** One row per campaign cell: completed read/write counts, the exact
    round-count distributions (e.g. ["2:64"] — the paper's 2-round
    claim made visible per cell), open operations, delivered messages
    and queue-depth p99. *)

val cell_verdict : cell -> string
(** ["survives"], ["violates"], or ["errors"] — the summary judgement
    both the table and the JSONL matrix print for a cell. *)

val matrix_jsonl : ?backend:string -> cell list -> string
(** The survival matrix as JSON Lines, one object per cell, in the
    {e same schema for every backend} (tagged with [backend], default
    ["sim"]): survival counts per property, the verdict, and each
    failure witness as its (seed, compact plan) reproduction. *)
