(** Declarative, time-scripted fault plans.

    A plan is a protocol-independent list of fault actions over virtual
    time: crashes, crash-recoveries (wiped or persisted state), transient
    link outages and partitions, message duplication windows, and
    (symbolic) Byzantine behaviours including mid-run strategy switches.
    Plans are plain data: they can be generated randomly from a PRNG
    (deterministic per seed), validated against a resilience budget,
    pretty-printed as a reproducible witness, and shrunk by
    {!Shrink.minimize}.  {!Campaign} maps the symbolic Byzantine kinds to
    each protocol's concrete strategies and compiles the rest down to
    {!Core.Scenario.Make.chaos_event}s. *)

type proc = W | R of int | O of int  (** writer, reader [j], object [i] *)

val proc_id : proc -> Sim.Proc_id.t

val proc_to_string : proc -> string

(** Symbolic Byzantine behaviours, resolved per protocol by the campaign
    (e.g. [Forge] is {!Strategies.forge_high_value} against the safe
    protocol but {!Strategies.forge_history} against the regular one). *)
type byz_kind =
  | Mute
  | Forge
  | Replay
  | Simulate
  | Garbage
  | Flaky of { down_from : int; down_until : int }
      (** {!Strategies.crash_recovery}-style: honest, silent for the
          window, resumes stale *)

val kind_to_string : byz_kind -> string

type action =
  | Byz of { obj : int; kind : byz_kind }  (** Byzantine from the start *)
  | Switch of { obj : int; at : int; kind : byz_kind }
      (** turns Byzantine mid-run *)
  | Crash of { obj : int; at : int }
  | Recover of { obj : int; at : int; wipe : bool }
      (** restart; [wipe] = lose persisted state *)
  | Block of { src : proc; dst : proc; from_ : int; until : int }
  | Isolate of { obj : int; from_ : int; until : int }
  | Duplicate of { src : proc; dst : proc; copies : int; from_ : int; until : int }

type t = { horizon : int; actions : action list }

val empty : horizon:int -> t

val length : t -> int

val action_to_string : action -> string

val to_compact : t -> string
(** One-line rendering, the form failure witnesses are printed in. *)

val pp : Format.formatter -> t -> unit

val byzantine_objects : t -> Set.Make(Int).t
(** Objects whose behaviour may deviate arbitrarily: [Byz], [Switch],
    and wiped recoveries (forgetting acknowledged writes is not a crash
    fault). *)

val faulty_objects : t -> Set.Make(Int).t
(** {!byzantine_objects} plus every crashed object — even recovered
    ones, since they lost messages while down. *)

val well_formed : cfg:Quorum.Config.t -> t -> bool
(** Object indices in range, windows ordered and inside the horizon. *)

val within_budget : cfg:Quorum.Config.t -> t -> bool
(** [well_formed], at most [b] Byzantine objects and at most [t] faulty
    objects: the regime in which the paper's Theorems 1–4 promise safety
    and wait-freedom. *)

(** {2 Random generation} *)

type budget = { horizon : int; max_actions : int }

val small : budget

val medium : budget

val large : budget

val budget_of_string : string -> budget option
(** Recognizes ["small"], ["medium"], ["large"]. *)

val gen : rng:Sim.Prng.t -> cfg:Quorum.Config.t -> budget:budget -> t
(** Draw a random plan: a faulty cast of at most [t] objects (at most
    [b] of them Byzantine — wiped recoveries count as Byzantine) plus
    transient network chaos (blocks, partitions, duplication) on
    arbitrary links.  Always {!within_budget} for [cfg]; deterministic
    in the PRNG state. *)
