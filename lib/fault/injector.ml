module type S = sig
  type t

  val name : string

  val byzantine : t -> obj:int -> kind:Plan.byz_kind -> unit

  val switch : t -> obj:int -> at:int -> kind:Plan.byz_kind -> unit

  val crash : t -> obj:int -> at:int -> unit

  val recover : t -> obj:int -> at:int -> wipe:bool -> unit

  val block :
    t -> src:Plan.proc -> dst:Plan.proc -> from_:int -> until:int -> unit

  val isolate : t -> obj:int -> from_:int -> until:int -> unit

  val duplicate :
    t ->
    src:Plan.proc ->
    dst:Plan.proc ->
    copies:int ->
    from_:int ->
    until:int ->
    unit
end

let apply (type a) (module I : S with type t = a) (ctx : a) (plan : Plan.t) =
  List.iter
    (function
      | Plan.Byz { obj; kind } -> I.byzantine ctx ~obj ~kind
      | Plan.Switch { obj; at; kind } -> I.switch ctx ~obj ~at ~kind
      | Plan.Crash { obj; at } -> I.crash ctx ~obj ~at
      | Plan.Recover { obj; at; wipe } -> I.recover ctx ~obj ~at ~wipe
      | Plan.Block { src; dst; from_; until } ->
          I.block ctx ~src ~dst ~from_ ~until
      | Plan.Isolate { obj; from_; until } -> I.isolate ctx ~obj ~from_ ~until
      | Plan.Duplicate { src; dst; copies; from_; until } ->
          I.duplicate ctx ~src ~dst ~copies ~from_ ~until)
    plan.Plan.actions
