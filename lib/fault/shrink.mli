(** Counterexample shrinking for failing fault plans.

    Given a plan on which a repro predicate (typically
    {!Campaign.violates} at a fixed protocol, configuration and seed)
    holds, [minimize] delta-debugs it: actions are removed one at a time
    to a 1-minimal subset, then the survivors' parameters are simplified
    (windows halved, duplication reduced, mid-run switches promoted to
    start-of-run Byzantine, wiped recoveries demoted to persisted) —
    accepting each candidate only if the violation still reproduces.
    Because runs are deterministic in (seed, plan), the result is a
    minimal witness that replays exactly. *)

type outcome = {
  plan : Plan.t;  (** the minimized plan; still satisfies [repro] *)
  attempts : int;  (** candidate plans tried *)
  reproductions : int;  (** candidates that still violated *)
}

val minimize :
  ?max_attempts:int -> repro:(Plan.t -> bool) -> Plan.t -> outcome
(** [minimize ~repro plan] shrinks [plan] while [repro] keeps holding.
    [max_attempts] (default 500) bounds the number of [repro] calls.
    @raise Invalid_argument if [repro plan] is already false. *)
