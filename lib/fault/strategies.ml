open Core

type t = Messages.t Byz.factory

(* Run an honest safe object inside, rewriting only replies to readers:
   timestamp echoes stay valid, data is corrupted. *)
let wrap_safe rewrite : t =
 fun ~cfg:_ ~index ~rng ->
  let state = ref (Safe_object.init ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = Safe_object.handle !state ~src msg in
        state := state';
        match (reply, src) with
        | None, _ -> []
        | Some m, Sim.Proc_id.Reader j ->
            [ (src, rewrite ~rng ~state:!state ~reader:j ~index m) ]
        | Some m, (Sim.Proc_id.Writer | Sim.Proc_id.Obj _) -> [ (src, m) ])
  }

let rewrite_read_ack f msg =
  match msg with
  | Messages.Read1_ack { tsr; pw; w } ->
      let pw, w = f ~tsr ~pw ~w in
      Messages.Read1_ack { tsr; pw; w }
  | Messages.Read2_ack { tsr; pw; w } ->
      let pw, w = f ~tsr ~pw ~w in
      Messages.Read2_ack { tsr; pw; w }
  | Messages.Pw _ | Messages.Pw_ack _ | Messages.W _ | Messages.W_ack _
  | Messages.Read1 _ | Messages.Read2 _ | Messages.Read1_ack_h _
  | Messages.Read2_ack_h _ ->
      msg

let mute = Byz.silent

(* An honest safe object that "crashes" for a virtual-time window: it
   neither applies nor answers messages while down, then resumes from the
   state it had at down time — so replies after recovery are stale with
   respect to writes it slept through. *)
let crash_recovery ~down_from ~down_until : t =
  if down_until < down_from then
    invalid_arg "Strategies.crash_recovery: empty window";
  fun ~cfg:_ ~index ~rng:_ ->
    let state = ref (Safe_object.init ~index) in
    {
      Byz.handle =
        (fun ~src ~now msg ->
          if now >= down_from && now < down_until then []
          else begin
            let state', reply = Safe_object.handle !state ~src msg in
            state := state';
            match reply with None -> [] | Some m -> [ (src, m) ]
          end);
    }

let forged_pair ~ts ~value =
  let tsval = Tsval.make ~ts ~v:(Value.v value) in
  (tsval, Wtuple.make ~tsval ~tsrarray:Tsr_matrix.empty)

let forge_high_value ~value ~ts_boost : t =
  wrap_safe (fun ~rng:_ ~state ~reader:_ ~index:_ msg ->
      rewrite_read_ack
        (fun ~tsr:_ ~pw:_ ~w:_ ->
          forged_pair ~ts:(Safe_object.ts state + ts_boost) ~value)
        msg)

let replay_initial : t =
  wrap_safe (fun ~rng:_ ~state:_ ~reader:_ ~index:_ msg ->
      rewrite_read_ack (fun ~tsr:_ ~pw:_ ~w:_ -> (Tsval.init, Wtuple.init)) msg)

let simulate_unwritten_write ~value ~ts : t =
  wrap_safe (fun ~rng:_ ~state:_ ~reader:_ ~index:_ msg ->
      rewrite_read_ack (fun ~tsr:_ ~pw:_ ~w:_ -> forged_pair ~ts ~value) msg)

let defaming_matrix ~targets ~reader ~claimed base =
  List.fold_left
    (fun m i ->
      let row =
        match Tsr_matrix.row m ~obj:i with
        | Some row -> row
        | None -> Ints.Map.empty
      in
      Tsr_matrix.set_row m ~obj:i (Ints.Map.add reader claimed row))
    base targets

let defame ~targets ~boost : t =
  wrap_safe (fun ~rng:_ ~state:_ ~reader ~index:_ msg ->
      rewrite_read_ack
        (fun ~tsr ~pw ~w ->
          let tsrarray =
            defaming_matrix ~targets ~reader ~claimed:(tsr + boost)
              w.Wtuple.tsrarray
          in
          (pw, Wtuple.make ~tsval:w.Wtuple.tsval ~tsrarray))
        msg)

let equivocate ~values ~ts_boost : t =
  if values = [] then invalid_arg "Strategies.equivocate: empty value list";
  wrap_safe (fun ~rng:_ ~state ~reader ~index:_ msg ->
      let value = List.nth values (reader mod List.length values) in
      rewrite_read_ack
        (fun ~tsr:_ ~pw:_ ~w:_ ->
          forged_pair ~ts:(Safe_object.ts state + ts_boost) ~value)
        msg)

let random_garbage : t =
  wrap_safe (fun ~rng ~state:_ ~reader:_ ~index:_ msg ->
      rewrite_read_ack
        (fun ~tsr:_ ~pw:_ ~w:_ ->
          let ts = Sim.Prng.int_in_range rng ~lo:1 ~hi:1000 in
          let value = Printf.sprintf "junk-%d" (Sim.Prng.int rng ~bound:1_000_000) in
          forged_pair ~ts ~value)
        msg)

(* Regular-protocol wrapper: honest Figure 5 object inside, history
   replies to readers rewritten. *)
let wrap_regular rewrite : t =
 fun ~cfg:_ ~index ~rng ->
  let state = ref (Regular_object.init ~index) in
  {
    Byz.handle =
      (fun ~src ~now:_ msg ->
        let state', reply = Regular_object.handle !state ~src msg in
        state := state';
        match (reply, src) with
        | None, _ -> []
        | Some m, Sim.Proc_id.Reader j ->
            let rewrite_h h = rewrite ~rng ~state:!state ~reader:j h in
            let m =
              match m with
              | Messages.Read1_ack_h { tsr; history } ->
                  Messages.Read1_ack_h { tsr; history = rewrite_h history }
              | Messages.Read2_ack_h { tsr; history } ->
                  Messages.Read2_ack_h { tsr; history = rewrite_h history }
              | other -> other
            in
            [ (src, m) ]
        | Some m, (Sim.Proc_id.Writer | Sim.Proc_id.Obj _) -> [ (src, m) ])
  }

let forge_history ~value ~ts_boost : t =
  wrap_regular (fun ~rng:_ ~state ~reader:_ history ->
      let ts = Regular_object.ts state + ts_boost in
      let tsval, w = forged_pair ~ts ~value in
      History_store.set history ~ts { History_store.pw = tsval; w = Some w })

let empty_history : t =
  wrap_regular (fun ~rng:_ ~state:_ ~reader:_ _history -> History_store.empty)

let stale_history ~keep : t =
  wrap_regular (fun ~rng:_ ~state:_ ~reader:_ history ->
      let bindings = History_store.bindings history in
      List.fold_left
        (fun acc (ts, entry) -> History_store.set acc ~ts entry)
        History_store.empty
        (List.filteri (fun pos _ -> pos < keep) bindings))

let defame_history ~targets ~boost : t =
  wrap_regular (fun ~rng:_ ~state ~reader history ->
      let ts = Regular_object.ts state + 1 in
      let claimed = boost + 1_000_000 in
      let tsval = Tsval.make ~ts ~v:(Value.v "defamer") in
      let tsrarray =
        defaming_matrix ~targets ~reader ~claimed Tsr_matrix.empty
      in
      let w = Wtuple.make ~tsval ~tsrarray in
      History_store.set history ~ts { History_store.pw = tsval; w = Some w })
