type protocol = Safe | Regular | Regular_opt | Abd | Fast_safe | Naive_fast

let all_protocols = [ Safe; Regular; Regular_opt; Abd; Fast_safe; Naive_fast ]

let robust_protocols = [ Safe; Regular; Regular_opt; Abd; Fast_safe ]

let protocol_name = function
  | Safe -> "safe"
  | Regular -> "regular"
  | Regular_opt -> "regular-opt"
  | Abd -> "abd"
  | Fast_safe -> "fast-safe"
  | Naive_fast -> "naive-fast"

let protocol_of_string = function
  | "safe" -> Some Safe
  | "regular" -> Some Regular
  | "regular-opt" -> Some Regular_opt
  | "abd" -> Some Abd
  | "fast-safe" -> Some Fast_safe
  | "naive-fast" -> Some Naive_fast
  | _ -> None

(* What each protocol promises (and the matrix holds it to).  ABD's
   campaign configuration is crash-only (b = 0), its design regime. *)
let claims_regularity = function
  | Regular | Regular_opt | Abd -> true
  | Safe | Fast_safe | Naive_fast -> false

let default_cfg protocol ~t ~b =
  match protocol with
  | Safe | Regular | Regular_opt -> Quorum.Config.optimal ~t ~b
  | Abd -> Quorum.Config.make_exn ~s:((2 * t) + 1) ~t ~b:0
  | Fast_safe -> Quorum.Config.make_exn ~s:((2 * t) + (2 * b) + 1) ~t ~b
  | Naive_fast ->
      (* the doomed regime of Proposition 1: one object below the fast-
         read threshold *)
      Quorum.Config.make_exn ~s:(2 * (t + b)) ~t ~b

(* ----- symbolic strategy resolution ------------------------------------- *)

let core_strategy : Plan.byz_kind -> Core.Messages.t Core.Byz.factory = function
  | Plan.Mute -> Strategies.mute
  | Plan.Forge -> Strategies.forge_high_value ~value:"evil" ~ts_boost:9
  | Plan.Replay -> Strategies.replay_initial
  | Plan.Simulate -> Strategies.simulate_unwritten_write ~value:"ghost" ~ts:9
  | Plan.Garbage -> Strategies.random_garbage
  | Plan.Flaky { down_from; down_until } ->
      Strategies.crash_recovery ~down_from ~down_until

let regular_strategy : Plan.byz_kind -> Core.Messages.t Core.Byz.factory =
  function
  | Plan.Mute -> Strategies.mute
  | Plan.Forge -> Strategies.forge_history ~value:"evil" ~ts_boost:9
  | Plan.Replay | Plan.Flaky _ -> Strategies.stale_history ~keep:1
  | Plan.Simulate -> Strategies.forge_history ~value:"ghost" ~ts_boost:9
  | Plan.Garbage -> Strategies.empty_history

let abd_strategy : Plan.byz_kind -> Baseline.Abd.msg Core.Byz.factory = function
  | Plan.Mute | Plan.Flaky _ -> Core.Byz.silent
  | Plan.Forge | Plan.Garbage ->
      Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:9
  | Plan.Replay | Plan.Simulate ->
      Baseline.Abd.byz_forge_high ~value:"ghost" ~ts_boost:9

let fast_safe_strategy : Plan.byz_kind -> Baseline.Fast_safe.msg Core.Byz.factory
    = function
  | Plan.Mute | Plan.Flaky _ -> Core.Byz.silent
  | Plan.Forge | Plan.Garbage ->
      Baseline.Fast_safe.byz_forge_high ~value:"evil" ~ts_boost:9
  | Plan.Replay | Plan.Simulate ->
      Baseline.Fast_safe.byz_endorse_forgery ~value:"ghost" ~ts:9

let naive_strategy : Plan.byz_kind -> Baseline.Naive_fast.msg Core.Byz.factory =
  function
  | Plan.Mute | Plan.Flaky _ -> Core.Byz.silent
  | Plan.Forge | Plan.Garbage ->
      Baseline.Naive_fast.byz_forge_high ~value:"ghost" ~ts_boost:9
  | Plan.Replay -> Baseline.Naive_fast.byz_replay_initial
  | Plan.Simulate -> Baseline.Naive_fast.byz_simulate_write ~value:"ghost" ~ts:9

(* ----- running one (seed, plan) ----------------------------------------- *)

type verdict = {
  safety : int;
  regularity : int;
  liveness : int;
  completed : int;
  total : int;
  quiescent : bool;
  spans : Obs.Span.t list;
}

let run_generic (type m) (module P : Core.Protocol_intf.S with type msg = m)
    ~(strategy : Plan.byz_kind -> m Core.Byz.factory) ?metrics ~cfg ~seed
    ~max_events (plan : Plan.t) =
  let module Sc = Core.Scenario.Make (P) in
  let byzantine, rev_chaos =
    List.fold_left
      (fun (byz, chaos) action ->
        match action with
        | Plan.Byz { obj; kind } -> ((obj, strategy kind) :: byz, chaos)
        | Plan.Switch { obj; at; kind } ->
            (byz, Sc.Chaos_switch { obj; at; factory = strategy kind } :: chaos)
        | Plan.Crash { obj; at } ->
            (byz, Sc.Chaos_crash { proc = Sim.Proc_id.Obj obj; at } :: chaos)
        | Plan.Recover { obj; at; wipe } ->
            (byz, Sc.Chaos_recover { obj; at; wipe } :: chaos)
        | Plan.Block { src; dst; from_; until } ->
            ( byz,
              Sc.Chaos_block
                {
                  src = Plan.proc_id src;
                  dst = Plan.proc_id dst;
                  from_;
                  until;
                }
              :: chaos )
        | Plan.Isolate { obj; from_; until } ->
            (byz, Sc.Chaos_isolate { obj; from_; until } :: chaos)
        | Plan.Duplicate { src; dst; copies; from_; until } ->
            ( byz,
              Sc.Chaos_duplicate
                {
                  src = Plan.proc_id src;
                  dst = Plan.proc_id dst;
                  copies;
                  from_;
                  until;
                }
              :: chaos ))
      ([], []) plan.Plan.actions
  in
  let rng = Sim.Prng.create ~seed in
  let schedule =
    Core.Schedule.merge
      (Workload.Generate.sequential ~writes:4 ~readers:2 ~gap:60)
      (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:2
         ~reads_per_reader:4 ~horizon:plan.Plan.horizon)
  in
  let rep =
    Sc.run ~max_events ?metrics ~cfg ~seed
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~chaos:(List.rev rev_chaos)
      ~faults:{ Sc.crashes = []; byzantine }
      schedule
  in
  let equal = String.equal in
  {
    safety = List.length (Histories.Checks.check_safety ~equal rep.history);
    regularity =
      List.length (Histories.Checks.check_regularity ~equal rep.history);
    liveness =
      List.length
        (Histories.Checks.check_wait_freedom ~quiescent:rep.quiescent
           rep.history);
    completed = List.length rep.outcomes;
    total = List.length schedule;
    quiescent = rep.quiescent;
    spans = rep.spans;
  }

let run_plan ?(max_events = 2_000_000) ?metrics protocol ~cfg ~seed
    (plan : Plan.t) =
  match protocol with
  | Safe ->
      run_generic
        (module Core.Proto_safe)
        ~strategy:core_strategy ?metrics ~cfg ~seed ~max_events plan
  | Regular ->
      run_generic
        (module Core.Proto_regular.Plain)
        ~strategy:regular_strategy ?metrics ~cfg ~seed ~max_events plan
  | Regular_opt ->
      run_generic
        (module Core.Proto_regular.Optimized)
        ~strategy:regular_strategy ?metrics ~cfg ~seed ~max_events plan
  | Abd ->
      run_generic
        (module Baseline.Abd.Regular)
        ~strategy:abd_strategy ?metrics ~cfg ~seed ~max_events plan
  | Fast_safe ->
      run_generic
        (module Baseline.Fast_safe)
        ~strategy:fast_safe_strategy ?metrics ~cfg ~seed ~max_events plan
  | Naive_fast ->
      run_generic
        (module Baseline.Naive_fast)
        ~strategy:naive_strategy ?metrics ~cfg ~seed ~max_events plan

(* A run breaks a protocol's contract if it violates a property the
   protocol claims: safety and wait-freedom for all, regularity on top
   for the regular-semantics ones.  (naive-fast claims nothing, but the
   campaign holds it to safety to exhibit the Proposition 1 violation.) *)
let violates ?max_events protocol ~cfg ~seed plan =
  let v = run_plan ?max_events protocol ~cfg ~seed plan in
  v.safety > 0
  || v.liveness > 0
  || (claims_regularity protocol && v.regularity > 0)

(* ----- sweeping seeds x plans x protocols -------------------------------- *)

type cell_error = { seed : int; plan : Plan.t; error : string }

type cell = {
  protocol : protocol;
  cfg : Quorum.Config.t;
  runs : int;
  safety_runs : int;
  regularity_runs : int;
  liveness_runs : int;
  incomplete_runs : int;
  failures : (int * Plan.t) list;  (** (seed, plan) witnesses, in order *)
  errors : cell_error list;  (** runs that raised, in order *)
  metrics : Obs.Metrics.t;
}

let run_plan_result ?max_events ?metrics protocol ~cfg ~seed plan =
  match run_plan ?max_events ?metrics protocol ~cfg ~seed plan with
  | v -> Ok v
  | exception e -> Error { seed; plan; error = Printexc.to_string e }

(* The per-seed unit of parallel work: [plans_per_seed] plans drawn from
   the seed's own PRNG, tallied into the seed's own registry.  A unit is
   a pure function of (protocol, cfg, seed), which is what lets the
   domain pool fan units out in any order and still reduce to the exact
   serial result: counters add, failure/error lists concatenate in seed
   order, and the PR-2 histogram algebra makes the registry merge
   associative and commutative. *)
type seed_tally = {
  u_runs : int;
  u_safety : int;
  u_regularity : int;
  u_liveness : int;
  u_incomplete : int;
  u_failures : (int * Plan.t) list;  (* in plan order *)
  u_errors : cell_error list;  (* in plan order *)
  u_metrics : Obs.Metrics.t;
}

let sweep_seed ?max_events ~budget ~plans_per_seed protocol ~cfg ~seed =
  let metrics = Obs.Metrics.create () in
  let rng = Sim.Prng.create ~seed in
  let runs = ref 0
  and safety_runs = ref 0
  and regularity_runs = ref 0
  and liveness_runs = ref 0
  and incomplete_runs = ref 0
  and failures = ref []
  and errors = ref [] in
  for _ = 1 to plans_per_seed do
    let plan = Plan.gen ~rng ~cfg ~budget in
    match run_plan_result ?max_events ~metrics protocol ~cfg ~seed plan with
    | Error e ->
        (* A raising cell is a campaign finding, not a sweep abort: the
           structured error surfaces in the matrix alongside the seeds
           that did run. *)
        errors := e :: !errors
    | Ok v ->
        incr runs;
        if v.safety > 0 then incr safety_runs;
        if v.regularity > 0 then incr regularity_runs;
        if not v.quiescent then incr incomplete_runs;
        if v.liveness > 0 then incr liveness_runs;
        let failed =
          v.safety > 0
          || v.liveness > 0
          || (claims_regularity protocol && v.regularity > 0)
        in
        if failed then failures := (seed, plan) :: !failures
  done;
  {
    u_runs = !runs;
    u_safety = !safety_runs;
    u_regularity = !regularity_runs;
    u_liveness = !liveness_runs;
    u_incomplete = !incomplete_runs;
    u_failures = List.rev !failures;
    u_errors = List.rev !errors;
    u_metrics = metrics;
  }

(* Ordered reduction of per-seed tallies into one cell; merging in seed
   order keeps every derived artifact (matrix, metrics table, JSONL
   exports) byte-identical whatever the execution interleaving was. *)
let assemble_cell protocol cfg tallies =
  let metrics = Obs.Metrics.create () in
  let runs = ref 0
  and safety_runs = ref 0
  and regularity_runs = ref 0
  and liveness_runs = ref 0
  and incomplete_runs = ref 0
  and failures = ref []
  and errors = ref [] in
  List.iter
    (fun u ->
      runs := !runs + u.u_runs;
      safety_runs := !safety_runs + u.u_safety;
      regularity_runs := !regularity_runs + u.u_regularity;
      liveness_runs := !liveness_runs + u.u_liveness;
      incomplete_runs := !incomplete_runs + u.u_incomplete;
      failures := List.rev_append u.u_failures !failures;
      errors := List.rev_append u.u_errors !errors;
      Obs.Metrics.merge_into ~dst:metrics u.u_metrics)
    tallies;
  {
    protocol;
    cfg;
    runs = !runs;
    safety_runs = !safety_runs;
    regularity_runs = !regularity_runs;
    liveness_runs = !liveness_runs;
    incomplete_runs = !incomplete_runs;
    failures = List.rev !failures;
    errors = List.rev !errors;
    metrics;
  }

let sweep_protocol ?jobs ?max_events ?(budget = Plan.medium)
    ?(plans_per_seed = 3) protocol ~t ~b ~seeds =
  let cfg = default_cfg protocol ~t ~b in
  let tallies =
    Exec.Pool.map ?jobs
      (fun seed -> sweep_seed ?max_events ~budget ~plans_per_seed protocol ~cfg ~seed)
      seeds
  in
  assemble_cell protocol cfg tallies

let sweep ?jobs ?max_events ?(budget = Plan.medium) ?(plans_per_seed = 3)
    ~protocols ~t ~b ~seeds () =
  (* Fan the full protocol x seed matrix through one pool so a slow cell
     in one protocol overlaps the others, then regroup per protocol in
     input order. *)
  let cfgs = List.map (fun p -> (p, default_cfg p ~t ~b)) protocols in
  let tasks =
    List.concat_map
      (fun (p, cfg) -> List.map (fun seed -> (p, cfg, seed)) seeds)
      cfgs
  in
  let tallies =
    Exec.Pool.map ?jobs
      (fun (p, cfg, seed) ->
        sweep_seed ?max_events ~budget ~plans_per_seed p ~cfg ~seed)
      tasks
  in
  let nseeds = List.length seeds in
  List.mapi
    (fun i (p, cfg) ->
      let mine =
        List.filteri
          (fun j _ -> j >= i * nseeds && j < (i + 1) * nseeds)
          tallies
      in
      assemble_cell p cfg mine)
    cfgs

(* ----- survival matrix --------------------------------------------------- *)

let matrix_table cells =
  let table =
    Stats.Table.create
      ~headers:
        [
          "protocol"; "S"; "t"; "b"; "runs"; "safety"; "regular"; "liveness";
          "errors"; "verdict";
        ]
  in
  List.iter
    (fun c ->
      (* Proposition 1 needs a Byzantine object: crash-only campaigns
         cannot break even the naive fast reader's safety. *)
      let expected_broken = c.protocol = Naive_fast && c.cfg.Quorum.Config.b > 0 in
      let verdict =
        match (c.errors, c.failures, expected_broken) with
        | _ :: _, _, _ -> "ERROR"
        | [], [], false -> "survives"
        | [], [], true -> "UNEXPECTED: survives"
        | [], _ :: _, true -> "broken (expected)"
        | [], _ :: _, false -> "BROKEN"
      in
      Stats.Table.add_row table
        [
          protocol_name c.protocol;
          Stats.Table.cell_int c.cfg.Quorum.Config.s;
          Stats.Table.cell_int c.cfg.Quorum.Config.t;
          Stats.Table.cell_int c.cfg.Quorum.Config.b;
          Stats.Table.cell_int c.runs;
          Printf.sprintf "%d/%d" (c.runs - c.safety_runs) c.runs;
          Printf.sprintf "%d/%d" (c.runs - c.regularity_runs) c.runs;
          Printf.sprintf "%d/%d" (c.runs - c.liveness_runs) c.runs;
          Stats.Table.cell_int (List.length c.errors);
          verdict;
        ])
    cells;
  table

(* ----- per-cell metrics --------------------------------------------------- *)

(* Exact round-count distribution, e.g. "1:0 2:64" — round counts are
   tiny integers, so the histogram buckets are the counts themselves. *)
let round_histogram_cell c name =
  match Obs.Metrics.find_histogram c.metrics name with
  | None -> "-"
  | Some h when Obs.Metrics.Histogram.count h = 0 -> "-"
  | Some h ->
      Obs.Metrics.Histogram.buckets h
      |> List.filter_map (fun (_, hi, count) ->
             if count = 0 then None
             else if Float.is_finite hi then
               Some (Printf.sprintf "%.0f:%d" hi count)
             else Some (Printf.sprintf ">:%d" count))
      |> String.concat " "

let metrics_table cells =
  let table =
    Stats.Table.create
      ~headers:
        [
          "protocol"; "reads"; "read rounds"; "writes"; "write rounds";
          "open ops"; "delivered"; "queue p99";
        ]
  in
  List.iter
    (fun c ->
      let m = c.metrics in
      let hist_count name =
        match Obs.Metrics.find_histogram m name with
        | None -> 0
        | Some h -> Obs.Metrics.Histogram.count h
      in
      let queue_p99 =
        match Obs.Metrics.find_histogram m "engine.queue_depth" with
        | Some h when Obs.Metrics.Histogram.count h > 0 ->
            Printf.sprintf "%g" (Obs.Metrics.Histogram.quantile h 99.0)
        | Some _ | None -> "-"
      in
      Stats.Table.add_row table
        [
          protocol_name c.protocol;
          Stats.Table.cell_int (hist_count "op.read.rounds");
          round_histogram_cell c "op.read.rounds";
          Stats.Table.cell_int (hist_count "op.write.rounds");
          round_histogram_cell c "op.write.rounds";
          Stats.Table.cell_int
            (Obs.Metrics.counter_value m "op.read.open"
            + Obs.Metrics.counter_value m "op.write.open");
          Stats.Table.cell_int (Obs.Metrics.counter_value m "engine.delivered");
          queue_p99;
        ])
    cells;
  table
