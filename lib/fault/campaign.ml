type protocol = Safe | Regular | Regular_opt | Abd | Fast_safe | Naive_fast

let all_protocols = [ Safe; Regular; Regular_opt; Abd; Fast_safe; Naive_fast ]

let robust_protocols = [ Safe; Regular; Regular_opt; Abd; Fast_safe ]

let protocol_name = function
  | Safe -> "safe"
  | Regular -> "regular"
  | Regular_opt -> "regular-opt"
  | Abd -> "abd"
  | Fast_safe -> "fast-safe"
  | Naive_fast -> "naive-fast"

let protocol_of_string = function
  | "safe" -> Some Safe
  | "regular" -> Some Regular
  | "regular-opt" -> Some Regular_opt
  | "abd" -> Some Abd
  | "fast-safe" -> Some Fast_safe
  | "naive-fast" -> Some Naive_fast
  | _ -> None

(* What each protocol promises (and the matrix holds it to).  ABD's
   campaign configuration is crash-only (b = 0), its design regime. *)
let claims_regularity = function
  | Regular | Regular_opt | Abd -> true
  | Safe | Fast_safe | Naive_fast -> false

let default_cfg protocol ~t ~b =
  match protocol with
  | Safe | Regular | Regular_opt -> Quorum.Config.optimal ~t ~b
  | Abd -> Quorum.Config.make_exn ~s:((2 * t) + 1) ~t ~b:0
  | Fast_safe -> Quorum.Config.make_exn ~s:((2 * t) + (2 * b) + 1) ~t ~b
  | Naive_fast ->
      (* the doomed regime of Proposition 1: one object below the fast-
         read threshold *)
      Quorum.Config.make_exn ~s:(2 * (t + b)) ~t ~b

(* ----- symbolic strategy resolution ------------------------------------- *)

let core_strategy : Plan.byz_kind -> Core.Messages.t Core.Byz.factory = function
  | Plan.Mute -> Strategies.mute
  | Plan.Forge -> Strategies.forge_high_value ~value:"evil" ~ts_boost:9
  | Plan.Replay -> Strategies.replay_initial
  | Plan.Simulate -> Strategies.simulate_unwritten_write ~value:"ghost" ~ts:9
  | Plan.Garbage -> Strategies.random_garbage
  | Plan.Flaky { down_from; down_until } ->
      Strategies.crash_recovery ~down_from ~down_until

let regular_strategy : Plan.byz_kind -> Core.Messages.t Core.Byz.factory =
  function
  | Plan.Mute -> Strategies.mute
  | Plan.Forge -> Strategies.forge_history ~value:"evil" ~ts_boost:9
  | Plan.Replay | Plan.Flaky _ -> Strategies.stale_history ~keep:1
  | Plan.Simulate -> Strategies.forge_history ~value:"ghost" ~ts_boost:9
  | Plan.Garbage -> Strategies.empty_history

let abd_strategy : Plan.byz_kind -> Baseline.Abd.msg Core.Byz.factory = function
  | Plan.Mute | Plan.Flaky _ -> Core.Byz.silent
  | Plan.Forge | Plan.Garbage ->
      Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:9
  | Plan.Replay | Plan.Simulate ->
      Baseline.Abd.byz_forge_high ~value:"ghost" ~ts_boost:9

let fast_safe_strategy : Plan.byz_kind -> Baseline.Fast_safe.msg Core.Byz.factory
    = function
  | Plan.Mute | Plan.Flaky _ -> Core.Byz.silent
  | Plan.Forge | Plan.Garbage ->
      Baseline.Fast_safe.byz_forge_high ~value:"evil" ~ts_boost:9
  | Plan.Replay | Plan.Simulate ->
      Baseline.Fast_safe.byz_endorse_forgery ~value:"ghost" ~ts:9

let naive_strategy : Plan.byz_kind -> Baseline.Naive_fast.msg Core.Byz.factory =
  function
  | Plan.Mute | Plan.Flaky _ -> Core.Byz.silent
  | Plan.Forge | Plan.Garbage ->
      Baseline.Naive_fast.byz_forge_high ~value:"ghost" ~ts_boost:9
  | Plan.Replay -> Baseline.Naive_fast.byz_replay_initial
  | Plan.Simulate -> Baseline.Naive_fast.byz_simulate_write ~value:"ghost" ~ts:9

(* ----- running one (seed, plan) ----------------------------------------- *)

type verdict = {
  safety : int;
  regularity : int;
  liveness : int;
  completed : int;
  total : int;
  quiescent : bool;
  spans : Obs.Span.t list;
}

(* The campaign workload every backend runs a plan under: a quiet
   sequential spine (so safety constrains every run) merged with the
   paper's read-mostly traffic.  Deterministic in (seed, horizon) — the
   live backend replays the exact same schedule at scaled wall-clock
   times, which is what makes live histories comparable to simulated
   ones. *)
let workload ~seed ~(plan : Plan.t) =
  let rng = Sim.Prng.create ~seed in
  Core.Schedule.merge
    (Workload.Generate.sequential ~writes:4 ~readers:2 ~gap:60)
    (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:2
       ~reads_per_reader:4 ~horizon:plan.Plan.horizon)

let workload_readers = 2

let run_generic (type m) (module P : Core.Protocol_intf.S with type msg = m)
    ~(strategy : Plan.byz_kind -> m Core.Byz.factory) ?metrics ~cfg ~seed
    ~max_events (plan : Plan.t) =
  let module Sc = Core.Scenario.Make (P) in
  (* The sim injector: plan actions stage into the scenario's fault
     configuration — initial Byzantine casts plus time-scripted chaos
     events.  Both lists accumulate by prepending; chaos is re-reversed
     into action order below (scenario events carry their own [at], the
     byzantine list is order-insensitive). *)
  let module Sim_injector = struct
    type t = {
      mutable byzantine : (int * m Core.Byz.factory) list;
      mutable rev_chaos : Sc.chaos_event list;
    }

    let name = "sim"

    let byzantine t ~obj ~kind =
      t.byzantine <- (obj, strategy kind) :: t.byzantine

    let switch t ~obj ~at ~kind =
      t.rev_chaos <-
        Sc.Chaos_switch { obj; at; factory = strategy kind } :: t.rev_chaos

    let crash t ~obj ~at =
      t.rev_chaos <-
        Sc.Chaos_crash { proc = Sim.Proc_id.Obj obj; at } :: t.rev_chaos

    let recover t ~obj ~at ~wipe =
      t.rev_chaos <- Sc.Chaos_recover { obj; at; wipe } :: t.rev_chaos

    let block t ~src ~dst ~from_ ~until =
      t.rev_chaos <-
        Sc.Chaos_block
          { src = Plan.proc_id src; dst = Plan.proc_id dst; from_; until }
        :: t.rev_chaos

    let isolate t ~obj ~from_ ~until =
      t.rev_chaos <- Sc.Chaos_isolate { obj; from_; until } :: t.rev_chaos

    let duplicate t ~src ~dst ~copies ~from_ ~until =
      t.rev_chaos <-
        Sc.Chaos_duplicate
          {
            src = Plan.proc_id src;
            dst = Plan.proc_id dst;
            copies;
            from_;
            until;
          }
        :: t.rev_chaos
  end in
  let ctx = { Sim_injector.byzantine = []; rev_chaos = [] } in
  Injector.apply (module Sim_injector) ctx plan;
  let schedule = workload ~seed ~plan in
  let rep =
    Sc.run ~max_events ?metrics ~cfg ~seed
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~chaos:(List.rev ctx.Sim_injector.rev_chaos)
      ~faults:{ Sc.crashes = []; byzantine = ctx.Sim_injector.byzantine }
      schedule
  in
  let equal = String.equal in
  {
    safety = List.length (Histories.Checks.check_safety ~equal rep.history);
    regularity =
      List.length (Histories.Checks.check_regularity ~equal rep.history);
    liveness =
      List.length
        (Histories.Checks.check_wait_freedom ~quiescent:rep.quiescent
           rep.history);
    completed = List.length rep.outcomes;
    total = List.length schedule;
    quiescent = rep.quiescent;
    spans = rep.spans;
  }

let run_plan ?(max_events = 2_000_000) ?metrics protocol ~cfg ~seed
    (plan : Plan.t) =
  match protocol with
  | Safe ->
      run_generic
        (module Core.Proto_safe)
        ~strategy:core_strategy ?metrics ~cfg ~seed ~max_events plan
  | Regular ->
      run_generic
        (module Core.Proto_regular.Plain)
        ~strategy:regular_strategy ?metrics ~cfg ~seed ~max_events plan
  | Regular_opt ->
      run_generic
        (module Core.Proto_regular.Optimized)
        ~strategy:regular_strategy ?metrics ~cfg ~seed ~max_events plan
  | Abd ->
      run_generic
        (module Baseline.Abd.Regular)
        ~strategy:abd_strategy ?metrics ~cfg ~seed ~max_events plan
  | Fast_safe ->
      run_generic
        (module Baseline.Fast_safe)
        ~strategy:fast_safe_strategy ?metrics ~cfg ~seed ~max_events plan
  | Naive_fast ->
      run_generic
        (module Baseline.Naive_fast)
        ~strategy:naive_strategy ?metrics ~cfg ~seed ~max_events plan

(* ----- execution backends ------------------------------------------------ *)

(* A backend is anything that can execute one (seed, plan) and produce a
   verdict: the simulator above, or a live socket cluster
   ({!Net.Live.backend}).  First-class records rather than functors so a
   backend can be picked at runtime from a CLI flag and threaded through
   the sweeps unchanged. *)
type backend = {
  backend_name : string;
  backend_run :
    ?metrics:Obs.Metrics.t ->
    protocol ->
    cfg:Quorum.Config.t ->
    seed:int ->
    Plan.t ->
    verdict;
}

let sim_backend =
  {
    backend_name = "sim";
    backend_run =
      (fun ?metrics protocol ~cfg ~seed plan ->
        run_plan ?metrics protocol ~cfg ~seed plan);
  }

let verdict_violates protocol v =
  v.safety > 0
  || v.liveness > 0
  || (claims_regularity protocol && v.regularity > 0)

(* A run breaks a protocol's contract if it violates a property the
   protocol claims: safety and wait-freedom for all, regularity on top
   for the regular-semantics ones.  (naive-fast claims nothing, but the
   campaign holds it to safety to exhibit the Proposition 1 violation.) *)
let violates ?max_events ?(backend = sim_backend) protocol ~cfg ~seed plan =
  let v =
    match max_events with
    | Some max_events when backend == sim_backend ->
        run_plan ~max_events protocol ~cfg ~seed plan
    | _ -> backend.backend_run protocol ~cfg ~seed plan
  in
  verdict_violates protocol v

(* ----- sweeping seeds x plans x protocols -------------------------------- *)

type cell_error = { seed : int; plan : Plan.t; error : string }

type cell = {
  protocol : protocol;
  cfg : Quorum.Config.t;
  runs : int;
  safety_runs : int;
  regularity_runs : int;
  liveness_runs : int;
  incomplete_runs : int;
  failures : (int * Plan.t) list;  (** (seed, plan) witnesses, in order *)
  errors : cell_error list;  (** runs that raised, in order *)
  metrics : Obs.Metrics.t;
}

let run_plan_result ?max_events ?(backend = sim_backend) ?metrics protocol
    ~cfg ~seed plan =
  let run () =
    match max_events with
    | Some max_events when backend == sim_backend ->
        run_plan ~max_events ?metrics protocol ~cfg ~seed plan
    | _ -> backend.backend_run ?metrics protocol ~cfg ~seed plan
  in
  match run () with
  | v -> Ok v
  | exception e -> Error { seed; plan; error = Printexc.to_string e }

(* The per-seed unit of parallel work: [plans_per_seed] plans drawn from
   the seed's own PRNG, tallied into the seed's own registry.  A unit is
   a pure function of (protocol, cfg, seed), which is what lets the
   domain pool fan units out in any order and still reduce to the exact
   serial result: counters add, failure/error lists concatenate in seed
   order, and the PR-2 histogram algebra makes the registry merge
   associative and commutative. *)
type seed_tally = {
  u_runs : int;
  u_safety : int;
  u_regularity : int;
  u_liveness : int;
  u_incomplete : int;
  u_failures : (int * Plan.t) list;  (* in plan order *)
  u_errors : cell_error list;  (* in plan order *)
  u_metrics : Obs.Metrics.t;
}

let sweep_seed ?max_events ?backend ~budget ~plans_per_seed protocol ~cfg
    ~seed =
  let metrics = Obs.Metrics.create () in
  let rng = Sim.Prng.create ~seed in
  let runs = ref 0
  and safety_runs = ref 0
  and regularity_runs = ref 0
  and liveness_runs = ref 0
  and incomplete_runs = ref 0
  and failures = ref []
  and errors = ref [] in
  for _ = 1 to plans_per_seed do
    let plan = Plan.gen ~rng ~cfg ~budget in
    match
      run_plan_result ?max_events ?backend ~metrics protocol ~cfg ~seed plan
    with
    | Error e ->
        (* A raising cell is a campaign finding, not a sweep abort: the
           structured error surfaces in the matrix alongside the seeds
           that did run. *)
        errors := e :: !errors
    | Ok v ->
        incr runs;
        if v.safety > 0 then incr safety_runs;
        if v.regularity > 0 then incr regularity_runs;
        if not v.quiescent then incr incomplete_runs;
        if v.liveness > 0 then incr liveness_runs;
        let failed =
          v.safety > 0
          || v.liveness > 0
          || (claims_regularity protocol && v.regularity > 0)
        in
        if failed then failures := (seed, plan) :: !failures
  done;
  {
    u_runs = !runs;
    u_safety = !safety_runs;
    u_regularity = !regularity_runs;
    u_liveness = !liveness_runs;
    u_incomplete = !incomplete_runs;
    u_failures = List.rev !failures;
    u_errors = List.rev !errors;
    u_metrics = metrics;
  }

(* Ordered reduction of per-seed tallies into one cell; merging in seed
   order keeps every derived artifact (matrix, metrics table, JSONL
   exports) byte-identical whatever the execution interleaving was. *)
let assemble_cell protocol cfg tallies =
  let metrics = Obs.Metrics.create () in
  let runs = ref 0
  and safety_runs = ref 0
  and regularity_runs = ref 0
  and liveness_runs = ref 0
  and incomplete_runs = ref 0
  and failures = ref []
  and errors = ref [] in
  List.iter
    (fun u ->
      runs := !runs + u.u_runs;
      safety_runs := !safety_runs + u.u_safety;
      regularity_runs := !regularity_runs + u.u_regularity;
      liveness_runs := !liveness_runs + u.u_liveness;
      incomplete_runs := !incomplete_runs + u.u_incomplete;
      failures := List.rev_append u.u_failures !failures;
      errors := List.rev_append u.u_errors !errors;
      Obs.Metrics.merge_into ~dst:metrics u.u_metrics)
    tallies;
  {
    protocol;
    cfg;
    runs = !runs;
    safety_runs = !safety_runs;
    regularity_runs = !regularity_runs;
    liveness_runs = !liveness_runs;
    incomplete_runs = !incomplete_runs;
    failures = List.rev !failures;
    errors = List.rev !errors;
    metrics;
  }

let sweep_protocol ?jobs ?max_events ?backend ?(budget = Plan.medium)
    ?(plans_per_seed = 3) protocol ~t ~b ~seeds =
  let cfg = default_cfg protocol ~t ~b in
  let tallies =
    Exec.Pool.map ?jobs
      (fun seed ->
        sweep_seed ?max_events ?backend ~budget ~plans_per_seed protocol ~cfg
          ~seed)
      seeds
  in
  assemble_cell protocol cfg tallies

let sweep ?jobs ?max_events ?backend ?(budget = Plan.medium)
    ?(plans_per_seed = 3) ~protocols ~t ~b ~seeds () =
  (* Fan the full protocol x seed matrix through one pool so a slow cell
     in one protocol overlaps the others, then regroup per protocol in
     input order. *)
  let cfgs = List.map (fun p -> (p, default_cfg p ~t ~b)) protocols in
  let tasks =
    List.concat_map
      (fun (p, cfg) -> List.map (fun seed -> (p, cfg, seed)) seeds)
      cfgs
  in
  let tallies =
    Exec.Pool.map ?jobs
      (fun (p, cfg, seed) ->
        sweep_seed ?max_events ?backend ~budget ~plans_per_seed p ~cfg ~seed)
      tasks
  in
  let nseeds = List.length seeds in
  List.mapi
    (fun i (p, cfg) ->
      let mine =
        List.filteri
          (fun j _ -> j >= i * nseeds && j < (i + 1) * nseeds)
          tallies
      in
      assemble_cell p cfg mine)
    cfgs

(* ----- survival matrix --------------------------------------------------- *)

(* Proposition 1 needs a Byzantine object: crash-only campaigns cannot
   break even the naive fast reader's safety. *)
let cell_verdict c =
  let expected_broken = c.protocol = Naive_fast && c.cfg.Quorum.Config.b > 0 in
  match (c.errors, c.failures, expected_broken) with
  | _ :: _, _, _ -> "ERROR"
  | [], [], false -> "survives"
  | [], [], true -> "UNEXPECTED: survives"
  | [], _ :: _, true -> "broken (expected)"
  | [], _ :: _, false -> "BROKEN"

let matrix_table cells =
  let table =
    Stats.Table.create
      ~headers:
        [
          "protocol"; "S"; "t"; "b"; "runs"; "safety"; "regular"; "liveness";
          "errors"; "verdict";
        ]
  in
  List.iter
    (fun c ->
      let verdict = cell_verdict c in
      Stats.Table.add_row table
        [
          protocol_name c.protocol;
          Stats.Table.cell_int c.cfg.Quorum.Config.s;
          Stats.Table.cell_int c.cfg.Quorum.Config.t;
          Stats.Table.cell_int c.cfg.Quorum.Config.b;
          Stats.Table.cell_int c.runs;
          Printf.sprintf "%d/%d" (c.runs - c.safety_runs) c.runs;
          Printf.sprintf "%d/%d" (c.runs - c.regularity_runs) c.runs;
          Printf.sprintf "%d/%d" (c.runs - c.liveness_runs) c.runs;
          Stats.Table.cell_int (List.length c.errors);
          verdict;
        ])
    cells;
  table

(* ----- per-cell metrics --------------------------------------------------- *)

(* Exact round-count distribution, e.g. "1:0 2:64" — round counts are
   tiny integers, so the histogram buckets are the counts themselves. *)
let round_histogram_cell c name =
  match Obs.Metrics.find_histogram c.metrics name with
  | None -> "-"
  | Some h when Obs.Metrics.Histogram.count h = 0 -> "-"
  | Some h ->
      Obs.Metrics.Histogram.buckets h
      |> List.filter_map (fun (_, hi, count) ->
             if count = 0 then None
             else if Float.is_finite hi then
               Some (Printf.sprintf "%.0f:%d" hi count)
             else Some (Printf.sprintf ">:%d" count))
      |> String.concat " "

let metrics_table cells =
  let table =
    Stats.Table.create
      ~headers:
        [
          "protocol"; "reads"; "read rounds"; "writes"; "write rounds";
          "open ops"; "delivered"; "queue p99";
        ]
  in
  List.iter
    (fun c ->
      let m = c.metrics in
      let hist_count name =
        match Obs.Metrics.find_histogram m name with
        | None -> 0
        | Some h -> Obs.Metrics.Histogram.count h
      in
      let queue_p99 =
        match Obs.Metrics.find_histogram m "engine.queue_depth" with
        | Some h when Obs.Metrics.Histogram.count h > 0 ->
            Printf.sprintf "%g" (Obs.Metrics.Histogram.quantile h 99.0)
        | Some _ | None -> "-"
      in
      Stats.Table.add_row table
        [
          protocol_name c.protocol;
          Stats.Table.cell_int (hist_count "op.read.rounds");
          round_histogram_cell c "op.read.rounds";
          Stats.Table.cell_int (hist_count "op.write.rounds");
          round_histogram_cell c "op.write.rounds";
          Stats.Table.cell_int
            (Obs.Metrics.counter_value m "op.read.open"
            + Obs.Metrics.counter_value m "op.write.open");
          Stats.Table.cell_int (Obs.Metrics.counter_value m "engine.delivered");
          queue_p99;
        ])
    cells;
  table

(* ----- machine-readable matrix ------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One JSON object per cell, one line per object — the schema is shared
   by both backends (that is the point: a sim matrix and a live matrix
   of the same campaign diff cleanly).  Witness plans are embedded in
   their compact one-line rendering, the same form the CLI prints. *)
let matrix_jsonl ?(backend = "sim") cells =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Printf.bprintf buf
        "{\"backend\":\"%s\",\"protocol\":\"%s\",\"s\":%d,\"t\":%d,\"b\":%d,\
         \"runs\":%d,\"safety_ok\":%d,\"regularity_ok\":%d,\"liveness_ok\":%d,\
         \"incomplete\":%d,\"errors\":%d,\"verdict\":\"%s\",\"witnesses\":["
        (json_escape backend)
        (json_escape (protocol_name c.protocol))
        c.cfg.Quorum.Config.s c.cfg.Quorum.Config.t c.cfg.Quorum.Config.b
        c.runs (c.runs - c.safety_runs) (c.runs - c.regularity_runs)
        (c.runs - c.liveness_runs)
        c.incomplete_runs
        (List.length c.errors)
        (json_escape (cell_verdict c));
      List.iteri
        (fun i (seed, plan) ->
          Printf.bprintf buf "%s{\"seed\":%d,\"plan\":\"%s\"}"
            (if i = 0 then "" else ",")
            seed
            (json_escape (Plan.to_compact plan)))
        c.failures;
      Buffer.add_string buf "]}\n")
    cells;
  Buffer.contents buf
