(** Backend-agnostic fault injection.

    A {!Plan} is pure data; an {e injector} is what turns its actions
    into faults somewhere — chaos events inside the simulator, or
    process kills and socket-level interference against a live cluster.
    [S] is the capability surface a backend must provide: one entry
    point per {!Plan.action} constructor, each taking the action's
    fields.  {!apply} walks a plan in action order and dispatches every
    action through the given implementation, so the {e same} plan value
    drives either backend unchanged — the property the cross-backend
    campaigns and the live-to-sim witness replay rest on.

    Implementations are free to be eager (the sim backend accumulates
    scenario chaos events for a later deterministic run) or scheduled
    (the live backend compiles actions into wall-clock timers and
    interposer rule windows); [apply] itself never sleeps. *)

module type S = sig
  type t
  (** Backend context the actions are staged into. *)

  val name : string
  (** Short backend tag, e.g. ["sim"] or ["live"]. *)

  val byzantine : t -> obj:int -> kind:Plan.byz_kind -> unit
  (** Object [obj] behaves Byzantine (symbolic [kind]) from the start. *)

  val switch : t -> obj:int -> at:int -> kind:Plan.byz_kind -> unit
  (** Object [obj] turns Byzantine at virtual time [at]. *)

  val crash : t -> obj:int -> at:int -> unit

  val recover : t -> obj:int -> at:int -> wipe:bool -> unit
  (** Restart a crashed object; [wipe] discards its persisted state. *)

  val block :
    t -> src:Plan.proc -> dst:Plan.proc -> from_:int -> until:int -> unit
  (** Drop messages on the directed link [src -> dst] for the window. *)

  val isolate : t -> obj:int -> from_:int -> until:int -> unit
  (** Partition [obj] from everyone for the window. *)

  val duplicate :
    t ->
    src:Plan.proc ->
    dst:Plan.proc ->
    copies:int ->
    from_:int ->
    until:int ->
    unit
  (** Deliver [copies] extra copies of each [src -> dst] message. *)
end

val apply : (module S with type t = 'a) -> 'a -> Plan.t -> unit
(** Dispatch every action of the plan, in plan order, through the
    implementation.  Total: any action a well-formed plan can contain
    maps to exactly one [S] call. *)
