(* Delta-debugging for failing (seed, plan) pairs.

   Plans are small (<= ~14 actions), so a greedy one-at-a-time removal
   loop to fixpoint — O(n^2) runs — beats the classic ddmin bookkeeping
   and yields 1-minimal witnesses.  After removal converges we shrink
   the surviving actions' parameters: duplication down to one extra
   copy, windows halved, switches promoted to start-of-run Byzantine,
   wiped recoveries to persisted, crash times to 0.  Every candidate is
   accepted only if the violation still reproduces, so the result is a
   deterministic minimal witness for [repro]. *)

type outcome = {
  plan : Plan.t;
  attempts : int;  (** candidate plans tried *)
  reproductions : int;  (** candidates that still violated *)
}

let drop_nth actions n = List.filteri (fun i _ -> i <> n) actions

(* One simplification step per action, or None if already minimal. *)
let simplify_action = function
  | Plan.Byz _ -> None
  | Plan.Switch { obj; at; kind } ->
      if at > 0 then Some (Plan.Switch { obj; at = at / 2; kind })
      else Some (Plan.Byz { obj; kind })
  | Plan.Crash { obj; at } ->
      if at > 0 then Some (Plan.Crash { obj; at = at / 2 }) else None
  | Plan.Recover { obj; at; wipe } ->
      if wipe then Some (Plan.Recover { obj; at; wipe = false }) else None
  | Plan.Block { src; dst; from_; until } ->
      let width = until - from_ in
      if width > 1 then
        Some (Plan.Block { src; dst; from_; until = from_ + (width / 2) })
      else None
  | Plan.Isolate { obj; from_; until } ->
      let width = until - from_ in
      if width > 1 then
        Some (Plan.Isolate { obj; from_; until = from_ + (width / 2) })
      else None
  | Plan.Duplicate { src; dst; copies; from_; until } ->
      if copies > 1 then
        Some (Plan.Duplicate { src; dst; copies = copies - 1; from_; until })
      else
        let width = until - from_ in
        if width > 1 then
          Some
            (Plan.Duplicate
               { src; dst; copies; from_; until = from_ + (width / 2) })
        else None

let replace_nth actions n a = List.mapi (fun i x -> if i = n then a else x) actions

let minimize ?(max_attempts = 500) ~repro (plan : Plan.t) =
  if not (repro plan) then
    invalid_arg "Shrink.minimize: plan does not reproduce the violation";
  let attempts = ref 0 and reproductions = ref 0 in
  let try_plan candidate =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      let ok = repro candidate in
      if ok then incr reproductions;
      ok
    end
  in
  (* Phase 1: remove actions one at a time until no single removal
     still reproduces (1-minimality). *)
  let rec remove_pass plan =
    let n = List.length plan.Plan.actions in
    let rec try_from i =
      if i >= n then plan
      else
        let candidate =
          { plan with Plan.actions = drop_nth plan.Plan.actions i }
        in
        if try_plan candidate then remove_pass candidate else try_from (i + 1)
    in
    try_from 0
  in
  (* Phase 2: shrink each surviving action's parameters to fixpoint. *)
  let rec simplify_pass plan =
    let n = List.length plan.Plan.actions in
    let rec try_from i progressed plan =
      if i >= n then if progressed then simplify_pass plan else plan
      else
        match simplify_action (List.nth plan.Plan.actions i) with
        | None -> try_from (i + 1) progressed plan
        | Some a ->
            let candidate =
              { plan with Plan.actions = replace_nth plan.Plan.actions i a }
            in
            if try_plan candidate then try_from i true candidate
            else try_from (i + 1) progressed plan
    in
    try_from 0 false plan
  in
  let minimal = simplify_pass (remove_pass plan) in
  { plan = minimal; attempts = !attempts; reproductions = !reproductions }
