(** Byzantine object strategies for the paper's protocols.

    Each strategy is a {!Core.Byz.factory} over {!Core.Messages.t}, so it
    plugs into any scenario running the safe or regular storage.  Most
    strategies wrap an {e honest} object automaton internally and corrupt
    only its replies: this keeps timestamp echoes valid (so the client
    accepts the reply) while lying about the data — the strongest
    adversary position short of breaking the channel assumptions.

    The strategies map to the attacks in the paper's proofs:
    - {!forge_high_value} / {!random_garbage}: try to make a reader
      return a never-written value (what the [safe] predicate's [b + 1]
      threshold defeats, Theorem 1);
    - {!simulate_unwritten_write}: the [run5] adversary of Proposition 1
      — pretend a WRITE happened that never did;
    - {!replay_initial}: the [run4] adversary — pretend a completed
      WRITE never happened;
    - {!defame}: forge the reader-timestamp matrix so correct objects
      appear to conflict, attacking round-1 termination (what Lemma 1 /
      the vertex-cover search defeats);
    - {!equivocate}: answer different clients with different forgeries;
    - {!mute}: maximal omission while still counting as Byzantine. *)

type t = Core.Messages.t Core.Byz.factory

(** {2 Strategies against the safe storage (state of Figure 3)} *)

val mute : t
(** Never reply. *)

val crash_recovery : down_from:int -> down_until:int -> t
(** An honest Figure 3 object that crashes for the virtual-time window
    [[down_from, down_until)]: messages delivered while down are neither
    applied nor answered, and after the window the object resumes from
    its pre-crash state — so its replies are {e stale} with respect to
    every write it slept through.  This is the strategy-level analogue
    of the engine's crash/recover pair ({!Sim.Engine.recover}): it keeps
    the object inside the [b] budget, the strongest honest-looking
    omission fault short of lying.
    @raise Invalid_argument if [down_until < down_from]. *)

val forge_high_value : value:string -> ts_boost:int -> t
(** Reply honestly to the writer; to readers, replace ⟨pw, w⟩ with a
    forged tuple [ts_boost] above the highest timestamp seen, carrying
    [value]. *)

val replay_initial : t
(** Reply to readers with the initial state σ0 = ⟨⟨0,⊥⟩, w0⟩ regardless
    of writes applied — pretends no WRITE ever happened. *)

val simulate_unwritten_write : value:string -> ts:int -> t
(** Reply to readers as if [WRITE(value)] with timestamp [ts] completed,
    even before/without any writer activity. *)

val defame : targets:int list -> boost:int -> t
(** Reply to readers with the honest tuple whose timestamp matrix is
    altered to claim each object in [targets] reported the reading
    client a timestamp [boost] above the client's current one —
    manufacturing conflicts with correct objects. *)

val equivocate : values:string list -> ts_boost:int -> t
(** Answer reader [j] with a forged value chosen by [j mod length values]
    — a split-brain adversary. *)

val random_garbage : t
(** Reply to readers with structurally valid but randomly generated
    tuples (random timestamps and payloads drawn from the strategy's
    private stream). *)

(** {2 Strategies against the regular storage (state of Figure 5)} *)

val forge_history : value:string -> ts_boost:int -> t
(** Honest history plus a forged complete entry [ts_boost] above the
    highest timestamp seen, carrying [value]. *)

val empty_history : t
(** Reply to readers with an empty history — denies even the initial
    entry. *)

val stale_history : keep:int -> t
(** Reply with only the [keep] oldest entries of the honest history —
    pretends to have missed every later write. *)

val defame_history : targets:int list -> boost:int -> t
(** {!defame} for the regular protocol: the forged matrix rides on a
    fabricated history entry above the honest maximum. *)
