(** Bounded model checker: exhaustive exploration of delivery orders.

    For a small scenario (a few operations over a handful of objects)
    the checker enumerates {e every} order in which the in-transit
    messages can be delivered — the full space of asynchronous runs of
    §2.1 for that workload — executing the protocol's pure state
    machines along each branch.  At every quiescent endpoint it checks:

    - the selected consistency property of the generated history
      (safety / regularity / atomicity via {!Histories.Checks});
    - {e wait-freedom}: with all messages delivered and at most [t]
      silenced objects, every invoked operation must have completed.

    Byzantine objects are modelled as pure reply-rewriting strategies
    over an internally-honest automaton, so exploration stays
    deterministic and states stay comparable.  States are memoized on a
    structural fingerprint; the state budget bounds the search and
    [truncated] reports whether it was exhausted.

    This machine-checks Theorems 1-4 on small instances (E5) and finds
    the lower-bound violation on the naive fast protocol without being
    told the adversary schedule. *)

module Make (P : Core.Protocol_intf.S) : sig
  type pure_byz = {
    rewrite : src:Sim.Proc_id.t -> P.msg -> P.msg list;
        (** maps each honest reply to the messages actually sent back to
            [src] (empty = stay silent) *)
  }

  type scenario = {
    cfg : Quorum.Config.t;
    writes : Core.Value.t list;  (** performed in order by the writer *)
    reads : (int * int) list;  (** (reader index, number of READs) *)
    sequential : bool;
        (** readers start only once every write has completed — the
            regime in which safety actually constrains the return value *)
    byz : (int * pure_byz) list;  (** object index, behaviour *)
    crashed : int list;  (** objects silent from the start *)
  }

  type violation = { kind : string; detail : string }

  type result = {
    explored : int;  (** distinct states visited *)
    terminals : int;  (** quiescent endpoints checked *)
    truncated : bool;  (** state budget exhausted before exhaustion *)
    violations : violation list;  (** deduplicated, first few *)
  }

  val check :
    ?max_states:int ->
    ?property:[ `Safe | `Regular | `Atomic ] ->
    scenario ->
    result
  (** Explore the scenario (default budget 200_000 states, default
      property [`Safe]). *)

  val random_walks :
    ?jobs:int ->
    ?walks:int ->
    ?property:[ `Safe | `Regular | `Atomic ] ->
    seed:int ->
    scenario ->
    result
  (** Monte-Carlo complement to {!check} for scenarios too large to
      exhaust: sample [walks] (default 1000) uniformly random delivery
      orders end-to-end and check every terminal history.  [explored]
      counts delivery steps, [terminals] completed walks; [truncated] is
      always false.  Sound for bug-finding, not for verification.

      Each walk follows its own PRNG split off the seed stream, so the
      result is a pure function of [(scenario, seed, walks)]; [jobs]
      (default {!Exec.Pool.recommended_jobs}) only sets how many domains
      the batch fans across, never what it samples. *)
end
