(** Mechanization of Proposition 1 (Figure 1): no fast-READ safe storage
    on [s <= 2t + 2b] objects.

    [Make (P)] replays the proof's run construction against a concrete
    protocol [P] deployed on exactly [s = 2t + 2b] objects, partitioned
    into the proof's blocks T1, T2, B1, B2:

    - {b run1}: the reader's round-1 message reaches only B1 (T1
      "crashed", B2 and T2 skipped); B1's reply is captured in transit.
    - {b run2/run'2}: the writer completes [WRITE(v1)] against B1, B2
      and T2 (T1's messages delayed), using [P]'s real writer — however
      many rounds it takes.
    - {b run3}: the reader completes on the in-transit B1 reply plus
      fresh replies from T1 (which never saw the write) and B2 (which
      did) — a legal all-correct run where read and write are
      concurrent.
    - {b run4}: same replies, but now the read {e follows} the completed
      write and B1 is malicious (replaying its pre-write self): safety
      demands [v1].
    - {b run5}: same replies, but no write ever happened and B2 is
      malicious (impersonating its post-write self): safety demands ⊥.

    The analysis computes each run's reply set independently with [P]'s
    own object automata and the adversary's forgeries, checks that the
    three reply sets are identical per object (the indistinguishability
    at the heart of the proof), and then drives [P]'s reader on them:

    - a {e fast} reader (decides on these [s - t] replies) returns the
      same value in run4 and run5 and therefore violates safety in one
      of them — the verdict names which;
    - a reader that refuses to decide (e.g. the paper's own two-round
      algorithm, which instead starts a second round) earns [`Not_fast]:
      it escapes the impossibility exactly as designed. *)

module Make (P : Core.Protocol_intf.S) : sig
  type verdict =
    | Violates_run4 of { returned : Core.Value.t; expected : Core.Value.t }
        (** the fast read returned something other than v1 after wr1 *)
    | Violates_run5 of { returned : Core.Value.t }
        (** the fast read returned a non-⊥ value although nothing was
            ever written *)
    | Not_fast
        (** the reader did not decide on the round-1 replies — it is not
            a fast READ implementation, so the bound does not apply *)

  type outcome = {
    blocks : Quorum.Blocks.t;
    write_rounds : int;  (** rounds P's writer used for wr1 *)
    replies_equal : bool;
        (** run3/run4/run5 reader replies identical per object *)
    run4_value : Core.Value.t option;  (** what the reader returned, if fast *)
    run5_value : Core.Value.t option;
    verdict : verdict;
    transcript : string list;  (** human-readable narration of the runs *)
  }

  val analyse : t:int -> b:int -> value:Core.Value.t -> outcome
  (** Build the construction for the given failure bounds ([t >= 1],
      [b >= 1]) writing [value] as v1.  @raise Invalid_argument on bad
      parameters or if [value] is ⊥. *)

  val figure : outcome -> string list
  (** ASCII rendering of the paper's Figure 1 block diagrams for this
      outcome: one panel per run, rows T1/T2/B1/B2, a column per round,
      [x] where the block receives and answers, [@] marking the run's
      malicious block. *)
end
