module Make (P : Core.Protocol_intf.S) = struct
  type pure_byz = { rewrite : src:Sim.Proc_id.t -> P.msg -> P.msg list }

  type scenario = {
    cfg : Quorum.Config.t;
    writes : Core.Value.t list;
    reads : (int * int) list;
    sequential : bool;
        (* readers start only after every write completed: exercises the
           safety clause (non-concurrent reads) rather than the
           anything-goes concurrent case *)
    byz : (int * pure_byz) list;
    crashed : int list;
  }

  type violation = { kind : string; detail : string }

  type result = {
    explored : int;
    terminals : int;
    truncated : bool;
    violations : violation list;
  }

  (* Chronological operation log; positions double as precedence stamps. *)
  type log_event =
    | Inv_write of int * Core.Value.t  (* write index k, value *)
    | Resp_write of int
    | Inv_read of int * int  (* reader, read id *)
    | Resp_read of int * int * Core.Value.t

  type reader_slot = { rsm : P.reader; remaining : int; rid : int }

  type state = {
    writer : P.writer;
    wqueue : Core.Value.t list;
    winflight : int option;  (* index of the write in progress *)
    wcount : int;  (* writes invoked so far *)
    readers : reader_slot Core.Ints.Map.t;
    objs : P.obj Core.Ints.Map.t;  (* honest automata (byz ones wrapped) *)
    inflight : (Sim.Proc_id.t * Sim.Proc_id.t * P.msg) list;  (* canonical *)
    log : log_event list;  (* reversed *)
  }

  let canonical inflight = List.sort Stdlib.compare inflight

  (* --- history reconstruction and property checking ------------------- *)

  let value_to_result = function
    | Core.Value.Bottom -> Histories.Op.Bottom
    | Core.Value.V s -> Histories.Op.Value s

  let history_of_log log =
    let events = List.rev log in
    let stamped = List.mapi (fun stamp e -> (stamp, e)) events in
    let find_resp pred =
      List.find_map (fun (stamp, e) -> if pred e then Some stamp else None) stamped
    in
    List.filter_map
      (fun (stamp, e) ->
        match e with
        | Inv_write (k, v) ->
            let resp =
              find_resp (function Resp_write k' -> k' = k | _ -> false)
            in
            Some
              {
                Histories.Op.id = stamp;
                action =
                  Histories.Op.Write
                    { index = k; value = Core.Value.to_string v };
                invoked_at = stamp;
                invoked_stamp = stamp;
                responded_at = resp;
                responded_stamp = resp;
              }
        | Inv_read (j, rid) ->
            let result =
              List.find_map
                (fun (_, e) ->
                  match e with
                  | Resp_read (j', rid', v) when j' = j && rid' = rid ->
                      Some (value_to_result v)
                  | _ -> None)
                stamped
            in
            let resp =
              find_resp (function
                | Resp_read (j', rid', _) -> j' = j && rid' = rid
                | _ -> false)
            in
            Some
              {
                Histories.Op.id = stamp;
                action = Histories.Op.Read { reader = j; result };
                invoked_at = stamp;
                invoked_stamp = stamp;
                responded_at = resp;
                responded_stamp = resp;
              }
        | Resp_write _ | Resp_read _ -> None)
      stamped

  let pp_history ops =
    Format.asprintf "%a"
      (fun ppf ops ->
        List.iter
          (fun op ->
            Format.fprintf ppf "%a; "
              (Histories.Op.pp ~pp_value:Format.pp_print_string)
              op)
          ops)
      ops

  (* --- transition function -------------------------------------------- *)

  (* Build the scenario's pure transition system: initial state, the
     delivery step, and the terminal-state property check — shared by the
     exhaustive DFS and the Monte-Carlo sampler. *)
  let machinery ~property scenario =
    let cfg = scenario.cfg in
    let crashed = scenario.crashed in
    let send_to_objects st ~src m =
      (* broadcast, dropping messages to crashed objects at the source *)
      let sends =
        List.filter_map
          (fun i ->
            if List.mem i crashed then None
            else Some (src, Sim.Proc_id.Obj i, m))
          (List.init cfg.Quorum.Config.s (fun k -> k + 1))
      in
      { st with inflight = canonical (sends @ st.inflight) }
    in

    (* Start the next write if the writer is free. *)
    let rec writer_pump st =
      match (st.winflight, st.wqueue) with
      | None, v :: rest ->
          let k = st.wcount + 1 in
          (match P.writer_start st.writer v with
          | Error e -> invalid_arg ("Explorer: writer_start: " ^ e)
          | Ok (writer, m) ->
              let st =
                {
                  st with
                  writer;
                  wqueue = rest;
                  winflight = Some k;
                  wcount = k;
                  log = Inv_write (k, v) :: st.log;
                }
              in
              writer_pump (send_to_objects st ~src:Sim.Proc_id.Writer m))
      | _ -> st
    in
    let reader_pump j st =
      let slot = Core.Ints.Map.find j st.readers in
      if slot.remaining <= 0 then st
      else
        match P.reader_start slot.rsm with
        | Error _ -> st (* still busy *)
        | Ok (rsm, m) ->
            let rid = slot.rid + 1 in
            let slot = { rsm; remaining = slot.remaining - 1; rid } in
            let st =
              {
                st with
                readers = Core.Ints.Map.add j slot st.readers;
                log = Inv_read (j, rid) :: st.log;
              }
            in
            send_to_objects st ~src:(Sim.Proc_id.Reader j) m
    in

    let pump_all_readers st =
      Core.Ints.Map.fold (fun j _ st -> reader_pump j st) st.readers st
    in
    let apply_writer_events st events =
      List.fold_left
        (fun st ev ->
          match ev with
          | Core.Events.Broadcast m -> send_to_objects st ~src:Sim.Proc_id.Writer m
          | Core.Events.Write_done _ -> (
              match st.winflight with
              | Some k ->
                  let st =
                    writer_pump
                      { st with winflight = None; log = Resp_write k :: st.log }
                  in
                  (* In sequential scenarios the last write completing
                     releases the readers. *)
                  if scenario.sequential && st.winflight = None then
                    pump_all_readers st
                  else st
              | None -> st)
          | Core.Events.Read_done _ -> st)
        st events
    in
    let apply_reader_events j st events =
      List.fold_left
        (fun st ev ->
          match ev with
          | Core.Events.Broadcast m ->
              send_to_objects st ~src:(Sim.Proc_id.Reader j) m
          | Core.Events.Read_done { value; _ } ->
              let slot = Core.Ints.Map.find j st.readers in
              let st =
                { st with log = Resp_read (j, slot.rid, value) :: st.log }
              in
              reader_pump j st
          | Core.Events.Write_done _ -> st)
        st events
    in

    (* Deliver one in-flight message, returning the successor state. *)
    let deliver st (src, dst, m) =
      let remove l x =
        let rec go acc = function
          | [] -> List.rev acc
          | y :: rest ->
              if Stdlib.compare x y = 0 then List.rev_append acc rest
              else go (y :: acc) rest
        in
        go [] l
      in
      let st = { st with inflight = remove st.inflight (src, dst, m) } in
      match dst with
      | Sim.Proc_id.Obj i ->
          let obj = Core.Ints.Map.find i st.objs in
          let obj', reply = P.obj_handle obj ~src m in
          let st = { st with objs = Core.Ints.Map.add i obj' st.objs } in
          let replies =
            match reply with
            | None -> []
            | Some r -> (
                match List.assoc_opt i scenario.byz with
                | None -> [ r ]
                | Some b -> b.rewrite ~src r)
          in
          {
            st with
            inflight =
              canonical
                (List.map (fun r -> (Sim.Proc_id.Obj i, src, r)) replies
                @ st.inflight);
          }
      | Sim.Proc_id.Writer -> (
          match src with
          | Sim.Proc_id.Obj i ->
              let writer, events = P.writer_on_msg st.writer ~obj:i m in
              apply_writer_events { st with writer } events
          | _ -> st)
      | Sim.Proc_id.Reader j -> (
          match src with
          | Sim.Proc_id.Obj i ->
              let slot = Core.Ints.Map.find j st.readers in
              let rsm, events = P.reader_on_msg slot.rsm ~obj:i m in
              let st =
                {
                  st with
                  readers = Core.Ints.Map.add j { slot with rsm } st.readers;
                }
              in
              apply_reader_events j st events
          | _ -> st)
    in

    (* Initial state: every client invokes its first operation. *)
    let init =
      let readers =
        List.fold_left
          (fun m (j, n) ->
            Core.Ints.Map.add j
              { rsm = P.reader_init ~cfg ~j; remaining = n; rid = 0 }
              m)
          Core.Ints.Map.empty scenario.reads
      in
      let objs =
        List.fold_left
          (fun m i ->
            if List.mem i crashed then m
            else Core.Ints.Map.add i (P.obj_init ~cfg ~index:i) m)
          Core.Ints.Map.empty
          (List.init cfg.Quorum.Config.s (fun k -> k + 1))
      in
      let st =
        {
          writer = P.writer_init ~cfg;
          wqueue = scenario.writes;
          winflight = None;
          wcount = 0;
          readers;
          objs;
          inflight = [];
          log = [];
        }
      in
      let st = writer_pump st in
      if scenario.sequential && st.winflight <> None then st
      else List.fold_left (fun st (j, _) -> reader_pump j st) st scenario.reads
    in

    (* Terminal-state property checks. *)
    let check_terminal st =
      let ops = history_of_log st.log in
      let equal = String.equal in
      let consistency =
        match property with
        | `Safe -> Histories.Checks.check_safety ~equal ops
        | `Regular -> Histories.Checks.check_regularity ~equal ops
        | `Atomic -> Histories.Checks.check_atomicity ~equal ops
      in
      let consistency_violations =
        List.map
          (fun v ->
            {
              kind = v.Histories.Checks.rule;
              detail =
                Format.asprintf "%a | history: %s"
                  (Histories.Checks.pp_violation ~pp_value:Format.pp_print_string)
                  v (pp_history ops);
            })
          consistency
      in
      let incomplete =
        Option.is_some st.winflight
        || st.wqueue <> []
        || Core.Ints.Map.exists
             (fun _ slot ->
               slot.remaining > 0
               ||
               match P.reader_start slot.rsm with
               | Error _ -> true (* a read is still in progress *)
               | Ok _ -> false)
             st.readers
      in
      let wf_violations =
        if incomplete then
          [
            {
              kind = "wait-freedom";
              detail =
                "operations still pending at quiescence | history: "
                ^ pp_history ops;
            };
          ]
        else []
      in
      consistency_violations @ wf_violations
    in

    (init, deliver, check_terminal)

  (* Exhaustive DFS with memoization on a structural fingerprint. *)
  let run ?(max_states = 200_000) ?(property = `Safe) scenario =
    let init, deliver, check_terminal = machinery ~property scenario in
    let visited = Hashtbl.create (min max_states 65536) in
    let fingerprint st =
      Marshal.to_string
        (st.writer, st.wqueue, st.winflight, st.readers, st.objs, st.inflight,
         st.log)
        []
    in
    let violations = ref [] in
    let seen_violation = Hashtbl.create 16 in
    let explored = ref 0 in
    let terminals = ref 0 in
    let truncated = ref false in
    let stack = ref [ init ] in
    while !stack <> [] && not !truncated do
      match !stack with
      | [] -> ()
      | st :: rest ->
          stack := rest;
          let fp = fingerprint st in
          if not (Hashtbl.mem visited fp) then begin
            Hashtbl.add visited fp ();
            incr explored;
            if !explored >= max_states then truncated := true;
            match st.inflight with
            | [] ->
                incr terminals;
                List.iter
                  (fun v ->
                    if not (Hashtbl.mem seen_violation (v.kind, v.detail)) then begin
                      Hashtbl.add seen_violation (v.kind, v.detail) ();
                      if List.length !violations < 10 then
                        violations := v :: !violations
                    end)
                  (check_terminal st)
            | msgs ->
                let choices =
                  List.sort_uniq Stdlib.compare msgs
                in
                List.iter (fun c -> stack := deliver st c :: !stack) choices
          end
    done;
    {
      explored = !explored;
      terminals = !terminals;
      truncated = !truncated;
      violations = List.rev !violations;
    }

  let check ?max_states ?property scenario = run ?max_states ?property scenario

  (* Monte-Carlo sampler: follow [walks] uniformly random schedules to
     quiescence, checking every endpoint.  Each walk draws from its own
     PRNG, split off the seed stream up front, so walk [i] samples the
     same schedule whatever the domain count — the batch fans across the
     pool and reduces (step sum, violation dedup) in walk order. *)
  let random_walks ?jobs ?(walks = 1000) ?(property = `Safe) ~seed scenario =
    let init, deliver, check_terminal = machinery ~property scenario in
    let base = Sim.Prng.create ~seed in
    let walk_rngs = Array.init walks (fun _ -> Sim.Prng.split base) in
    let run_walk i =
      let rng = walk_rngs.(i) in
      let st = ref init in
      let steps = ref 0 in
      let continue = ref true in
      while !continue do
        match !st.inflight with
        | [] -> continue := false
        | msgs ->
            incr steps;
            let choice = Sim.Prng.pick rng (Array.of_list msgs) in
            st := deliver !st choice
      done;
      (!steps, check_terminal !st)
    in
    let results = Exec.Pool.init ?jobs walks run_walk in
    let violations = ref [] in
    let seen_violation = Hashtbl.create 16 in
    let steps = ref 0 in
    Array.iter
      (fun (s, vs) ->
        steps := !steps + s;
        List.iter
          (fun v ->
            if not (Hashtbl.mem seen_violation (v.kind, v.detail)) then begin
              Hashtbl.add seen_violation (v.kind, v.detail) ();
              if List.length !violations < 10 then violations := v :: !violations
            end)
          vs)
      results;
    {
      explored = !steps;
      terminals = walks;
      truncated = false;
      violations = List.rev !violations;
    }
end
