module Make (P : Core.Protocol_intf.S) = struct
  type verdict =
    | Violates_run4 of { returned : Core.Value.t; expected : Core.Value.t }
    | Violates_run5 of { returned : Core.Value.t }
    | Not_fast

  type outcome = {
    blocks : Quorum.Blocks.t;
    write_rounds : int;
    replies_equal : bool;
    run4_value : Core.Value.t option;
    run5_value : Core.Value.t option;
    verdict : verdict;
    transcript : string list;
  }

  (* Deliver [msg] from [src] to every object in [responders] (ascending),
     collecting replies; objects not listed never receive it. *)
  let deliver_broadcast objs ~src ~responders msg =
    List.fold_left
      (fun (objs, acks) i ->
        let state = Core.Ints.Map.find i objs in
        let state', reply = P.obj_handle state ~src msg in
        let objs = Core.Ints.Map.add i state' objs in
        match reply with
        | None -> (objs, acks)
        | Some ack -> (objs, acks @ [ (i, ack) ]))
      (objs, []) responders

  (* Run P's writer to completion against [responders], however many
     rounds it takes (the proof makes no assumption on k). *)
  let run_write ~objs ~responders writer v =
    match P.writer_start writer v with
    | Error e -> invalid_arg ("Lower_bound: writer_start: " ^ e)
    | Ok (writer, first_round) ->
        let objs, acks =
          deliver_broadcast objs ~src:Sim.Proc_id.Writer ~responders first_round
        in
        let rec feed writer objs pending =
          match pending with
          | [] ->
              invalid_arg
                "Lower_bound: writer blocked although a full quorum responded"
          | (i, ack) :: rest ->
              let writer, events = P.writer_on_msg writer ~obj:i ack in
              let rec apply objs pending = function
                | [] -> feed writer objs pending
                | Core.Events.Broadcast m :: more ->
                    let objs, acks =
                      deliver_broadcast objs ~src:Sim.Proc_id.Writer ~responders
                        m
                    in
                    apply objs (pending @ acks) more
                | Core.Events.Write_done { rounds } :: _ -> (objs, rounds)
                | Core.Events.Read_done _ :: more -> apply objs pending more
              in
              apply objs rest events
        in
        feed writer objs acks

  (* Drive P's reader on a fixed per-object reply list; decide whether it
     is fast (returns on these replies alone). *)
  let drive_reader ~cfg replies =
    let reader = P.reader_init ~cfg ~j:1 in
    match P.reader_start reader with
    | Error e -> invalid_arg ("Lower_bound: reader_start: " ^ e)
    | Ok (reader, _read1) ->
        let rec feed reader = function
          | [] -> None
          | (i, ack) :: rest -> (
              let reader, events = P.reader_on_msg reader ~obj:i ack in
              let value =
                List.find_map
                  (function
                    | Core.Events.Read_done { value; _ } -> Some value
                    | Core.Events.Broadcast _ | Core.Events.Write_done _ ->
                        None)
                  events
              in
              match value with Some v -> Some v | None -> feed reader rest)
        in
        feed reader replies

  let analyse ~t ~b ~value =
    if Core.Value.is_bottom value then
      invalid_arg "Lower_bound.analyse: v1 must not be bottom";
    let blocks = Quorum.Blocks.partition_exn ~t ~b in
    let s = (2 * t) + (2 * b) in
    let cfg = Quorum.Config.make_exn ~s ~t ~b in
    let transcript = ref [] in
    let say fmt = Format.kasprintf (fun s -> transcript := s :: !transcript) fmt in
    say "Configuration: %s (S = 2t+2b, one below the fast-read threshold)"
      (Quorum.Config.to_string cfg);
    say "Blocks: %s" (Format.asprintf "%a" Quorum.Blocks.pp blocks);
    let b1 = Quorum.Blocks.members blocks `B1 in
    let b2 = Quorum.Blocks.members blocks `B2 in
    let t1 = Quorum.Blocks.members blocks `T1 in
    let t2 = Quorum.Blocks.members blocks `T2 in
    let objs =
      List.fold_left
        (fun m i -> Core.Ints.Map.add i (P.obj_init ~cfg ~index:i) m)
        Core.Ints.Map.empty
        (Quorum.Blocks.all_objects blocks)
    in

    (* The READ1 message all runs use: a fresh reader's first round. *)
    let read1 =
      match P.reader_start (P.reader_init ~cfg ~j:1) with
      | Ok (_, m) -> m
      | Error e -> invalid_arg ("Lower_bound: reader_start: " ^ e)
    in

    (* run1: READ1 reaches only B1; its replies stay in transit. *)
    let objs_run1, b1_pre_acks =
      deliver_broadcast objs ~src:(Sim.Proc_id.Reader 1) ~responders:b1 read1
    in
    say "run1: rd1 reaches only B1; %d reply(ies) left in transit"
      (List.length b1_pre_acks);

    (* run2/run'2: WRITE(v1) completes against B1, B2, T2 (T1 delayed). *)
    let responders = List.sort Int.compare (b1 @ b2 @ t2) in
    let writer = P.writer_init ~cfg in
    let objs_post_write, write_rounds =
      run_write ~objs:objs_run1 ~responders writer value
    in
    say "run2: wr1(v1) completes in %d round(s), skipping T1" write_rounds;

    (* Replies the reader receives in runs 3, 4, 5 — computed per run. *)
    let fresh_reply i =
      (* an object in its initial state answering READ1 *)
      match P.obj_handle (P.obj_init ~cfg ~index:i) ~src:(Sim.Proc_id.Reader 1) read1 with
      | _, Some ack -> (i, ack)
      | _, None ->
          invalid_arg "Lower_bound: object refused to answer a fresh READ1"
    in
    let post_write_reply i =
      match
        P.obj_handle
          (Core.Ints.Map.find i objs_post_write)
          ~src:(Sim.Proc_id.Reader 1) read1
      with
      | _, Some ack -> (i, ack)
      | _, None ->
          invalid_arg "Lower_bound: post-write object refused to answer READ1"
    in
    (* run3: B1's in-transit (pre-write) replies; T1 fresh (its write
       messages are still in transit); B2 post-write. *)
    let run3 = b1_pre_acks @ List.map fresh_reply t1 @ List.map post_write_reply b2 in
    (* run4: B1 malicious, replaying its pre-write self from sigma0. *)
    let run4 =
      List.map fresh_reply b1 @ List.map fresh_reply t1
      @ List.map post_write_reply b2
    in
    (* run5: no write ever; B2 malicious, impersonating its post-write
       self. *)
    let run5 =
      List.map fresh_reply b1 @ List.map fresh_reply t1
      @ List.map post_write_reply b2
    in
    let replies_equal =
      (* Structural comparison is sound here: all three lists are built by
         the same pure automata on identical inputs. *)
      Stdlib.compare run3 run4 = 0 && Stdlib.compare run4 run5 = 0
    in
    say "run3/run4/run5: reader receives identical replies from %s"
      (String.concat ", "
         (List.map (fun (i, _) -> "s" ^ string_of_int i) run4));
    say "indistinguishability: %b" replies_equal;

    let run4_value = drive_reader ~cfg run4 in
    let run5_value = drive_reader ~cfg run5 in
    let verdict =
      match (run4_value, run5_value) with
      | None, _ | _, None -> Not_fast
      | Some v4, Some v5 ->
          (* A deterministic reader on identical replies: v4 = v5. *)
          if not (Core.Value.equal v4 value) then
            Violates_run4 { returned = v4; expected = value }
          else Violates_run5 { returned = v5 }
    in
    (match verdict with
    | Not_fast ->
        say
          "verdict: reader did not decide on the round-1 replies — not a \
           fast READ implementation, the bound does not apply"
    | Violates_run4 { returned; _ } ->
        say
          "verdict: SAFETY VIOLATED in run4 — read after wr1(%s) returned %s"
          (Core.Value.to_string value)
          (Core.Value.to_string returned)
    | Violates_run5 { returned } ->
        say
          "verdict: SAFETY VIOLATED in run5 — nothing was ever written, yet \
           the read returned %s"
          (Core.Value.to_string returned));
    {
      blocks;
      write_rounds;
      replies_equal;
      run4_value;
      run5_value;
      verdict;
      transcript = List.rev !transcript;
    }

  (* ASCII rendering of Figure 1: one panel per run; columns are the
     rounds of the operations present in that run, rows the blocks. *)
  let figure (o : outcome) =
    let k = o.write_rounds in
    let blocks = [ "T1"; "T2"; "B1"; "B2" ] in
    (* mark: block -> column list of true/false; columns described per
       run below.  rd1 is always a single round-1 column. *)
    let panel ~title ~byz ~write_cols ~read_col =
      let header =
        let wr = if write_cols = 0 then "" else Printf.sprintf "wr1 rnd1..%d  " k in
        Printf.sprintf "  %s:  %srd1 rnd1" title wr
      in
      let row name =
        let mark = if List.mem name byz then "@" else " " in
        let wr_cells =
          if write_cols = 0 then ""
          else
            String.concat ""
              (List.init write_cols (fun _ ->
                   if List.mem name [ "B1"; "B2"; "T2" ] then " x" else " ."))
            ^ "   "
        in
        let rd_cell = if List.mem name read_col then "x" else "." in
        Printf.sprintf "    %s%s  %s       %s" name mark wr_cells rd_cell
      in
      header :: List.map row blocks
    in
    List.concat
      [
        [ "Figure 1 (x = block receives and answers, @ = malicious):" ];
        panel ~title:"run1 (rd1 only; T1 crashed)" ~byz:[] ~write_cols:0
          ~read_col:[ "B1" ];
        panel ~title:"run2 (wr1 after run1; T1 skipped)" ~byz:[] ~write_cols:k
          ~read_col:[ "B1" ];
        panel ~title:"run3 (all correct; rd1 || wr1)" ~byz:[] ~write_cols:k
          ~read_col:[ "B1"; "T1"; "B2" ];
        panel ~title:"run4 (rd1 after wr1; B1 malicious)" ~byz:[ "B1" ]
          ~write_cols:k ~read_col:[ "B1"; "T1"; "B2" ];
        panel ~title:"run5 (no write; B2 malicious)" ~byz:[ "B2" ] ~write_cols:0
          ~read_col:[ "B1"; "T1"; "B2" ];
      ]
end
