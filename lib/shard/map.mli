(** Placement of a multi-register keyspace over a fleet of base-object
    servers.

    The paper's protocols implement one SWMR register over [S = 2t+b+1]
    base objects.  A keyspace is just many such registers: every key id
    in [0, keys) names an independent register, each placed on its own
    group of [S] base objects (its {e shard}) drawn from a [fleet] of
    servers that may be larger than [S].  Placement is a pure function
    of the map's parameters — clients and server domains recompute it
    independently and always agree, so there is no placement service,
    no lookup round, and nothing to keep consistent.

    Two-level placement:

    - {b key → shard}: either a [Hash] of the key id (a splitmix64 mix,
      so zipf-popular {e consecutive} key ids spread over all shards)
      or contiguous [Range]s;
    - {b shard → members}: shard [i]'s [S] members are fleet slots
      [i, i+1, ..., i+S-1 (mod fleet)] — a rotation per shard, so every
      fleet slot carries the same number of shard memberships.

    Each shard runs the protocol under the {e same} quorum configuration
    [cfg]; per-shard correctness is the paper's single-register
    correctness verbatim, because keys never share automaton state
    (per-key objects server-side, per-key reader/writer machines
    client-side). *)

type placement = Hash | Range

val placement_to_string : placement -> string

val placement_of_string : string -> placement option

type t

val make :
  ?placement:placement ->
  ?shards:int ->
  keys:int ->
  fleet:int ->
  cfg:Quorum.Config.t ->
  unit ->
  (t, string) result
(** [make ~keys ~fleet ~cfg ()] places [keys] registers over [fleet]
    base-object servers in shards of [cfg.s] members each.  [placement]
    defaults to [Hash]; [shards] defaults to [fleet] (one rotation per
    starting slot).  Errors if [keys < 1], [shards < 1], or the fleet is
    smaller than [cfg.s]. *)

val make_exn :
  ?placement:placement ->
  ?shards:int ->
  keys:int ->
  fleet:int ->
  cfg:Quorum.Config.t ->
  unit ->
  t
(** @raise Invalid_argument where {!make} errors. *)

val keys : t -> int

val shards : t -> int

val fleet : t -> int

val cfg : t -> Quorum.Config.t

val placement : t -> placement

val mix : int -> int
(** The key-id mixer behind [Hash] placement (splitmix64 finalizer,
    masked nonnegative).  Exposed so load drivers can partition write
    ownership over keys with the same function placement uses. *)

val shard_of_key : t -> int -> int
(** Shard owning a key.  @raise Invalid_argument outside [0, keys). *)

val member : t -> shard:int -> rank:int -> int
(** Fleet slot (0-based) hosting member [rank] (0-based, < [cfg.s]) of
    [shard].  @raise Invalid_argument out of range. *)

val members : t -> shard:int -> int array
(** All [cfg.s] fleet slots of a shard, in rank order.  Member [rank]
    hosts the shard's base object with 1-based object index [rank+1]. *)

val rank_of_slot : t -> shard:int -> slot:int -> int option
(** Inverse of {!member}: the rank at which fleet slot [slot] serves
    [shard], or [None] if it is not a member.  Used by the keyed client
    to map a reply's connection back to the automaton's object index. *)

val slots_of_key : t -> int -> int array
(** [members] of [shard_of_key]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
