type placement = Hash | Range

let placement_to_string = function Hash -> "hash" | Range -> "range"

let placement_of_string = function
  | "hash" -> Some Hash
  | "range" -> Some Range
  | _ -> None

type t = {
  keys : int;
  shards : int;
  fleet : int;
  cfg : Quorum.Config.t;
  placement : placement;
}

let keys t = t.keys

let shards t = t.shards

let fleet t = t.fleet

let cfg t = t.cfg

let placement t = t.placement

(* splitmix64's finalizer: a cheap, well-mixed integer permutation.  The
   top bit is masked off so the result is a nonnegative OCaml int; the
   mix must be a pure function of the key alone — every client and every
   server domain recomputes placement independently and they have to
   agree without coordination. *)
let mix k =
  let open Int64 in
  let z = of_int k in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3fffffffffffffffL)

let make ?(placement = Hash) ?shards ~keys ~fleet ~cfg () =
  let s = cfg.Quorum.Config.s in
  let shards = match shards with Some n -> n | None -> fleet in
  if keys < 1 then Error (Printf.sprintf "keys must be >= 1 (got %d)" keys)
  else if shards < 1 then
    Error (Printf.sprintf "shards must be >= 1 (got %d)" shards)
  else if fleet < s then
    Error
      (Printf.sprintf "fleet of %d cannot host S=%d member shards" fleet s)
  else Ok { keys; shards; fleet; cfg; placement }

let make_exn ?placement ?shards ~keys ~fleet ~cfg () =
  match make ?placement ?shards ~keys ~fleet ~cfg () with
  | Ok t -> t
  | Error e -> invalid_arg ("Shard.Map.make: " ^ e)

let shard_of_key t k =
  if k < 0 || k >= t.keys then
    invalid_arg
      (Printf.sprintf "Shard.Map.shard_of_key: key %d outside [0,%d)" k t.keys);
  match t.placement with
  | Hash -> mix k mod t.shards
  | Range ->
      (* contiguous key ranges: shard i serves keys
         [i*keys/shards, (i+1)*keys/shards) *)
      min (t.shards - 1) (k * t.shards / t.keys)

(* Shard [i]'s S members are the fleet slots i, i+1, ... (mod fleet): a
   rotation per shard, so with shards >= fleet every fleet slot carries
   the same number of shard memberships and hot shards do not all pile
   onto slot 0. *)
let member t ~shard ~rank =
  if shard < 0 || shard >= t.shards then
    invalid_arg (Printf.sprintf "Shard.Map.member: shard %d" shard);
  let s = t.cfg.Quorum.Config.s in
  if rank < 0 || rank >= s then
    invalid_arg (Printf.sprintf "Shard.Map.member: rank %d outside [0,%d)" rank s);
  (shard + rank) mod t.fleet

let members t ~shard =
  let s = t.cfg.Quorum.Config.s in
  Array.init s (fun rank -> member t ~shard ~rank)

let rank_of_slot t ~shard ~slot =
  if slot < 0 || slot >= t.fleet then None
  else
    let s = t.cfg.Quorum.Config.s in
    let rank = (slot - shard) mod t.fleet in
    let rank = if rank < 0 then rank + t.fleet else rank in
    if rank < s then Some rank else None

let slots_of_key t k =
  let shard = shard_of_key t k in
  members t ~shard

let pp ppf t =
  Fmt.pf ppf "keyspace(%d keys, %d shards, %s placement, fleet %d, %a)" t.keys
    t.shards
    (placement_to_string t.placement)
    t.fleet Quorum.Config.pp t.cfg

let to_string t = Fmt.str "%a" pp t
