(** Versioned length-prefixed binary framing for the protocol wire
    messages.

    The simulator moves OCaml values between pure state machines; the
    network runtime moves bytes between processes.  This module is the
    boundary: a compact binary encoding for each protocol's message type
    plus a self-describing frame layout shared by every connection.

    Frame layout (everything big-endian):

    {v
    +----------------+------+---------+------+----------------+
    | length (u32)   | 'R'  | version | kind | body ...       |
    +----------------+------+---------+------+----------------+
                       'B'
    v}

    [length] counts the bytes after the length field.  [kind]
    distinguishes the session-control frames ({!Hello}, {!Hello_ack},
    {!Err}) from protocol messages ({!Msg}).  Integers inside bodies are
    zigzag LEB128 varints; strings are length-prefixed.

    Decoding is total: every exported decode function returns [Error]
    on truncated, oversized, or corrupt input — it never raises, which
    the codec property suite checks on adversarial byte strings. *)

val version : int
(** Wire format version stamped into (and checked on) every frame. *)

val max_frame : int
(** Upper bound on a frame's payload size; larger length prefixes are
    rejected before any allocation. *)

type error = string

(** {2 Encode scratch}

    Each connection owns an [Out]: frames are appended back to back and
    flushed with a single [write].  Because frames are length-prefixed
    and self-delimiting, N frames per write is byte-identical to N
    writes of one frame each — batching is invisible to the peer.  The
    backing storage comes from a small pooled arena (4–64 KiB power-of-
    two classes), so steady-state encoding allocates nothing per
    message; buffers that ballooned for a one-off large frame are
    dropped back to pool size after the flush. *)

module Out : sig
  type t

  val create : unit -> t

  val length : t -> int
  (** Bytes appended since the last {!clear}. *)

  val pending : t -> int
  (** Bytes not yet flushed (a partial {!flush_nonblock} consumes a
      prefix). *)

  val clear : t -> unit

  val contents : t -> string
  (** Everything appended since the last clear, flushed or not. *)

  val recycle : t -> unit
  (** Return the backing buffer to the arena.  The scratch stays usable
      (it re-acquires storage on the next append). *)
end

(** {2 Per-protocol message codecs} *)

type 'm t
(** Encoder/decoder pair for one protocol's message type ['m]. *)

type 'm codec = 'm t

val name : 'm t -> string
(** Short codec identifier ("core", "abd"), embedded in [Hello]
    validation errors. *)

val messages : Core.Messages.t t
(** The safe/regular family ({!Core.Messages.t}): PW/W write rounds,
    READ1/READ2 with tuple or history-suffix acks. *)

val abd : Baseline.Abd.msg t
(** The ABD baseline's read/write/write-back messages. *)

val encode_msg : 'm t -> 'm -> string
(** Message body only (no frame header) — what a [Msg] frame carries. *)

val decode_msg : 'm t -> string -> ('m, error) result
(** Strict inverse of {!encode_msg}: trailing bytes are an error. *)

(** {2 Frames} *)

type 'm frame =
  | Hello of { proto : string; sender : string; obj : int }
      (** First frame on every connection: the protocol the client
          speaks, its process name ("w", "r3"), and the object index it
          believes it dialed (0 = any). *)
  | Hello_ack of { proto : string; obj : int }
      (** Server's reply: the protocol it hosts and the actual object
          index. *)
  | Msg of 'm  (** A protocol message, attributed to the session's sender. *)
  | Msg_from of { sender : string; msg : 'm }
      (** A protocol message carrying its sender inline, so one
          connection can multiplex traffic for many reader automata.
          Servers reply in kind, echoing [sender], which is how the
          pipelined client demultiplexes concurrent operations. *)
  | Msg_key of { key : int; sender : string; msg : 'm }
      (** A sender-tagged message additionally scoped to one register of
          a keyspace: the varint [key] (>= 0) names the register the
          automaton belongs to, so one connection multiplexes traffic
          for many keys times many automata.  Servers reply in kind,
          echoing both [key] and [sender].  Untagged [Msg]/[Msg_from]
          frames address key 0, which is how pre-keyspace clients keep
          working against keyed servers. *)
  | Err of string
      (** Terminal: the peer rejected the session or a frame; the
          connection closes after sending it. *)

val frame_info : msg_info:('m -> string) -> 'm frame -> string

val encode_frame : 'm t -> 'm frame -> string
(** Full wire bytes, length prefix included. *)

val encode_frame_into : 'm t -> Out.t -> 'm frame -> unit
(** Append one full frame (length prefix included) to the scratch; the
    zero-allocation path used by the runtime.  The bytes appended are
    exactly {!encode_frame}'s.  @raise Invalid_argument on an oversized
    frame (the scratch is left unchanged). *)

val decode_payload : 'm t -> string -> ('m frame, error) result
(** Decode one frame payload (the bytes after the length prefix). *)

(** {2 Protocol-independent peeking}

    The {!Chaos} interposer relays frames of protocols it does not know:
    self-delimiting frames let it split the stream without decoding, and
    these helpers let it read just the fixed header plus the sender
    strings of [Hello]/[Msg_from] — everything it needs to attribute a
    frame to a plan's process — while treating the body as opaque
    bytes. *)

val header_bytes : int
(** Bytes of fixed header at the start of every payload (magic, version,
    kind) — the prefix a fault injector must preserve for a corrupted
    frame to still parse as a frame. *)

val peek_kind :
  string ->
  [ `Hello | `Hello_ack | `Msg | `Msg_from | `Msg_key | `Err | `Unknown of int ]
  option
(** Kind of a frame payload; [None] if the header is malformed. *)

val peek_sender : string -> string option
(** The process name a payload carries inline: a [Hello]'s [sender] or a
    [Msg_from]/[Msg_key]'s [sender]; [None] for other kinds or malformed
    bytes. *)

val peek_key : string -> int option
(** The key id a [Msg_key] payload carries; [None] for other kinds or
    malformed bytes. *)

(** {2 Incremental frame extraction}

    A stream socket delivers byte runs that need not align with frame
    boundaries; each connection owns a [Reader] that buffers partial
    input and yields complete frames. *)

module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed r b off len] appends [len] bytes of received data. *)

  val next : 'm codec -> t -> ([ `Frame of 'm frame | `Awaiting ], error) result
  (** Extract the next complete frame, [`Awaiting] if more bytes are
      needed.  An [Error] means the stream is corrupt (bad magic,
      version, oversized length): the connection cannot resynchronize
      and must be closed.  Frames decode in place out of the receive
      buffer — no per-frame payload copy. *)

  val pending : t -> int
  (** Buffered bytes not yet consumed. *)

  val capacity : t -> int
  (** Current backing-buffer size.  The buffer grows for large frames
      and shrinks back to a pool-class size once they drain, so a
      single oversized frame does not pin peak capacity forever. *)

  val reset : t -> unit
  (** Discard buffered bytes (a reconnect starts a fresh stream). *)

  val recycle : t -> unit
  (** Return the backing buffer to the arena; the reader stays usable. *)
end

(** {2 Socket helpers} *)

val send : Unix.file_descr -> string -> unit
(** Write the whole string (retrying short writes).
    @raise Unix.Unix_error like [Unix.write]. *)

val flush : Unix.file_descr -> Out.t -> unit
(** Write everything buffered in the scratch (retrying short writes),
    then clear it.  One [flush] after N {!encode_frame_into}s is the
    batched send path.  @raise Unix.Unix_error like [Unix.write]. *)

val flush_nonblock : Unix.file_descr -> Out.t -> [ `Done | `Blocked ]
(** Non-blocking flush for event-loop servers: writes as much as the
    socket accepts; [`Blocked] leaves the unsent suffix pending.
    @raise Unix.Unix_error on hard errors (not EAGAIN). *)

val recv_into : Unix.file_descr -> Reader.t -> int
(** Read one chunk directly into the reader's buffer (no intermediate
    allocation); returns the byte count, 0 at EOF.
    @raise Unix.Unix_error like [Unix.read]. *)
