(** Versioned length-prefixed binary framing for the protocol wire
    messages.

    The simulator moves OCaml values between pure state machines; the
    network runtime moves bytes between processes.  This module is the
    boundary: a compact binary encoding for each protocol's message type
    plus a self-describing frame layout shared by every connection.

    Frame layout (everything big-endian):

    {v
    +----------------+------+---------+------+----------------+
    | length (u32)   | 'R'  | version | kind | body ...       |
    +----------------+------+---------+------+----------------+
                       'B'
    v}

    [length] counts the bytes after the length field.  [kind]
    distinguishes the session-control frames ({!Hello}, {!Hello_ack},
    {!Err}) from protocol messages ({!Msg}).  Integers inside bodies are
    zigzag LEB128 varints; strings are length-prefixed.

    Decoding is total: every exported decode function returns [Error]
    on truncated, oversized, or corrupt input — it never raises, which
    the codec property suite checks on adversarial byte strings. *)

val version : int
(** Wire format version stamped into (and checked on) every frame. *)

val max_frame : int
(** Upper bound on a frame's payload size; larger length prefixes are
    rejected before any allocation. *)

type error = string

(** {2 Per-protocol message codecs} *)

type 'm t
(** Encoder/decoder pair for one protocol's message type ['m]. *)

type 'm codec = 'm t

val name : 'm t -> string
(** Short codec identifier ("core", "abd"), embedded in [Hello]
    validation errors. *)

val messages : Core.Messages.t t
(** The safe/regular family ({!Core.Messages.t}): PW/W write rounds,
    READ1/READ2 with tuple or history-suffix acks. *)

val abd : Baseline.Abd.msg t
(** The ABD baseline's read/write/write-back messages. *)

val encode_msg : 'm t -> 'm -> string
(** Message body only (no frame header) — what a [Msg] frame carries. *)

val decode_msg : 'm t -> string -> ('m, error) result
(** Strict inverse of {!encode_msg}: trailing bytes are an error. *)

(** {2 Frames} *)

type 'm frame =
  | Hello of { proto : string; sender : string; obj : int }
      (** First frame on every connection: the protocol the client
          speaks, its process name ("w", "r3"), and the object index it
          believes it dialed (0 = any). *)
  | Hello_ack of { proto : string; obj : int }
      (** Server's reply: the protocol it hosts and the actual object
          index. *)
  | Msg of 'm  (** A protocol message. *)
  | Err of string
      (** Terminal: the peer rejected the session or a frame; the
          connection closes after sending it. *)

val frame_info : msg_info:('m -> string) -> 'm frame -> string

val encode_frame : 'm t -> 'm frame -> string
(** Full wire bytes, length prefix included. *)

val decode_payload : 'm t -> string -> ('m frame, error) result
(** Decode one frame payload (the bytes after the length prefix). *)

(** {2 Incremental frame extraction}

    A stream socket delivers byte runs that need not align with frame
    boundaries; each connection owns a [Reader] that buffers partial
    input and yields complete frames. *)

module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed r b off len] appends [len] bytes of received data. *)

  val next : 'm codec -> t -> ([ `Frame of 'm frame | `Awaiting ], error) result
  (** Extract the next complete frame, [`Awaiting] if more bytes are
      needed.  An [Error] means the stream is corrupt (bad magic,
      version, oversized length): the connection cannot resynchronize
      and must be closed. *)

  val pending : t -> int
  (** Buffered bytes not yet consumed. *)
end

(** {2 Blocking socket helpers} *)

val send : Unix.file_descr -> string -> unit
(** Write the whole string (retrying short writes).
    @raise Unix.Unix_error like [Unix.write]. *)

val recv_into : Unix.file_descr -> Reader.t -> int
(** Read one chunk into the reader; returns the byte count, 0 at EOF.
    @raise Unix.Unix_error like [Unix.read]. *)
