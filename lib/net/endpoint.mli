(** Server addresses: Unix-domain socket paths and TCP host:port pairs.

    The loopback harness defaults to Unix-domain sockets (no ports to
    collide, the kernel cleans nothing up behind our back); TCP covers
    multi-host deployments and the CLI.  [Tcp] with port 0 asks the
    kernel for an ephemeral port — {!Server.endpoint} reports the bound
    one. *)

type t = Unix_sock of string | Tcp of { host : string; port : int }

val of_string : string -> (t, string) result
(** ["unix:/path/to.sock"], ["tcp:host:port"], or bare ["host:port"]. *)

val to_string : t -> string
(** Inverse of {!of_string} (always with an explicit scheme). *)

val pp : Format.formatter -> t -> unit

val to_sockaddr : t -> Unix.sockaddr
(** @raise Failure if a TCP host does not resolve. *)

val socket_domain : t -> Unix.socket_domain

val cleanup : t -> unit
(** Remove a stale Unix-domain socket file, if any; no-op for TCP. *)
