type opts = {
  tick_us : int;
  client : Client.opts;
  transport : [ `Unix | `Tcp ];
  loop : Server.loop;
}

(* Patience arithmetic: an operation survives [retries] deadlines of
   [deadline] seconds each, so total patience is ~1.8 s — comfortably
   past the longest window a [large]-budget plan can script at the
   default tick (3000 ticks x 500 µs = 1.5 s).  Transient outages stall
   operations; only beyond-budget faults kill them. *)
let default_opts =
  {
    tick_us = 500;
    client = { Client.deadline = 0.3; retries = 6; backoff = 0.02 };
    transport = `Unix;
    loop = `Threads;
  }

let supported =
  Fault.Campaign.[ Safe; Regular; Regular_opt; Abd ]

let protocol_of = function
  | Fault.Campaign.Safe -> Some Protocols.safe
  | Fault.Campaign.Regular -> Some Protocols.regular
  | Fault.Campaign.Regular_opt -> Some Protocols.regular_opt
  | Fault.Campaign.Abd -> Some Protocols.abd
  | Fault.Campaign.Fast_safe | Fault.Campaign.Naive_fast -> None

(* ----- compiling a plan into live faults --------------------------------- *)

(* What the injector stages before the cluster exists: timed server
   events for the driver thread, and interposer rule windows still in
   virtual ticks (scaled once the run's wall-clock base is known). *)
type timed_ev = Tcrash of int | Trecover of int * bool

type vrule = {
  v_obj : int;  (* 1-based object index *)
  v_dir : Chaos.direction;
  v_sender : string option;
  v_from : int;  (* virtual ticks *)
  v_until : int;  (* virtual ticks; [max_int] = until the run ends *)
  v_act : Chaos.action;
}

let proc_name = function
  | Fault.Plan.W -> "w"
  | Fault.Plan.R j -> "r" ^ string_of_int j
  | Fault.Plan.O i -> "s" ^ string_of_int i

(* The live rendering of the symbolic Byzantine kinds: [Mute] silences
   an object's replies, the lying kinds scramble them past the frame
   header (the peer's total decoder rejects each one — a replica
   speaking garbage), [Flaky] is a silence window.  All count inside
   the paper's [t]/[b] budget exactly as in the simulator. *)
let byz_rules ~obj ~from_ = function
  | Fault.Plan.Mute ->
      [
        {
          v_obj = obj;
          v_dir = Chaos.To_client;
          v_sender = None;
          v_from = from_;
          v_until = max_int;
          v_act = Chaos.Drop;
        };
      ]
  | Fault.Plan.Flaky { down_from; down_until } ->
      [
        {
          v_obj = obj;
          v_dir = Chaos.To_client;
          v_sender = None;
          v_from = max from_ down_from;
          v_until = down_until;
          v_act = Chaos.Drop;
        };
      ]
  | Fault.Plan.Forge | Fault.Plan.Replay | Fault.Plan.Simulate
  | Fault.Plan.Garbage ->
      [
        {
          v_obj = obj;
          v_dir = Chaos.To_client;
          v_sender = None;
          v_from = from_;
          v_until = max_int;
          v_act = Chaos.Corrupt;
        };
      ]

module Live_injector = struct
  type t = {
    mutable timed : (int * timed_ev) list;  (* reversed *)
    mutable vrules : vrule list;
  }

  let name = "live"

  let byzantine t ~obj ~kind = t.vrules <- byz_rules ~obj ~from_:0 kind @ t.vrules

  let switch t ~obj ~at ~kind = t.vrules <- byz_rules ~obj ~from_:at kind @ t.vrules

  let crash t ~obj ~at = t.timed <- (at, Tcrash obj) :: t.timed

  let recover t ~obj ~at ~wipe = t.timed <- (at, Trecover (obj, wipe)) :: t.timed

  (* Live links are client<->server only: a block between two clients
     (or two objects) has no wire to act on, mirroring the simulator
     where no such messages flow in these protocols. *)
  let link ~src ~dst ~from_ ~until act =
    match (src, dst) with
    | (Fault.Plan.W | Fault.Plan.R _), Fault.Plan.O i ->
        [
          {
            v_obj = i;
            v_dir = Chaos.To_server;
            v_sender = Some (proc_name src);
            v_from = from_;
            v_until = until;
            v_act = act;
          };
        ]
    | Fault.Plan.O i, (Fault.Plan.W | Fault.Plan.R _) ->
        [
          {
            v_obj = i;
            v_dir = Chaos.To_client;
            v_sender = Some (proc_name dst);
            v_from = from_;
            v_until = until;
            v_act = act;
          };
        ]
    | _ -> []

  let block t ~src ~dst ~from_ ~until =
    t.vrules <- link ~src ~dst ~from_ ~until Chaos.Drop @ t.vrules

  let isolate t ~obj ~from_ ~until =
    t.vrules <-
      {
        v_obj = obj;
        v_dir = Chaos.To_server;
        v_sender = None;
        v_from = from_;
        v_until = until;
        v_act = Chaos.Drop;
      }
      :: {
           v_obj = obj;
           v_dir = Chaos.To_client;
           v_sender = None;
           v_from = from_;
           v_until = until;
           v_act = Chaos.Drop;
         }
      :: t.vrules

  let duplicate t ~src ~dst ~copies ~from_ ~until =
    t.vrules <- link ~src ~dst ~from_ ~until (Chaos.Duplicate copies) @ t.vrules
end

(* ----- running one (seed, plan) ------------------------------------------ *)

type outcome = {
  verdict : Fault.Campaign.verdict;
  timeline : (int * string) list;
  history : string Histories.Op.t list;
}

let scale_rule ~base ~tick_us r =
  {
    Chaos.dir = r.v_dir;
    sender = r.v_sender;
    from_us = base + (r.v_from * tick_us);
    until_us =
      (if r.v_until = max_int then max_int else base + (r.v_until * tick_us));
    act = r.v_act;
  }

let rule_info r =
  let act =
    match r.v_act with
    | Chaos.Drop -> "drop"
    | Chaos.Delay d -> Printf.sprintf "delay(%dus)" d
    | Chaos.Duplicate c -> Printf.sprintf "dup(%d)" c
    | Chaos.Corrupt -> "corrupt"
    | Chaos.Reorder -> "reorder"
  in
  let dir =
    match r.v_dir with Chaos.To_server -> "to_server" | Chaos.To_client -> "to_client"
  in
  Printf.sprintf "s%d %s %s%s [%d,%s)" r.v_obj dir act
    (match r.v_sender with None -> "" | Some s -> " sender=" ^ s)
    r.v_from
    (if r.v_until = max_int then "inf" else string_of_int r.v_until)

let run_plan_full ?metrics ?(opts = default_opts) protocol ~cfg ~seed plan =
  let pack =
    match protocol_of protocol with
    | Some p -> p
    | None ->
        failwith
          (Printf.sprintf "live backend: protocol %s has no wire codec"
             (Fault.Campaign.protocol_name protocol))
  in
  let ctx = { Live_injector.timed = []; vrules = [] } in
  Fault.Injector.apply (module Live_injector) ctx plan;
  let timed = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev ctx.timed) in
  let vrules = List.rev ctx.Live_injector.vrules in
  let schedule = Fault.Campaign.workload ~seed ~plan in
  let readers = Fault.Campaign.workload_readers in
  let cluster =
    Cluster.start
      ~metrics:(metrics <> None)
      ~opts:opts.client ~transport:opts.transport ~loop:opts.loop
      ~interpose:true ~protocol:pack ~cfg ~readers ()
  in
  Fun.protect ~finally:(fun () -> Cluster.stop cluster) @@ fun () ->
  let tl_lock = Mutex.create () in
  let timeline = ref [] in
  let note at msg =
    Mutex.lock tl_lock;
    timeline := (at, msg) :: !timeline;
    Mutex.unlock tl_lock
  in
  (* Virtual tick 0 is anchored a small margin into the future so rule
     installation finishes before any window can open. *)
  let base = Cluster.now_us cluster + 20_000 in
  let tick_at at = base + (at * opts.tick_us) in
  let chaos = Cluster.chaos cluster in
  Array.iteri
    (fun i proxy ->
      let mine = List.filter (fun r -> r.v_obj = i + 1) vrules in
      if mine <> [] then begin
        Chaos.set_rules proxy
          (List.map (scale_rule ~base ~tick_us:opts.tick_us) mine);
        List.iter (fun r -> note (Cluster.now_us cluster) ("rule " ^ rule_info r)) mine
      end)
    chaos;
  let rec sleep_until target =
    let now = Cluster.now_us cluster in
    if now < target then begin
      Thread.delay (float_of_int (target - now) /. 1e6);
      sleep_until target
    end
  in
  let driver =
    Thread.create
      (fun () ->
        List.iter
          (fun (at, ev) ->
            sleep_until (tick_at at);
            match ev with
            | Tcrash obj ->
                Cluster.crash cluster obj;
                note (Cluster.now_us cluster) (Printf.sprintf "crash s%d" obj)
            | Trecover (obj, wipe) -> (
                match Cluster.restart ~wipe cluster obj with
                | Ok () ->
                    note (Cluster.now_us cluster)
                      (Printf.sprintf "recover s%d%s" obj
                         (if wipe then " (wiped)" else ""))
                | Error (`Still_alive _) ->
                    note (Cluster.now_us cluster)
                      (Printf.sprintf "recover s%d skipped: still alive" obj)))
          timed)
      ()
  in
  let completed = ref 0 in
  let done_lock = Mutex.create () in
  let tally ok =
    if ok then begin
      Mutex.lock done_lock;
      incr completed;
      Mutex.unlock done_lock
    end
  in
  let writer_ops =
    List.filter_map
      (function at, Core.Schedule.Write v -> Some (at, v) | _ -> None)
      schedule
  in
  let reader_ops j =
    List.filter_map
      (function
        | at, Core.Schedule.Read { reader } when reader = j -> Some at
        | _ -> None)
      schedule
  in
  let writer_th =
    Thread.create
      (fun () ->
        List.iter
          (fun (at, v) ->
            sleep_until (tick_at at);
            tally (Result.is_ok (Cluster.write cluster v)))
          writer_ops)
      ()
  in
  let reader_ths =
    List.init readers (fun k ->
        let j = k + 1 in
        Thread.create
          (fun () ->
            List.iter
              (fun at ->
                sleep_until (tick_at at);
                tally (Result.is_ok (Cluster.read cluster ~reader:j)))
              (reader_ops j))
          ())
  in
  Thread.join writer_th;
  List.iter Thread.join reader_ths;
  Thread.join driver;
  let history = Cluster.history cluster in
  (match (metrics, Cluster.metrics cluster) with
  | Some dst, Some src -> Obs.Metrics.merge_into ~dst src
  | _ -> ());
  let equal = String.equal in
  let verdict =
    {
      Fault.Campaign.safety =
        List.length (Histories.Checks.check_safety ~equal history);
      regularity =
        List.length (Histories.Checks.check_regularity ~equal history);
      (* every operation thread has joined: the run is quiescent by
         construction, and operations that exhausted their retries are
         still open in the history — exactly what wait-freedom flags *)
      liveness =
        List.length (Histories.Checks.check_wait_freedom ~quiescent:true history);
      completed = !completed;
      total = List.length schedule;
      quiescent = true;
      spans = Cluster.spans cluster;
    }
  in
  { verdict; timeline = List.rev !timeline; history }

let run_plan ?metrics ?opts protocol ~cfg ~seed plan =
  (run_plan_full ?metrics ?opts protocol ~cfg ~seed plan).verdict

(* ----- live-to-sim witness replay ---------------------------------------- *)

type witness = {
  w_protocol : Fault.Campaign.protocol;
  w_cfg : Quorum.Config.t;
  w_seed : int;
  w_plan : Fault.Plan.t;
  w_live : outcome;
}

let capture ?opts protocol ~cfg ~seed plan =
  {
    w_protocol = protocol;
    w_cfg = cfg;
    w_seed = seed;
    w_plan = plan;
    w_live = run_plan_full ?opts protocol ~cfg ~seed plan;
  }

let replay_sim w =
  Fault.Campaign.run_plan w.w_protocol ~cfg:w.w_cfg ~seed:w.w_seed w.w_plan

let replay_reproduces w =
  Fault.Campaign.verdict_violates w.w_protocol (replay_sim w)

let replay_shrunk ?max_attempts w =
  Fault.Shrink.minimize ?max_attempts
    ~repro:(fun plan ->
      Fault.Campaign.violates w.w_protocol ~cfg:w.w_cfg ~seed:w.w_seed plan)
    w.w_plan

let backend ?(opts = default_opts) () =
  {
    Fault.Campaign.backend_name = "live";
    backend_run =
      (fun ?metrics protocol ~cfg ~seed plan ->
        run_plan ?metrics ~opts protocol ~cfg ~seed plan);
  }
