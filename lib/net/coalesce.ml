(* Joiners are stacked in reverse and reversed on read: batches are
   tiny (bounded by cap, typically <= 64) and fan-out happens once per
   round, so the O(width) reverse is cheaper than keeping a tail
   pointer.  [width] includes the implicit lead, so [can_join] compares
   directly against [cap]. *)
type 'a t = {
  cap : int;
  mutable opn : bool;
  mutable rev_joined : 'a list;
  mutable width : int;
}

let create ~cap = { cap = max 1 cap; opn = true; rev_joined = []; width = 1 }

let cap t = t.cap

let is_open t = t.opn

let can_join t = t.opn && t.width < t.cap

let join t x =
  if not (can_join t) then
    invalid_arg "Coalesce.join: batch closed or at capacity";
  t.rev_joined <- x :: t.rev_joined;
  t.width <- t.width + 1

let try_join t x =
  if can_join t then begin
    join t x;
    true
  end
  else false

let close t = t.opn <- false

let width t = t.width

let joiners t = List.rev t.rev_joined

let iter_joiners f t = List.iter f (List.rev t.rev_joined)
