type t =
  | Packed : {
      proto : (module Core.Protocol_intf.S with type msg = 'm);
      codec : 'm Codec.t;
    }
      -> t

let name (Packed { proto = (module P); _ }) = P.name

let safe = Packed { proto = (module Core.Proto_safe); codec = Codec.messages }

let regular =
  Packed { proto = (module Core.Proto_regular.Plain); codec = Codec.messages }

let regular_opt =
  Packed
    { proto = (module Core.Proto_regular.Optimized); codec = Codec.messages }

let regular_gc ~readers =
  let module Gc = Core.Proto_regular_gc.Make (struct
    let readers = readers
  end) in
  Packed { proto = (module Gc); codec = Codec.messages }

let abd = Packed { proto = (module Baseline.Abd.Regular); codec = Codec.abd }

let abd_atomic =
  Packed { proto = (module Baseline.Abd.Atomic); codec = Codec.abd }

let all = [ safe; regular; regular_opt; regular_gc ~readers:2; abd; abd_atomic ]

let of_string s = List.find_opt (fun p -> name p = s) all
