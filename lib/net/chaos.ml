type direction = To_server | To_client

type action = Drop | Delay of int | Duplicate of int | Corrupt | Reorder

type rule = {
  dir : direction;
  sender : string option;
  from_us : int;
  until_us : int;
  act : action;
}

type stats = {
  forwarded : int;
  dropped : int;
  delayed : int;
  duplicated : int;
  corrupted : int;
  reordered : int;
}

(* One relayed session: the accepted client socket paired with its
   upstream dial.  [c_sender] is learned from the session's [Hello] and
   attributes frames that carry no inline sender. *)
type conn = {
  c_client : Unix.file_descr;
  c_server : Unix.file_descr;
  mutable c_sender : string;
  mutable c_open : bool;
  c_lock : Mutex.t;
}

type t = {
  listen_ep : Endpoint.t;
  target_ep : Endpoint.t;
  now_us : unit -> int;
  listen_fd : Unix.file_descr;
  lock : Mutex.t;
  mutable rules_ : rule list;
  mutable conns : conn list;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  mutable s_forwarded : int;
  mutable s_dropped : int;
  mutable s_delayed : int;
  mutable s_duplicated : int;
  mutable s_corrupted : int;
  mutable s_reordered : int;
}

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_quietly fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bump t field =
  locked t (fun () ->
      match field with
      | `Forwarded -> t.s_forwarded <- t.s_forwarded + 1
      | `Dropped -> t.s_dropped <- t.s_dropped + 1
      | `Delayed -> t.s_delayed <- t.s_delayed + 1
      | `Duplicated -> t.s_duplicated <- t.s_duplicated + 1
      | `Corrupted -> t.s_corrupted <- t.s_corrupted + 1
      | `Reordered -> t.s_reordered <- t.s_reordered + 1)

let close_conn t conn =
  let was_open =
    Mutex.lock conn.c_lock;
    let o = conn.c_open in
    conn.c_open <- false;
    Mutex.unlock conn.c_lock;
    o
  in
  if was_open then begin
    (* shutdown first so a peer (or our own pump) blocked on the socket
       wakes up instead of hanging on a silently closed fd *)
    shutdown_quietly conn.c_client;
    shutdown_quietly conn.c_server;
    close_quietly conn.c_client;
    close_quietly conn.c_server;
    locked t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns)
  end

(* ----- frame relaying ---------------------------------------------------- *)

let corrupt_payload p =
  let n = String.length p in
  if n <= Codec.header_bytes then p
  else begin
    let b = Bytes.of_string p in
    for i = Codec.header_bytes to n - 1 do
      Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 0xa5)
    done;
    Bytes.unsafe_to_string b
  end

let send_frame dst payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Codec.send dst (Bytes.unsafe_to_string b)

exception Relay_closed

(* Apply the active rules to one frame payload and forward the
   survivors.  [held] is the reorder slot: a held frame leaves after
   the next frame on this direction (or when the link goes quiet). *)
let process_frame t conn ~dir ~dst ~held payload =
  let now = t.now_us () in
  let sender =
    match Codec.peek_sender payload with
    | Some s ->
        if dir = To_server && conn.c_sender = "" then conn.c_sender <- s;
        Some s
    | None -> if conn.c_sender = "" then None else Some conn.c_sender
  in
  let active =
    List.filter
      (fun r ->
        r.dir = dir
        && now >= r.from_us
        && now < r.until_us
        &&
        match r.sender with
        | None -> true
        | Some who -> sender = Some who)
      t.rules_
  in
  if List.exists (fun r -> r.act = Drop) active then bump t `Dropped
  else begin
    let payload =
      if List.exists (fun r -> r.act = Corrupt) active then begin
        bump t `Corrupted;
        corrupt_payload payload
      end
      else payload
    in
    let delay_us =
      List.fold_left
        (fun acc r -> match r.act with Delay d -> acc + d | _ -> acc)
        0 active
    in
    if delay_us > 0 then begin
      bump t `Delayed;
      Thread.delay (float_of_int delay_us /. 1e6)
    end;
    let copies =
      List.fold_left
        (fun acc r -> match r.act with Duplicate c -> acc + c | _ -> acc)
        0 active
    in
    let reorder = List.exists (fun r -> r.act = Reorder) active in
    if reorder && !held = None && copies = 0 then begin
      bump t `Reordered;
      held := Some payload
    end
    else begin
      send_frame dst payload;
      bump t `Forwarded;
      for _ = 1 to copies do
        send_frame dst payload;
        bump t `Duplicated
      done;
      match !held with
      | None -> ()
      | Some p ->
          held := None;
          send_frame dst p;
          bump t `Forwarded
    end
  end

(* Relay one direction of a session.  The pump owns a private receive
   buffer and cuts it into self-delimiting frames; a read that would
   block is bounded by a short [select] so held (reordered) frames never
   stall behind a quiet link and a stopped proxy is noticed promptly. *)
let pump t conn ~dir ~src ~dst =
  let buf = ref (Bytes.create 8192) in
  let len = ref 0 in
  let held = ref None in
  let flush_held () =
    match !held with
    | None -> ()
    | Some p ->
        held := None;
        send_frame dst p;
        bump t `Forwarded
  in
  let ensure cap =
    if Bytes.length !buf < cap then begin
      let fresh = Bytes.create (max cap (2 * Bytes.length !buf)) in
      Bytes.blit !buf 0 fresh 0 !len;
      buf := fresh
    end
  in
  (* Consume every complete frame at the front of the buffer. *)
  let rec drain off =
    if !len - off < 4 then off
    else
      let b = !buf in
      let n =
        (Bytes.get_uint8 b off lsl 24)
        lor (Bytes.get_uint8 b (off + 1) lsl 16)
        lor (Bytes.get_uint8 b (off + 2) lsl 8)
        lor Bytes.get_uint8 b (off + 3)
      in
      if n > Codec.max_frame then raise Relay_closed
      else if !len - off - 4 < n then off
      else begin
        let payload = Bytes.sub_string b (off + 4) n in
        process_frame t conn ~dir ~dst ~held payload;
        drain (off + 4 + n)
      end
  in
  let compact off =
    if off > 0 then begin
      Bytes.blit !buf off !buf 0 (!len - off);
      len := !len - off
    end
  in
  let rec loop () =
    if t.stopped || not conn.c_open then ()
    else
      match Unix.select [ src ] [] [] 0.01 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ ->
          flush_held ();
          loop ()
      | _ :: _, _, _ ->
          ensure (!len + 8192);
          let n = Unix.read src !buf !len 8192 in
          if n = 0 then raise Relay_closed
          else begin
            len := !len + n;
            compact (drain 0);
            loop ()
          end
  in
  (try loop () with
  | Relay_closed | Unix.Unix_error _ -> ()
  | Sys_error _ -> ());
  (try flush_held () with Unix.Unix_error _ | Sys_error _ -> ());
  close_conn t conn

(* ----- session setup ----------------------------------------------------- *)

let dial ep =
  let fd = Unix.socket (Endpoint.socket_domain ep) Unix.SOCK_STREAM 0 in
  try
    (match ep with
    | Endpoint.Tcp _ -> set_nodelay fd
    | Endpoint.Unix_sock _ -> ());
    Unix.connect fd (Endpoint.to_sockaddr ep);
    fd
  with e ->
    close_quietly fd;
    raise e

let handle_accept t cfd =
  match dial t.target_ep with
  | exception (Unix.Unix_error _ | Failure _) ->
      (* Target down: a client dialing through us experiences exactly a
         dead server — immediate EOF after connect. *)
      close_quietly cfd
  | sfd ->
      let conn =
        {
          c_client = cfd;
          c_server = sfd;
          c_sender = "";
          c_open = true;
          c_lock = Mutex.create ();
        }
      in
      locked t (fun () -> t.conns <- conn :: t.conns);
      if t.stopped then close_conn t conn
      else begin
        ignore
          (Thread.create
             (fun () ->
               pump t conn ~dir:To_server ~src:cfd ~dst:sfd)
             ());
        ignore
          (Thread.create
             (fun () ->
               pump t conn ~dir:To_client ~src:sfd ~dst:cfd)
             ())
      end

(* Bounded select before accept: closing the listener from [stop] must
   wake this thread even on platforms where close alone does not. *)
let rec accept_loop t =
  if not t.stopped then
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error _ -> ()  (* listener closed: stopping *)
    | [], _, _ -> accept_loop t
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | cfd, _ ->
            set_nodelay cfd;
            handle_accept t cfd;
            accept_loop t
        | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
            accept_loop t
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
        | exception Unix.Unix_error _ -> ())

let listen_on endpoint =
  Endpoint.cleanup endpoint;
  let fd = Unix.socket (Endpoint.socket_domain endpoint) Unix.SOCK_STREAM 0 in
  (try
     (match endpoint with
     | Endpoint.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Endpoint.Unix_sock _ -> ());
     Unix.bind fd (Endpoint.to_sockaddr endpoint);
     Unix.listen fd 64
   with e ->
     close_quietly fd;
     raise e);
  let actual =
    match endpoint with
    | Endpoint.Tcp { host; port = 0 } -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Endpoint.Tcp { host; port }
        | _ -> endpoint)
    | _ -> endpoint
  in
  (fd, actual)

let start ?(rules = []) ~now_us ~listen ~target () =
  Lazy.force ignore_sigpipe;
  let listen_fd, listen_ep = listen_on listen in
  let t =
    {
      listen_ep;
      target_ep = target;
      now_us;
      listen_fd;
      lock = Mutex.create ();
      rules_ = rules;
      conns = [];
      stopped = false;
      accept_thread = None;
      s_forwarded = 0;
      s_dropped = 0;
      s_delayed = 0;
      s_duplicated = 0;
      s_corrupted = 0;
      s_reordered = 0;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let endpoint t = t.listen_ep

let target t = t.target_ep

let set_rules t rules = locked t (fun () -> t.rules_ <- rules)

let rules t = t.rules_

let stats t =
  locked t (fun () ->
      {
        forwarded = t.s_forwarded;
        dropped = t.s_dropped;
        delayed = t.s_delayed;
        duplicated = t.s_duplicated;
        corrupted = t.s_corrupted;
        reordered = t.s_reordered;
      })

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    close_quietly t.listen_fd;
    Endpoint.cleanup t.listen_ep;
    let conns = locked t (fun () -> t.conns) in
    List.iter (close_conn t) conns;
    match t.accept_thread with
    | None -> ()
    | Some th ->
        t.accept_thread <- None;
        Thread.join th
  end
