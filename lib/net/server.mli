(** Socket server hosting one base object.

    Each server owns a listening socket (Unix-domain or TCP) and runs
    the protocol's {e unchanged} base-object state machine behind it: an
    accept loop hands every connection to its own thread, which reads
    framed messages, feeds them through [P.obj_handle] under the
    object's lock, and writes the reply frame back.  A process that
    hosts several objects simply starts several servers.

    Sessions open with a {!Codec.Hello} naming the protocol and the
    object index the client dialed; mismatches are answered with a
    terminal {!Codec.Err} frame, so a client pointed at the wrong server
    fails loudly instead of feeding garbage into a state machine.

    [stop] is the graceful path (stop accepting, let queued replies
    flush, join every thread); [crash] tears the sockets down hard —
    the loopback chaos tests use it as the process-kill stand-in.
    [restart] rebinds the same endpoint with the object state captured
    at shutdown ([wipe:false], a crash-recovery with persistent state)
    or freshly initialized ([wipe:true], a wiped replica). *)

type t

type stats = {
  connections : int;  (** sessions accepted over the server's lifetime *)
  messages : int;  (** protocol messages handled *)
}

type loop = [ `Threads | `Poll ]
(** Connection-handling strategy: [`Threads] is the thread-per-connection
    default; [`Poll] multiplexes every connection (and, with
    {!start_group}, every object) onto one [select]-driven event-loop
    thread with nonblocking sockets. *)

val loop_of_string : string -> loop option

val loop_to_string : loop -> string

val start :
  ?metrics:Obs.Metrics.t ->
  ?loop:loop ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  index:int ->
  Endpoint.t ->
  t
(** Bind, listen and serve object [index] (1-based).  [Tcp] port 0 binds
    an ephemeral port; {!endpoint} reports the actual one.  With
    [metrics], the registry accumulates [net.server.*] counters and
    per-class [wire.*] counters compatible with the simulator's.
    [loop] (default [`Threads]) picks the connection-handling strategy.
    @raise Unix.Unix_error if the endpoint cannot be bound. *)

val start_group :
  ?metrics:(int -> Obs.Metrics.t) ->
  ?indices:int array ->
  ?domains:int ->
  ?queue_hi:int ->
  ?drain_timeout:float ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  Endpoint.t array ->
  t array
(** Host all the base objects of a cluster sharded across [domains]
    poll-based event-loop worker domains (default 1) plus one acceptor
    domain: element [i] serves object [indices.(i)] (default [i+1]) on
    [endpoints.(i)], owned by worker [i mod domains].  The acceptor
    hands each accepted connection to the owning worker over a
    lock-free queue; from then on read, decode, automaton step, encode
    and flush are all domain-local, so no automaton is ever stepped by
    two domains ({!partition_violations} counts runtime assertions of
    that invariant).  The wire behaviour is identical to [s]
    thread-per-connection servers — same [Hello] validation, same
    replies — so clients cannot tell the modes apart.

    Write queues are bounded: when a connection's pending bytes exceed
    [queue_hi] (default 256 KiB, floor 4 KiB) the server stops reading
    that socket until the queue drains below a quarter of the
    watermark — the peer's window blocks, no frame is ever dropped —
    surfaced per slot as [wire.queue_depth] / [wire.backpressure_stalls]
    histograms (plus server-side [wire.batch_size]).

    Each returned handle stops/crashes/restarts its object
    independently.  A graceful {!stop} drains queued replies for up to
    [drain_timeout] seconds (default 5) before closing, so batched
    frames are never truncated mid-frame; {!crash} closes immediately.
    Domains exit once every slot they serve has stopped and are
    respawned by the first {!restart}.  [metrics] maps a 0-based slot
    to its registry; a slot's registry is only ever touched by its
    owning worker domain.
    @raise Unix.Unix_error if an endpoint cannot be bound (all bound
    listeners are closed). *)

val endpoint : t -> Endpoint.t
(** The bound address (ephemeral TCP ports resolved). *)

val index : t -> int

val alive : t -> bool

val is_alive : t -> bool
(** Alias of {!alive} — the guard to check before {!restart}. *)

val stats : t -> stats

val stop : t -> unit
(** Graceful shutdown; idempotent. *)

val crash : t -> unit
(** Abrupt shutdown: connections are reset, nothing drains; idempotent. *)

val restart : ?wipe:bool -> t -> t
(** Restart a stopped/crashed server on the same endpoint.  [wipe]
    (default [false]) discards the persisted object state.
    @raise Invalid_argument if the server is still alive. *)

val partition_violations : t -> int
(** Number of times a base object of this handle's group was stepped
    outside its owning domain (shared across the whole {!start_group}
    group; always 0 for [`Threads] servers, and 0 unless the sharded
    dispatch invariant is broken — any nonzero value is a bug). *)
