(** Socket server hosting one base object.

    Each server owns a listening socket (Unix-domain or TCP) and runs
    the protocol's {e unchanged} base-object state machine behind it: an
    accept loop hands every connection to its own thread, which reads
    framed messages, feeds them through [P.obj_handle] under the
    object's lock, and writes the reply frame back.  A process that
    hosts several objects simply starts several servers.

    Sessions open with a {!Codec.Hello} naming the protocol and the
    object index the client dialed; mismatches are answered with a
    terminal {!Codec.Err} frame, so a client pointed at the wrong server
    fails loudly instead of feeding garbage into a state machine.

    [stop] is the graceful path (stop accepting, let queued replies
    flush, join every thread); [crash] tears the sockets down hard —
    the loopback chaos tests use it as the process-kill stand-in.
    [restart] rebinds the same endpoint with the object state captured
    at shutdown ([wipe:false], a crash-recovery with persistent state)
    or freshly initialized ([wipe:true], a wiped replica). *)

type t

type stats = {
  connections : int;  (** sessions accepted over the server's lifetime *)
  messages : int;  (** protocol messages handled *)
}

val start :
  ?metrics:Obs.Metrics.t ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  index:int ->
  Endpoint.t ->
  t
(** Bind, listen and serve object [index] (1-based).  [Tcp] port 0 binds
    an ephemeral port; {!endpoint} reports the actual one.  With
    [metrics], the registry accumulates [net.server.*] counters and
    per-class [wire.*] counters compatible with the simulator's.
    @raise Unix.Unix_error if the endpoint cannot be bound. *)

val endpoint : t -> Endpoint.t
(** The bound address (ephemeral TCP ports resolved). *)

val index : t -> int

val alive : t -> bool

val stats : t -> stats

val stop : t -> unit
(** Graceful shutdown; idempotent. *)

val crash : t -> unit
(** Abrupt shutdown: connections are reset, nothing drains; idempotent. *)

val restart : ?wipe:bool -> t -> t
(** Restart a stopped/crashed server on the same endpoint.  [wipe]
    (default [false]) discards the persisted object state.
    @raise Invalid_argument if the server is still alive. *)
