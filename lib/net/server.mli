(** Socket server hosting one base object.

    Each server owns a listening socket (Unix-domain or TCP) and runs
    the protocol's {e unchanged} base-object state machine behind it: an
    accept loop hands every connection to its own thread, which reads
    framed messages, feeds them through [P.obj_handle] under the
    object's lock, and writes the reply frame back.  A process that
    hosts several objects simply starts several servers.

    Sessions open with a {!Codec.Hello} naming the protocol and the
    object index the client dialed; mismatches are answered with a
    terminal {!Codec.Err} frame, so a client pointed at the wrong server
    fails loudly instead of feeding garbage into a state machine.

    [stop] is the graceful path (stop accepting, let queued replies
    flush, join every thread); [crash] tears the sockets down hard —
    the loopback chaos tests use it as the process-kill stand-in.
    [restart] rebinds the same endpoint with the object state captured
    at shutdown ([wipe:false], a crash-recovery with persistent state)
    or freshly initialized ([wipe:true], a wiped replica). *)

type t

type stats = {
  connections : int;  (** sessions accepted over the server's lifetime *)
  messages : int;  (** protocol messages handled *)
}

type loop = [ `Threads | `Poll ]
(** Connection-handling strategy: [`Threads] is the thread-per-connection
    default; [`Poll] multiplexes every connection (and, with
    {!start_group}, every object) onto one [select]-driven event-loop
    thread with nonblocking sockets. *)

val loop_of_string : string -> loop option

val loop_to_string : loop -> string

val start :
  ?metrics:Obs.Metrics.t ->
  ?loop:loop ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  index:int ->
  Endpoint.t ->
  t
(** Bind, listen and serve object [index] (1-based).  [Tcp] port 0 binds
    an ephemeral port; {!endpoint} reports the actual one.  With
    [metrics], the registry accumulates [net.server.*] counters and
    per-class [wire.*] counters compatible with the simulator's.
    [loop] (default [`Threads]) picks the connection-handling strategy.
    @raise Unix.Unix_error if the endpoint cannot be bound. *)

val start_group :
  ?metrics:(int -> Obs.Metrics.t) ->
  ?indices:int array ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  Endpoint.t array ->
  t array
(** Host all the base objects of a cluster in {e one} poll-based
    event-loop thread: element [i] serves object [indices.(i)] (default
    [i+1]) on [endpoints.(i)].  The wire behaviour is identical to [s]
    thread-per-connection servers — same [Hello] validation, same
    replies — so clients cannot tell the modes apart.  Each returned
    handle stops/crashes/restarts its object independently; the loop
    thread exits when the last object stops and is respawned by the
    first {!restart}.  [metrics] maps a 0-based slot to its registry.
    @raise Unix.Unix_error if an endpoint cannot be bound (all bound
    listeners are closed). *)

val endpoint : t -> Endpoint.t
(** The bound address (ephemeral TCP ports resolved). *)

val index : t -> int

val alive : t -> bool

val is_alive : t -> bool
(** Alias of {!alive} — the guard to check before {!restart}. *)

val stats : t -> stats

val stop : t -> unit
(** Graceful shutdown; idempotent. *)

val crash : t -> unit
(** Abrupt shutdown: connections are reset, nothing drains; idempotent. *)

val restart : ?wipe:bool -> t -> t
(** Restart a stopped/crashed server on the same endpoint.  [wipe]
    (default [false]) discards the persisted object state.
    @raise Invalid_argument if the server is still alive. *)
