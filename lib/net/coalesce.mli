(** Read-coalescing batches: one quorum round shared by many reads.

    A batch is attached to a READ round while its round-1 broadcast is
    still being {e assembled} — appended to the per-connection outbound
    buffers but not yet flushed to the wire.  Reads on the same key
    invoked during that window {!join} the batch instead of starting
    their own round; when the shared round completes, the client fans
    the result out to every member.  The moment the broadcast hits the
    wire the client {!close}s the batch: a read invoked after that
    instant must not adopt this round's result (its evidence gathering
    has already begun), it chains onto the {e next} round instead.

    That join-before-broadcast rule is what preserves regularity: every
    member of a batch is invoked before any base object has even seen
    the round-1 request, so all the evidence the shared round gathers
    lies inside every member's invoke–respond interval — the returned
    value is justified for each member by exactly the single-read
    argument (DESIGN §16).

    The structure itself is a bounded bag: a lead (the read that started
    the round, implicit — width counts it) plus at most [cap - 1]
    joiners, kept in join order.  It is single-threaded, like the client
    event loops that own it. *)

type 'a t

val create : cap:int -> 'a t
(** A fresh open batch holding just the lead ([width] 1).  [cap] is the
    maximum width including the lead; it is clamped to at least 1. *)

val cap : 'a t -> int

val is_open : 'a t -> bool

val can_join : 'a t -> bool
(** Open and below [cap]. *)

val join : 'a t -> 'a -> unit
(** Append a joiner.  @raise Invalid_argument unless {!can_join}. *)

val try_join : 'a t -> 'a -> bool
(** [join] if {!can_join}; reports whether it happened. *)

val close : 'a t -> unit
(** The round-1 broadcast left the process: no further joins.
    Idempotent. *)

val width : 'a t -> int
(** Lead + joiners so far. *)

val joiners : 'a t -> 'a list
(** Joiners in join order (excludes the lead). *)

val iter_joiners : ('a -> unit) -> 'a t -> unit
(** Iterate joiners in join order without building the list. *)
