let version = 1

let max_frame = 16 * 1024 * 1024

let magic1 = 'R'

let magic2 = 'B'

type error = string

(* ----- encoding primitives --------------------------------------------- *)

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

(* Zigzag LEB128: small magnitudes (timestamps, indices) cost one byte,
   and the logical shift below treats the zigzagged value as a 63-bit
   pattern, so the whole int range (min_int included) round-trips. *)
let put_int buf n =
  let z = (n lsl 1) lxor (n asr 62) in
  let rec go z =
    if z >= 0 && z < 0x80 then put_u8 buf z
    else begin
      put_u8 buf (0x80 lor (z land 0x7f));
      go (z lsr 7)
    end
  in
  go z

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_value buf = function
  | Core.Value.Bottom -> put_u8 buf 0
  | Core.Value.V s ->
      put_u8 buf 1;
      put_string buf s

let put_tsval buf (tv : Core.Tsval.t) =
  put_int buf tv.ts;
  put_value buf tv.v

let put_int_map buf m =
  put_int buf (Core.Ints.Map.cardinal m);
  Core.Ints.Map.iter
    (fun k v ->
      put_int buf k;
      put_int buf v)
    m

let put_matrix buf m =
  let rows = Core.Tsr_matrix.rows_present m in
  put_int buf (List.length rows);
  List.iter
    (fun obj ->
      put_int buf obj;
      match Core.Tsr_matrix.row m ~obj with
      | Some row -> put_int_map buf row
      | None -> assert false)
    rows

let put_wtuple buf (w : Core.Wtuple.t) =
  put_tsval buf w.tsval;
  put_matrix buf w.tsrarray

let put_history buf h =
  let bindings = Core.History_store.bindings h in
  put_int buf (List.length bindings);
  List.iter
    (fun (ts, { Core.History_store.pw; w }) ->
      put_int buf ts;
      put_tsval buf pw;
      match w with
      | None -> put_u8 buf 0
      | Some w ->
          put_u8 buf 1;
          put_wtuple buf w)
    bindings

(* ----- decoding primitives --------------------------------------------- *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

type dec = { src : string; mutable pos : int; limit : int }

let remaining d = d.limit - d.pos

let get_u8 d =
  if d.pos >= d.limit then fail "truncated (u8 at %d)" d.pos
  else begin
    let c = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    c
  end

let get_int d =
  let rec go acc shift =
    if shift > 62 then fail "varint too long at %d" d.pos
    else
      let b = get_u8 d in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let get_length d ~what =
  let n = get_int d in
  if n < 0 then fail "negative %s length %d" what n
  else if n > remaining d then
    fail "%s length %d exceeds remaining %d bytes" what n (remaining d)
  else n

let get_string d =
  let n = get_length d ~what:"string" in
  let s = String.sub d.src d.pos n in
  d.pos <- d.pos + n;
  s

let get_value d =
  match get_u8 d with
  | 0 -> Core.Value.Bottom
  | 1 -> Core.Value.V (get_string d)
  | t -> fail "bad value tag %d" t

let get_tsval d =
  let ts = get_int d in
  let v = get_value d in
  Core.Tsval.make ~ts ~v

(* Collection counts are validated against the remaining byte budget
   (every element costs at least one byte) before any element decodes,
   so a forged count cannot trigger unbounded work. *)
let get_count d ~what =
  let n = get_int d in
  if n < 0 then fail "negative %s count %d" what n
  else if n > remaining d then
    fail "%s count %d exceeds remaining %d bytes" what n (remaining d)
  else n

let get_int_map d =
  let n = get_count d ~what:"map" in
  let rec go acc i =
    if i = n then acc
    else
      let k = get_int d in
      let v = get_int d in
      go (Core.Ints.Map.add k v acc) (i + 1)
  in
  go Core.Ints.Map.empty 0

let get_matrix d =
  let n = get_count d ~what:"matrix row" in
  let rec go acc i =
    if i = n then acc
    else
      let obj = get_int d in
      let row = get_int_map d in
      go (Core.Tsr_matrix.set_row acc ~obj row) (i + 1)
  in
  go Core.Tsr_matrix.empty 0

let get_wtuple d =
  let tsval = get_tsval d in
  let tsrarray = get_matrix d in
  Core.Wtuple.make ~tsval ~tsrarray

let get_history d =
  let n = get_count d ~what:"history" in
  let rec go acc i =
    if i = n then acc
    else
      let ts = get_int d in
      let pw = get_tsval d in
      let w =
        match get_u8 d with
        | 0 -> None
        | 1 -> Some (get_wtuple d)
        | t -> fail "bad history entry tag %d" t
      in
      go (Core.History_store.set acc ~ts { Core.History_store.pw; w }) (i + 1)
  in
  go Core.History_store.empty 0

(* ----- per-protocol message codecs -------------------------------------- *)

type 'm t = {
  name : string;
  encode : Buffer.t -> 'm -> unit;
  decode : dec -> 'm;  (* may raise Fail; callers catch at the boundary *)
}

type 'm codec = 'm t

let name c = c.name

let messages : Core.Messages.t t =
  let encode buf (m : Core.Messages.t) =
    match m with
    | Pw { ts; pw; w } ->
        put_u8 buf 0;
        put_int buf ts;
        put_tsval buf pw;
        put_wtuple buf w
    | Pw_ack { ts; tsr } ->
        put_u8 buf 1;
        put_int buf ts;
        put_int_map buf tsr
    | W { ts; pw; w } ->
        put_u8 buf 2;
        put_int buf ts;
        put_tsval buf pw;
        put_wtuple buf w
    | W_ack { ts } ->
        put_u8 buf 3;
        put_int buf ts
    | Read1 { tsr; from_ts } ->
        put_u8 buf 4;
        put_int buf tsr;
        put_int buf from_ts
    | Read2 { tsr; from_ts } ->
        put_u8 buf 5;
        put_int buf tsr;
        put_int buf from_ts
    | Read1_ack { tsr; pw; w } ->
        put_u8 buf 6;
        put_int buf tsr;
        put_tsval buf pw;
        put_wtuple buf w
    | Read2_ack { tsr; pw; w } ->
        put_u8 buf 7;
        put_int buf tsr;
        put_tsval buf pw;
        put_wtuple buf w
    | Read1_ack_h { tsr; history } ->
        put_u8 buf 8;
        put_int buf tsr;
        put_history buf history
    | Read2_ack_h { tsr; history } ->
        put_u8 buf 9;
        put_int buf tsr;
        put_history buf history
  in
  let decode d : Core.Messages.t =
    match get_u8 d with
    | 0 ->
        let ts = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        Pw { ts; pw; w }
    | 1 ->
        let ts = get_int d in
        let tsr = get_int_map d in
        Pw_ack { ts; tsr }
    | 2 ->
        let ts = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        W { ts; pw; w }
    | 3 -> W_ack { ts = get_int d }
    | 4 ->
        let tsr = get_int d in
        let from_ts = get_int d in
        Read1 { tsr; from_ts }
    | 5 ->
        let tsr = get_int d in
        let from_ts = get_int d in
        Read2 { tsr; from_ts }
    | 6 ->
        let tsr = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        Read1_ack { tsr; pw; w }
    | 7 ->
        let tsr = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        Read2_ack { tsr; pw; w }
    | 8 ->
        let tsr = get_int d in
        let history = get_history d in
        Read1_ack_h { tsr; history }
    | 9 ->
        let tsr = get_int d in
        let history = get_history d in
        Read2_ack_h { tsr; history }
    | t -> fail "bad core message tag %d" t
  in
  { name = "core"; encode; decode }

let abd : Baseline.Abd.msg t =
  let encode buf (m : Baseline.Abd.msg) =
    match m with
    | Write_req { ts; v } ->
        put_u8 buf 0;
        put_int buf ts;
        put_value buf v
    | Write_ack { ts } ->
        put_u8 buf 1;
        put_int buf ts
    | Read_req { rid } ->
        put_u8 buf 2;
        put_int buf rid
    | Read_ack { rid; ts; v } ->
        put_u8 buf 3;
        put_int buf rid;
        put_int buf ts;
        put_value buf v
    | Write_back { rid; ts; v } ->
        put_u8 buf 4;
        put_int buf rid;
        put_int buf ts;
        put_value buf v
    | Write_back_ack { rid } ->
        put_u8 buf 5;
        put_int buf rid
  in
  let decode d : Baseline.Abd.msg =
    match get_u8 d with
    | 0 ->
        let ts = get_int d in
        let v = get_value d in
        Write_req { ts; v }
    | 1 -> Write_ack { ts = get_int d }
    | 2 -> Read_req { rid = get_int d }
    | 3 ->
        let rid = get_int d in
        let ts = get_int d in
        let v = get_value d in
        Read_ack { rid; ts; v }
    | 4 ->
        let rid = get_int d in
        let ts = get_int d in
        let v = get_value d in
        Write_back { rid; ts; v }
    | 5 -> Write_back_ack { rid = get_int d }
    | t -> fail "bad abd message tag %d" t
  in
  { name = "abd"; encode; decode }

let finish_strict d ~what v =
  if remaining d > 0 then fail "%d trailing bytes after %s" (remaining d) what
  else v

let encode_msg c m =
  let buf = Buffer.create 64 in
  c.encode buf m;
  Buffer.contents buf

let decode_msg c s =
  let d = { src = s; pos = 0; limit = String.length s } in
  match finish_strict d ~what:"message" (c.decode d) with
  | m -> Ok m
  | exception Fail e -> Error e

(* ----- frames ----------------------------------------------------------- *)

type 'm frame =
  | Hello of { proto : string; sender : string; obj : int }
  | Hello_ack of { proto : string; obj : int }
  | Msg of 'm
  | Err of string

let frame_info ~msg_info = function
  | Hello { proto; sender; obj } ->
      Printf.sprintf "HELLO(proto=%s,sender=%s,obj=%d)" proto sender obj
  | Hello_ack { proto; obj } ->
      Printf.sprintf "HELLO_ACK(proto=%s,obj=%d)" proto obj
  | Msg m -> msg_info m
  | Err e -> Printf.sprintf "ERR(%s)" e

let kind_hello = 0

let kind_hello_ack = 1

let kind_msg = 2

let kind_err = 3

let encode_frame c frame =
  let buf = Buffer.create 64 in
  (* placeholder for the length prefix, patched below *)
  Buffer.add_string buf "\000\000\000\000";
  Buffer.add_char buf magic1;
  Buffer.add_char buf magic2;
  put_u8 buf version;
  (match frame with
  | Hello { proto; sender; obj } ->
      put_u8 buf kind_hello;
      put_string buf proto;
      put_string buf sender;
      put_int buf obj
  | Hello_ack { proto; obj } ->
      put_u8 buf kind_hello_ack;
      put_string buf proto;
      put_int buf obj
  | Msg m ->
      put_u8 buf kind_msg;
      c.encode buf m
  | Err e ->
      put_u8 buf kind_err;
      put_string buf e);
  let s = Buffer.to_bytes buf in
  let payload = Bytes.length s - 4 in
  if payload > max_frame then
    invalid_arg (Printf.sprintf "Codec.encode_frame: %d-byte frame" payload);
  Bytes.set_uint8 s 0 ((payload lsr 24) land 0xff);
  Bytes.set_uint8 s 1 ((payload lsr 16) land 0xff);
  Bytes.set_uint8 s 2 ((payload lsr 8) land 0xff);
  Bytes.set_uint8 s 3 (payload land 0xff);
  Bytes.unsafe_to_string s

let decode_payload c s =
  let d = { src = s; pos = 0; limit = String.length s } in
  let go () =
    if get_u8 d <> Char.code magic1 || get_u8 d <> Char.code magic2 then
      fail "bad magic"
    else begin
      let v = get_u8 d in
      if v <> version then fail "unsupported wire version %d (expected %d)" v version;
      let kind = get_u8 d in
      if kind = kind_hello then begin
        let proto = get_string d in
        let sender = get_string d in
        let obj = get_int d in
        Hello { proto; sender; obj }
      end
      else if kind = kind_hello_ack then begin
        let proto = get_string d in
        let obj = get_int d in
        Hello_ack { proto; obj }
      end
      else if kind = kind_msg then Msg (c.decode d)
      else if kind = kind_err then Err (get_string d)
      else fail "bad frame kind %d" kind
    end
  in
  match finish_strict d ~what:"frame" (go ()) with
  | f -> Ok f
  | exception Fail e -> Error e

(* ----- incremental reader ----------------------------------------------- *)

module Reader = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }

  let pending r = r.len

  let make_room r extra =
    if r.start + r.len + extra > Bytes.length r.buf then begin
      let need = r.len + extra in
      let cap = max (Bytes.length r.buf) 64 in
      let cap =
        let rec grow c = if c >= need then c else grow (2 * c) in
        grow cap
      in
      let nb = if cap > Bytes.length r.buf then Bytes.create cap else r.buf in
      Bytes.blit r.buf r.start nb 0 r.len;
      r.buf <- nb;
      r.start <- 0
    end

  let feed r b off len =
    if off < 0 || len < 0 || off + len > Bytes.length b then
      invalid_arg "Codec.Reader.feed";
    make_room r len;
    Bytes.blit b off r.buf (r.start + r.len) len;
    r.len <- r.len + len

  let peek_len r =
    let at i = Bytes.get_uint8 r.buf (r.start + i) in
    (at 0 lsl 24) lor (at 1 lsl 16) lor (at 2 lsl 8) lor at 3

  let next c r =
    if r.len < 4 then Ok `Awaiting
    else
      let n = peek_len r in
      if n > max_frame then
        Error (Printf.sprintf "frame length %d exceeds limit %d" n max_frame)
      else if n < 4 then Error (Printf.sprintf "frame length %d too short" n)
      else if r.len < 4 + n then Ok `Awaiting
      else begin
        let payload = Bytes.sub_string r.buf (r.start + 4) n in
        r.start <- r.start + 4 + n;
        r.len <- r.len - 4 - n;
        if r.len = 0 then r.start <- 0;
        match decode_payload c payload with
        | Ok f -> Ok (`Frame f)
        | Error e -> Error e
      end
end

(* ----- blocking socket helpers ------------------------------------------ *)

let send fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let recv_chunk = 65536

let recv_into fd r =
  let b = Bytes.create recv_chunk in
  let n = Unix.read fd b 0 recv_chunk in
  if n > 0 then Reader.feed r b 0 n;
  n
