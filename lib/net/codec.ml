let version = 1

let max_frame = 16 * 1024 * 1024

let magic1 = 'R'

let magic2 = 'B'

type error = string

(* ----- pooled byte buffers ---------------------------------------------- *)

(* Connections churn (reconnects, short-lived sessions) but their buffer
   needs are uniform: a few KiB steady-state, occasionally more for a
   large frame.  The arena recycles power-of-two buffers between 4 KiB
   and 64 KiB so steady-state encode/decode never asks the GC for fresh
   backing storage; anything larger is a one-off allocation that is
   deliberately *not* retained (see [Reader] shrinking below). *)
module Pool = struct
  let min_cap = 4096

  let max_cap = 65536

  let per_class = 64

  (* classes: 4096 lsl i for i = 0..4 *)
  let n_classes = 5

  let stacks : Bytes.t list array = Array.make n_classes []

  let depth = Array.make n_classes 0

  let mutex = Mutex.create ()

  let class_of cap =
    let rec go i sz = if sz >= cap then Some i else if i + 1 >= n_classes then None else go (i + 1) (sz * 2) in
    if cap > max_cap then None else go 0 min_cap

  let round_up cap =
    let rec go sz = if sz >= cap then sz else go (sz * 2) in
    go min_cap

  let take cap =
    match class_of cap with
    | None -> Bytes.create (round_up cap)
    | Some c -> (
        Mutex.lock mutex;
        let b =
          match stacks.(c) with
          | b :: rest ->
              stacks.(c) <- rest;
              depth.(c) <- depth.(c) - 1;
              Some b
          | [] -> None
        in
        Mutex.unlock mutex;
        match b with Some b -> b | None -> Bytes.create (min_cap lsl c))

  let give b =
    let len = Bytes.length b in
    match class_of len with
    | Some c when min_cap lsl c = len ->
        Mutex.lock mutex;
        if depth.(c) < per_class then begin
          stacks.(c) <- b :: stacks.(c);
          depth.(c) <- depth.(c) + 1
        end;
        Mutex.unlock mutex
    | _ -> ()
end

(* ----- encode scratch ---------------------------------------------------- *)

(* A reusable append buffer: the per-connection encode scratch.  Frames
   are appended back to back ([encode_frame_into]) and flushed with one
   [write], which is both the zero-allocation encode path and the frame
   batching path — length-prefixed frames self-delimit, so N frames per
   write is wire-compatible with single-frame writes.  [sent] tracks the
   prefix already written by a partial non-blocking flush. *)
module Out = struct
  type t = { mutable buf : Bytes.t; mutable len : int; mutable sent : int }

  let create () = { buf = Pool.take Pool.min_cap; len = 0; sent = 0 }

  let length t = t.len

  let pending t = t.len - t.sent

  let clear t =
    t.len <- 0;
    t.sent <- 0

  let contents t = Bytes.sub_string t.buf 0 t.len

  let ensure t extra =
    let need = t.len + extra in
    if need > Bytes.length t.buf then begin
      let nb = Pool.take (max need (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 nb 0 t.len;
      Pool.give t.buf;
      t.buf <- nb
    end

  (* After a one-off large frame, fall back to a pool-class buffer so
     the scratch does not retain peak capacity forever. *)
  let maybe_shrink t =
    if t.len = 0 && Bytes.length t.buf > Pool.max_cap then t.buf <- Pool.take Pool.min_cap

  let recycle t =
    Pool.give t.buf;
    t.buf <- Bytes.empty;
    t.len <- 0;
    t.sent <- 0
end

let out_u8 (o : Out.t) n =
  Out.ensure o 1;
  Bytes.unsafe_set o.buf o.len (Char.unsafe_chr (n land 0xff));
  o.len <- o.len + 1

(* Zigzag LEB128: small magnitudes (timestamps, indices) cost one byte,
   and the logical shift below treats the zigzagged value as a 63-bit
   pattern, so the whole int range (min_int included) round-trips. *)
let out_int o n =
  let z = (n lsl 1) lxor (n asr 62) in
  let rec go z =
    if z >= 0 && z < 0x80 then out_u8 o z
    else begin
      out_u8 o (0x80 lor (z land 0x7f));
      go (z lsr 7)
    end
  in
  go z

let out_string (o : Out.t) s =
  let n = String.length s in
  out_int o n;
  Out.ensure o n;
  Bytes.blit_string s 0 o.buf o.len n;
  o.len <- o.len + n

let out_value o = function
  | Core.Value.Bottom -> out_u8 o 0
  | Core.Value.V s ->
      out_u8 o 1;
      out_string o s

let out_tsval o (tv : Core.Tsval.t) =
  out_int o tv.ts;
  out_value o tv.v

(* Folding with top-level functions threads [o] as the accumulator, so
   the hot encode path allocates no per-call closures or binding
   lists. *)
let out_int_map_entry k v o =
  out_int o k;
  out_int o v;
  o

let out_int_map o m =
  out_int o (Core.Ints.Map.cardinal m);
  ignore (Core.Ints.Map.fold out_int_map_entry m o)

let out_matrix_row obj row o =
  out_int o obj;
  out_int_map o row;
  o

let out_matrix o m =
  out_int o (Core.Tsr_matrix.row_count m);
  ignore (Core.Tsr_matrix.fold_rows out_matrix_row m o)

let out_wtuple o (w : Core.Wtuple.t) =
  out_tsval o w.tsval;
  out_matrix o w.tsrarray

let out_history o h =
  let bindings = Core.History_store.bindings h in
  out_int o (List.length bindings);
  List.iter
    (fun (ts, { Core.History_store.pw; w }) ->
      out_int o ts;
      out_tsval o pw;
      match w with
      | None -> out_u8 o 0
      | Some w ->
          out_u8 o 1;
          out_wtuple o w)
    bindings

(* ----- decoding primitives --------------------------------------------- *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* The decoder reads straight out of the connection's receive buffer
   (no per-frame copy); [get_string] and friends copy what they keep,
   so nothing aliases the buffer after a decode returns. *)
type dec = { src : Bytes.t; mutable pos : int; limit : int }

let remaining d = d.limit - d.pos

let get_u8 d =
  if d.pos >= d.limit then fail "truncated (u8 at %d)" d.pos
  else begin
    let c = Bytes.get_uint8 d.src d.pos in
    d.pos <- d.pos + 1;
    c
  end

let get_int d =
  let rec go acc shift =
    if shift > 62 then fail "varint too long at %d" d.pos
    else
      let b = get_u8 d in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let get_length d ~what =
  let n = get_int d in
  if n < 0 then fail "negative %s length %d" what n
  else if n > remaining d then
    fail "%s length %d exceeds remaining %d bytes" what n (remaining d)
  else n

let get_string d =
  let n = get_length d ~what:"string" in
  let s = Bytes.sub_string d.src d.pos n in
  d.pos <- d.pos + n;
  s

let get_value d =
  match get_u8 d with
  | 0 -> Core.Value.Bottom
  | 1 -> Core.Value.V (get_string d)
  | t -> fail "bad value tag %d" t

let get_tsval d =
  let ts = get_int d in
  let v = get_value d in
  Core.Tsval.make ~ts ~v

(* Collection counts are validated against the remaining byte budget
   (every element costs at least one byte) before any element decodes,
   so a forged count cannot trigger unbounded work. *)
let get_count d ~what =
  let n = get_int d in
  if n < 0 then fail "negative %s count %d" what n
  else if n > remaining d then
    fail "%s count %d exceeds remaining %d bytes" what n (remaining d)
  else n

let get_int_map d =
  let n = get_count d ~what:"map" in
  let rec go acc i =
    if i = n then acc
    else
      let k = get_int d in
      let v = get_int d in
      go (Core.Ints.Map.add k v acc) (i + 1)
  in
  go Core.Ints.Map.empty 0

let get_matrix d =
  let n = get_count d ~what:"matrix row" in
  let rec go acc i =
    if i = n then acc
    else
      let obj = get_int d in
      let row = get_int_map d in
      go (Core.Tsr_matrix.set_row acc ~obj row) (i + 1)
  in
  go Core.Tsr_matrix.empty 0

(* On a read-heavy wire, successive acks repeat the same write tuple in
   almost every frame, and rebuilding its matrix of maps per ack is the
   single largest decode cost.  Intern by raw encoded bytes: if the
   incoming bytes start with the exact encoding seen last time, skip the
   parse and return the previously decoded tuple.  This is sound because
   the parser is deterministic and consumes left-to-right — an identical
   byte prefix replays the identical parse — and the count-vs-remaining
   guards only get a larger budget than the parse they already passed.
   The sharing also lets Wtuple.compare short-circuit on physical
   equality in the reader automaton's candidate maps.  One slot per
   domain: systhreads within a domain are serialized by the runtime
   lock, and each server domain has its own slot. *)
let wtuple_cache : (Bytes.t * Core.Wtuple.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let bytes_match src pos cached len =
  let rec go i =
    i = len
    || Char.equal (Bytes.unsafe_get src (pos + i)) (Bytes.unsafe_get cached i)
       && go (i + 1)
  in
  go 0

let get_wtuple d =
  let cache = Domain.DLS.get wtuple_cache in
  let start = d.pos in
  let cached =
    match !cache with
    | Some (cb, w) ->
        let len = Bytes.length cb in
        if d.limit - start >= len && bytes_match d.src start cb len then begin
          d.pos <- start + len;
          Some w
        end
        else None
    | None -> None
  in
  match cached with
  | Some w -> w
  | None ->
      let tsval = get_tsval d in
      let tsrarray = get_matrix d in
      let w = Core.Wtuple.make ~tsval ~tsrarray in
      cache := Some (Bytes.sub d.src start (d.pos - start), w);
      w

let get_history d =
  let n = get_count d ~what:"history" in
  let rec go acc i =
    if i = n then acc
    else
      let ts = get_int d in
      let pw = get_tsval d in
      let w =
        match get_u8 d with
        | 0 -> None
        | 1 -> Some (get_wtuple d)
        | t -> fail "bad history entry tag %d" t
      in
      go (Core.History_store.set acc ~ts { Core.History_store.pw; w }) (i + 1)
  in
  go Core.History_store.empty 0

(* ----- per-protocol message codecs -------------------------------------- *)

type 'm t = {
  name : string;
  encode : Out.t -> 'm -> unit;
  decode : dec -> 'm;  (* may raise Fail; callers catch at the boundary *)
}

type 'm codec = 'm t

let name c = c.name

let messages : Core.Messages.t t =
  let encode o (m : Core.Messages.t) =
    match m with
    | Pw { ts; pw; w } ->
        out_u8 o 0;
        out_int o ts;
        out_tsval o pw;
        out_wtuple o w
    | Pw_ack { ts; tsr } ->
        out_u8 o 1;
        out_int o ts;
        out_int_map o tsr
    | W { ts; pw; w } ->
        out_u8 o 2;
        out_int o ts;
        out_tsval o pw;
        out_wtuple o w
    | W_ack { ts } ->
        out_u8 o 3;
        out_int o ts
    | Read1 { tsr; from_ts } ->
        out_u8 o 4;
        out_int o tsr;
        out_int o from_ts
    | Read2 { tsr; from_ts } ->
        out_u8 o 5;
        out_int o tsr;
        out_int o from_ts
    | Read1_ack { tsr; pw; w } ->
        out_u8 o 6;
        out_int o tsr;
        out_tsval o pw;
        out_wtuple o w
    | Read2_ack { tsr; pw; w } ->
        out_u8 o 7;
        out_int o tsr;
        out_tsval o pw;
        out_wtuple o w
    | Read1_ack_h { tsr; history } ->
        out_u8 o 8;
        out_int o tsr;
        out_history o history
    | Read2_ack_h { tsr; history } ->
        out_u8 o 9;
        out_int o tsr;
        out_history o history
  in
  let decode d : Core.Messages.t =
    match get_u8 d with
    | 0 ->
        let ts = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        Pw { ts; pw; w }
    | 1 ->
        let ts = get_int d in
        let tsr = get_int_map d in
        Pw_ack { ts; tsr }
    | 2 ->
        let ts = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        W { ts; pw; w }
    | 3 -> W_ack { ts = get_int d }
    | 4 ->
        let tsr = get_int d in
        let from_ts = get_int d in
        Read1 { tsr; from_ts }
    | 5 ->
        let tsr = get_int d in
        let from_ts = get_int d in
        Read2 { tsr; from_ts }
    | 6 ->
        let tsr = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        Read1_ack { tsr; pw; w }
    | 7 ->
        let tsr = get_int d in
        let pw = get_tsval d in
        let w = get_wtuple d in
        Read2_ack { tsr; pw; w }
    | 8 ->
        let tsr = get_int d in
        let history = get_history d in
        Read1_ack_h { tsr; history }
    | 9 ->
        let tsr = get_int d in
        let history = get_history d in
        Read2_ack_h { tsr; history }
    | t -> fail "bad core message tag %d" t
  in
  { name = "core"; encode; decode }

let abd : Baseline.Abd.msg t =
  let encode o (m : Baseline.Abd.msg) =
    match m with
    | Write_req { ts; v } ->
        out_u8 o 0;
        out_int o ts;
        out_value o v
    | Write_ack { ts } ->
        out_u8 o 1;
        out_int o ts
    | Read_req { rid } ->
        out_u8 o 2;
        out_int o rid
    | Read_ack { rid; ts; v } ->
        out_u8 o 3;
        out_int o rid;
        out_int o ts;
        out_value o v
    | Write_back { rid; ts; v } ->
        out_u8 o 4;
        out_int o rid;
        out_int o ts;
        out_value o v
    | Write_back_ack { rid } ->
        out_u8 o 5;
        out_int o rid
  in
  let decode d : Baseline.Abd.msg =
    match get_u8 d with
    | 0 ->
        let ts = get_int d in
        let v = get_value d in
        Write_req { ts; v }
    | 1 -> Write_ack { ts = get_int d }
    | 2 -> Read_req { rid = get_int d }
    | 3 ->
        let rid = get_int d in
        let ts = get_int d in
        let v = get_value d in
        Read_ack { rid; ts; v }
    | 4 ->
        let rid = get_int d in
        let ts = get_int d in
        let v = get_value d in
        Write_back { rid; ts; v }
    | 5 -> Write_back_ack { rid = get_int d }
    | t -> fail "bad abd message tag %d" t
  in
  { name = "abd"; encode; decode }

let finish_strict d ~what v =
  if remaining d > 0 then fail "%d trailing bytes after %s" (remaining d) what
  else v

let encode_msg c m =
  let o = Out.create () in
  c.encode o m;
  let s = Out.contents o in
  Out.recycle o;
  s

let decode_msg c s =
  let d = { src = Bytes.unsafe_of_string s; pos = 0; limit = String.length s } in
  match finish_strict d ~what:"message" (c.decode d) with
  | m -> Ok m
  | exception Fail e -> Error e

(* ----- frames ----------------------------------------------------------- *)

type 'm frame =
  | Hello of { proto : string; sender : string; obj : int }
  | Hello_ack of { proto : string; obj : int }
  | Msg of 'm
  | Msg_from of { sender : string; msg : 'm }
  | Msg_key of { key : int; sender : string; msg : 'm }
  | Err of string

let frame_info ~msg_info = function
  | Hello { proto; sender; obj } ->
      Printf.sprintf "HELLO(proto=%s,sender=%s,obj=%d)" proto sender obj
  | Hello_ack { proto; obj } ->
      Printf.sprintf "HELLO_ACK(proto=%s,obj=%d)" proto obj
  | Msg m -> msg_info m
  | Msg_from { sender; msg } ->
      Printf.sprintf "MSG_FROM(sender=%s,%s)" sender (msg_info msg)
  | Msg_key { key; sender; msg } ->
      Printf.sprintf "MSG_KEY(key=%d,sender=%s,%s)" key sender (msg_info msg)
  | Err e -> Printf.sprintf "ERR(%s)" e

let kind_hello = 0

let kind_hello_ack = 1

let kind_msg = 2

let kind_err = 3

let kind_msg_from = 4

let kind_msg_key = 5

(* Append one full frame (length prefix included) to the scratch.  The
   body is encoded in place and the length patched afterwards, so the
   steady-state cost is the bytes themselves — no intermediate buffer. *)
let encode_frame_into c (o : Out.t) frame =
  let start = o.len in
  Out.ensure o 8;
  o.len <- start + 4;
  out_u8 o (Char.code magic1);
  out_u8 o (Char.code magic2);
  out_u8 o version;
  (match frame with
  | Hello { proto; sender; obj } ->
      out_u8 o kind_hello;
      out_string o proto;
      out_string o sender;
      out_int o obj
  | Hello_ack { proto; obj } ->
      out_u8 o kind_hello_ack;
      out_string o proto;
      out_int o obj
  | Msg m ->
      out_u8 o kind_msg;
      c.encode o m
  | Msg_from { sender; msg } ->
      out_u8 o kind_msg_from;
      out_string o sender;
      c.encode o msg
  | Msg_key { key; sender; msg } ->
      out_u8 o kind_msg_key;
      out_int o key;
      out_string o sender;
      c.encode o msg
  | Err e ->
      out_u8 o kind_err;
      out_string o e);
  let payload = o.len - start - 4 in
  if payload > max_frame then begin
    o.len <- start;
    invalid_arg (Printf.sprintf "Codec.encode_frame: %d-byte frame" payload)
  end;
  Bytes.set_uint8 o.buf start ((payload lsr 24) land 0xff);
  Bytes.set_uint8 o.buf (start + 1) ((payload lsr 16) land 0xff);
  Bytes.set_uint8 o.buf (start + 2) ((payload lsr 8) land 0xff);
  Bytes.set_uint8 o.buf (start + 3) (payload land 0xff)

let encode_frame c frame =
  let o = Out.create () in
  encode_frame_into c o frame;
  let s = Out.contents o in
  Out.recycle o;
  s

let decode_payload_dec c d =
  let go () =
    if get_u8 d <> Char.code magic1 || get_u8 d <> Char.code magic2 then
      fail "bad magic"
    else begin
      let v = get_u8 d in
      if v <> version then fail "unsupported wire version %d (expected %d)" v version;
      let kind = get_u8 d in
      if kind = kind_hello then begin
        let proto = get_string d in
        let sender = get_string d in
        let obj = get_int d in
        Hello { proto; sender; obj }
      end
      else if kind = kind_hello_ack then begin
        let proto = get_string d in
        let obj = get_int d in
        Hello_ack { proto; obj }
      end
      else if kind = kind_msg then Msg (c.decode d)
      else if kind = kind_msg_from then begin
        let sender = get_string d in
        Msg_from { sender; msg = c.decode d }
      end
      else if kind = kind_msg_key then begin
        let key = get_int d in
        if key < 0 then fail "negative key id %d" key;
        let sender = get_string d in
        Msg_key { key; sender; msg = c.decode d }
      end
      else if kind = kind_err then Err (get_string d)
      else fail "bad frame kind %d" kind
    end
  in
  match finish_strict d ~what:"frame" (go ()) with
  | f -> Ok f
  | exception Fail e -> Error e

let decode_payload c s =
  decode_payload_dec c
    { src = Bytes.unsafe_of_string s; pos = 0; limit = String.length s }

(* ----- protocol-independent peeking ------------------------------------- *)

(* The chaos interposer relays frames it cannot (and must not) decode:
   it only ever looks at the fixed header and, for sender attribution,
   the leading string fields of [Hello]/[Msg_from] — both of which sit
   before any protocol-specific bytes. *)

let header_bytes = 4

let peek_dec s =
  let d = { src = Bytes.unsafe_of_string s; pos = 0; limit = String.length s } in
  match
    if get_u8 d <> Char.code magic1 || get_u8 d <> Char.code magic2 then None
    else if get_u8 d <> version then None
    else Some (get_u8 d, d)
  with
  | res -> res
  | exception Fail _ -> None

let peek_kind s =
  match peek_dec s with
  | None -> None
  | Some (k, _) ->
      Some
        (if k = kind_hello then `Hello
         else if k = kind_hello_ack then `Hello_ack
         else if k = kind_msg then `Msg
         else if k = kind_msg_from then `Msg_from
         else if k = kind_msg_key then `Msg_key
         else if k = kind_err then `Err
         else `Unknown k)

let peek_sender s =
  match peek_dec s with
  | None -> None
  | Some (k, d) ->
      if k = kind_hello then (
        match
          let _proto = get_string d in
          get_string d
        with
        | sender -> Some sender
        | exception Fail _ -> None)
      else if k = kind_msg_from then (
        match get_string d with
        | sender -> Some sender
        | exception Fail _ -> None)
      else if k = kind_msg_key then (
        match
          let _key = get_int d in
          get_string d
        with
        | sender -> Some sender
        | exception Fail _ -> None)
      else None

let peek_key s =
  match peek_dec s with
  | None -> None
  | Some (k, d) ->
      if k = kind_msg_key then (
        match get_int d with
        | key when key >= 0 -> Some key
        | _ -> None
        | exception Fail _ -> None)
      else None

(* ----- incremental reader ----------------------------------------------- *)

module Reader = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create () = { buf = Pool.take Pool.min_cap; start = 0; len = 0 }

  let pending r = r.len

  let capacity r = Bytes.length r.buf

  let reset r =
    r.start <- 0;
    r.len <- 0;
    if Bytes.length r.buf > Pool.max_cap then r.buf <- Pool.take Pool.min_cap

  let recycle r =
    Pool.give r.buf;
    r.buf <- Bytes.empty;
    r.start <- 0;
    r.len <- 0

  let make_room r extra =
    if r.start + r.len + extra > Bytes.length r.buf then begin
      let need = r.len + extra in
      if need <= Bytes.length r.buf then begin
        (* compact in place *)
        Bytes.blit r.buf r.start r.buf 0 r.len;
        r.start <- 0
      end
      else begin
        let nb = Pool.take (max need (2 * Bytes.length r.buf)) in
        Bytes.blit r.buf r.start nb 0 r.len;
        Pool.give r.buf;
        r.buf <- nb;
        r.start <- 0
      end
    end

  (* After a large frame drains, drop back to a pool-class buffer
     instead of retaining peak capacity for the connection's lifetime. *)
  let maybe_shrink r =
    if Bytes.length r.buf > Pool.max_cap && r.len <= Pool.min_cap then begin
      let nb = Pool.take Pool.min_cap in
      Bytes.blit r.buf r.start nb 0 r.len;
      r.buf <- nb;
      r.start <- 0
    end

  let feed r b off len =
    if off < 0 || len < 0 || off + len > Bytes.length b then
      invalid_arg "Codec.Reader.feed";
    make_room r len;
    Bytes.blit b off r.buf (r.start + r.len) len;
    r.len <- r.len + len

  let peek_len r =
    let at i = Bytes.get_uint8 r.buf (r.start + i) in
    (at 0 lsl 24) lor (at 1 lsl 16) lor (at 2 lsl 8) lor at 3

  let next c r =
    if r.len < 4 then Ok `Awaiting
    else
      let n = peek_len r in
      if n > max_frame then
        Error (Printf.sprintf "frame length %d exceeds limit %d" n max_frame)
      else if n < 4 then Error (Printf.sprintf "frame length %d too short" n)
      else if r.len < 4 + n then Ok `Awaiting
      else begin
        (* decode in place out of the receive buffer — no payload copy *)
        let d = { src = r.buf; pos = r.start + 4; limit = r.start + 4 + n } in
        r.start <- r.start + 4 + n;
        r.len <- r.len - 4 - n;
        if r.len = 0 then r.start <- 0;
        (* decode before shrinking: [d] reads from the current buffer,
           which must not go back to the (shared) pool underneath it *)
        let res = decode_payload_dec c d in
        maybe_shrink r;
        match res with Ok f -> Ok (`Frame f) | Error e -> Error e
      end
end

(* ----- blocking socket helpers ------------------------------------------ *)

let send fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let flush fd (o : Out.t) =
  let rec go () =
    if o.sent < o.len then begin
      let n = Unix.write fd o.buf o.sent (o.len - o.sent) in
      o.sent <- o.sent + n;
      go ()
    end
  in
  go ();
  Out.clear o;
  Out.maybe_shrink o

let flush_nonblock fd (o : Out.t) =
  let rec go () =
    if o.sent >= o.len then begin
      Out.clear o;
      Out.maybe_shrink o;
      `Done
    end
    else
      match Unix.write fd o.buf o.sent (o.len - o.sent) with
      | n ->
          o.sent <- o.sent + n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Blocked
  in
  go ()

let recv_into fd (r : Reader.t) =
  let free () = Bytes.length r.buf - r.start - r.len in
  if free () < 1024 then Reader.make_room r (max 4096 (Bytes.length r.buf));
  let n = Unix.read fd r.buf (r.start + r.len) (free ()) in
  if n > 0 then r.len <- r.len + n;
  n
