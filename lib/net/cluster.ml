type client_slot = {
  client : Client.t;
  registry : Obs.Metrics.t option;
  (* a resumed operation responds to the invocation that opened it *)
  mutable open_op : Histories.Recorder.op_handle option;
}

type t = {
  cfg : Quorum.Config.t;
  endpoints : Endpoint.t array;
  mutable servers : Server.t array;
  server_registries : Obs.Metrics.t option array;
  writer : client_slot;
  readers : client_slot array;
  recorder : string Histories.Recorder.t;
  rec_mutex : Mutex.t;
  now_us : unit -> int;
  tmpdir : string option;
  with_metrics : bool;
}

let tmp_counter = ref 0

let fresh_tmpdir () =
  let rec go n =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "robustread-net-%d-%d" (Unix.getpid ()) n)
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  incr tmp_counter;
  go !tmp_counter

let start ?(metrics = false) ?opts ?(transport = `Unix) ~protocol ~cfg ~readers
    () =
  let s = cfg.Quorum.Config.s in
  let tmpdir, endpoints =
    match transport with
    | `Unix ->
        let dir = fresh_tmpdir () in
        ( Some dir,
          Array.init s (fun i ->
              Endpoint.Unix_sock
                (Filename.concat dir (Printf.sprintf "s%d.sock" (i + 1)))) )
    | `Tcp ->
        ( None,
          Array.init s (fun _ -> Endpoint.Tcp { host = "127.0.0.1"; port = 0 })
        )
  in
  let registry () = if metrics then Some (Obs.Metrics.create ()) else None in
  let server_registries = Array.init s (fun _ -> registry ()) in
  let servers =
    Array.init s (fun i ->
        Server.start
          ?metrics:server_registries.(i)
          ~protocol ~cfg ~index:(i + 1) endpoints.(i))
  in
  (* Ephemeral TCP ports are only known after bind. *)
  let endpoints = Array.map Server.endpoint servers in
  let t0 = Unix.gettimeofday () in
  let now_us () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let slot role =
    let registry = registry () in
    {
      client =
        Client.connect ?metrics:registry ?opts ~now_us ~protocol ~cfg ~role
          endpoints;
      registry;
      open_op = None;
    }
  in
  {
    cfg;
    endpoints;
    servers;
    server_registries;
    writer = slot `Writer;
    readers = Array.init readers (fun j -> slot (`Reader (j + 1)));
    recorder = Histories.Recorder.create ();
    rec_mutex = Mutex.create ();
    now_us;
    tmpdir;
    with_metrics = metrics;
  }

let locked t f =
  Mutex.lock t.rec_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rec_mutex) f

(* Record the invocation unless the slot still has an op in flight (the
   client resumes it; the original invocation stays the right event). *)
let invoke t slot mk =
  locked t (fun () ->
      match slot.open_op with
      | Some h -> h
      | None ->
          let h = mk ~time:(t.now_us ()) in
          slot.open_op <- Some h;
          h)

let respond t slot h finish =
  locked t (fun () ->
      slot.open_op <- None;
      finish h ~time:(t.now_us ()))

let write t v =
  let slot = t.writer in
  let h =
    invoke t slot (fun ~time ->
        Histories.Recorder.invoke_write t.recorder ~time
          (Core.Value.to_string v))
  in
  match Client.write slot.client v with
  | Ok _ as ok ->
      respond t slot h (fun h ~time ->
          Histories.Recorder.respond_write t.recorder h ~time);
      ok
  | Error _ as e -> e

let read t ~reader =
  if reader < 1 || reader > Array.length t.readers then
    invalid_arg (Printf.sprintf "Cluster.read: reader %d" reader);
  let slot = t.readers.(reader - 1) in
  let h =
    invoke t slot (fun ~time ->
        Histories.Recorder.invoke_read t.recorder ~time ~reader)
  in
  match Client.read slot.client with
  | Ok o as ok ->
      let result =
        match o.Client.value with
        | Some Core.Value.Bottom | None -> Histories.Op.Bottom
        | Some (Core.Value.V s) -> Histories.Op.Value s
      in
      respond t slot h (fun h ~time ->
          Histories.Recorder.respond_read t.recorder h ~time result);
      ok
  | Error _ as e -> e

let check_index t i =
  if i < 1 || i > Array.length t.servers then
    invalid_arg (Printf.sprintf "Cluster: object %d" i)

let crash t i =
  check_index t i;
  Server.crash t.servers.(i - 1)

let restart ?wipe t i =
  check_index t i;
  t.servers.(i - 1) <- Server.restart ?wipe t.servers.(i - 1)

let alive t =
  Array.to_list t.servers
  |> List.filter_map (fun s ->
         if Server.alive s then Some (Server.index s) else None)

let endpoints t = t.endpoints

let cfg t = t.cfg

let history t = locked t (fun () -> Histories.Recorder.ops t.recorder)

let spans t =
  Client.spans t.writer.client
  @ List.concat_map
      (fun r -> Client.spans r.client)
      (Array.to_list t.readers)

let metrics t =
  if not t.with_metrics then None
  else begin
    let dst = Obs.Metrics.create () in
    Array.iter
      (Option.iter (fun src -> Obs.Metrics.merge_into ~dst src))
      t.server_registries;
    Option.iter (fun src -> Obs.Metrics.merge_into ~dst src) t.writer.registry;
    Array.iter
      (fun r -> Option.iter (fun src -> Obs.Metrics.merge_into ~dst src) r.registry)
      t.readers;
    Some dst
  end

let stop t =
  Client.close t.writer.client;
  Array.iter (fun r -> Client.close r.client) t.readers;
  Array.iter (fun s -> if Server.alive s then Server.stop s) t.servers;
  match t.tmpdir with
  | None -> ()
  | Some dir -> ( try Unix.rmdir dir with Unix.Unix_error _ -> ())
