type client_slot = {
  client : Client.t;
  registry : Obs.Metrics.t option;
  (* a resumed operation responds to the invocation that opened it *)
  mutable open_op : Histories.Recorder.op_handle option;
}

(* The pipelined read runtime is created on first use and cached: its
   reader slots carry parked (timed-out) operations across calls, so
   rebuilding it per call would leak half-finished automata. *)
type mux_state = {
  m_inflight : int;
  m_first : int;  (* first reader id of this mux's slots *)
  m_coalesce : int;
  m_mux : Client.Mux.t;
  m_registry : Obs.Metrics.t option;
  m_open : Histories.Recorder.op_handle option array;  (* per reader slot *)
  (* Coalesced reads are extra concurrent ops on the same slot, so they
     cannot share the slot's open-op cell (nor its recorder reader id):
     they are tracked per op index with fresh ids from [next_jrid]. *)
  m_open_joined : (int, Histories.Recorder.op_handle) Hashtbl.t;
}

(* The keyed keyspace runtime, cached for the same reason as the mux:
   parked per-key automata must survive across calls.  Histories are
   per key (each key is its own register) and recorded only for keys
   the caller samples. *)
type keyed_state = {
  k_inflight : int;
  k_map : Shard.Map.t;
  k_coalesce : int;
  k_client : Client.Keyed.t;
  k_registry : Obs.Metrics.t option;
  k_recorders : (int, string Histories.Recorder.t) Hashtbl.t;
  k_open : (int * bool, Histories.Recorder.op_handle) Hashtbl.t;
  (* Coalesced reads overlap the lead on the same (key, role), so they
     get their own handles, keyed by op index, under fresh reader ids. *)
  k_open_joined : (int, Histories.Recorder.op_handle) Hashtbl.t;
}

type t = {
  cfg : Quorum.Config.t;
  endpoints : Endpoint.t array;  (* what clients dial: proxies if interposed *)
  chaos_ : Chaos.t array;  (* per-object interposers; empty when direct *)
  mutable servers : Server.t array;
  server_registries : Obs.Metrics.t option array;
  writer : client_slot;
  readers : client_slot array;
  mutable mux : mux_state option;
  mutable keyed : keyed_state option;
  (* Base objects keep per-reader round state, so reader ids are never
     reused across mux generations: each new mux gets a fresh range. *)
  mutable next_rid : int;
  (* Recorder reader ids for coalesced reads: the recorder insists each
     concurrently-open read has a distinct reader, and joined reads
     overlap their lead by construction.  Starts far above any real
     reader id so the ranges can never collide. *)
  mutable next_jrid : int;
  copts : Client.opts option;
  protocol : Protocols.t;
  recorder : string Histories.Recorder.t;
  rec_mutex : Mutex.t;
  now_us : unit -> int;
  tmpdir : string option;
  with_metrics : bool;
}

let tmp_counter = ref 0

let fresh_tmpdir () =
  let rec go n =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "robustread-net-%d-%d" (Unix.getpid ()) n)
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  incr tmp_counter;
  go !tmp_counter

let start ?(metrics = false) ?opts ?(transport = `Unix) ?(loop = `Threads)
    ?(domains = 1) ?(interpose = false) ~protocol ~cfg ~readers () =
  let s = cfg.Quorum.Config.s in
  let tmpdir, endpoints =
    match transport with
    | `Unix ->
        let dir = fresh_tmpdir () in
        ( Some dir,
          Array.init s (fun i ->
              Endpoint.Unix_sock
                (Filename.concat dir (Printf.sprintf "s%d.sock" (i + 1)))) )
    | `Tcp ->
        ( None,
          Array.init s (fun _ -> Endpoint.Tcp { host = "127.0.0.1"; port = 0 })
        )
  in
  let registry () = if metrics then Some (Obs.Metrics.create ()) else None in
  let server_registries = Array.init s (fun _ -> registry ()) in
  let servers =
    match loop with
    | `Threads ->
        Array.init s (fun i ->
            Server.start
              ?metrics:server_registries.(i)
              ~protocol ~cfg ~index:(i + 1) endpoints.(i))
    | `Poll ->
        (* All S objects sharded across [domains] event-loop domains
           (one domain when unspecified). *)
        Server.start_group
          ?metrics:
            (if metrics then
               Some (fun i -> Option.get server_registries.(i))
             else None)
          ~domains ~protocol ~cfg endpoints
  in
  (* Ephemeral TCP ports are only known after bind. *)
  let server_endpoints = Array.map Server.endpoint servers in
  let t0 = Unix.gettimeofday () in
  let now_us () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  (* With interposition, every client dials a per-object chaos proxy
     relaying to the real server; the server endpoint stays stable
     across crash/restart, so a proxy never needs re-targeting. *)
  let chaos_ =
    if not interpose then [||]
    else
      Array.init s (fun i ->
          let listen =
            match (transport, tmpdir) with
            | `Unix, Some dir ->
                Endpoint.Unix_sock
                  (Filename.concat dir (Printf.sprintf "c%d.sock" (i + 1)))
            | _ -> Endpoint.Tcp { host = "127.0.0.1"; port = 0 }
          in
          Chaos.start ~now_us ~listen ~target:server_endpoints.(i) ())
  in
  let endpoints =
    if interpose then Array.map Chaos.endpoint chaos_ else server_endpoints
  in
  let slot role =
    let registry = registry () in
    {
      client =
        Client.connect ?metrics:registry ?opts ~now_us ~protocol ~cfg ~role
          endpoints;
      registry;
      open_op = None;
    }
  in
  {
    cfg;
    endpoints;
    chaos_;
    servers;
    server_registries;
    writer = slot `Writer;
    readers = Array.init readers (fun j -> slot (`Reader (j + 1)));
    mux = None;
    keyed = None;
    next_rid = readers + 1;
    next_jrid = 1_000_000;
    copts = opts;
    protocol;
    recorder = Histories.Recorder.create ();
    rec_mutex = Mutex.create ();
    now_us;
    tmpdir;
    with_metrics = metrics;
  }

let locked t f =
  Mutex.lock t.rec_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rec_mutex) f

(* Record the invocation unless the slot still has an op in flight (the
   client resumes it; the original invocation stays the right event). *)
let invoke t slot mk =
  locked t (fun () ->
      match slot.open_op with
      | Some h -> h
      | None ->
          let h = mk ~time:(t.now_us ()) in
          slot.open_op <- Some h;
          h)

let respond t slot h finish =
  locked t (fun () ->
      slot.open_op <- None;
      finish h ~time:(t.now_us ()))

let write t v =
  let slot = t.writer in
  let h =
    invoke t slot (fun ~time ->
        Histories.Recorder.invoke_write t.recorder ~time
          (Core.Value.to_string v))
  in
  match Client.write slot.client v with
  | Ok _ as ok ->
      respond t slot h (fun h ~time ->
          Histories.Recorder.respond_write t.recorder h ~time);
      ok
  | Error _ as e -> e

let read t ~reader =
  if reader < 1 || reader > Array.length t.readers then
    invalid_arg (Printf.sprintf "Cluster.read: reader %d" reader);
  let slot = t.readers.(reader - 1) in
  let h =
    invoke t slot (fun ~time ->
        Histories.Recorder.invoke_read t.recorder ~time ~reader)
  in
  match Client.read slot.client with
  | Ok o as ok ->
      let result =
        match o.Client.value with
        | Some Core.Value.Bottom | None -> Histories.Op.Bottom
        | Some (Core.Value.V s) -> Histories.Op.Value s
      in
      respond t slot h (fun h ~time ->
          Histories.Recorder.respond_read t.recorder h ~time result);
      ok
  | Error _ as e -> e

let mux_for t ~inflight ~coalesce =
  if inflight < 1 then
    invalid_arg (Printf.sprintf "Cluster.read_pipelined: inflight %d" inflight);
  match t.mux with
  | Some m when m.m_inflight = inflight && m.m_coalesce = coalesce -> m
  | existing ->
      (match existing with
      | Some m -> Client.Mux.close m.m_mux
      | None -> ());
      let registry =
        if t.with_metrics then Some (Obs.Metrics.create ()) else None
      in
      let first = t.next_rid in
      t.next_rid <- t.next_rid + inflight;
      let m =
        {
          m_inflight = inflight;
          m_first = first;
          m_coalesce = coalesce;
          m_mux =
            Client.Mux.connect ?metrics:registry ?opts:t.copts
              ~now_us:t.now_us ~max_inflight:inflight ~first_reader:first
              ~coalesce ~protocol:t.protocol ~cfg:t.cfg ~readers:inflight
              t.endpoints;
          m_registry = registry;
          m_open = Array.make inflight None;
          m_open_joined = Hashtbl.create 64;
        }
      in
      t.mux <- Some m;
      m

let read_pipelined ?(coalesce = 1) t ~inflight ~ops =
  let m = mux_for t ~inflight ~coalesce in
  (* Events fire on the pump's hot path, once per op start and finish:
     take the mutex directly instead of allocating a [locked] thunk per
     event.  Recorder calls raise only on misuse bugs; the handler
     below re-raises with the mutex released so the failure stays
     loud. *)
  let record ev =
    match ev with
    | Client.Mux.Invoke { op; joined = true; at_us; _ } ->
        (* A coalesced read overlaps its lead, so it needs a recorder
           reader id of its own (the recorder allows one open op per
           reader).  Joined ops never park/resume: keyed by op index. *)
        let jrid = t.next_jrid in
        t.next_jrid <- t.next_jrid + 1;
        Hashtbl.replace m.m_open_joined op
          (Histories.Recorder.invoke_read t.recorder ~time:at_us ~reader:jrid)
    | Client.Mux.Respond { op; joined = true; at_us; outcome; _ } -> (
        match Hashtbl.find_opt m.m_open_joined op with
        | None -> ()
        | Some h -> (
            Hashtbl.remove m.m_open_joined op;
            match outcome with
            | Error _ -> ()  (* never resumed: the op stays open *)
            | Ok o ->
                let result =
                  match o.Client.value with
                  | Some Core.Value.Bottom | None -> Histories.Op.Bottom
                  | Some (Core.Value.V s) -> Histories.Op.Value s
                in
                Histories.Recorder.respond_read t.recorder h ~time:at_us result))
    | Client.Mux.Invoke { reader; at_us; _ } -> (
        match m.m_open.(reader - m.m_first) with
        | Some _ -> ()  (* resuming a parked op: invocation stands *)
        | None ->
            m.m_open.(reader - m.m_first) <-
              Some
                (Histories.Recorder.invoke_read t.recorder ~time:at_us ~reader))
    | Client.Mux.Respond { reader; at_us; outcome; _ } -> (
        match outcome with
        | Error _ -> ()  (* op stays open; a later read resumes it *)
        | Ok o -> (
            match m.m_open.(reader - m.m_first) with
            | None -> ()
            | Some h ->
                m.m_open.(reader - m.m_first) <- None;
                let result =
                  match o.Client.value with
                  | Some Core.Value.Bottom | None -> Histories.Op.Bottom
                  | Some (Core.Value.V s) -> Histories.Op.Value s
                in
                Histories.Recorder.respond_read t.recorder h ~time:at_us result))
  in
  let on_event ev =
    Mutex.lock t.rec_mutex;
    (try record ev
     with e ->
       Mutex.unlock t.rec_mutex;
       raise e);
    Mutex.unlock t.rec_mutex
  in
  Client.Mux.run_reads ~on_event m.m_mux ops

let keyed_for t ~map ~inflight ~coalesce =
  if inflight < 1 then
    invalid_arg (Printf.sprintf "Cluster.run_keyed: inflight %d" inflight);
  match t.keyed with
  | Some k
    when k.k_inflight = inflight && k.k_map == map && k.k_coalesce = coalesce
    ->
      k
  | existing ->
      (match existing with
      | Some k -> Client.Keyed.close k.k_client
      | None -> ());
      if Shard.Map.fleet map <> Array.length t.endpoints then
        invalid_arg
          (Printf.sprintf "Cluster.run_keyed: map fleet %d, cluster has %d"
             (Shard.Map.fleet map) (Array.length t.endpoints));
      let registry =
        if t.with_metrics then Some (Obs.Metrics.create ()) else None
      in
      (* Fresh reader id: key 0 is also served to the plain clients
         (untagged frames), so the keyed reader must not collide with a
         serial reader's per-reader round state on key 0's objects. *)
      let rid = t.next_rid in
      t.next_rid <- t.next_rid + 1;
      let k =
        {
          k_inflight = inflight;
          k_map = map;
          k_coalesce = coalesce;
          k_client =
            Client.Keyed.connect ?metrics:registry ?opts:t.copts
              ~now_us:t.now_us ~max_inflight:inflight ~reader:rid ~coalesce
              ~protocol:t.protocol ~map t.endpoints;
          k_registry = registry;
          k_recorders = Hashtbl.create 64;
          k_open = Hashtbl.create 64;
          k_open_joined = Hashtbl.create 64;
        }
      in
      t.keyed <- Some k;
      k

let run_keyed ?(inflight = 16) ?(coalesce = 1) ?(sample = fun _ -> true) t ~map
    ops =
  let k = keyed_for t ~map ~inflight ~coalesce in
  let recorder_for key =
    match Hashtbl.find_opt k.k_recorders key with
    | Some r -> r
    | None ->
        let r = Histories.Recorder.create () in
        Hashtbl.replace k.k_recorders key r;
        r
  in
  let record ev =
    match ev with
    | Client.Keyed.Invoke { op; key; joined = true; at_us; _ } ->
        if sample key then begin
          (* A coalesced read overlaps its lead on the same key, so it
             records under a fresh reader id (the recorder allows one
             open op per reader).  Joined ops never park/resume: keyed
             by op index. *)
          let jrid = t.next_jrid in
          t.next_jrid <- t.next_jrid + 1;
          let r = recorder_for key in
          Hashtbl.replace k.k_open_joined op
            (Histories.Recorder.invoke_read r ~time:at_us ~reader:jrid)
        end
    | Client.Keyed.Respond { op; key; joined = true; at_us; outcome; _ } ->
        if sample key then begin
          match Hashtbl.find_opt k.k_open_joined op with
          | None -> ()
          | Some h -> (
              Hashtbl.remove k.k_open_joined op;
              match outcome with
              | Error _ -> ()  (* never resumed: the op stays open *)
              | Ok o ->
                  let r = recorder_for key in
                  let result =
                    match o.Client.value with
                    | Some Core.Value.Bottom | None -> Histories.Op.Bottom
                    | Some (Core.Value.V s) -> Histories.Op.Value s
                  in
                  Histories.Recorder.respond_read r h ~time:at_us result)
        end
    | Client.Keyed.Invoke { op; key; write; at_us; _ } ->
        if sample key then begin
          match Hashtbl.find_opt k.k_open (key, write) with
          | Some _ -> ()  (* resuming a parked op: invocation stands *)
          | None ->
              let r = recorder_for key in
              let h =
                if write then
                  let v =
                    match ops.(op) with
                    | Client.Keyed.Write { value; _ } ->
                        Core.Value.to_string value
                    | Client.Keyed.Read _ -> assert false
                  in
                  Histories.Recorder.invoke_write r ~time:at_us v
                else Histories.Recorder.invoke_read r ~time:at_us ~reader:1
              in
              Hashtbl.replace k.k_open (key, write) h
        end
    | Client.Keyed.Respond { key; write; at_us; outcome; _ } ->
        if sample key then begin
          match outcome with
          | Error _ -> ()  (* op stays open; a later op resumes it *)
          | Ok o -> (
              match Hashtbl.find_opt k.k_open (key, write) with
              | None -> ()
              | Some h ->
                  Hashtbl.remove k.k_open (key, write);
                  let r = recorder_for key in
                  if write then Histories.Recorder.respond_write r h ~time:at_us
                  else
                    let result =
                      match o.Client.value with
                      | Some Core.Value.Bottom | None -> Histories.Op.Bottom
                      | Some (Core.Value.V s) -> Histories.Op.Value s
                    in
                    Histories.Recorder.respond_read r h ~time:at_us result)
        end
  in
  let on_event ev =
    Mutex.lock t.rec_mutex;
    (try record ev
     with e ->
       Mutex.unlock t.rec_mutex;
       raise e);
    Mutex.unlock t.rec_mutex
  in
  Client.Keyed.run_ops ~on_event k.k_client ops

let keyed_histories t =
  match t.keyed with
  | None -> []
  | Some k ->
      locked t (fun () ->
          Hashtbl.fold
            (fun key r acc -> (key, Histories.Recorder.ops r) :: acc)
            k.k_recorders []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b))

let keys_touched t =
  match t.keyed with None -> 0 | Some k -> Client.Keyed.keys_touched k.k_client

let check_index t i =
  if i < 1 || i > Array.length t.servers then
    invalid_arg (Printf.sprintf "Cluster: object %d" i)

let crash t i =
  check_index t i;
  Server.crash t.servers.(i - 1)

(* A restart that races a still-running server is a campaign finding,
   not a programming error: surface it structurally so a fault driver
   can skip or retry instead of unwinding mid-sweep. *)
let restart ?wipe t i =
  check_index t i;
  if Server.is_alive t.servers.(i - 1) then Error (`Still_alive i)
  else begin
    t.servers.(i - 1) <- Server.restart ?wipe t.servers.(i - 1);
    Ok ()
  end

let restart_exn ?wipe t i =
  match restart ?wipe t i with
  | Ok () -> ()
  | Error (`Still_alive i) ->
      invalid_arg (Printf.sprintf "Cluster.restart: server %d still alive" i)

let partition_violations t =
  (* Group-wide counter for the poll group (every handle reports the
     same one); always 0 per handle for thread servers. *)
  Array.fold_left
    (fun acc s -> max acc (Server.partition_violations s))
    0 t.servers

let chaos t = t.chaos_

let now_us t = t.now_us ()

let alive t =
  Array.to_list t.servers
  |> List.filter_map (fun s ->
         if Server.alive s then Some (Server.index s) else None)

let endpoints t = t.endpoints

let cfg t = t.cfg

let history t = locked t (fun () -> Histories.Recorder.ops t.recorder)

let spans t =
  Client.spans t.writer.client
  @ List.concat_map
      (fun r -> Client.spans r.client)
      (Array.to_list t.readers)
  @ (match t.mux with Some m -> Client.Mux.spans m.m_mux | None -> [])
  @ (match t.keyed with Some k -> Client.Keyed.spans k.k_client | None -> [])

let metrics t =
  if not t.with_metrics then None
  else begin
    let dst = Obs.Metrics.create () in
    Array.iter
      (Option.iter (fun src -> Obs.Metrics.merge_into ~dst src))
      t.server_registries;
    Option.iter (fun src -> Obs.Metrics.merge_into ~dst src) t.writer.registry;
    Array.iter
      (fun r -> Option.iter (fun src -> Obs.Metrics.merge_into ~dst src) r.registry)
      t.readers;
    (match t.mux with
    | Some { m_registry = Some src; _ } -> Obs.Metrics.merge_into ~dst src
    | _ -> ());
    (match t.keyed with
    | Some { k_registry = Some src; _ } -> Obs.Metrics.merge_into ~dst src
    | _ -> ());
    Some dst
  end

let stop t =
  Client.close t.writer.client;
  Array.iter (fun r -> Client.close r.client) t.readers;
  (match t.mux with
  | Some m ->
      Client.Mux.close m.m_mux;
      t.mux <- None
  | None -> ());
  (match t.keyed with
  | Some k ->
      Client.Keyed.close k.k_client;
      t.keyed <- None
  | None -> ());
  Array.iter Chaos.stop t.chaos_;
  Array.iter (fun s -> if Server.alive s then Server.stop s) t.servers;
  match t.tmpdir with
  | None -> ()
  | Some dir -> ( try Unix.rmdir dir with Unix.Unix_error _ -> ())
