type t = Unix_sock of string | Tcp of { host : string; port : int }

let of_string s =
  let tcp host port =
    match int_of_string_opt port with
    | Some p when p >= 0 && p <= 65535 -> Ok (Tcp { host; port = p })
    | _ -> Error (Printf.sprintf "invalid port %S in %S" port s)
  in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "endpoint %S: expected unix:PATH or HOST:PORT" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "empty unix socket path"
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "endpoint %S: expected tcp:HOST:PORT" s)
          | Some j ->
              tcp
                (String.sub rest 0 j)
                (String.sub rest (j + 1) (String.length rest - j - 1)))
      | host -> tcp host rest)

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let pp ppf e = Format.pp_print_string ppf (to_string e)

let resolve host =
  try (Unix.gethostbyname host).Unix.h_addr_list.(0)
  with Not_found | Invalid_argument _ -> (
    try Unix.inet_addr_of_string host
    with Failure _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let to_sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (resolve host, port)

let socket_domain = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let cleanup = function
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
