type stats = { connections : int; messages : int }

type loop = [ `Threads | `Poll ]

type t = {
  endpoint : Endpoint.t;
  index : int;
  alive_ : unit -> bool;
  stats_ : unit -> stats;
  stop_ : graceful:bool -> unit;
  restart_ : wipe:bool -> t;
  violations_ : unit -> int;
}

(* A peer vanishing mid-write must surface as EPIPE, not kill the
   process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

(* In-place decimal parse of "r<n>"/"s<n>" suffixes: this runs once per
   [Msg_from] on the hot path, so no [String.sub] allocation. *)
let id_of_suffix s =
  let len = String.length s in
  let rec go i acc =
    if i >= len then acc
    else
      match s.[i] with
      | '0' .. '9' when acc < 0x3FFFFFF ->
          go (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
      | _ -> -1
  in
  if len < 2 then -1 else go 1 0

let proc_of_string s =
  if s = "w" then Some Sim.Proc_id.Writer
  else if String.length s >= 2 then
    match s.[0] with
    | 'r' -> (
        match id_of_suffix s with
        | n when n >= 1 -> Some (Sim.Proc_id.Reader n)
        | _ -> None)
    | 's' -> (
        match id_of_suffix s with
        | n when n >= 1 -> Some (Sim.Proc_id.Obj n)
        | _ -> None)
    | _ -> None
  else None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Reply batches must not sit in Nagle's buffer waiting for a delayed
   ACK; harmless no-op on Unix-domain sockets. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let listen_on endpoint =
  Endpoint.cleanup endpoint;
  let fd = Unix.socket (Endpoint.socket_domain endpoint) Unix.SOCK_STREAM 0 in
  (try
     (match endpoint with
     | Endpoint.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Endpoint.Unix_sock _ -> ());
     Unix.bind fd (Endpoint.to_sockaddr endpoint);
     Unix.listen fd 64
   with e ->
     close_quietly fd;
     raise e);
  let actual =
    match endpoint with
    | Endpoint.Tcp { host; port = 0 } -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Endpoint.Tcp { host; port }
        | _ -> endpoint)
    | _ -> endpoint
  in
  (fd, actual)

(* ===== sharded poll event loop =========================================== *)

(* One connection in a poll group: nonblocking fd, its own incremental
   Reader and outbound scratch.  [gclosing] marks a session that ends
   once its pending bytes flush (terminal [Err], received [Err],
   graceful stop).  [gpaused] is backpressure: the write queue crossed
   the high watermark, so the owner stops reading this socket — the
   peer's window blocks instead of any frame being dropped. *)
type gconn = {
  gfd : Unix.file_descr;
  gobj : int;  (* slot in the group's arrays, 0-based *)
  greader : Codec.Reader.t;
  gout : Codec.Out.t;
  mutable gsrc : Sim.Proc_id.t option;
  mutable gclosing : bool;
  mutable gframes : int;  (* frames queued since the last completed flush *)
  mutable gpaused : bool;
  mutable gpause_at : float;
}

(* What the acceptor hands a worker: a fresh connection for a slot the
   worker owns, or an order to drain and release a slot. *)
type wcmd =
  | Wadd of { afd : Unix.file_descr; aslot : int }
  | Wdrain of { dslot : int; dgraceful : bool }

(* All base objects of a cluster sharded across [domains] event-loop
   worker domains plus one acceptor domain.  The acceptor owns only the
   listening sockets; every accepted fd is pushed over a lock-free
   handoff queue to the worker that owns the dialed object
   ([owner.(slot) = slot mod domains]), and from then on registration,
   read, decode, automaton step, encode and flush for that connection
   are all domain-local.  No automaton is ever stepped from two
   domains: the dispatch table is fixed at start, a per-slot stepper
   check asserts it at runtime, and [partition_violations] exposes the
   count.

   Control plane (stop/restart/alive/handle wiring) goes through one
   mutex + condvar; the data plane never touches it except one cheap
   check per accepted connection and one per idle worker iteration.
   Each returned handle keeps the thread-server semantics: independent
   stop/crash/restart per object; domains exit when their work is gone
   and are respawned by the first restart. *)
let start_group ?metrics ?indices ?(domains = 1) ?(queue_hi = 256 * 1024)
    ?(drain_timeout = 5.0) ~protocol ~cfg endpoints =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let s = Array.length endpoints in
  if s = 0 then invalid_arg "Server.start_group: no endpoints";
  let indices =
    match indices with
    | None -> Array.init s (fun i -> i + 1)
    | Some a ->
        if Array.length a <> s then
          invalid_arg "Server.start_group: indices/endpoints length mismatch";
        a
  in
  let nd = max 1 (min domains s) in
  let queue_hi = max 4096 queue_hi in
  let queue_lo = max 1 (queue_hi / 4) in
  let owner = Array.init s (fun i -> i mod nd) in
  let reg_for i = match metrics with None -> None | Some f -> Some (f i) in
  let fresh i = P.obj_init ~cfg ~index:indices.(i) in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let locked f =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
  in
  (* Per-slot keyed object tables: key id -> automaton state.  Key 0 is
     the pre-keyspace register and exists from the start, so untagged
     [Msg]/[Msg_from] traffic behaves exactly as before; other keys are
     materialized on first contact.  A table is only ever touched by the
     slot's owning domain (the same invariant [steppers] asserts for the
     automata), so no lock guards it. *)
  let objs : (int, P.obj ref) Hashtbl.t array =
    Array.init s (fun i ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.replace tbl 0 (ref (fresh i));
        tbl)
  in
  let obj_for i key =
    match Hashtbl.find_opt objs.(i) key with
    | Some r -> r
    | None ->
        let r = ref (fresh i) in
        Hashtbl.replace objs.(i) key r;
        r
  in
  let listeners = Array.make s None in
  let actuals = Array.copy endpoints in
  (try
     Array.iteri
       (fun i ep ->
         let fd, actual = listen_on ep in
         Unix.set_nonblock fd;
         listeners.(i) <- Some fd;
         actuals.(i) <- actual)
       endpoints
   with e ->
     Array.iter (function Some fd -> close_quietly fd | None -> ()) listeners;
     raise e);
  let alive = Array.make s true in
  let stop_req = Array.make s None in
  (* Stats and the partition check are atomics so handles and workers
     never contend on the mutex for them. *)
  let conn_counts = Array.init s (fun _ -> Atomic.make 0) in
  let msg_counts = Array.init s (fun _ -> Atomic.make 0) in
  let violations = Atomic.make 0 in
  let steppers = Array.init s (fun _ -> Atomic.make (-1)) in
  let queues = Array.init nd (fun _ -> Exec.Handoff.create ()) in
  let pipe_pair () =
    let rd, wr = Unix.pipe () in
    Unix.set_nonblock rd;
    (rd, wr)
  in
  let acc_wake_rd, acc_wake_wr = pipe_pair () in
  let worker_wakes = Array.init nd (fun _ -> pipe_pair ()) in
  let poke wr =
    try ignore (Unix.write wr (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let wake_acceptor () = poke acc_wake_wr in
  let wake_worker d = poke (snd worker_wakes.(d)) in
  let drain_wake rd buf =
    let rec go () =
      match Unix.read rd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error _ -> ()
      | 0 -> ()
      | _ -> go ()
    in
    go ()
  in
  let acceptor_running = ref false in
  let worker_running = Array.make nd false in
  let spawned : unit Domain.t list ref = ref [] in
  (* -- acceptor domain --------------------------------------------------- *)
  (* Owns the listeners and nothing else: stop requests close the
     listener here (nobody else selects on it) and turn into a [Wdrain]
     for the owning worker; accepted fds are configured and handed off
     without ever touching a registry or an automaton. *)
  let accept_one i lfd =
    match Unix.accept lfd with
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
            ),
            _,
            _ ) ->
        ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ -> (
        match Unix.set_nonblock fd with
        | exception Unix.Unix_error _ -> close_quietly fd
        | () ->
            set_nodelay fd;
            Exec.Handoff.push queues.(owner.(i)) (Wadd { afd = fd; aslot = i });
            wake_worker owner.(i))
  in
  let acceptor () =
    let wake_buf = Bytes.create 64 in
    let rec iter () =
      let sets =
        locked (fun () ->
            Array.iteri
              (fun i req ->
                match req with
                | None -> ()
                | Some mode ->
                    stop_req.(i) <- None;
                    (match listeners.(i) with
                    | Some fd ->
                        close_quietly fd;
                        listeners.(i) <- None;
                        Endpoint.cleanup actuals.(i)
                    | None -> ());
                    Exec.Handoff.push
                      queues.(owner.(i))
                      (Wdrain { dslot = i; dgraceful = (mode = `Graceful) });
                    wake_worker owner.(i))
              stop_req;
            if Array.exists Option.is_some listeners then begin
              let rds = ref [ acc_wake_rd ] in
              Array.iter
                (function Some fd -> rds := fd :: !rds | None -> ())
                listeners;
              Some !rds
            end
            else begin
              acceptor_running := false;
              None
            end)
      in
      match sets with
      | None -> ()
      | Some rds ->
          (match Unix.select rds [] [] 0.5 with
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
          | rready, _, _ ->
              if List.mem acc_wake_rd rready then
                drain_wake acc_wake_rd wake_buf;
              locked (fun () ->
                  Array.iteri
                    (fun i l ->
                      match l with
                      | Some fd when List.mem fd rready -> accept_one i fd
                      | _ -> ())
                    listeners));
          iter ()
    in
    iter ()
  in
  (* -- worker domains ----------------------------------------------------- *)
  let worker d () =
    let q = queues.(d) in
    let wake_rd = fst worker_wakes.(d) in
    let wake_buf = Bytes.create 64 in
    let discard = Bytes.create 4096 in
    (* Domain-local: only this worker ever touches these, or any
       registry/automaton of a slot it owns. *)
    let conns : (Unix.file_descr, gconn) Hashtbl.t = Hashtbl.create 16 in
    let draining : (int, float) Hashtbl.t = Hashtbl.create 4 in
    let resumed : gconn list ref = ref [] in
    let count i name =
      match reg_for i with None -> () | Some reg -> Obs.Metrics.incr reg name
    in
    let meter i stage m =
      match reg_for i with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let observe i name bounds v =
      match reg_for i with
      | None -> ()
      | Some reg -> Obs.Metrics.observe_int reg name ~bounds v
    in
    let slot_has_conns i =
      Hashtbl.fold (fun _ c acc -> acc || c.gobj = i) conns false
    in
    let finish_slot i =
      Hashtbl.remove draining i;
      Atomic.set steppers.(i) (-1);
      locked (fun () ->
          alive.(i) <- false;
          Condition.broadcast cond)
    in
    let close_conn c =
      Hashtbl.remove conns c.gfd;
      Codec.Reader.recycle c.greader;
      Codec.Out.recycle c.gout;
      close_quietly c.gfd;
      if Hashtbl.mem draining c.gobj && not (slot_has_conns c.gobj) then
        finish_slot c.gobj
    in
    let unpause c =
      if c.gpaused && Codec.Out.pending c.gout <= queue_lo then begin
        c.gpaused <- false;
        let stalled_us =
          int_of_float ((Unix.gettimeofday () -. c.gpause_at) *. 1e6)
        in
        observe c.gobj "wire.backpressure_stalls" Obs.Metrics.wallclock_bounds
          (max 0 stalled_us);
        resumed := c :: !resumed
      end
    in
    let append_frame c fr =
      let before = Codec.Out.length c.gout in
      Codec.encode_frame_into codec c.gout fr;
      observe c.gobj "wire.bytes_per_frame" Obs.Metrics.bytes_bounds
        (Codec.Out.length c.gout - before);
      c.gframes <- c.gframes + 1;
      if (not c.gpaused) && Codec.Out.pending c.gout > queue_hi then begin
        c.gpaused <- true;
        c.gpause_at <- Unix.gettimeofday ()
      end
    in
    let try_flush c =
      if Codec.Out.pending c.gout > 0 then begin
        observe c.gobj "wire.queue_depth" Obs.Metrics.depth_bounds c.gframes;
        match Codec.flush_nonblock c.gfd c.gout with
        | `Done ->
            observe c.gobj "wire.batch_size" Obs.Metrics.batch_bounds c.gframes;
            c.gframes <- 0;
            unpause c;
            if c.gclosing then close_conn c
        | `Blocked -> unpause c
        | exception Unix.Unix_error _ -> close_conn c
      end
      else if c.gclosing then close_conn c
    in
    let deliver c ~key ~src ~wrap m =
      let i = c.gobj in
      (* Partition-safety check: the routing table must have sent this
         connection to the slot's owner, and only one domain id may ever
         claim a live slot.  Keys nest inside slots (every key's state
         lives in its slot's table), so the per-slot check covers every
         keyed automaton too. *)
      if owner.(i) <> d then Atomic.incr violations;
      let me = (Domain.self () :> int) in
      let st = steppers.(i) in
      (match Atomic.get st with
      | -1 ->
          if
            (not (Atomic.compare_and_set st (-1) me)) && Atomic.get st <> me
          then Atomic.incr violations
      | id when id = me -> ()
      | _ -> Atomic.incr violations);
      let slot = obj_for i key in
      let obj', reply = P.obj_handle !slot ~src m in
      slot := obj';
      Atomic.incr msg_counts.(i);
      count i "net.server.messages";
      meter i "delivered" m;
      match reply with
      | Some r ->
          meter i "sent" r;
          append_frame c (wrap r)
      | None -> ()
    in
    let on_frame c = function
      | Codec.Hello { proto; sender; obj = dialed } ->
          let fail msg =
            append_frame c (Codec.Err msg);
            c.gclosing <- true
          in
          let index = indices.(c.gobj) in
          if proto <> P.name then
            fail
              (Printf.sprintf "server hosts protocol %s, client speaks %s"
                 P.name proto)
          else if dialed <> 0 && dialed <> index then
            fail
              (Printf.sprintf "server hosts object %d, client dialed %d" index
                 dialed)
          else (
            match proc_of_string sender with
            | None -> fail (Printf.sprintf "invalid sender %S" sender)
            | Some p ->
                c.gsrc <- Some p;
                append_frame c (Codec.Hello_ack { proto = P.name; obj = index }))
      | Codec.Msg m -> (
          match c.gsrc with
          | None ->
              append_frame c (Codec.Err "protocol message before hello");
              c.gclosing <- true
          | Some src -> deliver c ~key:0 ~src ~wrap:(fun r -> Codec.Msg r) m)
      | Codec.Msg_from { sender; msg } -> (
          match c.gsrc with
          | None ->
              append_frame c (Codec.Err "protocol message before hello");
              c.gclosing <- true
          | Some _ -> (
              match proc_of_string sender with
              | None ->
                  append_frame c
                    (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                  c.gclosing <- true
              | Some src ->
                  deliver c ~key:0 ~src
                    ~wrap:(fun r -> Codec.Msg_from { sender; msg = r })
                    msg))
      | Codec.Msg_key { key; sender; msg } -> (
          match c.gsrc with
          | None ->
              append_frame c (Codec.Err "protocol message before hello");
              c.gclosing <- true
          | Some _ -> (
              match proc_of_string sender with
              | None ->
                  append_frame c
                    (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                  c.gclosing <- true
              | Some src ->
                  deliver c ~key ~src
                    ~wrap:(fun r -> Codec.Msg_key { key; sender; msg = r })
                    msg))
      | Codec.Hello_ack _ ->
          append_frame c (Codec.Err "unexpected hello_ack");
          c.gclosing <- true
      | Codec.Err _ -> c.gclosing <- true
    in
    (* Decode and step every complete frame already buffered; stops
       early when backpressure pauses the connection (the rest of the
       buffer waits for the resume). *)
    let process_frames c =
      let rec go () =
        if (not c.gclosing) && (not c.gpaused) && Hashtbl.mem conns c.gfd then
          match Codec.Reader.next codec c.greader with
          | Ok `Awaiting -> ()
          | Ok (`Frame f) ->
              on_frame c f;
              go ()
          | Error e ->
              count c.gobj "net.server.decode_errors";
              append_frame c (Codec.Err e);
              c.gclosing <- true
      in
      go ();
      if Hashtbl.mem conns c.gfd then try_flush c
    in
    let handle_readable c =
      if c.gclosing then begin
        (* Session is ending: discard input, but keep watching for the
           peer's EOF so half-closed sockets do not linger. *)
        match Unix.read c.gfd discard 0 (Bytes.length discard) with
        | 0 -> close_conn c
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> close_conn c
        | _ -> ()
      end
      else
        match Codec.recv_into c.gfd c.greader with
        | 0 -> close_conn c
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> close_conn c
        | _ -> process_frames c
    in
    let process_queue () =
      List.iter
        (fun cmd ->
          match cmd with
          | Wadd { afd; aslot } ->
              if locked (fun () -> alive.(aslot)) then begin
                Atomic.incr conn_counts.(aslot);
                count aslot "net.server.connections";
                Hashtbl.replace conns afd
                  {
                    gfd = afd;
                    gobj = aslot;
                    greader = Codec.Reader.create ();
                    gout = Codec.Out.create ();
                    gsrc = None;
                    gclosing = false;
                    gframes = 0;
                    gpaused = false;
                    gpause_at = 0.;
                  }
              end
              else close_quietly afd
          | Wdrain { dslot; dgraceful } ->
              let mine =
                Hashtbl.fold
                  (fun _ c acc -> if c.gobj = dslot then c :: acc else acc)
                  conns []
              in
              if dgraceful then begin
                (* Stop reading, but drain every queued reply before the
                   socket closes: in-flight batches must reach the peer
                   complete, never truncated mid-frame. *)
                List.iter
                  (fun c ->
                    c.gclosing <- true;
                    if Codec.Out.pending c.gout = 0 then close_conn c)
                  mine;
                if slot_has_conns dslot then
                  Hashtbl.replace draining dslot
                    (Unix.gettimeofday () +. drain_timeout)
                else finish_slot dslot
              end
              else begin
                List.iter close_conn mine;
                finish_slot dslot
              end)
        (Exec.Handoff.drain q)
    in
    let enforce_deadlines () =
      if Hashtbl.length draining > 0 then begin
        let now = Unix.gettimeofday () in
        let expired =
          Hashtbl.fold
            (fun i deadline acc -> if now >= deadline then i :: acc else acc)
            draining []
        in
        List.iter
          (fun i ->
            let mine =
              Hashtbl.fold
                (fun _ c acc -> if c.gobj = i then c :: acc else acc)
                conns []
            in
            if mine = [] then finish_slot i else List.iter close_conn mine)
          expired
      end
    in
    let should_exit () =
      Hashtbl.length conns = 0
      && Hashtbl.length draining = 0
      && Exec.Handoff.is_empty q
      && locked (fun () ->
             let dead = ref true in
             for i = 0 to s - 1 do
               if owner.(i) = d && alive.(i) then dead := false
             done;
             (* Pushes happen under the mutex (acceptor) — with every
                owned slot dead no new command can appear, so the empty
                queue re-check makes the exit race-free. *)
             if !dead && Exec.Handoff.is_empty q then begin
               worker_running.(d) <- false;
               true
             end
             else false)
    in
    let rec iter () =
      process_queue ();
      enforce_deadlines ();
      if not (should_exit ()) then begin
        let rds = ref [ wake_rd ] and wrs = ref [] in
        Hashtbl.iter
          (fun fd c ->
            if not c.gpaused then rds := fd :: !rds;
            if Codec.Out.pending c.gout > 0 then wrs := fd :: !wrs)
          conns;
        let timeout = if Hashtbl.length draining > 0 then 0.05 else 0.5 in
        (match Unix.select !rds !wrs [] timeout with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
        | rready, wready, _ ->
            List.iter
              (fun fd ->
                if fd = wake_rd then drain_wake wake_rd wake_buf
                else
                  match Hashtbl.find_opt conns fd with
                  | Some c -> handle_readable c
                  | None -> ())
              rready;
            List.iter
              (fun fd ->
                match Hashtbl.find_opt conns fd with
                | Some c -> try_flush c
                | None -> ())
              wready;
            (* Connections whose backpressure lifted during the flushes
               may have whole frames buffered; pump them now — no new
               readable event will come while we are their only
               reader. *)
            let rec pump () =
              match !resumed with
              | [] -> ()
              | cs ->
                  resumed := [];
                  List.iter
                    (fun c ->
                      if Hashtbl.mem conns c.gfd then process_frames c)
                    cs;
                  pump ()
            in
            pump ());
        iter ()
      end
    in
    iter ()
  in
  (* -- control plane ------------------------------------------------------ *)
  let request_stop i ~graceful =
    locked (fun () ->
        if alive.(i) then begin
          (* The listener is still open iff the acceptor has not yet
             processed a request for this slot; the acceptor is alive as
             long as any listener is open. *)
          if stop_req.(i) = None && listeners.(i) <> None then begin
            stop_req.(i) <- Some (if graceful then `Graceful else `Crash);
            wake_acceptor ()
          end;
          while alive.(i) do
            Condition.wait cond mutex
          done
        end)
  in
  let reap () =
    let to_join =
      locked (fun () ->
          if not (Array.exists Fun.id alive) then begin
            wake_acceptor ();
            for d = 0 to nd - 1 do
              wake_worker d
            done;
            let l = !spawned in
            spawned := [];
            l
          end
          else [])
    in
    List.iter Domain.join to_join
  in
  let rec handle_of i =
    {
      endpoint = actuals.(i);
      index = indices.(i);
      alive_ = (fun () -> locked (fun () -> alive.(i)));
      stats_ =
        (fun () ->
          {
            connections = Atomic.get conn_counts.(i);
            messages = Atomic.get msg_counts.(i);
          });
      stop_ =
        (fun ~graceful ->
          request_stop i ~graceful;
          reap ());
      restart_ = (fun ~wipe -> restart_obj i ~wipe);
      violations_ = (fun () -> Atomic.get violations);
    }
  and restart_obj i ~wipe =
    locked (fun () ->
        if alive.(i) then invalid_arg "Server.restart: server still alive";
        if wipe then begin
          Hashtbl.reset objs.(i);
          Hashtbl.replace objs.(i) 0 (ref (fresh i))
        end;
        let fd, actual = listen_on actuals.(i) in
        Unix.set_nonblock fd;
        listeners.(i) <- Some fd;
        actuals.(i) <- actual;
        alive.(i) <- true;
        if not worker_running.(owner.(i)) then begin
          worker_running.(owner.(i)) <- true;
          spawned := Domain.spawn (worker owner.(i)) :: !spawned
        end;
        if not !acceptor_running then begin
          acceptor_running := true;
          spawned := Domain.spawn acceptor :: !spawned
        end
        else wake_acceptor ());
    handle_of i
  in
  acceptor_running := true;
  Array.fill worker_running 0 nd true;
  spawned := List.init nd (fun d -> Domain.spawn (worker d));
  spawned := Domain.spawn acceptor :: !spawned;
  Array.init s handle_of

(* ===== thread-per-connection server ====================================== *)

let start_threaded ?metrics ~protocol ~cfg ~index endpoint =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let fresh () = P.obj_init ~cfg ~index in
  (* Keyed object table, exactly as in the poll group: key 0 from the
     start, other keys on first contact, all under the server mutex. *)
  let fresh_table () =
    let tbl : (int, P.obj ref) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.replace tbl 0 (ref (fresh ()));
    tbl
  in
  let rec go objs endpoint =
    let listen_fd, endpoint = listen_on endpoint in
    let stop_rd, stop_wr = Unix.pipe () in
    let mutex = Mutex.create () in
    (* Must be called with the lock held. *)
    let obj_for key =
      match Hashtbl.find_opt objs key with
      | Some r -> r
      | None ->
          let r = ref (fresh ()) in
          Hashtbl.replace objs key r;
          r
    in
    let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 8 in
    let threads = ref [] in
    let stopping = ref false in
    let connections = ref 0 and messages = ref 0 in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    (* Must be called with the lock held. *)
    let meter stage m =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let count name =
      match metrics with
      | None -> ()
      | Some reg -> Obs.Metrics.incr reg name
    in
    let handle_conn fd =
      let reader = Codec.Reader.create () in
      (* Replies accumulate here during one drain and go out in a single
         write: frames are self-delimiting, so the peer cannot tell — but
         a pipelined client draining K acks per read round can. *)
      let out = Codec.Out.create () in
      let append fr =
        let before = Codec.Out.length out in
        Codec.encode_frame_into codec out fr;
        match metrics with
        | None -> ()
        | Some reg ->
            let n = Codec.Out.length out - before in
            locked (fun () ->
                Obs.Metrics.observe_int reg "wire.bytes_per_frame"
                  ~bounds:Obs.Metrics.bytes_bounds n)
      in
      let flush_out () =
        if Codec.Out.pending out > 0 then
          try Codec.flush fd out with Unix.Unix_error _ -> Codec.Out.clear out
      in
      let src = ref None in
      let deliver ~key ~src:s ~wrap m =
        let reply =
          locked (fun () ->
              let slot = obj_for key in
              let obj', reply = P.obj_handle !slot ~src:s m in
              slot := obj';
              incr messages;
              count "net.server.messages";
              meter "delivered" m;
              Option.iter (meter "sent") reply;
              reply)
        in
        match reply with Some r -> append (wrap r) | None -> ()
      in
      let on_frame = function
        | Codec.Hello { proto; sender; obj = dialed } ->
            if proto <> P.name then begin
              append
                (Codec.Err
                   (Printf.sprintf
                      "server hosts protocol %s, client speaks %s" P.name proto));
              `Close
            end
            else if dialed <> 0 && dialed <> index then begin
              append
                (Codec.Err
                   (Printf.sprintf "server hosts object %d, client dialed %d"
                      index dialed));
              `Close
            end
            else (
              match proc_of_string sender with
              | None ->
                  append (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                  `Close
              | Some p ->
                  src := Some p;
                  append (Codec.Hello_ack { proto = P.name; obj = index });
                  `Continue)
        | Codec.Msg m -> (
            match !src with
            | None ->
                append (Codec.Err "protocol message before hello");
                `Close
            | Some s ->
                deliver ~key:0 ~src:s ~wrap:(fun r -> Codec.Msg r) m;
                `Continue)
        | Codec.Msg_from { sender; msg } -> (
            match !src with
            | None ->
                append (Codec.Err "protocol message before hello");
                `Close
            | Some _ -> (
                match proc_of_string sender with
                | None ->
                    append
                      (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                    `Close
                | Some s ->
                    deliver ~key:0 ~src:s
                      ~wrap:(fun r -> Codec.Msg_from { sender; msg = r })
                      msg;
                    `Continue))
        | Codec.Msg_key { key; sender; msg } -> (
            match !src with
            | None ->
                append (Codec.Err "protocol message before hello");
                `Close
            | Some _ -> (
                match proc_of_string sender with
                | None ->
                    append
                      (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                    `Close
                | Some s ->
                    deliver ~key ~src:s
                      ~wrap:(fun r -> Codec.Msg_key { key; sender; msg = r })
                      msg;
                    `Continue))
        | Codec.Hello_ack _ ->
            append (Codec.Err "unexpected hello_ack");
            `Close
        | Codec.Err _ -> `Close
      in
      let rec drain () =
        match Codec.Reader.next codec reader with
        | Ok `Awaiting -> `Continue
        | Ok (`Frame f) -> (
            match on_frame f with `Close -> `Close | `Continue -> drain ())
        | Error e ->
            (* Strict decoding: a corrupt frame poisons the whole stream;
               report and drop the session. *)
            locked (fun () -> count "net.server.decode_errors");
            append (Codec.Err e);
            `Close
      in
      let rec loop () =
        match Codec.recv_into fd reader with
        | 0 -> ()
        | exception Unix.Unix_error _ -> ()
        | _ ->
            let verdict = drain () in
            flush_out ();
            (match verdict with `Close -> () | `Continue -> loop ())
      in
      loop ();
      Codec.Reader.recycle reader;
      Codec.Out.recycle out;
      locked (fun () -> Hashtbl.remove conns fd);
      close_quietly fd
    in
    let rec accept_loop () =
      match Unix.select [ listen_fd; stop_rd ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
          if List.mem stop_rd ready then ()
          else (
            match Unix.accept listen_fd with
            | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
              ->
                accept_loop ()
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                set_nodelay fd;
                locked (fun () ->
                    incr connections;
                    count "net.server.connections";
                    Hashtbl.replace conns fd ());
                let th = Thread.create handle_conn fd in
                locked (fun () -> threads := th :: !threads);
                accept_loop ())
    in
    let accept_thread = Thread.create accept_loop () in
    let shutdown ~graceful =
      let already =
        locked (fun () ->
            if !stopping then true
            else begin
              stopping := true;
              false
            end)
      in
      if not already then begin
        (try ignore (Unix.write stop_wr (Bytes.make 1 'x') 0 1)
         with Unix.Unix_error _ -> ());
        Thread.join accept_thread;
        close_quietly listen_fd;
        Endpoint.cleanup endpoint;
        (* Wake every handler blocked in read; graceful keeps the write
           side open so queued replies still flush. *)
        let cmd = if graceful then Unix.SHUTDOWN_RECEIVE else Unix.SHUTDOWN_ALL in
        locked (fun () ->
            Hashtbl.iter
              (fun fd () ->
                try Unix.shutdown fd cmd with Unix.Unix_error _ -> ())
              conns);
        List.iter Thread.join (locked (fun () -> !threads));
        close_quietly stop_rd;
        close_quietly stop_wr
      end
    in
    {
      endpoint;
      index;
      alive_ = (fun () -> not (locked (fun () -> !stopping)));
      stats_ =
        (fun () ->
          locked (fun () ->
              { connections = !connections; messages = !messages }));
      stop_ = (fun ~graceful -> shutdown ~graceful);
      restart_ =
        (fun ~wipe ->
          if not (locked (fun () -> !stopping)) then
            invalid_arg "Server.restart: server still alive";
          go (if wipe then fresh_table () else objs) endpoint);
      violations_ = (fun () -> 0);
    }
  in
  go (fresh_table ()) endpoint

let start ?metrics ?(loop = `Threads) ~protocol ~cfg ~index endpoint =
  match loop with
  | `Threads -> start_threaded ?metrics ~protocol ~cfg ~index endpoint
  | `Poll ->
      let group =
        start_group
          ?metrics:(Option.map (fun reg _ -> reg) metrics)
          ~indices:[| index |] ~protocol ~cfg [| endpoint |]
      in
      group.(0)

let loop_of_string = function
  | "threads" -> Some `Threads
  | "poll" -> Some `Poll
  | _ -> None

let loop_to_string = function `Threads -> "threads" | `Poll -> "poll"

let endpoint t = t.endpoint

let index t = t.index

let alive t = t.alive_ ()

let is_alive = alive

let stats t = t.stats_ ()

let stop t = t.stop_ ~graceful:true

let crash t = t.stop_ ~graceful:false

let restart ?(wipe = false) t = t.restart_ ~wipe

let partition_violations t = t.violations_ ()
