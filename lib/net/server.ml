type stats = { connections : int; messages : int }

type t = {
  endpoint : Endpoint.t;
  index : int;
  alive_ : unit -> bool;
  stats_ : unit -> stats;
  stop_ : graceful:bool -> unit;
  restart_ : wipe:bool -> t;
}

(* A peer vanishing mid-write must surface as EPIPE, not kill the
   process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let proc_of_string s =
  if s = "w" then Some Sim.Proc_id.Writer
  else
    let indexed c mk =
      if String.length s >= 2 && s.[0] = c then
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some n when n >= 1 -> Some (mk n)
        | _ -> None
      else None
    in
    match indexed 'r' (fun n -> Sim.Proc_id.Reader n) with
    | Some _ as p -> p
    | None -> indexed 's' (fun n -> Sim.Proc_id.Obj n)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen_on endpoint =
  Endpoint.cleanup endpoint;
  let fd = Unix.socket (Endpoint.socket_domain endpoint) Unix.SOCK_STREAM 0 in
  (try
     (match endpoint with
     | Endpoint.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Endpoint.Unix_sock _ -> ());
     Unix.bind fd (Endpoint.to_sockaddr endpoint);
     Unix.listen fd 64
   with e ->
     close_quietly fd;
     raise e);
  let actual =
    match endpoint with
    | Endpoint.Tcp { host; port = 0 } -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Endpoint.Tcp { host; port }
        | _ -> endpoint)
    | _ -> endpoint
  in
  (fd, actual)

let start ?metrics ~protocol ~cfg ~index endpoint =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let fresh () = P.obj_init ~cfg ~index in
  let rec go obj0 endpoint =
    let listen_fd, endpoint = listen_on endpoint in
    let stop_rd, stop_wr = Unix.pipe () in
    let mutex = Mutex.create () in
    let obj = ref obj0 in
    let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 8 in
    let threads = ref [] in
    let stopping = ref false in
    let connections = ref 0 and messages = ref 0 in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    (* Must be called with the lock held. *)
    let meter stage m =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let count name =
      match metrics with
      | None -> ()
      | Some reg -> Obs.Metrics.incr reg name
    in
    let send_frame fd fr =
      try Codec.send fd (Codec.encode_frame codec fr)
      with Unix.Unix_error _ -> ()
    in
    let handle_conn fd =
      let reader = Codec.Reader.create () in
      let src = ref None in
      let on_frame = function
        | Codec.Hello { proto; sender; obj = dialed } ->
            if proto <> P.name then begin
              send_frame fd
                (Codec.Err
                   (Printf.sprintf
                      "server hosts protocol %s, client speaks %s" P.name proto));
              `Close
            end
            else if dialed <> 0 && dialed <> index then begin
              send_frame fd
                (Codec.Err
                   (Printf.sprintf "server hosts object %d, client dialed %d"
                      index dialed));
              `Close
            end
            else (
              match proc_of_string sender with
              | None ->
                  send_frame fd
                    (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                  `Close
              | Some p ->
                  src := Some p;
                  send_frame fd (Codec.Hello_ack { proto = P.name; obj = index });
                  `Continue)
        | Codec.Msg m -> (
            match !src with
            | None ->
                send_frame fd (Codec.Err "protocol message before hello");
                `Close
            | Some s ->
                let reply =
                  locked (fun () ->
                      let obj', reply = P.obj_handle !obj ~src:s m in
                      obj := obj';
                      incr messages;
                      count "net.server.messages";
                      meter "delivered" m;
                      Option.iter (meter "sent") reply;
                      reply)
                in
                (match reply with
                | Some r -> send_frame fd (Codec.Msg r)
                | None -> ());
                `Continue)
        | Codec.Hello_ack _ ->
            send_frame fd (Codec.Err "unexpected hello_ack");
            `Close
        | Codec.Err _ -> `Close
      in
      let rec drain () =
        match Codec.Reader.next codec reader with
        | Ok `Awaiting -> `Continue
        | Ok (`Frame f) -> (
            match on_frame f with `Close -> `Close | `Continue -> drain ())
        | Error e ->
            (* Strict decoding: a corrupt frame poisons the whole stream;
               report and drop the session. *)
            locked (fun () -> count "net.server.decode_errors");
            send_frame fd (Codec.Err e);
            `Close
      in
      let rec loop () =
        match Codec.recv_into fd reader with
        | 0 -> ()
        | exception Unix.Unix_error _ -> ()
        | _ -> ( match drain () with `Close -> () | `Continue -> loop ())
      in
      loop ();
      locked (fun () -> Hashtbl.remove conns fd);
      close_quietly fd
    in
    let rec accept_loop () =
      match Unix.select [ listen_fd; stop_rd ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
          if List.mem stop_rd ready then ()
          else (
            match Unix.accept listen_fd with
            | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
              ->
                accept_loop ()
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                locked (fun () ->
                    incr connections;
                    count "net.server.connections";
                    Hashtbl.replace conns fd ());
                let th = Thread.create handle_conn fd in
                locked (fun () -> threads := th :: !threads);
                accept_loop ())
    in
    let accept_thread = Thread.create accept_loop () in
    let shutdown ~graceful =
      let already =
        locked (fun () ->
            if !stopping then true
            else begin
              stopping := true;
              false
            end)
      in
      if not already then begin
        (try ignore (Unix.write stop_wr (Bytes.make 1 'x') 0 1)
         with Unix.Unix_error _ -> ());
        Thread.join accept_thread;
        close_quietly listen_fd;
        Endpoint.cleanup endpoint;
        (* Wake every handler blocked in read; graceful keeps the write
           side open so queued replies still flush. *)
        let cmd = if graceful then Unix.SHUTDOWN_RECEIVE else Unix.SHUTDOWN_ALL in
        locked (fun () ->
            Hashtbl.iter
              (fun fd () ->
                try Unix.shutdown fd cmd with Unix.Unix_error _ -> ())
              conns);
        List.iter Thread.join (locked (fun () -> !threads));
        close_quietly stop_rd;
        close_quietly stop_wr
      end
    in
    {
      endpoint;
      index;
      alive_ = (fun () -> not (locked (fun () -> !stopping)));
      stats_ =
        (fun () ->
          locked (fun () ->
              { connections = !connections; messages = !messages }));
      stop_ = (fun ~graceful -> shutdown ~graceful);
      restart_ =
        (fun ~wipe ->
          if not (locked (fun () -> !stopping)) then
            invalid_arg "Server.restart: server still alive";
          go (if wipe then fresh () else !obj) endpoint);
    }
  in
  go (fresh ()) endpoint

let endpoint t = t.endpoint

let index t = t.index

let alive t = t.alive_ ()

let stats t = t.stats_ ()

let stop t = t.stop_ ~graceful:true

let crash t = t.stop_ ~graceful:false

let restart ?(wipe = false) t = t.restart_ ~wipe
