type stats = { connections : int; messages : int }

type loop = [ `Threads | `Poll ]

type t = {
  endpoint : Endpoint.t;
  index : int;
  alive_ : unit -> bool;
  stats_ : unit -> stats;
  stop_ : graceful:bool -> unit;
  restart_ : wipe:bool -> t;
}

(* A peer vanishing mid-write must surface as EPIPE, not kill the
   process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

(* In-place decimal parse of "r<n>"/"s<n>" suffixes: this runs once per
   [Msg_from] on the hot path, so no [String.sub] allocation. *)
let id_of_suffix s =
  let len = String.length s in
  let rec go i acc =
    if i >= len then acc
    else
      match s.[i] with
      | '0' .. '9' when acc < 0x3FFFFFF ->
          go (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
      | _ -> -1
  in
  if len < 2 then -1 else go 1 0

let proc_of_string s =
  if s = "w" then Some Sim.Proc_id.Writer
  else if String.length s >= 2 then
    match s.[0] with
    | 'r' -> (
        match id_of_suffix s with
        | n when n >= 1 -> Some (Sim.Proc_id.Reader n)
        | _ -> None)
    | 's' -> (
        match id_of_suffix s with
        | n when n >= 1 -> Some (Sim.Proc_id.Obj n)
        | _ -> None)
    | _ -> None
  else None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Reply batches must not sit in Nagle's buffer waiting for a delayed
   ACK; harmless no-op on Unix-domain sockets. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let listen_on endpoint =
  Endpoint.cleanup endpoint;
  let fd = Unix.socket (Endpoint.socket_domain endpoint) Unix.SOCK_STREAM 0 in
  (try
     (match endpoint with
     | Endpoint.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Endpoint.Unix_sock _ -> ());
     Unix.bind fd (Endpoint.to_sockaddr endpoint);
     Unix.listen fd 64
   with e ->
     close_quietly fd;
     raise e);
  let actual =
    match endpoint with
    | Endpoint.Tcp { host; port = 0 } -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Endpoint.Tcp { host; port }
        | _ -> endpoint)
    | _ -> endpoint
  in
  (fd, actual)

(* ===== poll event loop =================================================== *)

(* One connection in a poll group: nonblocking fd, its own incremental
   Reader and outbound scratch.  [gclosing] marks a session that ends
   once its pending bytes flush (terminal [Err], received [Err]). *)
type gconn = {
  gfd : Unix.file_descr;
  gobj : int;  (* slot in the group's arrays, 0-based *)
  greader : Codec.Reader.t;
  gout : Codec.Out.t;
  mutable gsrc : Sim.Proc_id.t option;
  mutable gclosing : bool;
}

(* All base objects of a cluster in ONE event-loop thread: nonblocking
   accepts/reads/writes multiplexed by [select], state machines stepped
   inline (no per-object lock needed — the loop is the only toucher).
   Each returned handle keeps the thread-server semantics: independent
   stop/crash/restart per object; the loop thread exits when the last
   object stops and is respawned by the first restart. *)
let start_group ?metrics ?indices ~protocol ~cfg endpoints =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let s = Array.length endpoints in
  if s = 0 then invalid_arg "Server.start_group: no endpoints";
  let indices =
    match indices with
    | None -> Array.init s (fun i -> i + 1)
    | Some a ->
        if Array.length a <> s then
          invalid_arg "Server.start_group: indices/endpoints length mismatch";
        a
  in
  let reg_for i = match metrics with None -> None | Some f -> Some (f i) in
  let count i name =
    match reg_for i with None -> () | Some reg -> Obs.Metrics.incr reg name
  in
  let meter i stage m =
    match reg_for i with
    | None -> ()
    | Some reg ->
        Obs.Metrics.incr reg
          ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
  in
  let fresh i = P.obj_init ~cfg ~index:indices.(i) in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let locked f =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
  in
  let objs = Array.init s (fun i -> ref (fresh i)) in
  let listeners = Array.make s None in
  let actuals = Array.copy endpoints in
  (try
     Array.iteri
       (fun i ep ->
         let fd, actual = listen_on ep in
         listeners.(i) <- Some fd;
         actuals.(i) <- actual)
       endpoints
   with e ->
     Array.iter (function Some fd -> close_quietly fd | None -> ()) listeners;
     raise e);
  let alive = Array.make s true in
  let stop_req = Array.make s None in
  let connections = Array.make s 0 in
  let messages = Array.make s 0 in
  let conns : (Unix.file_descr, gconn) Hashtbl.t = Hashtbl.create 16 in
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  let wake () =
    try ignore (Unix.write wake_wr (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let loop_alive = ref false in
  (* Everything below runs in the loop thread with the lock held. *)
  let close_conn c =
    Hashtbl.remove conns c.gfd;
    Codec.Reader.recycle c.greader;
    Codec.Out.recycle c.gout;
    close_quietly c.gfd
  in
  let append_frame c fr = Codec.encode_frame_into codec c.gout fr in
  let try_flush c =
    if Codec.Out.pending c.gout > 0 then (
      match Codec.flush_nonblock c.gfd c.gout with
      | `Done -> if c.gclosing then close_conn c
      | `Blocked -> ()
      | exception Unix.Unix_error _ -> close_conn c)
    else if c.gclosing then close_conn c
  in
  let deliver c ~src ~wrap m =
    let i = c.gobj in
    let obj', reply = P.obj_handle !(objs.(i)) ~src m in
    objs.(i) := obj';
    messages.(i) <- messages.(i) + 1;
    count i "net.server.messages";
    meter i "delivered" m;
    match reply with
    | Some r ->
        meter i "sent" r;
        append_frame c (wrap r)
    | None -> ()
  in
  let on_frame c = function
    | Codec.Hello { proto; sender; obj = dialed } ->
        let fail msg =
          append_frame c (Codec.Err msg);
          c.gclosing <- true
        in
        let index = indices.(c.gobj) in
        if proto <> P.name then
          fail
            (Printf.sprintf "server hosts protocol %s, client speaks %s" P.name
               proto)
        else if dialed <> 0 && dialed <> index then
          fail
            (Printf.sprintf "server hosts object %d, client dialed %d" index
               dialed)
        else (
          match proc_of_string sender with
          | None -> fail (Printf.sprintf "invalid sender %S" sender)
          | Some p ->
              c.gsrc <- Some p;
              append_frame c (Codec.Hello_ack { proto = P.name; obj = index }))
    | Codec.Msg m -> (
        match c.gsrc with
        | None ->
            append_frame c (Codec.Err "protocol message before hello");
            c.gclosing <- true
        | Some src -> deliver c ~src ~wrap:(fun r -> Codec.Msg r) m)
    | Codec.Msg_from { sender; msg } -> (
        match c.gsrc with
        | None ->
            append_frame c (Codec.Err "protocol message before hello");
            c.gclosing <- true
        | Some _ -> (
            match proc_of_string sender with
            | None ->
                append_frame c
                  (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                c.gclosing <- true
            | Some src ->
                deliver c ~src
                  ~wrap:(fun r -> Codec.Msg_from { sender; msg = r })
                  msg))
    | Codec.Hello_ack _ ->
        append_frame c (Codec.Err "unexpected hello_ack");
        c.gclosing <- true
    | Codec.Err _ -> c.gclosing <- true
  in
  let handle_readable c =
    match Codec.recv_into c.gfd c.greader with
    | 0 -> close_conn c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
    | _ ->
        let rec drain () =
          if (not c.gclosing) && Hashtbl.mem conns c.gfd then
            match Codec.Reader.next codec c.greader with
            | Ok `Awaiting -> ()
            | Ok (`Frame f) ->
                on_frame c f;
                drain ()
            | Error e ->
                count c.gobj "net.server.decode_errors";
                append_frame c (Codec.Err e);
                c.gclosing <- true
        in
        drain ();
        if Hashtbl.mem conns c.gfd then try_flush c
  in
  let handle_accept i lfd =
    match Unix.accept lfd with
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
            ),
            _,
            _ ) ->
        ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> close_quietly fd);
        set_nodelay fd;
        connections.(i) <- connections.(i) + 1;
        count i "net.server.connections";
        Hashtbl.replace conns fd
          {
            gfd = fd;
            gobj = i;
            greader = Codec.Reader.create ();
            gout = Codec.Out.create ();
            gsrc = None;
            gclosing = false;
          }
  in
  let process_stop_requests () =
    Array.iteri
      (fun i req ->
        match req with
        | None -> ()
        | Some mode ->
            stop_req.(i) <- None;
            (match listeners.(i) with
            | Some fd ->
                close_quietly fd;
                listeners.(i) <- None;
                Endpoint.cleanup actuals.(i)
            | None -> ());
            Hashtbl.fold
              (fun _ c acc -> if c.gobj = i then c :: acc else acc)
              conns []
            |> List.iter (fun c ->
                   (* Graceful lets already-queued replies out if the
                      socket will take them right now; it never waits on
                      a stuck peer. *)
                   (if mode = `Graceful && Codec.Out.pending c.gout > 0 then
                      try ignore (Codec.flush_nonblock c.gfd c.gout)
                      with Unix.Unix_error _ -> ());
                   close_conn c);
            alive.(i) <- false;
            Condition.broadcast cond)
      stop_req
  in
  let wake_buf = Bytes.create 64 in
  let drain_wake () =
    let rec go () =
      match Unix.read wake_rd wake_buf 0 64 with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error _ -> ()
      | 0 -> ()
      | _ -> go ()
    in
    go ()
  in
  let loop () =
    let rec iter () =
      let sets =
        locked (fun () ->
            process_stop_requests ();
            if Array.exists Fun.id alive then begin
              let rds = ref [ wake_rd ] and wrs = ref [] in
              Array.iter
                (function Some fd -> rds := fd :: !rds | None -> ())
                listeners;
              Hashtbl.iter
                (fun fd c ->
                  rds := fd :: !rds;
                  if Codec.Out.pending c.gout > 0 then wrs := fd :: !wrs)
                conns;
              Some (!rds, !wrs)
            end
            else begin
              loop_alive := false;
              None
            end)
      in
      match sets with
      | None -> ()
      | Some (rds, wrs) ->
          (match Unix.select rds wrs [] 0.5 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
          | rready, wready, _ ->
              locked (fun () ->
                  if List.mem wake_rd rready then drain_wake ();
                  Array.iteri
                    (fun i l ->
                      match l with
                      | Some fd when List.mem fd rready -> handle_accept i fd
                      | _ -> ())
                    listeners;
                  List.iter
                    (fun fd ->
                      match Hashtbl.find_opt conns fd with
                      | Some c -> handle_readable c
                      | None -> ())
                    rready;
                  List.iter
                    (fun fd ->
                      match Hashtbl.find_opt conns fd with
                      | Some c -> try_flush c
                      | None -> ())
                    wready));
          iter ()
    in
    iter ()
  in
  let request_stop i ~graceful =
    locked (fun () ->
        if alive.(i) then begin
          stop_req.(i) <- Some (if graceful then `Graceful else `Crash);
          wake ();
          while alive.(i) do
            Condition.wait cond mutex
          done
        end)
  in
  let rec handle_of i =
    {
      endpoint = actuals.(i);
      index = indices.(i);
      alive_ = (fun () -> locked (fun () -> alive.(i)));
      stats_ =
        (fun () ->
          locked (fun () ->
              { connections = connections.(i); messages = messages.(i) }));
      stop_ = (fun ~graceful -> request_stop i ~graceful);
      restart_ = (fun ~wipe -> restart_obj i ~wipe);
    }
  and restart_obj i ~wipe =
    locked (fun () ->
        if alive.(i) then invalid_arg "Server.restart: server still alive";
        if wipe then objs.(i) := fresh i;
        let fd, actual = listen_on actuals.(i) in
        listeners.(i) <- Some fd;
        actuals.(i) <- actual;
        alive.(i) <- true;
        if not !loop_alive then begin
          loop_alive := true;
          ignore (Thread.create loop ())
        end
        else wake ());
    handle_of i
  in
  loop_alive := true;
  ignore (Thread.create loop ());
  Array.init s handle_of

(* ===== thread-per-connection server ====================================== *)

let start_threaded ?metrics ~protocol ~cfg ~index endpoint =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let fresh () = P.obj_init ~cfg ~index in
  let rec go obj0 endpoint =
    let listen_fd, endpoint = listen_on endpoint in
    let stop_rd, stop_wr = Unix.pipe () in
    let mutex = Mutex.create () in
    let obj = ref obj0 in
    let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 8 in
    let threads = ref [] in
    let stopping = ref false in
    let connections = ref 0 and messages = ref 0 in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    (* Must be called with the lock held. *)
    let meter stage m =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let count name =
      match metrics with
      | None -> ()
      | Some reg -> Obs.Metrics.incr reg name
    in
    let handle_conn fd =
      let reader = Codec.Reader.create () in
      (* Replies accumulate here during one drain and go out in a single
         write: frames are self-delimiting, so the peer cannot tell — but
         a pipelined client draining K acks per read round can. *)
      let out = Codec.Out.create () in
      let append fr = Codec.encode_frame_into codec out fr in
      let flush_out () =
        if Codec.Out.pending out > 0 then
          try Codec.flush fd out with Unix.Unix_error _ -> Codec.Out.clear out
      in
      let src = ref None in
      let deliver ~src:s ~wrap m =
        let reply =
          locked (fun () ->
              let obj', reply = P.obj_handle !obj ~src:s m in
              obj := obj';
              incr messages;
              count "net.server.messages";
              meter "delivered" m;
              Option.iter (meter "sent") reply;
              reply)
        in
        match reply with Some r -> append (wrap r) | None -> ()
      in
      let on_frame = function
        | Codec.Hello { proto; sender; obj = dialed } ->
            if proto <> P.name then begin
              append
                (Codec.Err
                   (Printf.sprintf
                      "server hosts protocol %s, client speaks %s" P.name proto));
              `Close
            end
            else if dialed <> 0 && dialed <> index then begin
              append
                (Codec.Err
                   (Printf.sprintf "server hosts object %d, client dialed %d"
                      index dialed));
              `Close
            end
            else (
              match proc_of_string sender with
              | None ->
                  append (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                  `Close
              | Some p ->
                  src := Some p;
                  append (Codec.Hello_ack { proto = P.name; obj = index });
                  `Continue)
        | Codec.Msg m -> (
            match !src with
            | None ->
                append (Codec.Err "protocol message before hello");
                `Close
            | Some s ->
                deliver ~src:s ~wrap:(fun r -> Codec.Msg r) m;
                `Continue)
        | Codec.Msg_from { sender; msg } -> (
            match !src with
            | None ->
                append (Codec.Err "protocol message before hello");
                `Close
            | Some _ -> (
                match proc_of_string sender with
                | None ->
                    append
                      (Codec.Err (Printf.sprintf "invalid sender %S" sender));
                    `Close
                | Some s ->
                    deliver ~src:s
                      ~wrap:(fun r -> Codec.Msg_from { sender; msg = r })
                      msg;
                    `Continue))
        | Codec.Hello_ack _ ->
            append (Codec.Err "unexpected hello_ack");
            `Close
        | Codec.Err _ -> `Close
      in
      let rec drain () =
        match Codec.Reader.next codec reader with
        | Ok `Awaiting -> `Continue
        | Ok (`Frame f) -> (
            match on_frame f with `Close -> `Close | `Continue -> drain ())
        | Error e ->
            (* Strict decoding: a corrupt frame poisons the whole stream;
               report and drop the session. *)
            locked (fun () -> count "net.server.decode_errors");
            append (Codec.Err e);
            `Close
      in
      let rec loop () =
        match Codec.recv_into fd reader with
        | 0 -> ()
        | exception Unix.Unix_error _ -> ()
        | _ ->
            let verdict = drain () in
            flush_out ();
            (match verdict with `Close -> () | `Continue -> loop ())
      in
      loop ();
      Codec.Reader.recycle reader;
      Codec.Out.recycle out;
      locked (fun () -> Hashtbl.remove conns fd);
      close_quietly fd
    in
    let rec accept_loop () =
      match Unix.select [ listen_fd; stop_rd ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
          if List.mem stop_rd ready then ()
          else (
            match Unix.accept listen_fd with
            | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
              ->
                accept_loop ()
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                set_nodelay fd;
                locked (fun () ->
                    incr connections;
                    count "net.server.connections";
                    Hashtbl.replace conns fd ());
                let th = Thread.create handle_conn fd in
                locked (fun () -> threads := th :: !threads);
                accept_loop ())
    in
    let accept_thread = Thread.create accept_loop () in
    let shutdown ~graceful =
      let already =
        locked (fun () ->
            if !stopping then true
            else begin
              stopping := true;
              false
            end)
      in
      if not already then begin
        (try ignore (Unix.write stop_wr (Bytes.make 1 'x') 0 1)
         with Unix.Unix_error _ -> ());
        Thread.join accept_thread;
        close_quietly listen_fd;
        Endpoint.cleanup endpoint;
        (* Wake every handler blocked in read; graceful keeps the write
           side open so queued replies still flush. *)
        let cmd = if graceful then Unix.SHUTDOWN_RECEIVE else Unix.SHUTDOWN_ALL in
        locked (fun () ->
            Hashtbl.iter
              (fun fd () ->
                try Unix.shutdown fd cmd with Unix.Unix_error _ -> ())
              conns);
        List.iter Thread.join (locked (fun () -> !threads));
        close_quietly stop_rd;
        close_quietly stop_wr
      end
    in
    {
      endpoint;
      index;
      alive_ = (fun () -> not (locked (fun () -> !stopping)));
      stats_ =
        (fun () ->
          locked (fun () ->
              { connections = !connections; messages = !messages }));
      stop_ = (fun ~graceful -> shutdown ~graceful);
      restart_ =
        (fun ~wipe ->
          if not (locked (fun () -> !stopping)) then
            invalid_arg "Server.restart: server still alive";
          go (if wipe then fresh () else !obj) endpoint);
    }
  in
  go (fresh ()) endpoint

let start ?metrics ?(loop = `Threads) ~protocol ~cfg ~index endpoint =
  match loop with
  | `Threads -> start_threaded ?metrics ~protocol ~cfg ~index endpoint
  | `Poll ->
      let group =
        start_group
          ?metrics:(Option.map (fun reg _ -> reg) metrics)
          ~indices:[| index |] ~protocol ~cfg [| endpoint |]
      in
      group.(0)

let loop_of_string = function
  | "threads" -> Some `Threads
  | "poll" -> Some `Poll
  | _ -> None

let loop_to_string = function `Threads -> "threads" | `Poll -> "poll"

let endpoint t = t.endpoint

let index t = t.index

let alive t = t.alive_ ()

let is_alive = alive

let stats t = t.stats_ ()

let stop t = t.stop_ ~graceful:true

let crash t = t.stop_ ~graceful:false

let restart ?(wipe = false) t = t.restart_ ~wipe
