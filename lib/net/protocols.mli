(** The protocols that can be served over the network: a
    {!Core.Protocol_intf.S} implementation packed with the {!Codec} for
    its wire message type.

    The pack is existential in the message type, so servers, clients and
    the CLI handle heterogeneous protocols through one value; they
    unpack it once at session setup.  Every pack reuses the simulator's
    protocol modules unchanged — the network runtime adds only framing,
    deadlines and retries (see DESIGN.md §10). *)

type t =
  | Packed : {
      proto : (module Core.Protocol_intf.S with type msg = 'm);
      codec : 'm Codec.t;
    }
      -> t

val name : t -> string
(** The protocol's own [P.name]. *)

val safe : t

val regular : t

val regular_opt : t

val abd : t

val abd_atomic : t

val all : t list

val of_string : string -> t option
(** Lookup by {!name}. *)
