(** The protocols that can be served over the network: a
    {!Core.Protocol_intf.S} implementation packed with the {!Codec} for
    its wire message type.

    The pack is existential in the message type, so servers, clients and
    the CLI handle heterogeneous protocols through one value; they
    unpack it once at session setup.  Every pack reuses the simulator's
    protocol modules unchanged — the network runtime adds only framing,
    deadlines and retries (see DESIGN.md §10). *)

type t =
  | Packed : {
      proto : (module Core.Protocol_intf.S with type msg = 'm);
      codec : 'm Codec.t;
    }
      -> t

val name : t -> string
(** The protocol's own [P.name]. *)

val safe : t

val regular : t

val regular_opt : t

val regular_gc : readers:int -> t
(** The §5.1 cached/suffix variant ({!Core.Proto_regular_gc}) on the
    wire: readers send [Read1/Read2 { from_ts }] with their cached
    timestamp, objects answer with the history {e suffix} past it and
    garbage-collect entries below every reader's floor.  [readers] sizes
    the server-side floor set: pass the real reader count so pruning can
    engage (it only starts once every floor is known; unknown readers
    keep it conservative, never unsafe).  The one-round fast path is
    gated inside the protocol on [Quorum.Config.fast_read_admissible] —
    below [S = 2t+2b+1] every read runs both rounds.  The codec already
    frames [from_ts] and suffix histories (wire version unchanged). *)

val abd : t

val abd_atomic : t

val all : t list

val of_string : string -> t option
(** Lookup by {!name}.  ["regular-gc"] resolves to
    [regular_gc ~readers:2] — fine for serving (floor pruning merely
    stays conservative if more readers appear); the cluster CLI rebuilds
    the pack with the real reader count. *)
