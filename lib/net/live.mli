(** The live execution backend for fault campaigns: the same
    {!Fault.Plan} values the simulator runs, injected into a real
    socket cluster.

    {!Fault.Injector.apply} compiles a plan into this backend's context:
    crash/recover actions become a timed driver thread calling
    {!Cluster.crash}/{!Cluster.restart} (persisted or wiped), and every
    network/Byzantine action becomes {!Chaos} rule windows on the
    per-object interposers ([Mute] drops an object's replies, the lying
    kinds corrupt them past the frame header — a real garbage-speaking
    replica — [Block]/[Isolate]/[Duplicate] map to windowed
    drop/duplicate rules on the matching link directions).  Virtual plan
    ticks scale to wall-clock microseconds by [tick_us].

    The run then replays {e the campaign's own workload} —
    {!Fault.Campaign.workload} of the same (seed, plan) — through real
    writer/reader clients at scaled invocation times, and the verdict
    comes from the same {!Histories.Checks} oracles the simulator uses.
    A live run is always quiescent once its operation threads join:
    operations that exhausted their retries remain open in the history
    and surface as wait-freedom violations.

    Determinism: a live run itself is {e not} deterministic (real
    scheduling, real clocks) — the {!section-witness} bridge is.  A
    witness captures the (protocol, cfg, seed, plan) coordinates plus
    the observed timeline and history; replaying re-executes the exact
    same plan in the simulator, which {e is} deterministic in those
    coordinates, so a live-found counterexample shrinks to the same
    minimal witness on every replay. *)

type opts = {
  tick_us : int;
      (** wall-clock microseconds per virtual plan tick (default 500:
          a [small]-budget horizon of 800 spans 0.4 s) *)
  client : Client.opts;
      (** per-operation patience; total patience per op must exceed the
          longest plan window so transient outages stall rather than
          kill within-budget operations *)
  transport : [ `Unix | `Tcp ];
  loop : Server.loop;
}

val default_opts : opts

val supported : Fault.Campaign.protocol list
(** The protocols with a wire codec ([Safe], [Regular], [Regular_opt],
    [Abd]); the symbolic-only baselines ([Fast_safe], [Naive_fast])
    cannot run live. *)

val protocol_of : Fault.Campaign.protocol -> Protocols.t option

val run_plan :
  ?metrics:Obs.Metrics.t ->
  ?opts:opts ->
  Fault.Campaign.protocol ->
  cfg:Quorum.Config.t ->
  seed:int ->
  Fault.Plan.t ->
  Fault.Campaign.verdict
(** Execute one (seed, plan) against a live cluster and check the
    history.  With [metrics], the cluster's merged registry (including
    [op.reconnects], wire counters and per-op rounds/latency) folds
    into it.  @raise Failure on a protocol outside {!supported}. *)

(** {2:witness Live-to-sim witness replay} *)

type outcome = {
  verdict : Fault.Campaign.verdict;
  timeline : (int * string) list;
      (** observed fault events, (cluster-clock µs, description) *)
  history : string Histories.Op.t list;
}

val run_plan_full :
  ?metrics:Obs.Metrics.t ->
  ?opts:opts ->
  Fault.Campaign.protocol ->
  cfg:Quorum.Config.t ->
  seed:int ->
  Fault.Plan.t ->
  outcome

type witness = {
  w_protocol : Fault.Campaign.protocol;
  w_cfg : Quorum.Config.t;
  w_seed : int;
  w_plan : Fault.Plan.t;
  w_live : outcome;  (** what the live run observed *)
}

val capture :
  ?opts:opts ->
  Fault.Campaign.protocol ->
  cfg:Quorum.Config.t ->
  seed:int ->
  Fault.Plan.t ->
  witness
(** Run live and package the counterexample coordinates with the
    observed timeline and history. *)

val replay_sim : witness -> Fault.Campaign.verdict
(** Re-execute the witness's (protocol, cfg, seed, plan) in the
    simulator — deterministic: two replays are identical. *)

val replay_reproduces : witness -> bool
(** Does the simulated replay break the same contract the live run
    did ({!Fault.Campaign.verdict_violates})? *)

val replay_shrunk : ?max_attempts:int -> witness -> Fault.Shrink.outcome
(** Delta-debug the witness plan against the {e simulated} repro — the
    cross-backend flagship: a fault sequence found once against real
    sockets becomes a minimal, deterministically replayable simulator
    witness.  @raise Invalid_argument if the replay does not reproduce
    (check {!replay_reproduces} first). *)

val backend : ?opts:opts -> unit -> Fault.Campaign.backend
(** Package this module as a campaign backend (name ["live"]): the
    whole sweep/matrix/shrink machinery then runs against real
    sockets. *)
