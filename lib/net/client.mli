(** Reader/writer client runtime: the protocol's round structure over
    real sockets.

    A client connects to the S base-object endpoints and drives the
    {e unchanged} reader/writer state machines from
    {!Core.Protocol_intf.S}: each operation broadcasts the round's
    message to every reachable endpoint, feeds replies back as they
    arrive (the state machines themselves decide when S−t replies — or
    the protocol's own quorum predicate — are enough), and follows any
    next-round broadcast the machine emits.

    The transport adds what the simulator never needed:

    - {b per-round deadlines} — if a round does not complete within
      [deadline], the round's message is retransmitted (the state
      machines already ignore duplicate replies) with exponential
      backoff, up to [retries] attempts;
    - {b endpoint failure} — an endpoint that refuses connections,
      resets, or times out is marked down and retried later; operations
      proceed on the survivors, so a crashed or Byzantine-silent
      minority never blocks progress (wait-freedom, paper §2.2);
    - {b observability} — every operation opens an {!Obs.Span}
      (microsecond timestamps, round transitions, contacted objects)
      and, with [metrics], populates the same [op.*] / [wire.*] metric
      families as the simulator, so live runs export through the
      existing JSONL exporters unchanged.  Completed reads additionally
      bump [op.fast_reads] (reported rounds <= 1: the §5.1 one-round
      fast path) or [op.fallback_rounds] (>= 2 rounds), so traces
      distinguish the paths without parsing spans;
    - {b cache resync} — re-establishing a connection that was up before
      means the server behind it may have restarted, possibly wiped.
      The client then passes every reader machine through
      {!Core.Protocol_intf.S.reader_on_reconnect} (counted as
      [op.cache_resyncs]): regular-gc clears its §5.1 timestamp cache so
      the next read requests the full history instead of trusting a
      suffix the wiped object can no longer serve; stateless protocols
      are untouched. *)

type opts = {
  deadline : float;  (** seconds a round may wait before a retransmit *)
  retries : int;  (** retransmit rounds before the operation fails *)
  backoff : float;
      (** base retry backoff, doubled per attempt and clamped at 1s so a
          long outage cannot push a retransmit hours past the deadline *)
}

val default_opts : opts
(** 1s deadline, 5 retries, 50ms backoff. *)

type outcome = {
  value : Core.Value.t option;  (** [Some] for reads *)
  rounds : int;  (** rounds the protocol reported at completion *)
  retransmits : int;  (** deadline-triggered retransmissions *)
  latency_us : int;
}

type t

val connect :
  ?metrics:Obs.Metrics.t ->
  ?opts:opts ->
  ?now_us:(unit -> int) ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  role:[ `Writer | `Reader of int ] ->
  Endpoint.t array ->
  t
(** [connect ~protocol ~cfg ~role endpoints] prepares a client for the S
    = [Array.length endpoints] base objects; endpoint [i] hosts object
    [i+1].  Connections are established lazily and re-established with
    backoff, so a dead endpoint at connect time is not an error.
    [now_us] overrides the span clock (default: microseconds since
    [connect]).
    @raise Invalid_argument if [endpoints] does not match [cfg.s] or the
    role is a [`Reader j] with [j < 1]. *)

val write : t -> Core.Value.t -> (outcome, string) result
(** Run one WRITE to completion.  @raise Invalid_argument on a reader. *)

val read : t -> (outcome, string) result
(** Run one READ to completion.  @raise Invalid_argument on the writer. *)

val spans : t -> Obs.Span.t list
(** One span per operation, invocation order; failed operations stay
    open — exactly the simulator's convention. *)

val connected : t -> int list
(** Object indices with a currently established connection. *)

val close : t -> unit

(** {2 Pipelined reads}

    A reader automaton runs one operation at a time (its round
    timestamps are per-op), so the in-flight window is built from
    [readers] independent reader machines — each with its own connection
    set to the same S endpoints, its own round state, deadline and
    backoff — multiplexed onto one select-driven event loop in the
    caller's thread.  Per-op acceptance is exactly the serial client's:
    the unchanged state machines decide when S−t replies suffice.
    Outbound frames are coalesced per connection flush ({!Codec.Out}),
    which is wire-compatible with unbatched peers because frames are
    length-prefixed and self-delimiting. *)

module Mux : sig
  type event =
    | Invoke of { op : int; reader : int; joined : bool; at_us : int }
        (** Operation [op] was assigned to reader [reader]; [joined]
            means it coalesced onto the round that reader's slot was
            assembling instead of running its own. *)
    | Respond of {
        op : int;
        reader : int;
        joined : bool;
        at_us : int;
        outcome : (outcome, string) result;
      }  (** Operation [op] completed (or timed out). *)

  type t

  val connect :
    ?metrics:Obs.Metrics.t ->
    ?opts:opts ->
    ?now_us:(unit -> int) ->
    ?max_inflight:int ->
    ?first_reader:int ->
    ?coalesce:int ->
    protocol:Protocols.t ->
    cfg:Quorum.Config.t ->
    readers:int ->
    Endpoint.t array ->
    t
  (** [connect ~readers endpoints] prepares [readers] reader slots with
      ids [first_reader .. first_reader+readers-1] (default [1..]);
      [max_inflight] (default [readers], clamped to [1..readers]) caps
      how many operations progress concurrently.  Reader ids must be
      fresh with respect to the cluster: base objects keep per-reader
      round state, so a {e new} automaton reusing an id some earlier
      client already advanced can be ignored by the objects.

      [coalesce] (default 1 = off, clamped to at least 1) caps how many
      reads may share one quorum round: a read admitted while a fresh
      round's broadcast is still being assembled — appended to the
      outbound buffers but not yet flushed — joins that round and adopts
      its result, which preserves regularity because every member is
      invoked before any base object sees the round's first request
      (DESIGN §16).  Joined reads do not count against [max_inflight];
      each completes as a logical op of its own (span, metrics,
      [op.coalesced_reads] counter, [op.coalesce_width] histogram).
      Rounds resumed from a timed-out park never accept joiners.
      @raise Invalid_argument on an endpoint/S mismatch, [readers < 1]
      or [first_reader < 1]. *)

  val run_reads :
    ?on_event:(event -> unit) -> t -> int -> (outcome, string) result array
  (** [run_reads t n] drives [n] READs to completion (or timeout),
      keeping up to [max_inflight] in flight; result [i] is operation
      [i]'s outcome.  [on_event] observes invocations and responses in
      real time (for history recording).  A timed-out op parks its
      machine mid-round — the automata have no abort — and the next op
      on that slot resumes it, mirroring the serial client. *)

  val spans : t -> Obs.Span.t list

  val connected : t -> int list
  (** Object indices reachable from at least one slot. *)

  val close : t -> unit
end

(** {2 Keyed keyspace client}

    Drives reader AND writer automata for a whole keyspace over one
    connection per fleet server.  Placement comes from {!Shard.Map}: a
    key's rounds go as [Msg_key] frames to the [S] members of its shard
    only, and replies demultiplex by the echoed (key, sender) pair.
    Per-key automata are lazily materialized, so each key keeps its own
    fast-read timestamp cache and GC floor — keys are as independent
    over the wire as separate registers, which is what makes per-shard
    correctness the paper's single-register argument verbatim.

    Per (key, role) at most one operation is in flight and excess
    operations queue FIFO, so each key's reads and each key's writes
    stay program-ordered while distinct keys overlap up to
    [max_inflight].  A read and a write on the {e same} key may overlap:
    they are different automata — exactly the paper's concurrent
    reader/writer.

    The registers are SWMR; partitioning write ownership across
    processes (at most one writer per key, ever) is the caller's job —
    the load driver does it with {!Shard.Map.mix}. *)

module Keyed : sig
  type kop = Read of { key : int } | Write of { key : int; value : Core.Value.t }

  val op_key : kop -> int

  val op_is_write : kop -> bool

  type event =
    | Invoke of { op : int; key : int; write : bool; joined : bool; at_us : int }
        (** [joined] means the read coalesced onto the round its key's
            reader was assembling instead of running its own; writes
            never coalesce. *)
    | Respond of {
        op : int;
        key : int;
        write : bool;
        joined : bool;
        at_us : int;
        outcome : (outcome, string) result;
      }

  type t

  val connect :
    ?metrics:Obs.Metrics.t ->
    ?opts:opts ->
    ?now_us:(unit -> int) ->
    ?max_inflight:int ->
    ?reader:int ->
    ?coalesce:int ->
    protocol:Protocols.t ->
    map:Shard.Map.t ->
    Endpoint.t array ->
    t
  (** [connect ~protocol ~map endpoints] prepares a keyed client over a
      fleet: endpoint [i] is fleet slot [i] and hosts base object [i+1]
      for every shard it serves (the automata only ever count distinct
      object ids against quorum thresholds, so a shard's member ids need
      not be contiguous).  [reader] (default 1) is this client's reader
      id for {e every} key; two keyed clients reading the same keys must
      use distinct ids.  [max_inflight] (default 16) caps concurrently
      progressing operations across all keys.

      [coalesce] (default 1 = off, clamped to at least 1) caps how many
      same-key reads may share one quorum round.  A read admitted while
      its key's fresh read round is still being assembled (broadcast
      buffered, not yet flushed) joins that round and adopts its result;
      reads already queued behind the key piggyback onto each fresh
      round the same way.  Join-before-broadcast preserves regularity —
      all the round's evidence postdates every member's invocation
      (DESIGN §16) — and per-key program order is kept because a read
      only joins when nothing is queued ahead of it.  Joined reads do
      not count against [max_inflight]; each completes as a logical op
      of its own (span, per-op and per-shard metrics,
      [op.coalesced_reads] counter, [op.coalesce_width] histogram).
      Rounds resumed from a timed-out park never accept joiners.
      @raise Invalid_argument if [endpoints] does not match the map's
      fleet or [reader < 1]. *)

  val run_ops :
    ?on_event:(event -> unit) ->
    t ->
    kop array ->
    (outcome, string) result array
  (** [run_ops t ops] drives every operation to completion (or timeout);
      result [i] is operation [i]'s outcome.  [on_event] observes
      invocations and responses in real time (for per-key history
      recording).  A timed-out operation parks its machine mid-round —
      the automata have no abort — and the next operation on that (key,
      role) resumes it; a resumed {e write} completes the parked round,
      so the resuming write's own value is not what gets written
      (mirroring the serial client's resume semantics). *)

  val spans : t -> Obs.Span.t list

  val connected : t -> int list
  (** Object indices (fleet slot + 1) with an established connection. *)

  val keys_touched : t -> int
  (** Keys with materialized automata so far. *)

  val close : t -> unit
end
