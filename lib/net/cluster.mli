(** Loopback cluster harness: S servers plus writer/reader clients in
    one process.

    This is the live counterpart of {!Core.Scenario}: it spawns one
    {!Server} per base object (Unix-domain sockets in a private temp
    directory by default, TCP on demand), connects the single writer and
    [readers] reader {!Client}s, and records every operation into a
    {!Histories.Recorder} so the paper's safety/regularity/wait-freedom
    checkers run on live histories exactly as they do on simulated ones.

    Chaos hooks mirror the fault campaign's crash-recovery actions:
    {!crash} kills a server's sockets mid-flight (the stand-in for a
    killed process), {!restart} brings the object back on the same
    endpoint with persisted or wiped state.  Clients reconnect on their
    own; as long as at most [t] objects are down, operations keep
    completing — the acceptance test drives 1000 READs across a
    crash/restart and requires zero failures.

    Thread-safety: operations for {e distinct} clients (the writer,
    each reader) may run from distinct threads concurrently; the shared
    history recorder is internally locked.  One client must not be
    driven from two threads. *)

type t

val start :
  ?metrics:bool ->
  ?opts:Client.opts ->
  ?transport:[ `Unix | `Tcp ] ->
  ?loop:Server.loop ->
  ?domains:int ->
  ?interpose:bool ->
  protocol:Protocols.t ->
  cfg:Quorum.Config.t ->
  readers:int ->
  unit ->
  t
(** Spin up [cfg.s] servers and [readers] reader clients (plus the
    writer).  [transport] defaults to [`Unix].  [loop] (default
    [`Threads]) picks the server side: [`Poll] hosts all [cfg.s] objects
    in a {!Server.start_group} event-loop group, sharded across
    [domains] worker domains (default 1; ignored for [`Threads]).  With
    [interpose:true], a {!Chaos} proxy fronts every server and clients
    dial the proxies — {!chaos} exposes them for rule injection; with no
    rules set the interposers are transparent.  With [metrics:true]
    every component keeps a private registry; {!metrics} merges them. *)

val write : t -> Core.Value.t -> (Client.outcome, string) result
(** One WRITE through the writer client, recorded in the history. *)

val read : t -> reader:int -> (Client.outcome, string) result
(** One READ by reader [reader] (1-based), recorded in the history. *)

val read_pipelined :
  ?coalesce:int ->
  t ->
  inflight:int ->
  ops:int ->
  (Client.outcome, string) result array
(** Drive [ops] READs with up to [inflight] concurrently in flight
    through a cached {!Client.Mux} whose reader ids are allocated fresh
    (above the serial readers' — base objects keep per-reader round
    state, so ids are never reused across mux generations).  Every
    operation is recorded in the shared history at its real
    invoke/respond instants, so the checkers see the true concurrency;
    timed-out ops stay open and are resumed by a later call, exactly
    like the serial path.  [coalesce] (default 1 = off) is
    {!Client.Mux.connect}'s batch cap: coalesced reads record under
    fresh recorder reader ids, since they overlap their lead.  Changing
    [inflight] or [coalesce] rebuilds the mux.
    @raise Invalid_argument if [inflight < 1]. *)

val run_keyed :
  ?inflight:int ->
  ?coalesce:int ->
  ?sample:(int -> bool) ->
  t ->
  map:Shard.Map.t ->
  Client.Keyed.kop array ->
  (Client.outcome, string) result array
(** Drive a keyspace op mix through a cached {!Client.Keyed} whose
    reader id is allocated fresh (key 0 is also served to the plain
    clients, so the keyed reader must not collide with their per-reader
    round state).  The map's fleet must equal the cluster's server
    count.  Each key sampled by [sample] (default: all) records into
    its own per-key history — each key is an independent register, so
    the single-register checkers apply per key ({!keyed_histories}).
    [inflight] (default 16) caps concurrently progressing operations;
    [coalesce] (default 1 = off) is {!Client.Keyed.connect}'s per-key
    read-coalescing cap, and coalesced reads record under fresh
    recorder reader ids since they overlap their lead.  Changing
    [inflight], [coalesce] or the map rebuilds the keyed client.
    @raise Invalid_argument if [inflight < 1] or the map's fleet does
    not match. *)

val keyed_histories : t -> (int * string Histories.Op.t list) list
(** Per-key recorded operations for sampled keys, sorted by key id —
    feed each key's list to {!Histories.Checks} independently. *)

val keys_touched : t -> int
(** Keys with materialized keyed-client automata so far. *)

val crash : t -> int -> unit
(** Hard-kill server for object [i] (1-based); idempotent while down. *)

val restart : ?wipe:bool -> t -> int -> (unit, [ `Still_alive of int ]) result
(** Bring object [i] back on the same endpoint ([wipe] discards its
    state).  Restarting a server that is still up is a structured
    [Error] — fault drivers mid-campaign handle it, they do not
    unwind. *)

val restart_exn : ?wipe:bool -> t -> int -> unit
(** {!restart}, raising [Invalid_argument] on [`Still_alive] — for
    call sites that treat it as a bug. *)

val alive : t -> int list
(** Object indices whose server is up. *)

val partition_violations : t -> int
(** {!Server.partition_violations} over the cluster's servers: nonzero
    iff some base object was stepped outside its owning domain. *)

val chaos : t -> Chaos.t array
(** The per-object interposers ([chaos t].(i-1) fronts object [i]);
    [[||]] unless started with [interpose:true]. *)

val now_us : t -> int
(** The cluster's shared microsecond clock (the one histories, spans
    and {!Chaos} rule windows are stamped against). *)

val endpoints : t -> Endpoint.t array
(** What clients dial: the interposers' endpoints when interposed,
    otherwise the servers'. *)

val cfg : t -> Quorum.Config.t

val history : t -> string Histories.Op.t list
(** All recorded operations, invocation order — feed to
    {!Histories.Checks}. *)

val spans : t -> Obs.Span.t list
(** Writer spans then per-reader spans; all share one microsecond
    clock. *)

val metrics : t -> Obs.Metrics.t option
(** Merged snapshot of every component registry (servers then clients);
    [None] unless started with [metrics:true]. *)

val stop : t -> unit
(** Stop servers and clients and remove the socket directory. *)
