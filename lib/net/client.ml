type opts = { deadline : float; retries : int; backoff : float }

let default_opts = { deadline = 1.0; retries = 5; backoff = 0.05 }

(* Retransmit backoff: exponential in the attempt but clamped — at the
   default 50ms base, attempt 20 would otherwise land ~14.6 hours out,
   so one long outage could wedge an operation far past its deadline
   budget.  (Reconnect pacing has its own, shorter [reconnect_cap].) *)
let backoff_cap = 1.0

let retry_backoff opts ~attempt =
  Float.min backoff_cap (opts.backoff *. (2. ** float_of_int attempt))

(* Where the three event loops park when every endpoint is down: sleep a
   bounded slice of the next-wakeup timeout, so reconnect attempts stay
   paced without spinning and without oversleeping a near deadline. *)
let idle_wait timeout = Thread.delay (Float.max 0.001 (Float.min 0.01 timeout))

type outcome = {
  value : Core.Value.t option;
  rounds : int;
  retransmits : int;
  latency_us : int;
}

type t = {
  write_ : Core.Value.t -> (outcome, string) result;
  read_ : unit -> (outcome, string) result;
  close_ : unit -> unit;
  connected_ : unit -> int list;
  collector : Obs.Span.collector;
}

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One endpoint = one base object.  [fd = None] marks the endpoint down;
   reconnects are rate-limited by [next_attempt] so a dead server costs
   one connect attempt per backoff window, not one per message. *)
type conn = {
  index : int;  (* 1-based object index *)
  ep : Endpoint.t;
  mutable fd : Unix.file_descr option;
  reader : Codec.Reader.t;  (* reused (reset) across reconnects *)
  out : Codec.Out.t;  (* per-connection encode scratch / outbound batch *)
  mutable frames_out : int;  (* frames appended since the last flush *)
  mutable ever : bool;  (* connected at least once: re-dials are reconnects *)
  mutable fails : int;
  mutable next_attempt : float;
  mutable warned_at : float;
  mutable suppressed : int;  (* warnings swallowed since [warned_at] *)
}

let mk_conn i ep =
  {
    index = i + 1;
    ep;
    fd = None;
    reader = Codec.Reader.create ();
    out = Codec.Out.create ();
    frames_out = 0;
    ever = false;
    fails = 0;
    next_attempt = 0.;
    warned_at = neg_infinity;
    suppressed = 0;
  }

let reconnect_cap = 2.0

let connect_timeout = 0.5

(* A flapping endpoint must not flood stderr during a long bench: at
   most one reconnect warning per endpoint per window, with a count of
   what was swallowed in between. *)
let warn_interval = 5.0

let warn_reconnect c ~now msg =
  if now -. c.warned_at >= warn_interval then begin
    Printf.eprintf "robustread-net: object %d (%s): %s%s\n%!" c.index
      (Endpoint.to_string c.ep) msg
      (if c.suppressed > 0 then
         Printf.sprintf " (%d similar warnings suppressed)" c.suppressed
       else "");
    c.warned_at <- now;
    c.suppressed <- 0
  end
  else c.suppressed <- c.suppressed + 1

(* Batched flushes must hit the wire immediately: Nagle + delayed-ACK
   would otherwise stall the round-trip pipeline on TCP loopback. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let connect_fd ep =
  let fd = Unix.socket (Endpoint.socket_domain ep) Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (match ep with
    | Endpoint.Tcp _ -> set_nodelay fd
    | Endpoint.Unix_sock _ -> ());
    (try Unix.connect fd (Endpoint.to_sockaddr ep)
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
       match Unix.select [] [ fd ] [] connect_timeout with
       | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
       | _ -> (
           match Unix.getsockopt_error fd with
           | None -> ()
           | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
    Unix.clear_nonblock fd;
    fd
  with e ->
    close_quietly fd;
    raise e

let penalize c ~now =
  c.fails <- c.fails + 1;
  c.next_attempt <- now +. Float.min reconnect_cap (0.05 *. float_of_int c.fails)

let drop_conn ?count c =
  match c.fd with
  | None -> ()
  | Some fd ->
      close_quietly fd;
      c.fd <- None;
      Codec.Reader.reset c.reader;
      Codec.Out.clear c.out;
      c.frames_out <- 0;
      penalize c ~now:(Unix.gettimeofday ());
      (match count with None -> () | Some f -> f "net.client.disconnects")

(* Connect and send the session [Hello]; failures are penalized and
   (rate-limitedly) reported.  [on_reconnect] fires when the endpoint
   had been connected before — the server behind it may have restarted
   (possibly wiped), so protocols with client-side cached state must
   resync (see {!Core.Protocol_intf.S.reader_on_reconnect}). *)
let try_connect ?count ?on_reconnect ~codec ~proto_name ~proc c =
  match connect_fd c.ep with
  | fd -> (
      Codec.Reader.reset c.reader;
      c.fails <- 0;
      c.fd <- Some fd;
      let reconnected = c.ever in
      c.ever <- true;
      (match count with None -> () | Some f -> f "net.client.connects");
      (if reconnected then
         match on_reconnect with None -> () | Some f -> f ());
      try
        Codec.encode_frame_into codec c.out
          (Codec.Hello { proto = proto_name; sender = proc; obj = c.index });
        Codec.flush fd c.out;
        c.frames_out <- 0
      with Unix.Unix_error _ -> drop_conn ?count c)
  | exception Unix.Unix_error (err, _, _) ->
      let now = Unix.gettimeofday () in
      penalize c ~now;
      (* Chaos runs assert on reconnect behaviour: every failed attempt
         counts in the registry even when the stderr warning above is
         rate-limited away. *)
      (match count with None -> () | Some f -> f "op.reconnects");
      warn_reconnect c ~now
        (Printf.sprintf "reconnect failed: %s" (Unix.error_message err))

(* Per-frame wire cost, observed at append time on the encode scratch:
   the length delta IS the frame's full wire size (length prefix
   included), so key tagging's extra varint shows up here as +1–2
   bytes. *)
let observe_frame_bytes metrics n =
  match metrics with
  | None -> ()
  | Some reg ->
      Obs.Metrics.observe_int reg "wire.bytes_per_frame"
        ~bounds:Obs.Metrics.bytes_bounds n

(* Flush a connection's outbound batch: one [write] for however many
   frames accumulated since the last flush, recording the batch size
   and flush latency. *)
let flush_conn ?metrics ?count c =
  if Codec.Out.pending c.out > 0 then begin
    match c.fd with
    | None ->
        Codec.Out.clear c.out;
        c.frames_out <- 0
    | Some fd -> (
        let frames = c.frames_out in
        c.frames_out <- 0;
        match metrics with
        | None -> (
            try Codec.flush fd c.out
            with Unix.Unix_error _ -> drop_conn ?count c)
        | Some reg -> (
            let t0 = Unix.gettimeofday () in
            try
              Codec.flush fd c.out;
              Obs.Metrics.observe_int reg "wire.batch_size"
                ~bounds:Obs.Metrics.batch_bounds frames;
              Obs.Metrics.observe_int reg "wire.flush_us"
                ~bounds:Obs.Metrics.wallclock_bounds
                (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
            with Unix.Unix_error _ -> drop_conn ?count c))
  end

let connect ?metrics ?(opts = default_opts) ?now_us ~protocol ~cfg ~role
    endpoints =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let s = cfg.Quorum.Config.s in
  if Array.length endpoints <> s then
    invalid_arg
      (Printf.sprintf "Client.connect: %d endpoints for S = %d"
         (Array.length endpoints) s);
  let proc =
    match role with
    | `Writer -> "w"
    | `Reader j when j >= 1 -> "r" ^ string_of_int j
    | `Reader j -> invalid_arg (Printf.sprintf "Client.connect: reader %d" j)
  in
  let now_f = Unix.gettimeofday in
  let now_us =
    match now_us with
    | Some f -> f
    | None ->
        let t0 = now_f () in
        fun () -> int_of_float ((now_f () -. t0) *. 1e6)
  in
  let collector = Obs.Span.collector () in
  let count name =
    match metrics with None -> () | Some reg -> Obs.Metrics.incr reg name
  in
  let meter stage m =
    match metrics with
    | None -> ()
    | Some reg ->
        Obs.Metrics.incr reg
          ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
  in
  let conns = Array.mapi mk_conn endpoints in
  let drop c = drop_conn ~count c in
  let send_conn c m =
    match c.fd with
    | None -> ()
    | Some _ ->
        meter "sent" m;
        let before = Codec.Out.length c.out in
        Codec.encode_frame_into codec c.out (Codec.Msg m);
        observe_frame_bytes metrics (Codec.Out.length c.out - before);
        c.frames_out <- c.frames_out + 1;
        flush_conn ?metrics ~count c
  in
  (* Set by the reader role below once its machine ref exists; writers
     keep the no-op (the writer automaton caches nothing). *)
  let resync = ref (fun () -> ()) in
  let try_connect c =
    try_connect ~count ~codec ~proto_name:P.name ~proc
      ~on_reconnect:(fun () -> !resync ())
      c
  in
  let ensure_conns () =
    Array.iter
      (fun c -> if c.fd = None && now_f () >= c.next_attempt then try_connect c)
      conns
  in
  let broadcast m = Array.iter (fun c -> send_conn c m) conns in
  let connected () =
    Array.to_list conns
    |> List.filter_map (fun c ->
           match c.fd with Some _ -> Some c.index | None -> None)
  in
  (* The generic operation loop.  [pending] survives a timed-out
     operation: the protocol state machine is still mid-round (there is
     no abort in the paper's automata), so the next invocation resumes
     it instead of corrupting the state with a fresh start. *)
  let run_op ~kind ~pending ~start ~feed =
    ensure_conns ();
    let resume = !pending in
    let init =
      match resume with
      | Some (m, span) -> Ok (m, span)
      | None -> (
          match start () with
          | Error e -> Error e
          | Ok m ->
              let span =
                Obs.Span.start collector kind ~proc ~now:(now_us ())
                  ~trace_pos:0
              in
              Ok (m, span))
    in
    match init with
    | Error e -> Error e
    | Ok (m0, span) ->
        pending := Some (m0, span);
        let current = ref m0 in
        let retransmits = ref 0 in
        let finished = ref None in
        let deadline = ref (now_f () +. opts.deadline) in
        let on_frame c = function
          | Codec.Hello_ack { proto; obj } ->
              if proto <> P.name || obj <> c.index then drop c
          | Codec.Err _ ->
              count "net.client.peer_errors";
              drop c
          | Codec.Hello _ -> drop c
          | Codec.Msg_from { sender; msg = _ } when sender <> proc ->
              () (* demuxed reply for someone else: stale, ignore *)
          | Codec.Msg_key _ ->
              () (* keyed reply: the serial client never tags keys *)
          | Codec.Msg m | Codec.Msg_from { msg = m; _ } ->
              meter "delivered" m;
              Obs.Span.contact span ~obj:c.index;
              List.iter
                (function
                  | Core.Events.Broadcast m' ->
                      Obs.Span.transition span ~now:(now_us ());
                      current := m';
                      pending := Some (m', span);
                      deadline := now_f () +. opts.deadline;
                      broadcast m'
                  | Core.Events.Read_done { value; rounds } ->
                      finished := Some (Some value, rounds)
                  | Core.Events.Write_done { rounds } ->
                      finished := Some (None, rounds))
                (feed ~obj:c.index m)
        in
        let handle_readable fd =
          Array.iter
            (fun c ->
              if c.fd = Some fd then
                match Codec.recv_into fd c.reader with
                | 0 -> drop c
                | exception Unix.Unix_error _ -> drop c
                | _ ->
                    let rec drain () =
                      if c.fd <> None then
                        match Codec.Reader.next codec c.reader with
                        | Ok `Awaiting -> ()
                        | Error _ ->
                            count "net.client.decode_errors";
                            drop c
                        | Ok (`Frame f) ->
                            on_frame c f;
                            drain ()
                    in
                    drain ())
            conns
        in
        broadcast !current;
        let rec loop attempt =
          match !finished with
          | Some (value, rounds) ->
              let now = now_us () in
              Obs.Span.finish span ~now ~rounds
                ?result:(Option.map Core.Value.to_string value)
                ~trace_pos:0 ();
              pending := None;
              let k = "op." ^ Obs.Span.kind_to_string kind in
              (match metrics with
              | None -> ()
              | Some reg ->
                  Obs.Metrics.incr reg (k ^ ".completed");
                  Obs.Metrics.observe_int reg (k ^ ".rounds")
                    ~bounds:Obs.Metrics.round_bounds span.Obs.Span.rounds;
                  Obs.Metrics.observe_int reg (k ^ ".latency_us")
                    ~bounds:Obs.Metrics.wallclock_bounds
                    (now - span.Obs.Span.started_at);
                  Obs.Metrics.observe_int reg (k ^ ".replies")
                    ~bounds:Obs.Metrics.count_bounds span.Obs.Span.replies;
                  Obs.Metrics.observe_int reg (k ^ ".contacted")
                    ~bounds:Obs.Metrics.count_bounds
                    (List.length (Obs.Span.contacted span));
                  (* Distinguish the one-round fast path from the
                     two-round fallback in traces.  [rounds] is what the
                     automaton REPORTED at decision time — span.rounds
                     counts initiated rounds and is 2 even for a fast
                     read, because the fast path still broadcasts Read2
                     (Fig. 6: the round-2 write-back keeps object state
                     and GC floors advancing). *)
                  match kind with
                  | Obs.Span.Read _ ->
                      Obs.Metrics.incr reg
                        (if rounds <= 1 then "op.fast_reads"
                         else "op.fallback_rounds")
                  | Obs.Span.Write -> ());
              Ok
                {
                  value;
                  rounds;
                  retransmits = !retransmits;
                  latency_us = now - span.Obs.Span.started_at;
                }
          | None ->
              let timeout = !deadline -. now_f () in
              if timeout <= 0. then
                if attempt >= opts.retries then begin
                  count ("op." ^ Obs.Span.kind_to_string kind ^ ".timeout");
                  Error
                    (Printf.sprintf
                       "%s by %s timed out after %d attempts (%.1fs deadline, \
                        connected objects: %s)"
                       (Obs.Span.kind_to_string kind)
                       proc (attempt + 1) opts.deadline
                       (match connected () with
                       | [] -> "none"
                       | l -> String.concat "," (List.map string_of_int l)))
                end
                else begin
                  incr retransmits;
                  count "net.client.retransmits";
                  Thread.delay (retry_backoff opts ~attempt);
                  ensure_conns ();
                  broadcast !current;
                  deadline := now_f () +. opts.deadline;
                  loop (attempt + 1)
                end
              else
                let fds =
                  Array.to_list conns |> List.filter_map (fun c -> c.fd)
                in
                if fds = [] then begin
                  (* Every endpoint is down: pace reconnect attempts
                     until the deadline machinery decides. *)
                  idle_wait timeout;
                  ensure_conns ();
                  loop attempt
                end
                else (
                  match Unix.select fds [] [] timeout with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                      loop attempt
                  | ready, _, _ ->
                      List.iter handle_readable ready;
                      loop attempt)
        in
        loop 0
  in
  let write_, read_ =
    match role with
    | `Writer ->
        let writer = ref (P.writer_init ~cfg) in
        let pending = ref None in
        let write v =
          run_op ~kind:Obs.Span.Write ~pending
            ~start:(fun () ->
              match P.writer_start !writer v with
              | Ok (w, m) ->
                  writer := w;
                  Ok m
              | Error e -> Error e)
            ~feed:(fun ~obj m ->
              let w, evs = P.writer_on_msg !writer ~obj m in
              writer := w;
              evs)
        in
        (write, fun () -> invalid_arg "Client.read: this client is the writer")
    | `Reader j ->
        let rd = ref (P.reader_init ~cfg ~j) in
        resync :=
          (fun () ->
            count "op.cache_resyncs";
            rd := P.reader_on_reconnect !rd);
        let pending = ref None in
        let read () =
          run_op
            ~kind:(Obs.Span.Read { reader = j })
            ~pending
            ~start:(fun () ->
              match P.reader_start !rd with
              | Ok (r, m) ->
                  rd := r;
                  Ok m
              | Error e -> Error e)
            ~feed:(fun ~obj m ->
              let r, evs = P.reader_on_msg !rd ~obj m in
              rd := r;
              evs)
        in
        ((fun _ -> invalid_arg "Client.write: this client is a reader"), read)
  in
  let close_conn c =
    drop c;
    Codec.Reader.recycle c.reader;
    Codec.Out.recycle c.out
  in
  {
    write_;
    read_;
    close_ = (fun () -> Array.iter close_conn conns);
    connected_ = connected;
    collector;
  }

let write t v = t.write_ v

let read t = t.read_ ()

let spans t = Obs.Span.spans t.collector

let connected t = t.connected_ ()

let close t = t.close_ ()

(* ===== pipelined multiplexing client ===================================== *)

(* One reader automaton can only run one operation at a time (its round
   timestamps are per-op), so the operation window is built from
   [readers] independent reader machines — each with its own round
   state, deadline and backoff — multiplexed onto a single event loop.
   All machines share ONE connection per base object: their messages
   travel as [Msg_from] frames carrying the reader id inline, and
   replies demux by the echoed sender.  That sharing is what makes
   frame batching real — one flush carries every in-flight op's round
   messages to an object in a single [write].  Per-op quorum logic is
   exactly the serial client's: the state machines still decide when
   S−t replies are enough. *)

type 'm active = {
  aop : int;  (* index into the run's result array *)
  mutable acur : 'm;  (* current round's broadcast *)
  aspan : Obs.Span.t;
  mutable adeadline : float;
  mutable abackoff_until : float;  (* 0. = not backing off *)
  mutable aattempt : int;
  mutable aretr : int;
  abatch : (int * Obs.Span.t) Coalesce.t option;
      (* READ coalescing: (op index, span) per read that joined this
         round while its round-1 broadcast was still being assembled.
         [None] for writes, for resumed parked rounds (their evidence
         gathering already started — a join would not be regular), and
         when coalescing is off.  Closed the instant the broadcast is
         flushed to the wire. *)
}

(* A timed-out op parks its machine mid-round (no abort in the paper's
   automata); the next op assigned to the slot resumes it.  If replies
   trickle in while parked and complete the op, the result is stashed
   ([Sdone]) and adopted by the next assignment — the serial client's
   resume semantics, event-loop style. *)
type 'm slot_state =
  | Sidle
  | Sactive of 'm active
  | Sparked of { mutable pcur : 'm; pspan : Obs.Span.t }
  | Sdone of outcome

type ('m, 'r) slot = {
  j : int;  (* reader id, 1-based *)
  sname : string;  (* "r<j>": the [Msg_from] sender tag *)
  mutable machine : 'r;
  mutable st : 'm slot_state;
}

module Mux = struct
  (* [joined] marks a coalesced read: it never ran its own quorum round
     but adopted the result of the round [reader]'s slot was assembling
     when it was invoked. *)
  type event =
    | Invoke of { op : int; reader : int; joined : bool; at_us : int }
    | Respond of {
        op : int;
        reader : int;
        joined : bool;
        at_us : int;
        outcome : (outcome, string) result;
      }

  type t = {
    mux_run :
      ?on_event:(event -> unit) -> int -> (outcome, string) result array;
    mux_spans : unit -> Obs.Span.t list;
    mux_connected : unit -> int list;
    mux_close : unit -> unit;
  }

  let connect ?metrics ?(opts = default_opts) ?now_us ?max_inflight
      ?(first_reader = 1) ?(coalesce = 1) ~protocol ~cfg ~readers endpoints =
    Lazy.force ignore_sigpipe;
    let (Protocols.Packed { proto = (module P); codec }) = protocol in
    let cap = max 1 coalesce in
    let s = cfg.Quorum.Config.s in
    if Array.length endpoints <> s then
      invalid_arg
        (Printf.sprintf "Mux.connect: %d endpoints for S = %d"
           (Array.length endpoints) s);
    if readers < 1 then
      invalid_arg (Printf.sprintf "Mux.connect: readers = %d" readers);
    if first_reader < 1 then
      invalid_arg (Printf.sprintf "Mux.connect: first_reader = %d" first_reader);
    let window =
      match max_inflight with
      | None -> readers
      | Some w -> max 1 (min w readers)
    in
    let now_f = Unix.gettimeofday in
    let now_us =
      match now_us with
      | Some f -> f
      | None ->
          let t0 = now_f () in
          fun () -> int_of_float ((now_f () -. t0) *. 1e6)
    in
    let collector = Obs.Span.collector () in
    let count name =
      match metrics with None -> () | Some reg -> Obs.Metrics.incr reg name
    in
    let meter stage m =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let slots =
      Array.init readers (fun idx ->
          let j = first_reader + idx in
          {
            j;
            sname = "r" ^ string_of_int j;
            machine = P.reader_init ~cfg ~j;
            st = Sidle;
          })
    in
    (* One connection per base object, shared by every reader machine:
       the session Hello names the first reader, each protocol message
       names its own sender. *)
    let conns = Array.mapi mk_conn endpoints in
    let session_proc = "r" ^ string_of_int first_reader in
    let drop c = drop_conn ~count c in
    let append_msg c ~sender m =
      match c.fd with
      | None -> ()
      | Some _ ->
          meter "sent" m;
          let before = Codec.Out.length c.out in
          Codec.encode_frame_into codec c.out (Codec.Msg_from { sender; msg = m });
          observe_frame_bytes metrics (Codec.Out.length c.out - before);
          c.frames_out <- c.frames_out + 1
    in
    let broadcast_slot sl m =
      Array.iter (fun c -> append_msg c ~sender:sl.sname m) conns
    in
    let flush_all () =
      Array.iter (fun c -> flush_conn ?metrics ~count c) conns
    in
    (* Any re-established connection resyncs EVERY reader machine: the
       server behind it may have restarted wiped, so no machine's cached
       timestamp may be trusted for suffix requests any more.  Idle
       machines clear immediately; in-flight ones defer to their next
       start (see Regular_reader.on_reconnect). *)
    let resync_slots () =
      count "op.cache_resyncs";
      Array.iter
        (fun sl -> sl.machine <- P.reader_on_reconnect sl.machine)
        slots
    in
    let ensure_conns now =
      Array.iter
        (fun c ->
          if c.fd = None && now >= c.next_attempt then
            try_connect ~count ~codec ~proto_name:P.name ~proc:session_proc
              ~on_reconnect:resync_slots c)
        conns
    in
    let connected () =
      Array.to_list conns
      |> List.filter_map (fun c ->
             match c.fd with Some _ -> Some c.index | None -> None)
    in
    (* In-place parse of the echoed sender ("r<j>"): one call per reply
       frame, so no [String.sub] allocation.  Returns the slot index or
       -1 for a sender outside this mux's reader range. *)
    let slot_of_sender sender =
      let len = String.length sender in
      if len >= 2 && sender.[0] = 'r' then begin
        let rec go i acc =
          if i >= len then acc
          else
            match sender.[i] with
            | '0' .. '9' when acc < 0x3FFFFFF ->
                go (i + 1) ((acc * 10) + (Char.code sender.[i] - Char.code '0'))
            | _ -> -1
        in
        let j = go 1 0 in
        if j >= first_reader && j < first_reader + readers then
          j - first_reader
        else -1
      end
      else -1
    in
    (* [rounds] is the automaton-reported count (outcome.rounds), not
       span.rounds: the fast path still broadcasts Read2, so the span
       records 2 initiated rounds even for a 1-round decision. *)
    let op_metrics span ~rounds now =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg "op.read.completed";
          Obs.Metrics.observe_int reg "op.read.rounds"
            ~bounds:Obs.Metrics.round_bounds span.Obs.Span.rounds;
          Obs.Metrics.observe_int reg "op.read.latency_us"
            ~bounds:Obs.Metrics.wallclock_bounds
            (now - span.Obs.Span.started_at);
          Obs.Metrics.observe_int reg "op.read.replies"
            ~bounds:Obs.Metrics.count_bounds span.Obs.Span.replies;
          Obs.Metrics.observe_int reg "op.read.contacted"
            ~bounds:Obs.Metrics.count_bounds
            (List.length (Obs.Span.contacted span));
          Obs.Metrics.incr reg
            (if rounds <= 1 then "op.fast_reads" else "op.fallback_rounds")
    in
    (* Batch width is observed once per member (so the histogram weights
       by op, not by round): a width-4 batch contributes four 4s.  Only
       recorded when coalescing is on — an off run has no batches, and
       the metric's absence keeps the two configurations comparable. *)
    let observe_width w =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.observe_int reg "op.coalesce_width"
            ~bounds:Obs.Metrics.batch_bounds w
    in
    let run ?on_event n =
      if n < 0 then invalid_arg "Mux.run_reads: negative op count";
      let results = Array.make (max n 1) (Error "operation not run") in
      let emit e = match on_event with Some f -> f e | None -> () in
      let next_op = ref 0 in
      let completed = ref 0 in
      let in_flight = ref 0 in
      let finish_active sl (a : _ active) outcome =
        results.(a.aop) <- outcome;
        emit
          (Respond
             {
               op = a.aop;
               reader = sl.j;
               joined = false;
               at_us = now_us ();
               outcome;
             });
        incr completed;
        decr in_flight
      in
      (* Fan a completed lead's value out to every read that joined its
         round.  Each joiner is a logical op of its own: its span,
         latency and per-op metrics are bumped individually (joiners
         report the lead's decision round count; they ran no network
         round of their own, so [in_flight] is untouched). *)
      let fanout_ok sl (a : _ active) ~rounds ~value =
        match a.abatch with
        | None -> ()
        | Some b ->
            let w = Coalesce.width b in
            observe_width w;
            Coalesce.iter_joiners
              (fun (op, span) ->
                let now = now_us () in
                Obs.Span.finish span ~now ~rounds
                  ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                op_metrics span ~rounds now;
                observe_width w;
                let out =
                  {
                    value = Some value;
                    rounds;
                    retransmits = 0;
                    latency_us = now - span.Obs.Span.started_at;
                  }
                in
                results.(op) <- Ok out;
                emit
                  (Respond
                     {
                       op;
                       reader = sl.j;
                       joined = true;
                       at_us = now;
                       outcome = Ok out;
                     });
                incr completed)
              b
      in
      (* A lead that times out takes its whole batch with it: the
         joiners' evidence was the lead's round, so they fail now rather
         than dangle.  (Their spans stay open, like any failed op's.) *)
      let fanout_err sl (a : _ active) err =
        match a.abatch with
        | None -> ()
        | Some b ->
            Coalesce.iter_joiners
              (fun (op, _span) ->
                results.(op) <- Error err;
                emit
                  (Respond
                     {
                       op;
                       reader = sl.j;
                       joined = true;
                       at_us = now_us ();
                       outcome = Error err;
                     });
                incr completed)
              b
      in
      let feed_slot sl ~obj m =
        let r, evs = P.reader_on_msg sl.machine ~obj m in
        sl.machine <- r;
        List.iter
          (function
            | Core.Events.Broadcast m' -> (
                match sl.st with
                | Sactive a ->
                    Obs.Span.transition a.aspan ~now:(now_us ());
                    a.acur <- m';
                    a.adeadline <- now_f () +. opts.deadline;
                    a.abackoff_until <- 0.;
                    broadcast_slot sl m'
                | Sparked p -> p.pcur <- m'
                | Sidle | Sdone _ -> ())
            | Core.Events.Read_done { value; rounds } -> (
                match sl.st with
                | Sactive a ->
                    let now = now_us () in
                    Obs.Span.finish a.aspan ~now ~rounds
                      ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                    op_metrics a.aspan ~rounds now;
                    let out =
                      {
                        value = Some value;
                        rounds;
                        retransmits = a.aretr;
                        latency_us = now - a.aspan.Obs.Span.started_at;
                      }
                    in
                    sl.st <- Sidle;
                    finish_active sl a (Ok out);
                    fanout_ok sl a ~rounds ~value
                | Sparked p ->
                    let now = now_us () in
                    Obs.Span.finish p.pspan ~now ~rounds
                      ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                    op_metrics p.pspan ~rounds now;
                    sl.st <-
                      Sdone
                        {
                          value = Some value;
                          rounds;
                          retransmits = 0;
                          latency_us = now - p.pspan.Obs.Span.started_at;
                        }
                | Sidle | Sdone _ -> ())
            | Core.Events.Write_done _ -> ())
          evs
      in
      let span_of_st sl =
        match sl.st with
        | Sactive a -> Some a.aspan
        | Sparked p -> Some p.pspan
        | Sidle | Sdone _ -> None
      in
      let deliver_to sl c m =
        meter "delivered" m;
        match sl.st with
        | Sactive _ | Sparked _ ->
            (match span_of_st sl with
            | Some span -> Obs.Span.contact span ~obj:c.index
            | None -> ());
            feed_slot sl ~obj:c.index m
        | Sidle | Sdone _ -> () (* stale ack between operations *)
      in
      let on_frame c = function
        | Codec.Hello_ack { proto; obj } ->
            if proto <> P.name || obj <> c.index then drop c
        | Codec.Err _ ->
            count "net.client.peer_errors";
            drop c
        | Codec.Hello _ -> drop c
        | Codec.Msg m ->
            (* A pre-[Msg_from] server attributes replies to the session
               sender — the first reader machine. *)
            deliver_to slots.(0) c m
        | Codec.Msg_from { sender; msg } -> (
            match slot_of_sender sender with
            | -1 -> () (* reply for a reader of a previous mux: stale *)
            | idx -> deliver_to slots.(idx) c msg)
        | Codec.Msg_key _ ->
            () (* keyed reply: this mux drives only the key-0 register *)
      in
      let handle_conn c =
        match c.fd with
        | None -> ()
        | Some fd -> (
            match Codec.recv_into fd c.reader with
            | 0 -> drop c
            | exception Unix.Unix_error _ -> drop c
            | _ ->
                let rec drain () =
                  if c.fd <> None then
                    match Codec.Reader.next codec c.reader with
                    | Ok `Awaiting -> ()
                    | Error _ ->
                        count "net.client.decode_errors";
                        drop c
                    | Ok (`Frame f) ->
                        on_frame c f;
                        drain ()
                in
                drain ())
      in
      let start_one sl =
        let op = !next_op in
        incr next_op;
        emit (Invoke { op; reader = sl.j; joined = false; at_us = now_us () });
        match sl.st with
        | Sdone out ->
            sl.st <- Sidle;
            results.(op) <- Ok out;
            emit
              (Respond
                 {
                   op;
                   reader = sl.j;
                   joined = false;
                   at_us = now_us ();
                   outcome = Ok out;
                 });
            incr completed
        | Sparked p ->
            (* Resumed round: its round-1 evidence gathering started
               before this op was invoked, so no batch may attach — a
               joiner could be returned evidence older than its invoke,
               which is exactly what regularity forbids. *)
            sl.st <-
              Sactive
                {
                  aop = op;
                  acur = p.pcur;
                  aspan = p.pspan;
                  adeadline = now_f () +. opts.deadline;
                  abackoff_until = 0.;
                  aattempt = 0;
                  aretr = 0;
                  abatch = None;
                };
            broadcast_slot sl p.pcur;
            incr in_flight
        | Sidle -> (
            match P.reader_start sl.machine with
            | Error e ->
                results.(op) <- Error e;
                emit
                  (Respond
                     {
                       op;
                       reader = sl.j;
                       joined = false;
                       at_us = now_us ();
                       outcome = Error e;
                     });
                incr completed
            | Ok (r, m) ->
                sl.machine <- r;
                let span =
                  Obs.Span.start collector
                    (Obs.Span.Read { reader = sl.j })
                    ~proc:("r" ^ string_of_int sl.j)
                    ~now:(now_us ()) ~trace_pos:0
                in
                sl.st <-
                  Sactive
                    {
                      aop = op;
                      acur = m;
                      aspan = span;
                      adeadline = now_f () +. opts.deadline;
                      abackoff_until = 0.;
                      aattempt = 0;
                      aretr = 0;
                      abatch =
                        (if cap > 1 then Some (Coalesce.create ~cap) else None);
                    };
                broadcast_slot sl m;
                incr in_flight)
        | Sactive _ -> assert false
      in
      (* A coalesced read never occupies a slot: it is a (span, result
         cell) hung off the lead's batch, so it costs no reader machine
         and does not count against the in-flight window. *)
      let join_read sl b =
        let op = !next_op in
        incr next_op;
        emit (Invoke { op; reader = sl.j; joined = true; at_us = now_us () });
        let span =
          Obs.Span.start collector
            (Obs.Span.Read { reader = sl.j })
            ~proc:("r" ^ string_of_int sl.j)
            ~now:(now_us ()) ~trace_pos:0
        in
        Coalesce.join b (op, span);
        count "op.coalesced_reads"
      in
      let free_slot () =
        let rec go i =
          if i >= Array.length slots then None
          else
            match slots.(i).st with
            | Sactive _ -> go (i + 1)
            | Sidle | Sparked _ | Sdone _ -> Some slots.(i)
        in
        go 0
      in
      (* All reads target the one register, so any slot whose fresh
         round is still being assembled can host the next op. *)
      let join_slot () =
        let rec go i =
          if i >= Array.length slots then None
          else
            match slots.(i).st with
            | Sactive { abatch = Some b; _ } when Coalesce.can_join b ->
                Some (slots.(i), b)
            | Sactive _ | Sidle | Sparked _ | Sdone _ -> go (i + 1)
        in
        go 0
      in
      (* Admission prefers joining an open batch (free — no new round,
         no window slot) over starting a fresh lead; fresh leads are
         still window-bounded. *)
      let admit_one () =
        !next_op < n
        &&
        match join_slot () with
        | Some (sl, b) ->
            join_read sl b;
            true
        | None -> (
            !in_flight < window
            &&
            match free_slot () with
            | Some sl ->
                start_one sl;
                true
            | None -> false)
      in
      (* The join window ends when the round-1 broadcast leaves the
         process: called right after [flush_all], so a read admitted in
         a later pump iteration chains onto the NEXT round instead of
         adopting evidence gathered before it was invoked. *)
      let close_batches () =
        Array.iter
          (fun sl ->
            match sl.st with
            | Sactive { abatch = Some b; _ } -> Coalesce.close b
            | Sactive _ | Sidle | Sparked _ | Sdone _ -> ())
          slots
      in
      let process_timers now =
        Array.iter
          (fun sl ->
            match sl.st with
            | Sactive a ->
                if a.abackoff_until > 0. then begin
                  if now >= a.abackoff_until then begin
                    a.abackoff_until <- 0.;
                    a.aretr <- a.aretr + 1;
                    count "net.client.retransmits";
                    a.aattempt <- a.aattempt + 1;
                    a.adeadline <- now +. opts.deadline;
                    broadcast_slot sl a.acur
                  end
                end
                else if now >= a.adeadline then
                  if a.aattempt >= opts.retries then begin
                    count "op.read.timeout";
                    let err =
                      Printf.sprintf
                        "read by r%d timed out after %d attempts (%.1fs \
                         deadline, connected objects: %s)"
                        sl.j (a.aattempt + 1) opts.deadline
                        (match connected () with
                        | [] -> "none"
                        | l -> String.concat "," (List.map string_of_int l))
                    in
                    let cur = a.acur and span = a.aspan in
                    sl.st <- Sparked { pcur = cur; pspan = span };
                    finish_active sl a (Error err);
                    fanout_err sl a err
                  end
                  else
                    a.abackoff_until <-
                      now +. retry_backoff opts ~attempt:a.aattempt
            | Sidle | Sparked _ | Sdone _ -> ())
          slots
      in
      let next_wakeup now =
        let acc = ref (now +. 1.0) in
        let any_active = ref false in
        Array.iter
          (fun sl ->
            match sl.st with
            | Sactive a ->
                any_active := true;
                let t =
                  if a.abackoff_until > 0. then a.abackoff_until
                  else a.adeadline
                in
                if t < !acc then acc := t
            | Sidle | Sparked _ | Sdone _ -> ())
          slots;
        if !any_active then
          Array.iter
            (fun c ->
              if c.fd = None && c.next_attempt < !acc then acc := c.next_attempt)
            conns;
        Float.max 0. (!acc -. now)
      in
      let rec pump () =
        if !completed < n then begin
          (* connect before starting ops: a round broadcast only reaches
             endpoints that already have a live fd *)
          ensure_conns (now_f ());
          while admit_one () do
            ()
          done;
          flush_all ();
          close_batches ();
          if !completed >= n then ()
          else begin
            let fds = Array.to_list conns |> List.filter_map (fun c -> c.fd) in
            let timeout = next_wakeup (now_f ()) in
            (if fds = [] then idle_wait timeout
             else
               match Unix.select fds [] [] timeout with
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               | ready, _, _ ->
                   List.iter
                     (fun fd ->
                       Array.iter
                         (fun c -> if c.fd = Some fd then handle_conn c)
                         conns)
                     ready);
            process_timers (now_f ());
            pump ()
          end
        end
      in
      pump ();
      if n = 0 then [||] else results
    in
    let close_all () =
      Array.iter
        (fun c ->
          drop c;
          Codec.Reader.recycle c.reader;
          Codec.Out.recycle c.out)
        conns
    in
    {
      mux_run = run;
      mux_spans = (fun () -> Obs.Span.spans collector);
      mux_connected = connected;
      mux_close = close_all;
    }

  let run_reads ?on_event t n = t.mux_run ?on_event n

  let spans t = t.mux_spans ()

  let connected t = t.mux_connected ()

  let close t = t.mux_close ()
end

(* ===== keyed multiplexing client ========================================= *)

(* The keyspace client: one event loop drives reader AND writer automata
   for many keys over one connection per fleet server.  Placement comes
   from [Shard.Map]: a key's traffic goes as [Msg_key] frames to the S
   members of its shard only, and replies demux by the echoed (key,
   sender) pair.  Automata are per key and lazily materialized — a key's
   reader keeps its own §5.1 timestamp cache and GC floor, its writer
   its own monotone timestamps, so keys are as independent over the wire
   as they are in the simulator (which is what makes per-shard
   correctness the single-register argument verbatim).

   Objects are attributed by their fleet-global 1-based index (the
   connection's [index]): the automata only ever count DISTINCT object
   ids against the quorum thresholds and key their reply maps by id, so
   they never require the contiguous 1..S space — a shard's S member
   ids work unchanged.

   Ordering: per (key, role) at most one operation is in flight; excess
   ops queue FIFO, so per-key reads and per-key writes each stay
   program-ordered while different keys overlap freely up to the
   window.  A read and a write on the SAME key may overlap — they are
   different automata, exactly the paper's concurrent reader/writer.

   Single-writer discipline is the caller's: the registers are SWMR, so
   at most one process may ever write a given key (the load driver
   partitions write ownership by [Shard.Map.mix key]). *)

type ('m, 'r, 'w) kreg = {
  kkey : int;
  kshard : int;
  kconns : int array;  (* fleet slots (0-based) of the key's shard members *)
  mutable krd : 'r;  (* this key's reader automaton *)
  mutable kwr : 'w;  (* this key's writer automaton *)
  mutable krst : 'm slot_state;  (* in-flight read, if any *)
  mutable kwst : 'm slot_state;  (* in-flight write, if any *)
  krq : int Queue.t;  (* queued read op indices, program order *)
  kwq : int Queue.t;  (* queued write op indices, program order *)
}

module Keyed = struct
  type kop = Read of { key : int } | Write of { key : int; value : Core.Value.t }

  let op_key = function Read { key } | Write { key; _ } -> key

  let op_is_write = function Read _ -> false | Write _ -> true

  (* [joined] marks a coalesced read: it never ran its own quorum round
     but adopted the result of the round its key's reader was assembling
     when it was invoked.  Writes never coalesce. *)
  type event =
    | Invoke of { op : int; key : int; write : bool; joined : bool; at_us : int }
    | Respond of {
        op : int;
        key : int;
        write : bool;
        joined : bool;
        at_us : int;
        outcome : (outcome, string) result;
      }

  type t = {
    krun :
      ?on_event:(event -> unit) -> kop array -> (outcome, string) result array;
    kspans : unit -> Obs.Span.t list;
    kconnected : unit -> int list;
    kclose : unit -> unit;
    kkeys_touched : unit -> int;
  }

  let connect ?metrics ?(opts = default_opts) ?now_us ?(max_inflight = 16)
      ?(reader = 1) ?(coalesce = 1) ~protocol ~map endpoints =
    Lazy.force ignore_sigpipe;
    let (Protocols.Packed { proto = (module P); codec }) = protocol in
    let cap = max 1 coalesce in
    let cfg = Shard.Map.cfg map in
    let fleet = Shard.Map.fleet map in
    if Array.length endpoints <> fleet then
      invalid_arg
        (Printf.sprintf "Keyed.connect: %d endpoints for a fleet of %d"
           (Array.length endpoints) fleet);
    if reader < 1 then
      invalid_arg (Printf.sprintf "Keyed.connect: reader = %d" reader);
    let window = max 1 max_inflight in
    let now_f = Unix.gettimeofday in
    let now_us =
      match now_us with
      | Some f -> f
      | None ->
          let t0 = now_f () in
          fun () -> int_of_float ((now_f () -. t0) *. 1e6)
    in
    let collector = Obs.Span.collector () in
    let count name =
      match metrics with None -> () | Some reg -> Obs.Metrics.incr reg name
    in
    let meter stage m =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let conns = Array.mapi mk_conn endpoints in
    let rname = "r" ^ string_of_int reader in
    let sender_of write = if write then "w" else rname in
    let drop c = drop_conn ~count c in
    (* key -> per-key automata + in-flight state, lazily materialized *)
    let regs : (int, (P.msg, P.reader, P.writer) kreg) Hashtbl.t =
      Hashtbl.create 1024
    in
    let reg_for key =
      match Hashtbl.find_opt regs key with
      | Some r -> r
      | None ->
          let shard = Shard.Map.shard_of_key map key in
          let r =
            {
              kkey = key;
              kshard = shard;
              kconns = Shard.Map.members map ~shard;
              krd = P.reader_init ~cfg ~j:reader;
              kwr = P.writer_init ~cfg;
              krst = Sidle;
              kwst = Sidle;
              krq = Queue.create ();
              kwq = Queue.create ();
            }
          in
          Hashtbl.replace regs key r;
          r
    in
    let append_key c ~key ~sender m =
      match c.fd with
      | None -> ()
      | Some _ ->
          meter "sent" m;
          let before = Codec.Out.length c.out in
          Codec.encode_frame_into codec c.out (Codec.Msg_key { key; sender; msg = m });
          observe_frame_bytes metrics (Codec.Out.length c.out - before);
          c.frames_out <- c.frames_out + 1
    in
    let broadcast_key r ~sender m =
      Array.iter
        (fun slot -> append_key conns.(slot) ~key:r.kkey ~sender m)
        r.kconns
    in
    let flush_all () =
      Array.iter (fun c -> flush_conn ?metrics ~count c) conns
    in
    (* A re-established connection may front a restarted (possibly
       wiped) server: every key's reader clears its timestamp cache, so
       no suffix request trusts state the server no longer has. *)
    let resync_all () =
      count "op.cache_resyncs";
      Hashtbl.iter (fun _ r -> r.krd <- P.reader_on_reconnect r.krd) regs
    in
    let ensure_conns now =
      Array.iter
        (fun c ->
          if c.fd = None && now >= c.next_attempt then
            try_connect ~count ~codec ~proto_name:P.name ~proc:rname
              ~on_reconnect:resync_all c)
        conns
    in
    let connected () =
      Array.to_list conns
      |> List.filter_map (fun c ->
             match c.fd with Some _ -> Some c.index | None -> None)
    in
    let op_metrics ~kind span ~rounds now =
      match metrics with
      | None -> ()
      | Some reg ->
          let k = "op." ^ Obs.Span.kind_to_string kind in
          Obs.Metrics.incr reg (k ^ ".completed");
          Obs.Metrics.observe_int reg (k ^ ".rounds")
            ~bounds:Obs.Metrics.round_bounds span.Obs.Span.rounds;
          Obs.Metrics.observe_int reg (k ^ ".latency_us")
            ~bounds:Obs.Metrics.wallclock_bounds
            (now - span.Obs.Span.started_at);
          Obs.Metrics.observe_int reg (k ^ ".replies")
            ~bounds:Obs.Metrics.count_bounds span.Obs.Span.replies;
          Obs.Metrics.observe_int reg (k ^ ".contacted")
            ~bounds:Obs.Metrics.count_bounds
            (List.length (Obs.Span.contacted span));
          (match kind with
          | Obs.Span.Read _ ->
              Obs.Metrics.incr reg
                (if rounds <= 1 then "op.fast_reads" else "op.fallback_rounds")
          | Obs.Span.Write -> ())
    in
    (* Per-shard fast-read engagement: E19's per-shard evidence that the
       §5.1 one-round path survives sharding. *)
    let shard_read_metric r ~rounds =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg (Printf.sprintf "shard.%d.reads" r.kshard);
          if rounds <= 1 then
            Obs.Metrics.incr reg (Printf.sprintf "shard.%d.fast_reads" r.kshard)
    in
    (* Batch width is observed once per member (the histogram weights by
       op, not by round); only recorded when coalescing is on. *)
    let observe_width w =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.observe_int reg "op.coalesce_width"
            ~bounds:Obs.Metrics.batch_bounds w
    in
    let run ?on_event ops =
      let n = Array.length ops in
      let results = Array.make (max n 1) (Error "operation not run") in
      let emit e = match on_event with Some f -> f e | None -> () in
      let next_op = ref 0 in
      let completed = ref 0 in
      let in_flight = ref 0 in
      (* (key, is_write) pairs currently in flight — bounded by the
         window, so timers never scan the whole key table — plus roles
         freed by a completion, whose queued successor starts from the
         pump loop (never from inside an automaton event iteration). *)
      let actives :
          (int * bool, (P.msg, P.reader, P.writer) kreg) Hashtbl.t =
        Hashtbl.create 64
      in
      let freed : ((P.msg, P.reader, P.writer) kreg * bool) Queue.t =
        Queue.create ()
      in
      let get_st r ~write = if write then r.kwst else r.krst in
      let set_st r ~write st =
        if write then r.kwst <- st else r.krst <- st
      in
      let queue_of r ~write = if write then r.kwq else r.krq in
      let finish_op r ~write (a : _ active) outcome =
        results.(a.aop) <- outcome;
        emit
          (Respond
             {
               op = a.aop;
               key = r.kkey;
               write;
               joined = false;
               at_us = now_us ();
               outcome;
             });
        Hashtbl.remove actives (r.kkey, write);
        Queue.add (r, write) freed;
        incr completed;
        decr in_flight
      in
      (* Fan a completed lead read's value out to every read that joined
         its round: each joiner is a logical op with its own span and
         per-op/per-shard metrics, but it ran no network round, so
         [in_flight] is untouched. *)
      let fanout_ok r (a : _ active) ~rounds ~value =
        match a.abatch with
        | None -> ()
        | Some b ->
            let w = Coalesce.width b in
            observe_width w;
            Coalesce.iter_joiners
              (fun (op, span) ->
                let now = now_us () in
                Obs.Span.finish span ~now ~rounds
                  ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                op_metrics ~kind:(Obs.Span.Read { reader }) span ~rounds now;
                shard_read_metric r ~rounds;
                observe_width w;
                let out =
                  {
                    value = Some value;
                    rounds;
                    retransmits = 0;
                    latency_us = now - span.Obs.Span.started_at;
                  }
                in
                results.(op) <- Ok out;
                emit
                  (Respond
                     {
                       op;
                       key = r.kkey;
                       write = false;
                       joined = true;
                       at_us = now;
                       outcome = Ok out;
                     });
                incr completed)
              b
      in
      (* A lead that times out fails its whole batch: the joiners'
         evidence was the lead's round.  Their spans stay open, like any
         failed op's. *)
      let fanout_err r (a : _ active) err =
        match a.abatch with
        | None -> ()
        | Some b ->
            Coalesce.iter_joiners
              (fun (op, _span) ->
                results.(op) <- Error err;
                emit
                  (Respond
                     {
                       op;
                       key = r.kkey;
                       write = false;
                       joined = true;
                       at_us = now_us ();
                       outcome = Error err;
                     });
                incr completed)
              b
      in
      let feed_reg r ~write ~obj m =
        let evs =
          if write then begin
            let w, evs = P.writer_on_msg r.kwr ~obj m in
            r.kwr <- w;
            evs
          end
          else begin
            let rd, evs = P.reader_on_msg r.krd ~obj m in
            r.krd <- rd;
            evs
          end
        in
        List.iter
          (function
            | Core.Events.Broadcast m' -> (
                match get_st r ~write with
                | Sactive a ->
                    Obs.Span.transition a.aspan ~now:(now_us ());
                    a.acur <- m';
                    a.adeadline <- now_f () +. opts.deadline;
                    a.abackoff_until <- 0.;
                    broadcast_key r ~sender:(sender_of write) m'
                | Sparked p -> p.pcur <- m'
                | Sidle | Sdone _ -> ())
            | Core.Events.Read_done { value; rounds } ->
                if not write then begin
                  match get_st r ~write with
                  | Sactive a ->
                      shard_read_metric r ~rounds;
                      let now = now_us () in
                      Obs.Span.finish a.aspan ~now ~rounds
                        ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                      op_metrics
                        ~kind:(Obs.Span.Read { reader })
                        a.aspan ~rounds now;
                      let out =
                        {
                          value = Some value;
                          rounds;
                          retransmits = a.aretr;
                          latency_us = now - a.aspan.Obs.Span.started_at;
                        }
                      in
                      set_st r ~write Sidle;
                      finish_op r ~write a (Ok out);
                      fanout_ok r a ~rounds ~value
                  | Sparked p ->
                      shard_read_metric r ~rounds;
                      let now = now_us () in
                      Obs.Span.finish p.pspan ~now ~rounds
                        ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                      op_metrics
                        ~kind:(Obs.Span.Read { reader })
                        p.pspan ~rounds now;
                      set_st r ~write
                        (Sdone
                           {
                             value = Some value;
                             rounds;
                             retransmits = 0;
                             latency_us = now - p.pspan.Obs.Span.started_at;
                           })
                  | Sidle | Sdone _ -> ()
                end
            | Core.Events.Write_done { rounds } ->
                if write then begin
                  match get_st r ~write with
                  | Sactive a ->
                      let now = now_us () in
                      Obs.Span.finish a.aspan ~now ~rounds ~trace_pos:0 ();
                      op_metrics ~kind:Obs.Span.Write a.aspan ~rounds now;
                      let out =
                        {
                          value = None;
                          rounds;
                          retransmits = a.aretr;
                          latency_us = now - a.aspan.Obs.Span.started_at;
                        }
                      in
                      set_st r ~write Sidle;
                      finish_op r ~write a (Ok out)
                  | Sparked p ->
                      let now = now_us () in
                      Obs.Span.finish p.pspan ~now ~rounds ~trace_pos:0 ();
                      op_metrics ~kind:Obs.Span.Write p.pspan ~rounds now;
                      set_st r ~write
                        (Sdone
                           {
                             value = None;
                             rounds;
                             retransmits = 0;
                             latency_us = now - p.pspan.Obs.Span.started_at;
                           })
                  | Sidle | Sdone _ -> ()
                end)
          evs
      in
      let deliver_key c ~key ~sender m =
        match Hashtbl.find_opt regs key with
        | None -> () (* reply for a key this client never touched: stale *)
        | Some r -> (
            let role =
              if String.equal sender "w" then Some true
              else if String.equal sender rname then Some false
              else None (* another client's reader: stale, ignore *)
            in
            match role with
            | None -> ()
            | Some write -> (
                match get_st r ~write with
                | Sactive a ->
                    meter "delivered" m;
                    Obs.Span.contact a.aspan ~obj:c.index;
                    feed_reg r ~write ~obj:c.index m
                | Sparked p ->
                    meter "delivered" m;
                    Obs.Span.contact p.pspan ~obj:c.index;
                    feed_reg r ~write ~obj:c.index m
                | Sidle | Sdone _ -> () (* stale ack between operations *)))
      in
      let on_frame c = function
        | Codec.Hello_ack { proto; obj } ->
            if proto <> P.name || obj <> c.index then drop c
        | Codec.Err _ ->
            count "net.client.peer_errors";
            drop c
        | Codec.Hello _ -> drop c
        | Codec.Msg m ->
            (* pre-keyspace server: untagged replies belong to key 0 *)
            deliver_key c ~key:0 ~sender:rname m
        | Codec.Msg_from { sender; msg } -> deliver_key c ~key:0 ~sender msg
        | Codec.Msg_key { key; sender; msg } -> deliver_key c ~key ~sender msg
      in
      let handle_conn c =
        match c.fd with
        | None -> ()
        | Some fd -> (
            match Codec.recv_into fd c.reader with
            | 0 -> drop c
            | exception Unix.Unix_error _ -> drop c
            | _ ->
                let rec drain () =
                  if c.fd <> None then
                    match Codec.Reader.next codec c.reader with
                    | Ok `Awaiting -> ()
                    | Error _ ->
                        count "net.client.decode_errors";
                        drop c
                    | Ok (`Frame f) ->
                        on_frame c f;
                        drain ()
                in
                drain ())
      in
      (* A coalesced read occupies no (key, role) slot: it is a (span,
         result cell) hung off the lead's batch, costing no automaton
         state and no window slot. *)
      let join_read idx r b =
        emit
          (Invoke
             {
               op = idx;
               key = r.kkey;
               write = false;
               joined = true;
               at_us = now_us ();
             });
        let span =
          Obs.Span.start collector
            (Obs.Span.Read { reader })
            ~proc:rname ~now:(now_us ()) ~trace_pos:0
        in
        Coalesce.join b (idx, span);
        count "op.coalesced_reads"
      in
      (* [start_now] requires the role NOT be [Sactive]; [start_next]
         pops the role's queue once it is free.  A synchronous
         completion (adopted [Sdone], start error) recurses into
         [start_next] — safe here because these only run from the pump
         loop, never mid automaton-event iteration. *)
      let rec start_now idx r ~write =
        emit
          (Invoke
             { op = idx; key = r.kkey; write; joined = false; at_us = now_us () });
        match get_st r ~write with
        | Sdone out ->
            set_st r ~write Sidle;
            results.(idx) <- Ok out;
            emit
              (Respond
                 {
                   op = idx;
                   key = r.kkey;
                   write;
                   joined = false;
                   at_us = now_us ();
                   outcome = Ok out;
                 });
            incr completed;
            start_next r ~write
        | Sparked p ->
            (* Resumed round: its round-1 evidence gathering started
               before this op was invoked, so no batch may attach — a
               joiner could be returned evidence older than its invoke,
               which is exactly what regularity forbids. *)
            set_st r ~write
              (Sactive
                 {
                   aop = idx;
                   acur = p.pcur;
                   aspan = p.pspan;
                   adeadline = now_f () +. opts.deadline;
                   abackoff_until = 0.;
                   aattempt = 0;
                   aretr = 0;
                   abatch = None;
                 });
            Hashtbl.replace actives (r.kkey, write) r;
            broadcast_key r ~sender:(sender_of write) p.pcur;
            incr in_flight
        | Sidle -> (
            let started =
              if write then
                match ops.(idx) with
                | Write { value; _ } -> (
                    match P.writer_start r.kwr value with
                    | Ok (w, m) ->
                        r.kwr <- w;
                        Ok m
                    | Error e -> Error e)
                | Read _ -> assert false
              else
                match P.reader_start r.krd with
                | Ok (rd, m) ->
                    r.krd <- rd;
                    Ok m
                | Error e -> Error e
            in
            match started with
            | Error e ->
                results.(idx) <- Error e;
                emit
                  (Respond
                     {
                       op = idx;
                       key = r.kkey;
                       write;
                       joined = false;
                       at_us = now_us ();
                       outcome = Error e;
                     });
                incr completed;
                start_next r ~write
            | Ok m ->
                let kind =
                  if write then Obs.Span.Write else Obs.Span.Read { reader }
                in
                let span =
                  Obs.Span.start collector kind ~proc:(sender_of write)
                    ~now:(now_us ()) ~trace_pos:0
                in
                let batch =
                  if write || cap <= 1 then None
                  else Some (Coalesce.create ~cap)
                in
                set_st r ~write
                  (Sactive
                     {
                       aop = idx;
                       acur = m;
                       aspan = span;
                       adeadline = now_f () +. opts.deadline;
                       abackoff_until = 0.;
                       aattempt = 0;
                       aretr = 0;
                       abatch = batch;
                     });
                Hashtbl.replace actives (r.kkey, write) r;
                broadcast_key r ~sender:(sender_of write) m;
                incr in_flight;
                (* Piggyback: reads already queued behind this key ride
                   the fresh round — they were invoked before its
                   broadcast was even assembled, so joining preserves
                   both regularity and per-key program order. *)
                match batch with
                | None -> ()
                | Some b ->
                    while
                      (not (Queue.is_empty r.krq)) && Coalesce.can_join b
                    do
                      join_read (Queue.pop r.krq) r b
                    done)
        | Sactive _ -> assert false
      and start_next r ~write =
        match get_st r ~write with
        | Sactive _ -> ()
        | Sidle | Sparked _ | Sdone _ ->
            let q = queue_of r ~write in
            if not (Queue.is_empty q) then start_now (Queue.pop q) r ~write
      in
      (* Admission: join the key's in-assembly read round if one is
         open (and nothing is queued ahead — program order); otherwise
         start if the (key, role) is free, else enqueue. *)
      let admit idx =
        let op = ops.(idx) in
        let key = op_key op and write = op_is_write op in
        let r = reg_for key in
        let q = queue_of r ~write in
        match get_st r ~write with
        | Sactive a -> (
            match a.abatch with
            | Some b when (not write) && Queue.is_empty q && Coalesce.can_join b
              ->
                join_read idx r b
            | Some _ | None -> Queue.add idx q)
        | Sidle | Sparked _ | Sdone _ ->
            if Queue.is_empty q then start_now idx r ~write
            else Queue.add idx q
      in
      (* Past the in-flight window only joins are admissible: they add
         no round and must not queue (queuing past the window would
         defeat its backpressure), so peek rather than admit. *)
      let try_join_next () =
        !next_op < n
        &&
        let op = ops.(!next_op) in
        (not (op_is_write op))
        &&
        match Hashtbl.find_opt regs (op_key op) with
        | None -> false
        | Some r -> (
            match r.krst with
            | Sactive { abatch = Some b; _ }
              when Queue.is_empty r.krq && Coalesce.can_join b ->
                join_read !next_op r b;
                incr next_op;
                true
            | Sactive _ | Sidle | Sparked _ | Sdone _ -> false)
      in
      (* The join window ends when the round-1 broadcast leaves the
         process: called right after [flush_all], so later reads chain
         onto the NEXT round instead of adopting evidence gathered
         before they were invoked. *)
      let close_batches () =
        Hashtbl.iter
          (fun (_, write) r ->
            if not write then
              match r.krst with
              | Sactive { abatch = Some b; _ } -> Coalesce.close b
              | Sactive _ | Sidle | Sparked _ | Sdone _ -> ())
          actives
      in
      let process_timers now =
        let acts = Hashtbl.fold (fun k r acc -> (k, r) :: acc) actives [] in
        List.iter
          (fun ((_, write), r) ->
            match get_st r ~write with
            | Sactive a ->
                if a.abackoff_until > 0. then begin
                  if now >= a.abackoff_until then begin
                    a.abackoff_until <- 0.;
                    a.aretr <- a.aretr + 1;
                    count "net.client.retransmits";
                    a.aattempt <- a.aattempt + 1;
                    a.adeadline <- now +. opts.deadline;
                    broadcast_key r ~sender:(sender_of write) a.acur
                  end
                end
                else if now >= a.adeadline then
                  if a.aattempt >= opts.retries then begin
                    count
                      (if write then "op.write.timeout" else "op.read.timeout");
                    let err =
                      Printf.sprintf
                        "%s of key %d timed out after %d attempts (%.1fs \
                         deadline, connected objects: %s)"
                        (if write then "write" else "read")
                        r.kkey (a.aattempt + 1) opts.deadline
                        (match connected () with
                        | [] -> "none"
                        | l -> String.concat "," (List.map string_of_int l))
                    in
                    let cur = a.acur and span = a.aspan in
                    set_st r ~write (Sparked { pcur = cur; pspan = span });
                    finish_op r ~write a (Error err);
                    fanout_err r a err
                  end
                  else
                    a.abackoff_until <-
                      now +. retry_backoff opts ~attempt:a.aattempt
            | Sidle | Sparked _ | Sdone _ -> ())
          acts
      in
      let next_wakeup now =
        let acc = ref (now +. 1.0) in
        Hashtbl.iter
          (fun (_, write) r ->
            match get_st r ~write with
            | Sactive a ->
                let t =
                  if a.abackoff_until > 0. then a.abackoff_until
                  else a.adeadline
                in
                if t < !acc then acc := t
            | Sidle | Sparked _ | Sdone _ -> ())
          actives;
        if Hashtbl.length actives > 0 then
          Array.iter
            (fun c ->
              if c.fd = None && c.next_attempt < !acc then acc := c.next_attempt)
            conns;
        Float.max 0. (!acc -. now)
      in
      let rec pump () =
        if !completed < n then begin
          ensure_conns (now_f ());
          (* freed roles first: their queued successors preserve per-key
             program order ahead of fresh admissions *)
          while not (Queue.is_empty freed) do
            let r, write = Queue.pop freed in
            start_next r ~write
          done;
          while !in_flight < window && !next_op < n do
            admit !next_op;
            incr next_op
          done;
          while try_join_next () do
            ()
          done;
          flush_all ();
          close_batches ();
          if !completed >= n then ()
          else begin
            let fds = Array.to_list conns |> List.filter_map (fun c -> c.fd) in
            let timeout = next_wakeup (now_f ()) in
            (if fds = [] then idle_wait timeout
             else
               match Unix.select fds [] [] timeout with
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               | ready, _, _ ->
                   List.iter
                     (fun fd ->
                       Array.iter
                         (fun c -> if c.fd = Some fd then handle_conn c)
                         conns)
                     ready);
            process_timers (now_f ());
            pump ()
          end
        end
      in
      pump ();
      if n = 0 then [||] else results
    in
    let close_all () =
      Array.iter
        (fun c ->
          drop c;
          Codec.Reader.recycle c.reader;
          Codec.Out.recycle c.out)
        conns
    in
    {
      krun = run;
      kspans = (fun () -> Obs.Span.spans collector);
      kconnected = connected;
      kclose = close_all;
      kkeys_touched = (fun () -> Hashtbl.length regs);
    }

  let run_ops ?on_event t ops = t.krun ?on_event ops

  let spans t = t.kspans ()

  let connected t = t.kconnected ()

  let keys_touched t = t.kkeys_touched ()

  let close t = t.kclose ()
end
