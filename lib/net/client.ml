type opts = { deadline : float; retries : int; backoff : float }

let default_opts = { deadline = 1.0; retries = 5; backoff = 0.05 }

type outcome = {
  value : Core.Value.t option;
  rounds : int;
  retransmits : int;
  latency_us : int;
}

type t = {
  write_ : Core.Value.t -> (outcome, string) result;
  read_ : unit -> (outcome, string) result;
  close_ : unit -> unit;
  connected_ : unit -> int list;
  collector : Obs.Span.collector;
}

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One endpoint = one base object.  [fd = None] marks the endpoint down;
   reconnects are rate-limited by [next_attempt] so a dead server costs
   one connect attempt per backoff window, not one per message. *)
type conn = {
  index : int;  (* 1-based object index *)
  ep : Endpoint.t;
  mutable fd : Unix.file_descr option;
  reader : Codec.Reader.t;  (* reused (reset) across reconnects *)
  out : Codec.Out.t;  (* per-connection encode scratch / outbound batch *)
  mutable frames_out : int;  (* frames appended since the last flush *)
  mutable ever : bool;  (* connected at least once: re-dials are reconnects *)
  mutable fails : int;
  mutable next_attempt : float;
  mutable warned_at : float;
  mutable suppressed : int;  (* warnings swallowed since [warned_at] *)
}

let mk_conn i ep =
  {
    index = i + 1;
    ep;
    fd = None;
    reader = Codec.Reader.create ();
    out = Codec.Out.create ();
    frames_out = 0;
    ever = false;
    fails = 0;
    next_attempt = 0.;
    warned_at = neg_infinity;
    suppressed = 0;
  }

let reconnect_cap = 2.0

let connect_timeout = 0.5

(* A flapping endpoint must not flood stderr during a long bench: at
   most one reconnect warning per endpoint per window, with a count of
   what was swallowed in between. *)
let warn_interval = 5.0

let warn_reconnect c ~now msg =
  if now -. c.warned_at >= warn_interval then begin
    Printf.eprintf "robustread-net: object %d (%s): %s%s\n%!" c.index
      (Endpoint.to_string c.ep) msg
      (if c.suppressed > 0 then
         Printf.sprintf " (%d similar warnings suppressed)" c.suppressed
       else "");
    c.warned_at <- now;
    c.suppressed <- 0
  end
  else c.suppressed <- c.suppressed + 1

(* Batched flushes must hit the wire immediately: Nagle + delayed-ACK
   would otherwise stall the round-trip pipeline on TCP loopback. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let connect_fd ep =
  let fd = Unix.socket (Endpoint.socket_domain ep) Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (match ep with
    | Endpoint.Tcp _ -> set_nodelay fd
    | Endpoint.Unix_sock _ -> ());
    (try Unix.connect fd (Endpoint.to_sockaddr ep)
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
       match Unix.select [] [ fd ] [] connect_timeout with
       | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
       | _ -> (
           match Unix.getsockopt_error fd with
           | None -> ()
           | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
    Unix.clear_nonblock fd;
    fd
  with e ->
    close_quietly fd;
    raise e

let penalize c ~now =
  c.fails <- c.fails + 1;
  c.next_attempt <- now +. Float.min reconnect_cap (0.05 *. float_of_int c.fails)

let drop_conn ?count c =
  match c.fd with
  | None -> ()
  | Some fd ->
      close_quietly fd;
      c.fd <- None;
      Codec.Reader.reset c.reader;
      Codec.Out.clear c.out;
      c.frames_out <- 0;
      penalize c ~now:(Unix.gettimeofday ());
      (match count with None -> () | Some f -> f "net.client.disconnects")

(* Connect and send the session [Hello]; failures are penalized and
   (rate-limitedly) reported.  [on_reconnect] fires when the endpoint
   had been connected before — the server behind it may have restarted
   (possibly wiped), so protocols with client-side cached state must
   resync (see {!Core.Protocol_intf.S.reader_on_reconnect}). *)
let try_connect ?count ?on_reconnect ~codec ~proto_name ~proc c =
  match connect_fd c.ep with
  | fd -> (
      Codec.Reader.reset c.reader;
      c.fails <- 0;
      c.fd <- Some fd;
      let reconnected = c.ever in
      c.ever <- true;
      (match count with None -> () | Some f -> f "net.client.connects");
      (if reconnected then
         match on_reconnect with None -> () | Some f -> f ());
      try
        Codec.encode_frame_into codec c.out
          (Codec.Hello { proto = proto_name; sender = proc; obj = c.index });
        Codec.flush fd c.out;
        c.frames_out <- 0
      with Unix.Unix_error _ -> drop_conn ?count c)
  | exception Unix.Unix_error (err, _, _) ->
      let now = Unix.gettimeofday () in
      penalize c ~now;
      (* Chaos runs assert on reconnect behaviour: every failed attempt
         counts in the registry even when the stderr warning above is
         rate-limited away. *)
      (match count with None -> () | Some f -> f "op.reconnects");
      warn_reconnect c ~now
        (Printf.sprintf "reconnect failed: %s" (Unix.error_message err))

(* Flush a connection's outbound batch: one [write] for however many
   frames accumulated since the last flush, recording the batch size
   and flush latency. *)
let flush_conn ?metrics ?count c =
  if Codec.Out.pending c.out > 0 then begin
    match c.fd with
    | None ->
        Codec.Out.clear c.out;
        c.frames_out <- 0
    | Some fd -> (
        let frames = c.frames_out in
        c.frames_out <- 0;
        match metrics with
        | None -> (
            try Codec.flush fd c.out
            with Unix.Unix_error _ -> drop_conn ?count c)
        | Some reg -> (
            let t0 = Unix.gettimeofday () in
            try
              Codec.flush fd c.out;
              Obs.Metrics.observe_int reg "wire.batch_size"
                ~bounds:Obs.Metrics.batch_bounds frames;
              Obs.Metrics.observe_int reg "wire.flush_us"
                ~bounds:Obs.Metrics.wallclock_bounds
                (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
            with Unix.Unix_error _ -> drop_conn ?count c))
  end

let connect ?metrics ?(opts = default_opts) ?now_us ~protocol ~cfg ~role
    endpoints =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let s = cfg.Quorum.Config.s in
  if Array.length endpoints <> s then
    invalid_arg
      (Printf.sprintf "Client.connect: %d endpoints for S = %d"
         (Array.length endpoints) s);
  let proc =
    match role with
    | `Writer -> "w"
    | `Reader j when j >= 1 -> "r" ^ string_of_int j
    | `Reader j -> invalid_arg (Printf.sprintf "Client.connect: reader %d" j)
  in
  let now_f = Unix.gettimeofday in
  let now_us =
    match now_us with
    | Some f -> f
    | None ->
        let t0 = now_f () in
        fun () -> int_of_float ((now_f () -. t0) *. 1e6)
  in
  let collector = Obs.Span.collector () in
  let count name =
    match metrics with None -> () | Some reg -> Obs.Metrics.incr reg name
  in
  let meter stage m =
    match metrics with
    | None -> ()
    | Some reg ->
        Obs.Metrics.incr reg
          ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
  in
  let conns = Array.mapi mk_conn endpoints in
  let drop c = drop_conn ~count c in
  let send_conn c m =
    match c.fd with
    | None -> ()
    | Some _ ->
        meter "sent" m;
        Codec.encode_frame_into codec c.out (Codec.Msg m);
        c.frames_out <- c.frames_out + 1;
        flush_conn ?metrics ~count c
  in
  (* Set by the reader role below once its machine ref exists; writers
     keep the no-op (the writer automaton caches nothing). *)
  let resync = ref (fun () -> ()) in
  let try_connect c =
    try_connect ~count ~codec ~proto_name:P.name ~proc
      ~on_reconnect:(fun () -> !resync ())
      c
  in
  let ensure_conns () =
    Array.iter
      (fun c -> if c.fd = None && now_f () >= c.next_attempt then try_connect c)
      conns
  in
  let broadcast m = Array.iter (fun c -> send_conn c m) conns in
  let connected () =
    Array.to_list conns
    |> List.filter_map (fun c ->
           match c.fd with Some _ -> Some c.index | None -> None)
  in
  (* The generic operation loop.  [pending] survives a timed-out
     operation: the protocol state machine is still mid-round (there is
     no abort in the paper's automata), so the next invocation resumes
     it instead of corrupting the state with a fresh start. *)
  let run_op ~kind ~pending ~start ~feed =
    ensure_conns ();
    let resume = !pending in
    let init =
      match resume with
      | Some (m, span) -> Ok (m, span)
      | None -> (
          match start () with
          | Error e -> Error e
          | Ok m ->
              let span =
                Obs.Span.start collector kind ~proc ~now:(now_us ())
                  ~trace_pos:0
              in
              Ok (m, span))
    in
    match init with
    | Error e -> Error e
    | Ok (m0, span) ->
        pending := Some (m0, span);
        let current = ref m0 in
        let retransmits = ref 0 in
        let finished = ref None in
        let deadline = ref (now_f () +. opts.deadline) in
        let on_frame c = function
          | Codec.Hello_ack { proto; obj } ->
              if proto <> P.name || obj <> c.index then drop c
          | Codec.Err _ ->
              count "net.client.peer_errors";
              drop c
          | Codec.Hello _ -> drop c
          | Codec.Msg_from { sender; msg = _ } when sender <> proc ->
              () (* demuxed reply for someone else: stale, ignore *)
          | Codec.Msg m | Codec.Msg_from { msg = m; _ } ->
              meter "delivered" m;
              Obs.Span.contact span ~obj:c.index;
              List.iter
                (function
                  | Core.Events.Broadcast m' ->
                      Obs.Span.transition span ~now:(now_us ());
                      current := m';
                      pending := Some (m', span);
                      deadline := now_f () +. opts.deadline;
                      broadcast m'
                  | Core.Events.Read_done { value; rounds } ->
                      finished := Some (Some value, rounds)
                  | Core.Events.Write_done { rounds } ->
                      finished := Some (None, rounds))
                (feed ~obj:c.index m)
        in
        let handle_readable fd =
          Array.iter
            (fun c ->
              if c.fd = Some fd then
                match Codec.recv_into fd c.reader with
                | 0 -> drop c
                | exception Unix.Unix_error _ -> drop c
                | _ ->
                    let rec drain () =
                      if c.fd <> None then
                        match Codec.Reader.next codec c.reader with
                        | Ok `Awaiting -> ()
                        | Error _ ->
                            count "net.client.decode_errors";
                            drop c
                        | Ok (`Frame f) ->
                            on_frame c f;
                            drain ()
                    in
                    drain ())
            conns
        in
        broadcast !current;
        let rec loop attempt =
          match !finished with
          | Some (value, rounds) ->
              let now = now_us () in
              Obs.Span.finish span ~now ~rounds
                ?result:(Option.map Core.Value.to_string value)
                ~trace_pos:0 ();
              pending := None;
              let k = "op." ^ Obs.Span.kind_to_string kind in
              (match metrics with
              | None -> ()
              | Some reg ->
                  Obs.Metrics.incr reg (k ^ ".completed");
                  Obs.Metrics.observe_int reg (k ^ ".rounds")
                    ~bounds:Obs.Metrics.round_bounds span.Obs.Span.rounds;
                  Obs.Metrics.observe_int reg (k ^ ".latency_us")
                    ~bounds:Obs.Metrics.wallclock_bounds
                    (now - span.Obs.Span.started_at);
                  Obs.Metrics.observe_int reg (k ^ ".replies")
                    ~bounds:Obs.Metrics.count_bounds span.Obs.Span.replies;
                  Obs.Metrics.observe_int reg (k ^ ".contacted")
                    ~bounds:Obs.Metrics.count_bounds
                    (List.length (Obs.Span.contacted span));
                  (* Distinguish the one-round fast path from the
                     two-round fallback in traces.  [rounds] is what the
                     automaton REPORTED at decision time — span.rounds
                     counts initiated rounds and is 2 even for a fast
                     read, because the fast path still broadcasts Read2
                     (Fig. 6: the round-2 write-back keeps object state
                     and GC floors advancing). *)
                  match kind with
                  | Obs.Span.Read _ ->
                      Obs.Metrics.incr reg
                        (if rounds <= 1 then "op.fast_reads"
                         else "op.fallback_rounds")
                  | Obs.Span.Write -> ());
              Ok
                {
                  value;
                  rounds;
                  retransmits = !retransmits;
                  latency_us = now - span.Obs.Span.started_at;
                }
          | None ->
              let timeout = !deadline -. now_f () in
              if timeout <= 0. then
                if attempt >= opts.retries then begin
                  count ("op." ^ Obs.Span.kind_to_string kind ^ ".timeout");
                  Error
                    (Printf.sprintf
                       "%s by %s timed out after %d attempts (%.1fs deadline, \
                        connected objects: %s)"
                       (Obs.Span.kind_to_string kind)
                       proc (attempt + 1) opts.deadline
                       (match connected () with
                       | [] -> "none"
                       | l -> String.concat "," (List.map string_of_int l)))
                end
                else begin
                  incr retransmits;
                  count "net.client.retransmits";
                  Thread.delay (opts.backoff *. (2. ** float_of_int attempt));
                  ensure_conns ();
                  broadcast !current;
                  deadline := now_f () +. opts.deadline;
                  loop (attempt + 1)
                end
              else
                let fds =
                  Array.to_list conns |> List.filter_map (fun c -> c.fd)
                in
                if fds = [] then begin
                  (* Every endpoint is down: pace reconnect attempts
                     until the deadline machinery decides. *)
                  Thread.delay (Float.min 0.01 timeout);
                  ensure_conns ();
                  loop attempt
                end
                else (
                  match Unix.select fds [] [] timeout with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                      loop attempt
                  | ready, _, _ ->
                      List.iter handle_readable ready;
                      loop attempt)
        in
        loop 0
  in
  let write_, read_ =
    match role with
    | `Writer ->
        let writer = ref (P.writer_init ~cfg) in
        let pending = ref None in
        let write v =
          run_op ~kind:Obs.Span.Write ~pending
            ~start:(fun () ->
              match P.writer_start !writer v with
              | Ok (w, m) ->
                  writer := w;
                  Ok m
              | Error e -> Error e)
            ~feed:(fun ~obj m ->
              let w, evs = P.writer_on_msg !writer ~obj m in
              writer := w;
              evs)
        in
        (write, fun () -> invalid_arg "Client.read: this client is the writer")
    | `Reader j ->
        let rd = ref (P.reader_init ~cfg ~j) in
        resync :=
          (fun () ->
            count "op.cache_resyncs";
            rd := P.reader_on_reconnect !rd);
        let pending = ref None in
        let read () =
          run_op
            ~kind:(Obs.Span.Read { reader = j })
            ~pending
            ~start:(fun () ->
              match P.reader_start !rd with
              | Ok (r, m) ->
                  rd := r;
                  Ok m
              | Error e -> Error e)
            ~feed:(fun ~obj m ->
              let r, evs = P.reader_on_msg !rd ~obj m in
              rd := r;
              evs)
        in
        ((fun _ -> invalid_arg "Client.write: this client is a reader"), read)
  in
  let close_conn c =
    drop c;
    Codec.Reader.recycle c.reader;
    Codec.Out.recycle c.out
  in
  {
    write_;
    read_;
    close_ = (fun () -> Array.iter close_conn conns);
    connected_ = connected;
    collector;
  }

let write t v = t.write_ v

let read t = t.read_ ()

let spans t = Obs.Span.spans t.collector

let connected t = t.connected_ ()

let close t = t.close_ ()

(* ===== pipelined multiplexing client ===================================== *)

(* One reader automaton can only run one operation at a time (its round
   timestamps are per-op), so the operation window is built from
   [readers] independent reader machines — each with its own round
   state, deadline and backoff — multiplexed onto a single event loop.
   All machines share ONE connection per base object: their messages
   travel as [Msg_from] frames carrying the reader id inline, and
   replies demux by the echoed sender.  That sharing is what makes
   frame batching real — one flush carries every in-flight op's round
   messages to an object in a single [write].  Per-op quorum logic is
   exactly the serial client's: the state machines still decide when
   S−t replies are enough. *)

type 'm active = {
  aop : int;  (* index into the run's result array *)
  mutable acur : 'm;  (* current round's broadcast *)
  aspan : Obs.Span.t;
  mutable adeadline : float;
  mutable abackoff_until : float;  (* 0. = not backing off *)
  mutable aattempt : int;
  mutable aretr : int;
}

(* A timed-out op parks its machine mid-round (no abort in the paper's
   automata); the next op assigned to the slot resumes it.  If replies
   trickle in while parked and complete the op, the result is stashed
   ([Sdone]) and adopted by the next assignment — the serial client's
   resume semantics, event-loop style. *)
type 'm slot_state =
  | Sidle
  | Sactive of 'm active
  | Sparked of { mutable pcur : 'm; pspan : Obs.Span.t }
  | Sdone of outcome

type ('m, 'r) slot = {
  j : int;  (* reader id, 1-based *)
  sname : string;  (* "r<j>": the [Msg_from] sender tag *)
  mutable machine : 'r;
  mutable st : 'm slot_state;
}

module Mux = struct
  type event =
    | Invoke of { op : int; reader : int; at_us : int }
    | Respond of {
        op : int;
        reader : int;
        at_us : int;
        outcome : (outcome, string) result;
      }

  type t = {
    mux_run :
      ?on_event:(event -> unit) -> int -> (outcome, string) result array;
    mux_spans : unit -> Obs.Span.t list;
    mux_connected : unit -> int list;
    mux_close : unit -> unit;
  }

  let connect ?metrics ?(opts = default_opts) ?now_us ?max_inflight
      ?(first_reader = 1) ~protocol ~cfg ~readers endpoints =
    Lazy.force ignore_sigpipe;
    let (Protocols.Packed { proto = (module P); codec }) = protocol in
    let s = cfg.Quorum.Config.s in
    if Array.length endpoints <> s then
      invalid_arg
        (Printf.sprintf "Mux.connect: %d endpoints for S = %d"
           (Array.length endpoints) s);
    if readers < 1 then
      invalid_arg (Printf.sprintf "Mux.connect: readers = %d" readers);
    if first_reader < 1 then
      invalid_arg (Printf.sprintf "Mux.connect: first_reader = %d" first_reader);
    let window =
      match max_inflight with
      | None -> readers
      | Some w -> max 1 (min w readers)
    in
    let now_f = Unix.gettimeofday in
    let now_us =
      match now_us with
      | Some f -> f
      | None ->
          let t0 = now_f () in
          fun () -> int_of_float ((now_f () -. t0) *. 1e6)
    in
    let collector = Obs.Span.collector () in
    let count name =
      match metrics with None -> () | Some reg -> Obs.Metrics.incr reg name
    in
    let meter stage m =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg
            ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
    in
    let slots =
      Array.init readers (fun idx ->
          let j = first_reader + idx in
          {
            j;
            sname = "r" ^ string_of_int j;
            machine = P.reader_init ~cfg ~j;
            st = Sidle;
          })
    in
    (* One connection per base object, shared by every reader machine:
       the session Hello names the first reader, each protocol message
       names its own sender. *)
    let conns = Array.mapi mk_conn endpoints in
    let session_proc = "r" ^ string_of_int first_reader in
    let drop c = drop_conn ~count c in
    let append_msg c ~sender m =
      match c.fd with
      | None -> ()
      | Some _ ->
          meter "sent" m;
          Codec.encode_frame_into codec c.out (Codec.Msg_from { sender; msg = m });
          c.frames_out <- c.frames_out + 1
    in
    let broadcast_slot sl m =
      Array.iter (fun c -> append_msg c ~sender:sl.sname m) conns
    in
    let flush_all () =
      Array.iter (fun c -> flush_conn ?metrics ~count c) conns
    in
    (* Any re-established connection resyncs EVERY reader machine: the
       server behind it may have restarted wiped, so no machine's cached
       timestamp may be trusted for suffix requests any more.  Idle
       machines clear immediately; in-flight ones defer to their next
       start (see Regular_reader.on_reconnect). *)
    let resync_slots () =
      count "op.cache_resyncs";
      Array.iter
        (fun sl -> sl.machine <- P.reader_on_reconnect sl.machine)
        slots
    in
    let ensure_conns now =
      Array.iter
        (fun c ->
          if c.fd = None && now >= c.next_attempt then
            try_connect ~count ~codec ~proto_name:P.name ~proc:session_proc
              ~on_reconnect:resync_slots c)
        conns
    in
    let connected () =
      Array.to_list conns
      |> List.filter_map (fun c ->
             match c.fd with Some _ -> Some c.index | None -> None)
    in
    (* In-place parse of the echoed sender ("r<j>"): one call per reply
       frame, so no [String.sub] allocation.  Returns the slot index or
       -1 for a sender outside this mux's reader range. *)
    let slot_of_sender sender =
      let len = String.length sender in
      if len >= 2 && sender.[0] = 'r' then begin
        let rec go i acc =
          if i >= len then acc
          else
            match sender.[i] with
            | '0' .. '9' when acc < 0x3FFFFFF ->
                go (i + 1) ((acc * 10) + (Char.code sender.[i] - Char.code '0'))
            | _ -> -1
        in
        let j = go 1 0 in
        if j >= first_reader && j < first_reader + readers then
          j - first_reader
        else -1
      end
      else -1
    in
    (* [rounds] is the automaton-reported count (outcome.rounds), not
       span.rounds: the fast path still broadcasts Read2, so the span
       records 2 initiated rounds even for a 1-round decision. *)
    let op_metrics span ~rounds now =
      match metrics with
      | None -> ()
      | Some reg ->
          Obs.Metrics.incr reg "op.read.completed";
          Obs.Metrics.observe_int reg "op.read.rounds"
            ~bounds:Obs.Metrics.round_bounds span.Obs.Span.rounds;
          Obs.Metrics.observe_int reg "op.read.latency_us"
            ~bounds:Obs.Metrics.wallclock_bounds
            (now - span.Obs.Span.started_at);
          Obs.Metrics.observe_int reg "op.read.replies"
            ~bounds:Obs.Metrics.count_bounds span.Obs.Span.replies;
          Obs.Metrics.observe_int reg "op.read.contacted"
            ~bounds:Obs.Metrics.count_bounds
            (List.length (Obs.Span.contacted span));
          Obs.Metrics.incr reg
            (if rounds <= 1 then "op.fast_reads" else "op.fallback_rounds")
    in
    let run ?on_event n =
      if n < 0 then invalid_arg "Mux.run_reads: negative op count";
      let results = Array.make (max n 1) (Error "operation not run") in
      let emit e = match on_event with Some f -> f e | None -> () in
      let next_op = ref 0 in
      let completed = ref 0 in
      let in_flight = ref 0 in
      let finish_active sl (a : _ active) outcome =
        results.(a.aop) <- outcome;
        emit
          (Respond { op = a.aop; reader = sl.j; at_us = now_us (); outcome });
        incr completed;
        decr in_flight
      in
      let feed_slot sl ~obj m =
        let r, evs = P.reader_on_msg sl.machine ~obj m in
        sl.machine <- r;
        List.iter
          (function
            | Core.Events.Broadcast m' -> (
                match sl.st with
                | Sactive a ->
                    Obs.Span.transition a.aspan ~now:(now_us ());
                    a.acur <- m';
                    a.adeadline <- now_f () +. opts.deadline;
                    a.abackoff_until <- 0.;
                    broadcast_slot sl m'
                | Sparked p -> p.pcur <- m'
                | Sidle | Sdone _ -> ())
            | Core.Events.Read_done { value; rounds } -> (
                match sl.st with
                | Sactive a ->
                    let now = now_us () in
                    Obs.Span.finish a.aspan ~now ~rounds
                      ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                    op_metrics a.aspan ~rounds now;
                    let out =
                      {
                        value = Some value;
                        rounds;
                        retransmits = a.aretr;
                        latency_us = now - a.aspan.Obs.Span.started_at;
                      }
                    in
                    sl.st <- Sidle;
                    finish_active sl a (Ok out)
                | Sparked p ->
                    let now = now_us () in
                    Obs.Span.finish p.pspan ~now ~rounds
                      ~result:(Core.Value.to_string value) ~trace_pos:0 ();
                    op_metrics p.pspan ~rounds now;
                    sl.st <-
                      Sdone
                        {
                          value = Some value;
                          rounds;
                          retransmits = 0;
                          latency_us = now - p.pspan.Obs.Span.started_at;
                        }
                | Sidle | Sdone _ -> ())
            | Core.Events.Write_done _ -> ())
          evs
      in
      let span_of_st sl =
        match sl.st with
        | Sactive a -> Some a.aspan
        | Sparked p -> Some p.pspan
        | Sidle | Sdone _ -> None
      in
      let deliver_to sl c m =
        meter "delivered" m;
        match sl.st with
        | Sactive _ | Sparked _ ->
            (match span_of_st sl with
            | Some span -> Obs.Span.contact span ~obj:c.index
            | None -> ());
            feed_slot sl ~obj:c.index m
        | Sidle | Sdone _ -> () (* stale ack between operations *)
      in
      let on_frame c = function
        | Codec.Hello_ack { proto; obj } ->
            if proto <> P.name || obj <> c.index then drop c
        | Codec.Err _ ->
            count "net.client.peer_errors";
            drop c
        | Codec.Hello _ -> drop c
        | Codec.Msg m ->
            (* A pre-[Msg_from] server attributes replies to the session
               sender — the first reader machine. *)
            deliver_to slots.(0) c m
        | Codec.Msg_from { sender; msg } -> (
            match slot_of_sender sender with
            | -1 -> () (* reply for a reader of a previous mux: stale *)
            | idx -> deliver_to slots.(idx) c msg)
      in
      let handle_conn c =
        match c.fd with
        | None -> ()
        | Some fd -> (
            match Codec.recv_into fd c.reader with
            | 0 -> drop c
            | exception Unix.Unix_error _ -> drop c
            | _ ->
                let rec drain () =
                  if c.fd <> None then
                    match Codec.Reader.next codec c.reader with
                    | Ok `Awaiting -> ()
                    | Error _ ->
                        count "net.client.decode_errors";
                        drop c
                    | Ok (`Frame f) ->
                        on_frame c f;
                        drain ()
                in
                drain ())
      in
      let start_one sl =
        let op = !next_op in
        incr next_op;
        emit (Invoke { op; reader = sl.j; at_us = now_us () });
        match sl.st with
        | Sdone out ->
            sl.st <- Sidle;
            results.(op) <- Ok out;
            emit
              (Respond { op; reader = sl.j; at_us = now_us (); outcome = Ok out });
            incr completed
        | Sparked p ->
            sl.st <-
              Sactive
                {
                  aop = op;
                  acur = p.pcur;
                  aspan = p.pspan;
                  adeadline = now_f () +. opts.deadline;
                  abackoff_until = 0.;
                  aattempt = 0;
                  aretr = 0;
                };
            broadcast_slot sl p.pcur;
            incr in_flight
        | Sidle -> (
            match P.reader_start sl.machine with
            | Error e ->
                results.(op) <- Error e;
                emit
                  (Respond
                     { op; reader = sl.j; at_us = now_us (); outcome = Error e });
                incr completed
            | Ok (r, m) ->
                sl.machine <- r;
                let span =
                  Obs.Span.start collector
                    (Obs.Span.Read { reader = sl.j })
                    ~proc:("r" ^ string_of_int sl.j)
                    ~now:(now_us ()) ~trace_pos:0
                in
                sl.st <-
                  Sactive
                    {
                      aop = op;
                      acur = m;
                      aspan = span;
                      adeadline = now_f () +. opts.deadline;
                      abackoff_until = 0.;
                      aattempt = 0;
                      aretr = 0;
                    };
                broadcast_slot sl m;
                incr in_flight)
        | Sactive _ -> assert false
      in
      let free_slot () =
        let rec go i =
          if i >= Array.length slots then None
          else
            match slots.(i).st with
            | Sactive _ -> go (i + 1)
            | Sidle | Sparked _ | Sdone _ -> Some slots.(i)
        in
        go 0
      in
      let process_timers now =
        Array.iter
          (fun sl ->
            match sl.st with
            | Sactive a ->
                if a.abackoff_until > 0. then begin
                  if now >= a.abackoff_until then begin
                    a.abackoff_until <- 0.;
                    a.aretr <- a.aretr + 1;
                    count "net.client.retransmits";
                    a.aattempt <- a.aattempt + 1;
                    a.adeadline <- now +. opts.deadline;
                    broadcast_slot sl a.acur
                  end
                end
                else if now >= a.adeadline then
                  if a.aattempt >= opts.retries then begin
                    count "op.read.timeout";
                    let err =
                      Printf.sprintf
                        "read by r%d timed out after %d attempts (%.1fs \
                         deadline, connected objects: %s)"
                        sl.j (a.aattempt + 1) opts.deadline
                        (match connected () with
                        | [] -> "none"
                        | l -> String.concat "," (List.map string_of_int l))
                    in
                    let cur = a.acur and span = a.aspan in
                    sl.st <- Sparked { pcur = cur; pspan = span };
                    finish_active sl a (Error err)
                  end
                  else
                    a.abackoff_until <-
                      now +. (opts.backoff *. (2. ** float_of_int a.aattempt))
            | Sidle | Sparked _ | Sdone _ -> ())
          slots
      in
      let next_wakeup now =
        let acc = ref (now +. 1.0) in
        let any_active = ref false in
        Array.iter
          (fun sl ->
            match sl.st with
            | Sactive a ->
                any_active := true;
                let t =
                  if a.abackoff_until > 0. then a.abackoff_until
                  else a.adeadline
                in
                if t < !acc then acc := t
            | Sidle | Sparked _ | Sdone _ -> ())
          slots;
        if !any_active then
          Array.iter
            (fun c ->
              if c.fd = None && c.next_attempt < !acc then acc := c.next_attempt)
            conns;
        Float.max 0. (!acc -. now)
      in
      let rec pump () =
        if !completed < n then begin
          (* connect before starting ops: a round broadcast only reaches
             endpoints that already have a live fd *)
          ensure_conns (now_f ());
          while
            !in_flight < window && !next_op < n
            &&
            match free_slot () with
            | Some sl ->
                start_one sl;
                true
            | None -> false
          do
            ()
          done;
          flush_all ();
          if !completed >= n then ()
          else begin
            let fds = Array.to_list conns |> List.filter_map (fun c -> c.fd) in
            let timeout = next_wakeup (now_f ()) in
            (if fds = [] then
               Thread.delay (Float.min 0.01 (Float.max 0.001 timeout))
             else
               match Unix.select fds [] [] timeout with
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               | ready, _, _ ->
                   List.iter
                     (fun fd ->
                       Array.iter
                         (fun c -> if c.fd = Some fd then handle_conn c)
                         conns)
                     ready);
            process_timers (now_f ());
            pump ()
          end
        end
      in
      pump ();
      if n = 0 then [||] else results
    in
    let close_all () =
      Array.iter
        (fun c ->
          drop c;
          Codec.Reader.recycle c.reader;
          Codec.Out.recycle c.out)
        conns
    in
    {
      mux_run = run;
      mux_spans = (fun () -> Obs.Span.spans collector);
      mux_connected = connected;
      mux_close = close_all;
    }

  let run_reads ?on_event t n = t.mux_run ?on_event n

  let spans t = t.mux_spans ()

  let connected t = t.mux_connected ()

  let close t = t.mux_close ()
end
