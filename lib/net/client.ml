type opts = { deadline : float; retries : int; backoff : float }

let default_opts = { deadline = 1.0; retries = 5; backoff = 0.05 }

type outcome = {
  value : Core.Value.t option;
  rounds : int;
  retransmits : int;
  latency_us : int;
}

type t = {
  write_ : Core.Value.t -> (outcome, string) result;
  read_ : unit -> (outcome, string) result;
  close_ : unit -> unit;
  connected_ : unit -> int list;
  collector : Obs.Span.collector;
}

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One endpoint = one base object.  [fd = None] marks the endpoint down;
   reconnects are rate-limited by [next_attempt] so a dead server costs
   one connect attempt per backoff window, not one per message. *)
type conn = {
  index : int;  (* 1-based object index *)
  ep : Endpoint.t;
  mutable fd : Unix.file_descr option;
  mutable reader : Codec.Reader.t;
  mutable fails : int;
  mutable next_attempt : float;
}

let reconnect_cap = 2.0

let connect_timeout = 0.5

let connect_fd ep =
  let fd = Unix.socket (Endpoint.socket_domain ep) Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (try Unix.connect fd (Endpoint.to_sockaddr ep)
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
       match Unix.select [] [ fd ] [] connect_timeout with
       | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
       | _ -> (
           match Unix.getsockopt_error fd with
           | None -> ()
           | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
    Unix.clear_nonblock fd;
    fd
  with e ->
    close_quietly fd;
    raise e

let connect ?metrics ?(opts = default_opts) ?now_us ~protocol ~cfg ~role
    endpoints =
  Lazy.force ignore_sigpipe;
  let (Protocols.Packed { proto = (module P); codec }) = protocol in
  let s = cfg.Quorum.Config.s in
  if Array.length endpoints <> s then
    invalid_arg
      (Printf.sprintf "Client.connect: %d endpoints for S = %d"
         (Array.length endpoints) s);
  let proc =
    match role with
    | `Writer -> "w"
    | `Reader j when j >= 1 -> "r" ^ string_of_int j
    | `Reader j -> invalid_arg (Printf.sprintf "Client.connect: reader %d" j)
  in
  let now_f = Unix.gettimeofday in
  let now_us =
    match now_us with
    | Some f -> f
    | None ->
        let t0 = now_f () in
        fun () -> int_of_float ((now_f () -. t0) *. 1e6)
  in
  let collector = Obs.Span.collector () in
  let count name =
    match metrics with None -> () | Some reg -> Obs.Metrics.incr reg name
  in
  let meter stage m =
    match metrics with
    | None -> ()
    | Some reg ->
        Obs.Metrics.incr reg
          ("wire." ^ Obs.Wire.to_string (P.msg_class m) ^ "." ^ stage)
  in
  let conns =
    Array.mapi
      (fun i ep ->
        {
          index = i + 1;
          ep;
          fd = None;
          reader = Codec.Reader.create ();
          fails = 0;
          next_attempt = 0.;
        })
      endpoints
  in
  let drop c =
    match c.fd with
    | None -> ()
    | Some fd ->
        close_quietly fd;
        c.fd <- None;
        c.fails <- c.fails + 1;
        c.next_attempt <-
          now_f () +. Float.min reconnect_cap (0.05 *. float_of_int c.fails);
        count "net.client.disconnects"
  in
  let send_conn c m =
    match c.fd with
    | None -> ()
    | Some fd -> (
        meter "sent" m;
        try Codec.send fd (Codec.encode_frame codec (Codec.Msg m))
        with Unix.Unix_error _ -> drop c)
  in
  let try_connect c =
    match connect_fd c.ep with
    | fd -> (
        c.reader <- Codec.Reader.create ();
        c.fails <- 0;
        c.fd <- Some fd;
        count "net.client.connects";
        try
          Codec.send fd
            (Codec.encode_frame codec
               (Codec.Hello { proto = P.name; sender = proc; obj = c.index }))
        with Unix.Unix_error _ -> drop c)
    | exception Unix.Unix_error _ ->
        c.fails <- c.fails + 1;
        c.next_attempt <-
          now_f () +. Float.min reconnect_cap (0.05 *. float_of_int c.fails)
  in
  let ensure_conns () =
    Array.iter
      (fun c -> if c.fd = None && now_f () >= c.next_attempt then try_connect c)
      conns
  in
  let broadcast m = Array.iter (fun c -> send_conn c m) conns in
  let connected () =
    Array.to_list conns
    |> List.filter_map (fun c ->
           match c.fd with Some _ -> Some c.index | None -> None)
  in
  (* The generic operation loop.  [pending] survives a timed-out
     operation: the protocol state machine is still mid-round (there is
     no abort in the paper's automata), so the next invocation resumes
     it instead of corrupting the state with a fresh start. *)
  let run_op ~kind ~pending ~start ~feed =
    ensure_conns ();
    let resume = !pending in
    let init =
      match resume with
      | Some (m, span) -> Ok (m, span)
      | None -> (
          match start () with
          | Error e -> Error e
          | Ok m ->
              let span =
                Obs.Span.start collector kind ~proc ~now:(now_us ())
                  ~trace_pos:0
              in
              Ok (m, span))
    in
    match init with
    | Error e -> Error e
    | Ok (m0, span) ->
        pending := Some (m0, span);
        let current = ref m0 in
        let retransmits = ref 0 in
        let finished = ref None in
        let deadline = ref (now_f () +. opts.deadline) in
        let on_frame c = function
          | Codec.Hello_ack { proto; obj } ->
              if proto <> P.name || obj <> c.index then drop c
          | Codec.Err _ ->
              count "net.client.peer_errors";
              drop c
          | Codec.Hello _ -> drop c
          | Codec.Msg m ->
              meter "delivered" m;
              Obs.Span.contact span ~obj:c.index;
              List.iter
                (function
                  | Core.Events.Broadcast m' ->
                      Obs.Span.transition span ~now:(now_us ());
                      current := m';
                      pending := Some (m', span);
                      deadline := now_f () +. opts.deadline;
                      broadcast m'
                  | Core.Events.Read_done { value; rounds } ->
                      finished := Some (Some value, rounds)
                  | Core.Events.Write_done { rounds } ->
                      finished := Some (None, rounds))
                (feed ~obj:c.index m)
        in
        let handle_readable fd =
          Array.iter
            (fun c ->
              if c.fd = Some fd then
                match Codec.recv_into fd c.reader with
                | 0 -> drop c
                | exception Unix.Unix_error _ -> drop c
                | _ ->
                    let rec drain () =
                      if c.fd <> None then
                        match Codec.Reader.next codec c.reader with
                        | Ok `Awaiting -> ()
                        | Error _ ->
                            count "net.client.decode_errors";
                            drop c
                        | Ok (`Frame f) ->
                            on_frame c f;
                            drain ()
                    in
                    drain ())
            conns
        in
        broadcast !current;
        let rec loop attempt =
          match !finished with
          | Some (value, rounds) ->
              let now = now_us () in
              Obs.Span.finish span ~now ~rounds
                ?result:(Option.map Core.Value.to_string value)
                ~trace_pos:0 ();
              pending := None;
              let k = "op." ^ Obs.Span.kind_to_string kind in
              (match metrics with
              | None -> ()
              | Some reg ->
                  Obs.Metrics.incr reg (k ^ ".completed");
                  Obs.Metrics.observe_int reg (k ^ ".rounds")
                    ~bounds:Obs.Metrics.round_bounds span.Obs.Span.rounds;
                  Obs.Metrics.observe_int reg (k ^ ".latency_us")
                    ~bounds:Obs.Metrics.wallclock_bounds
                    (now - span.Obs.Span.started_at);
                  Obs.Metrics.observe_int reg (k ^ ".replies")
                    ~bounds:Obs.Metrics.count_bounds span.Obs.Span.replies;
                  Obs.Metrics.observe_int reg (k ^ ".contacted")
                    ~bounds:Obs.Metrics.count_bounds
                    (List.length (Obs.Span.contacted span)));
              Ok
                {
                  value;
                  rounds;
                  retransmits = !retransmits;
                  latency_us = now - span.Obs.Span.started_at;
                }
          | None ->
              let timeout = !deadline -. now_f () in
              if timeout <= 0. then
                if attempt >= opts.retries then begin
                  count ("op." ^ Obs.Span.kind_to_string kind ^ ".timeout");
                  Error
                    (Printf.sprintf
                       "%s by %s timed out after %d attempts (%.1fs deadline, \
                        connected objects: %s)"
                       (Obs.Span.kind_to_string kind)
                       proc (attempt + 1) opts.deadline
                       (match connected () with
                       | [] -> "none"
                       | l -> String.concat "," (List.map string_of_int l)))
                end
                else begin
                  incr retransmits;
                  count "net.client.retransmits";
                  Thread.delay (opts.backoff *. (2. ** float_of_int attempt));
                  ensure_conns ();
                  broadcast !current;
                  deadline := now_f () +. opts.deadline;
                  loop (attempt + 1)
                end
              else
                let fds =
                  Array.to_list conns |> List.filter_map (fun c -> c.fd)
                in
                if fds = [] then begin
                  (* Every endpoint is down: pace reconnect attempts
                     until the deadline machinery decides. *)
                  Thread.delay (Float.min 0.01 timeout);
                  ensure_conns ();
                  loop attempt
                end
                else (
                  match Unix.select fds [] [] timeout with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                      loop attempt
                  | ready, _, _ ->
                      List.iter handle_readable ready;
                      loop attempt)
        in
        loop 0
  in
  let write_, read_ =
    match role with
    | `Writer ->
        let writer = ref (P.writer_init ~cfg) in
        let pending = ref None in
        let write v =
          run_op ~kind:Obs.Span.Write ~pending
            ~start:(fun () ->
              match P.writer_start !writer v with
              | Ok (w, m) ->
                  writer := w;
                  Ok m
              | Error e -> Error e)
            ~feed:(fun ~obj m ->
              let w, evs = P.writer_on_msg !writer ~obj m in
              writer := w;
              evs)
        in
        (write, fun () -> invalid_arg "Client.read: this client is the writer")
    | `Reader j ->
        let rd = ref (P.reader_init ~cfg ~j) in
        let pending = ref None in
        let read () =
          run_op
            ~kind:(Obs.Span.Read { reader = j })
            ~pending
            ~start:(fun () ->
              match P.reader_start !rd with
              | Ok (r, m) ->
                  rd := r;
                  Ok m
              | Error e -> Error e)
            ~feed:(fun ~obj m ->
              let r, evs = P.reader_on_msg !rd ~obj m in
              rd := r;
              evs)
        in
        ((fun _ -> invalid_arg "Client.write: this client is a reader"), read)
  in
  {
    write_;
    read_;
    close_ = (fun () -> Array.iter drop conns);
    connected_ = connected;
    collector;
  }

let write t v = t.write_ v

let read t = t.read_ ()

let spans t = Obs.Span.spans t.collector

let connected t = t.connected_ ()

let close t = t.close_ ()
