(** Socket-level fault interposer: a transparent per-object proxy that
    applies a fault plan's network actions to real wire traffic.

    One interposer fronts one server.  Clients dial the interposer's
    endpoint; every accepted connection is paired with a fresh upstream
    connection to the real server (a dial that fails while the server is
    crashed simply closes the client side — exactly what dialing a dead
    server looks like).  Each direction of a pair is relayed as a stream
    of {e opaque frames}: the codec's self-delimiting length prefix lets
    the proxy cut frame boundaries without decoding protocol bytes, so
    batched flushes — N frames in one [write] — survive interposition
    byte-identically when no rule fires.

    Rules are windowed in a shared microsecond clock and matched per
    frame by direction and (optionally) the frame's effective sender:
    the session's [Hello] sender, or the inline sender of a [Msg_from]
    frame, so pipelined traffic attributes per reader automaton.  A
    matched frame can be dropped, delayed, duplicated, corrupted (body
    bytes scrambled {e after} the frame header, so the result still
    parses as a frame and exercises the peer's total decoding), or
    reordered (held back until the next frame on the link passes).

    {!set_rules} replaces the rule set atomically; the live fault
    backend compiles a {!Fault.Plan} into one rule list per object up
    front, windows included, so a running campaign never races rule
    updates against traffic. *)

type direction =
  | To_server  (** client → server: requests *)
  | To_client  (** server → client: replies *)

type action =
  | Drop
  | Delay of int  (** microseconds, added before forwarding *)
  | Duplicate of int  (** extra copies forwarded after the original *)
  | Corrupt
      (** scramble the payload past the frame header: still a frame,
          no longer a valid message — the live stand-in for a
          Byzantine object's garbage *)
  | Reorder
      (** hold the frame until the next one on this direction passes
          (flushed after a short quiet period, or at window end) *)

type rule = {
  dir : direction;
  sender : string option;
      (** match only frames attributed to this process name ("w",
          "r2"); [None] matches every frame *)
  from_us : int;  (** window start, shared-clock microseconds *)
  until_us : int;  (** window end; [max_int] = until stopped *)
  act : action;
}

type stats = {
  forwarded : int;  (** frames relayed unmodified *)
  dropped : int;
  delayed : int;
  duplicated : int;  (** extra copies sent *)
  corrupted : int;
  reordered : int;
}

type t

val start :
  ?rules:rule list ->
  now_us:(unit -> int) ->
  listen:Endpoint.t ->
  target:Endpoint.t ->
  unit ->
  t
(** Bind [listen] and relay every accepted connection to [target].
    [now_us] is the clock rule windows are evaluated against (the
    cluster passes its shared clock so plan ticks and history
    timestamps agree).  @raise Unix.Unix_error if [listen] cannot be
    bound. *)

val endpoint : t -> Endpoint.t
(** The client-facing address (ephemeral TCP ports resolved). *)

val target : t -> Endpoint.t

val set_rules : t -> rule list -> unit
(** Atomically replace the active rules; takes effect on the next
    frame. *)

val rules : t -> rule list

val stats : t -> stats

val stop : t -> unit
(** Close the listener and every relayed connection; idempotent. *)
