(* Treiber-stack MPSC queue: producers CAS-cons onto an atomic list
   head, the consumer exchanges the whole head for [] and reverses it,
   restoring per-producer FIFO order.  Push and drain are both
   lock-free and allocation is one cons cell per element, so the
   cross-domain handoff path stays off every mutex in the server. *)

type 'a t = { head : 'a list Atomic.t }

let create () = { head = Atomic.make [] }

let push t x =
  let rec loop () =
    let old = Atomic.get t.head in
    if not (Atomic.compare_and_set t.head old (x :: old)) then loop ()
  in
  loop ()

let drain t =
  match Atomic.get t.head with
  | [] -> []
  | _ -> List.rev (Atomic.exchange t.head [])

let is_empty t = Atomic.get t.head == []
