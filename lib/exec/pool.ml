let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* One failed task is remembered (preferring the smallest index, so the
   re-raised exception is deterministic when tasks fail determin-
   istically); the flag doubles as a cooperative cancellation signal
   that makes the remaining workers stop stealing chunks. *)
type failure = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

let record_failure cell index exn backtrace =
  let rec loop () =
    match Atomic.get cell with
    | Some f when f.index <= index -> ()
    | prev ->
        if not (Atomic.compare_and_set cell prev (Some { index; exn; backtrace }))
        then loop ()
  in
  loop ()

let init ?jobs ?chunk n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  let jobs =
    match jobs with
    | Some j -> max 1 (min j n)
    | None -> max 1 (min (recommended_jobs ()) n)
  in
  if n = 0 then [||]
  else if jobs = 1 then Array.init n f
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (8 * jobs))
    in
    (* Distinct indices write distinct slots, and Domain.join publishes
       every worker's writes to the caller, so the plain array needs no
       further synchronization. *)
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failed : failure option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        if Atomic.get failed <> None then continue := false
        else begin
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n then continue := false
          else
            let stop = min n (start + chunk) in
            let i = ref start in
            while !i < stop do
              (match f !i with
              | v -> results.(!i) <- Some v
              | exception e ->
                  record_failure failed !i e (Printexc.get_raw_backtrace ()));
              incr i
            done
        end
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failed with
    | Some { exn; backtrace; _ } -> Printexc.raise_with_backtrace exn backtrace
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* no failure recorded *))
          results
  end

let map ?jobs ?chunk f xs =
  let a = Array.of_list xs in
  Array.to_list (init ?jobs ?chunk (Array.length a) (fun i -> f a.(i)))

let map_array ?jobs ?chunk f xs =
  init ?jobs ?chunk (Array.length xs) (fun i -> f xs.(i))
