(** Lock-free multi-producer single-consumer handoff queue.

    The acceptor domain pushes accepted connections (or any message)
    from any domain; the owning worker domain drains them in batches.
    Built on the same atomic-CAS idiom as {!Pool}'s work-stealing
    cursor: a Treiber stack whose consumer exchanges the whole head and
    reverses it, which preserves FIFO order per producer.

    Progress: [push] is lock-free (a CAS loop that only retries when
    another producer landed first); [drain] is wait-free apart from one
    atomic exchange.  Memory ordering: everything the producer wrote
    before [push] is visible to the consumer after [drain] returns the
    element (the atomics are sequentially consistent). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Safe from any domain, any number of producers. *)

val drain : 'a t -> 'a list
(** Remove and return all pending elements, oldest first per producer.
    Must be called from a single consumer domain at a time. *)

val is_empty : 'a t -> bool
(** Snapshot; racy by nature, exact once producers have quiesced. *)
