(** Fixed-size domain pool with chunked work-stealing.

    The pool fans an indexed family of independent tasks across OCaml 5
    domains and returns the results in input-index order, so a parallel
    run is observationally identical to the serial one whenever each
    task is a pure function of its index.  That is exactly the shape of
    this repository's heavy loops: every campaign cell, bench point and
    random-walk batch builds its own engine and PRNG from its own seed,
    so cells never share mutable state and the only cross-cell step is
    an ordered reduction (counter sums, histogram merges, list concat)
    performed by the caller on the returned array.

    Scheduling is dynamic: workers repeatedly steal the next chunk of
    indices from a shared atomic cursor, so long and short tasks mix
    without a static partition's stragglers.  Chunks only affect which
    domain computes which index — never the result order.

    Failure semantics: if any task raises, the pool finishes or
    abandons the remaining work, joins every domain, and re-raises one
    of the task exceptions (the recorded one with the smallest index)
    in the calling domain.  No exception is silently dropped. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1.  The default
    worker count for every function below and for each [--jobs] CLI
    flag. *)

val init : ?jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] computes [[| f 0; ...; f (n-1) |]] on up to [jobs]
    domains (default {!recommended_jobs}, clamped to [1 <= jobs <= n]).
    [jobs = 1] runs serially in the calling domain with no domain
    spawned at all.  [chunk] (default: [n / (8 * jobs)], at least 1)
    sets the steal granularity.  [f] must be safe to call from another
    domain and must not share unsynchronized mutable state across
    indices. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] = [List.map f xs], fanned across domains; result order
    is the input order regardless of [jobs]. *)

val map_array : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f xs] = [Array.map f xs], fanned across domains. *)
