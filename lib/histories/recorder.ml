type op_handle = int

type 'v pending =
  | Pending_write of { index : int; value : 'v }
  | Pending_read of { reader : int }

type 'v open_op = { invoked_at : int; invoked_stamp : int; pending : 'v pending }

(* Open-op and busy-reader bookkeeping is hashed, not kept in assoc
   lists: the pipelined runtime records an invoke/respond pair per
   operation with up to the whole window open at once, so per-event cost
   must stay O(1) in the window size. *)
type 'v t = {
  mutable next_id : int;
  mutable next_stamp : int;
  mutable writes_so_far : int;
  mutable writer_busy : bool;
  busy_readers : (int, unit) Hashtbl.t;
  open_ops : (int, 'v open_op) Hashtbl.t;
  mutable finished : 'v Op.t list;  (* reverse response order *)
}

let create () =
  {
    next_id = 0;
    next_stamp = 0;
    writes_so_far = 0;
    writer_busy = false;
    busy_readers = Hashtbl.create 16;
    open_ops = Hashtbl.create 64;
    finished = [];
  }

let fresh_stamp t =
  let s = t.next_stamp in
  t.next_stamp <- s + 1;
  s

let invoke t ~time pending =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry = { invoked_at = time; invoked_stamp = fresh_stamp t; pending } in
  Hashtbl.replace t.open_ops id entry;
  id

let invoke_write t ~time value =
  if t.writer_busy then
    invalid_arg "Recorder.invoke_write: writer already has an operation in progress";
  t.writer_busy <- true;
  t.writes_so_far <- t.writes_so_far + 1;
  invoke t ~time (Pending_write { index = t.writes_so_far; value })

let invoke_read t ~time ~reader =
  if Hashtbl.mem t.busy_readers reader then
    invalid_arg "Recorder.invoke_read: reader already has an operation in progress";
  Hashtbl.replace t.busy_readers reader ();
  invoke t ~time (Pending_read { reader })

let close t handle entry ~time action =
  Hashtbl.remove t.open_ops handle;
  let stamp = fresh_stamp t in
  let op =
    {
      Op.id = handle;
      action;
      invoked_at = entry.invoked_at;
      invoked_stamp = entry.invoked_stamp;
      responded_at = Some time;
      responded_stamp = Some stamp;
    }
  in
  t.finished <- op :: t.finished

let respond_write t handle ~time =
  match Hashtbl.find_opt t.open_ops handle with
  | Some ({ pending = Pending_write { index; value }; _ } as entry) ->
      t.writer_busy <- false;
      close t handle entry ~time (Op.Write { index; value })
  | Some { pending = Pending_read _; _ } ->
      invalid_arg "Recorder.respond_write: handle belongs to a read"
  | None ->
      invalid_arg "Recorder.respond_write: unknown or already-closed operation"

let respond_read t handle ~time result =
  match Hashtbl.find_opt t.open_ops handle with
  | Some ({ pending = Pending_read { reader }; _ } as entry) ->
      Hashtbl.remove t.busy_readers reader;
      close t handle entry ~time (Op.Read { reader; result = Some result })
  | Some { pending = Pending_write _; _ } ->
      invalid_arg "Recorder.respond_read: handle belongs to a write"
  | None ->
      invalid_arg "Recorder.respond_read: unknown or already-closed operation"

let ops t =
  let open_as_ops =
    Hashtbl.fold
      (fun id { invoked_at; invoked_stamp; pending } acc ->
        let action =
          match pending with
          | Pending_write { index; value } -> Op.Write { index; value }
          | Pending_read { reader } -> Op.Read { reader; result = None }
        in
        {
          Op.id;
          action;
          invoked_at;
          invoked_stamp;
          responded_at = None;
          responded_stamp = None;
        }
        :: acc)
      t.open_ops []
  in
  let all = List.rev_append t.finished open_as_ops in
  List.sort (fun a b -> Int.compare a.Op.invoked_stamp b.Op.invoked_stamp) all

let write_count t = t.writes_so_far

let read_count t = List.length (List.filter Op.is_read (ops t))

let complete_reads t =
  List.filter (fun op -> Op.is_read op && Op.is_complete op) (ops t)

let pp ~pp_value ppf t =
  List.iter (fun op -> Format.fprintf ppf "%a@." (Op.pp ~pp_value) op) (ops t)
