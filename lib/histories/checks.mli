(** Consistency checkers for SWMR register histories (paper §2.2).

    Each checker consumes a finished history ({!Recorder.ops}) and returns
    the list of violating reads — empty means the property holds.  The
    properties are exactly the paper's:

    - {b safety}: a READ not concurrent with any WRITE returns the value
      of the last preceding WRITE (or ⊥ if there is none); a concurrent
      READ may return anything.
    - {b regularity}: (1) reads return only written values (or ⊥ before
      any write), (2) a read succeeding [wr_k] returns [val_l] with
      [l >= k], (3) a read returning [val_k] has [wr_k] preceding or
      concurrent with it.
    - {b atomicity}: regularity plus no new-old inversion between reads
      (Lamport's characterization for single-writer registers); requires
      distinct write values to identify which write a read observed. *)

type 'v violation = {
  read : 'v Op.t;
  rule : string;  (** which clause failed *)
  detail : string;  (** human-readable explanation *)
}

val check_safety : equal:('v -> 'v -> bool) -> 'v Op.t list -> 'v violation list

val check_regularity :
  equal:('v -> 'v -> bool) -> 'v Op.t list -> 'v violation list

val check_atomicity :
  equal:('v -> 'v -> bool) -> 'v Op.t list -> 'v violation list
(** @raise Invalid_argument if two writes carry equal values (the
    observed-write index would be ambiguous). *)

val check_wait_freedom : quiescent:bool -> 'v Op.t list -> 'v violation list
(** Wait-freedom watchdog (paper §2.2: every operation by a correct
    client eventually completes).  In a finite run the verdict is only
    meaningful once the simulator has drained its event queue: a pending
    operation with no event left that could ever complete it is a
    liveness violation.  Callers pass [quiescent = true] when the run
    ended by exhausting events (not by an event or time budget); with
    [quiescent = false] the checker abstains and returns []. *)

val is_wait_free : quiescent:bool -> 'v Op.t list -> bool

val is_safe : equal:('v -> 'v -> bool) -> 'v Op.t list -> bool

val is_regular : equal:('v -> 'v -> bool) -> 'v Op.t list -> bool

val is_atomic : equal:('v -> 'v -> bool) -> 'v Op.t list -> bool

val pp_violation :
  pp_value:(Format.formatter -> 'v -> unit) ->
  Format.formatter ->
  'v violation ->
  unit
