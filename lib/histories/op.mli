(** Operations and the precedence relation (paper §2.2).

    A history is a set of READ/WRITE operations with invocation and
    response events.  Events carry both the simulated time (for reports)
    and a strictly increasing stamp (for an unambiguous precedence
    relation: [op1] precedes [op2] iff [op1]'s response stamp is smaller
    than [op2]'s invocation stamp). *)

type 'v read_result =
  | Bottom  (** the initial value ⊥, never a valid WRITE input *)
  | Value of 'v

type 'v action =
  | Write of { index : int; value : 'v }
      (** [index] is k for the k-th WRITE (1-based); single-writer
          histories order writes naturally. *)
  | Read of { reader : int; result : 'v read_result option }
      (** [result = None] iff the READ never completed. *)

type 'v t = {
  id : int;
  action : 'v action;
  invoked_at : int;  (** simulated time of invocation *)
  invoked_stamp : int;
  responded_at : int option;  (** simulated time of response, if any *)
  responded_stamp : int option;
}

val is_complete : 'v t -> bool

val is_write : 'v t -> bool

val is_read : 'v t -> bool

val precedes : 'v t -> 'v t -> bool
(** [precedes a b]: [a] completed before [b] was invoked. *)

val concurrent : 'v t -> 'v t -> bool
(** Neither precedes the other (and they are distinct operations). *)

val write_index : 'v t -> int option

val read_result : 'v t -> 'v read_result option
(** The result of a complete READ; [None] for writes or incomplete
    reads. *)

val pp : pp_value:(Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit
