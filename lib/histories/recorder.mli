(** Mutable history recorder.

    Protocol clients call [invoke_*]/[respond_*] as their operations start
    and finish; the recorder assigns ids and monotonic stamps and hands the
    finished history to the checkers.  Write indices are assigned in
    invocation order, matching the paper's single-writer numbering
    [wr_1, wr_2, …]. *)

type 'v t

type op_handle

val create : unit -> 'v t

val invoke_write : 'v t -> time:int -> 'v -> op_handle
(** @raise Invalid_argument if a write is already in progress (the paper's
    single writer invokes one operation at a time). *)

val respond_write : 'v t -> op_handle -> time:int -> unit

val invoke_read : 'v t -> time:int -> reader:int -> op_handle
(** @raise Invalid_argument if this reader already has a read in
    progress. *)

val respond_read : 'v t -> op_handle -> time:int -> 'v Op.read_result -> unit

val ops : 'v t -> 'v Op.t list
(** All operations, in invocation order; in-progress operations appear
    with [responded_stamp = None]. *)

val write_count : 'v t -> int

val read_count : 'v t -> int

val complete_reads : 'v t -> 'v Op.t list

val pp :
  pp_value:(Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit
