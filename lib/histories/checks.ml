type 'v violation = { read : 'v Op.t; rule : string; detail : string }

let writes ops = List.filter Op.is_write ops

let complete_reads ops =
  List.filter (fun op -> Op.is_read op && Op.is_complete op) ops

(* Highest index among complete writes that precede [rd]; 0 if none. *)
let last_preceding_write_index ops rd =
  List.fold_left
    (fun acc wr ->
      match Op.write_index wr with
      | Some k when Op.precedes wr rd -> max acc k
      | Some _ | None -> acc)
    0 (writes ops)

let value_of_write ops k =
  List.find_map
    (fun wr ->
      match wr.Op.action with
      | Op.Write { index; value } when index = k -> Some value
      | Op.Write _ | Op.Read _ -> None)
    ops

(* Indices k such that val_k = x among all invoked writes. *)
let indices_of_value ~equal ops x =
  List.filter_map
    (fun wr ->
      match wr.Op.action with
      | Op.Write { index; value } when equal value x -> Some (index, wr)
      | Op.Write _ | Op.Read _ -> None)
    ops

let check_safety ~equal ops =
  let has_concurrent_write rd =
    List.exists (fun wr -> Op.concurrent wr rd) (writes ops)
  in
  List.filter_map
    (fun rd ->
      if has_concurrent_write rd then None
      else
        let k = last_preceding_write_index ops rd in
        match (Op.read_result rd, k) with
        | Some Op.Bottom, 0 -> None
        | Some Op.Bottom, k ->
            Some
              {
                read = rd;
                rule = "safety";
                detail =
                  Printf.sprintf
                    "returned bottom although wr%d precedes the read" k;
              }
        | Some (Op.Value x), 0 ->
            ignore x;
            Some
              {
                read = rd;
                rule = "safety";
                detail = "returned a value although no write precedes the read";
              }
        | Some (Op.Value x), k -> (
            match value_of_write ops k with
            | Some vk when equal vk x -> None
            | Some _ ->
                Some
                  {
                    read = rd;
                    rule = "safety";
                    detail =
                      Printf.sprintf
                        "returned a value different from val%d (the last \
                         preceding write)"
                        k;
                  }
            | None ->
                Some
                  {
                    read = rd;
                    rule = "safety";
                    detail = Printf.sprintf "internal: missing wr%d" k;
                  })
        | None, _ -> None)
    (complete_reads ops)

let check_regularity ~equal ops =
  List.filter_map
    (fun rd ->
      let kmin = last_preceding_write_index ops rd in
      match Op.read_result rd with
      | Some Op.Bottom ->
          if kmin = 0 then None
          else
            Some
              {
                read = rd;
                rule = "regularity(2)";
                detail =
                  Printf.sprintf
                    "returned bottom although wr%d precedes the read" kmin;
              }
      | Some (Op.Value x) -> (
          match indices_of_value ~equal ops x with
          | [] ->
              Some
                {
                  read = rd;
                  rule = "regularity(1)";
                  detail = "returned a value that was never written";
                }
          | candidates ->
              let admissible (k, wr) =
                k >= kmin && (Op.precedes wr rd || Op.concurrent wr rd)
              in
              if List.exists admissible candidates then None
              else if List.exists (fun (k, _) -> k < kmin) candidates then
                Some
                  {
                    read = rd;
                    rule = "regularity(2)";
                    detail =
                      Printf.sprintf
                        "returned a stale value: every matching write has \
                         index < %d"
                        kmin;
                  }
              else
                Some
                  {
                    read = rd;
                    rule = "regularity(3)";
                    detail =
                      "returned a value whose write neither precedes nor is \
                       concurrent with the read";
                  })
      | None -> None)
    (complete_reads ops)

let observed_index ~equal ops rd =
  match Op.read_result rd with
  | Some Op.Bottom -> Some 0
  | Some (Op.Value x) -> (
      match indices_of_value ~equal ops x with
      | [ (k, _) ] -> Some k
      | [] -> None
      | _ :: _ :: _ ->
          invalid_arg
            "Checks.check_atomicity: duplicate write values make the \
             observed-write index ambiguous")
  | None -> None

let check_atomicity ~equal ops =
  let regularity = check_regularity ~equal ops in
  let reads = complete_reads ops in
  let inversions =
    List.concat_map
      (fun rd1 ->
        List.filter_map
          (fun rd2 ->
            if not (Op.precedes rd1 rd2) then None
            else
              match (observed_index ~equal ops rd1, observed_index ~equal ops rd2) with
              | Some k1, Some k2 when k1 > k2 ->
                  Some
                    {
                      read = rd2;
                      rule = "atomicity(new-old inversion)";
                      detail =
                        Printf.sprintf
                          "read observed wr%d although a preceding read \
                           already observed wr%d"
                          k2 k1;
                    }
              | _ -> None)
          reads)
      reads
  in
  regularity @ inversions

let check_wait_freedom ~quiescent ops =
  if not quiescent then []
  else
    List.filter_map
      (fun op ->
        if Op.is_complete op then None
        else
          let what =
            match op.Op.action with
            | Op.Read { reader; _ } -> Printf.sprintf "READ by r%d" reader
            | Op.Write { index; _ } -> Printf.sprintf "WRITE wr%d" index
          in
          Some
            {
              read = op;
              rule = "wait-freedom";
              detail =
                Printf.sprintf
                  "%s invoked at %d never completed although the event queue \
                   drained"
                  what op.Op.invoked_at;
            })
      ops

let is_wait_free ~quiescent ops = check_wait_freedom ~quiescent ops = []

let is_safe ~equal ops = check_safety ~equal ops = []

let is_regular ~equal ops = check_regularity ~equal ops = []

let is_atomic ~equal ops = check_atomicity ~equal ops = []

let pp_violation ~pp_value ppf v =
  Format.fprintf ppf "%s: %a -- %s" v.rule (Op.pp ~pp_value) v.read v.detail
