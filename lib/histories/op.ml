type 'v read_result = Bottom | Value of 'v

type 'v action =
  | Write of { index : int; value : 'v }
  | Read of { reader : int; result : 'v read_result option }

type 'v t = {
  id : int;
  action : 'v action;
  invoked_at : int;
  invoked_stamp : int;
  responded_at : int option;
  responded_stamp : int option;
}

let is_complete op = Option.is_some op.responded_stamp

let is_write op = match op.action with Write _ -> true | Read _ -> false

let is_read op = match op.action with Read _ -> true | Write _ -> false

let precedes a b =
  match a.responded_stamp with
  | None -> false
  | Some resp -> resp < b.invoked_stamp

let concurrent a b = a.id <> b.id && (not (precedes a b)) && not (precedes b a)

let write_index op =
  match op.action with Write { index; _ } -> Some index | Read _ -> None

let read_result op =
  match op.action with
  | Read { result; _ } -> result
  | Write _ -> None

let pp ~pp_value ppf op =
  let pp_window ppf () =
    match op.responded_at with
    | Some t -> Format.fprintf ppf "[%d,%d]" op.invoked_at t
    | None -> Format.fprintf ppf "[%d,+inf)" op.invoked_at
  in
  match op.action with
  | Write { index; value } ->
      Format.fprintf ppf "wr%d(%a)%a" index pp_value value pp_window ()
  | Read { reader; result } ->
      let pp_result ppf = function
        | None -> Format.pp_print_string ppf "?"
        | Some Bottom -> Format.pp_print_string ppf "_|_"
        | Some (Value v) -> pp_value ppf v
      in
      Format.fprintf ppf "rd(r%d)=%a%a" reader pp_result result pp_window ()
