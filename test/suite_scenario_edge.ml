(* Edge-case scenario tests: writer crashes mid-write, reader session
   guarantees, bursts of racing readers, and report determinism. *)

module S = Core.Scenario.Make (Core.Proto_safe)
module R = Core.Scenario.Make (Core.Proto_regular.Plain)
module O = Core.Scenario.Make (Core.Proto_regular.Optimized)

let equal = String.equal

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

let test_writer_crash_mid_write () =
  (* The writer crashes a few time units into its second write: the
     write never completes, but reads must keep terminating and the
     history must stay regular (the half-written value counts as
     concurrent with everything after). *)
  let schedule =
    [
      (0, Core.Schedule.Write (Core.Value.v "v1"));
      (100, Core.Schedule.Read { reader = 1 });
      (200, Core.Schedule.Write (Core.Value.v "v2"));
      (300, Core.Schedule.Read { reader = 1 });
      (400, Core.Schedule.Read { reader = 2 });
    ]
  in
  let faults = { R.crashes = [ (Sim.Proc_id.Writer, 203) ]; byzantine = [] } in
  let rep =
    R.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:13 ~delay:uniform ~faults
      schedule
  in
  let completed_reads =
    List.length
      (List.filter
         (fun (o : R.outcome) ->
           match o.op with Core.Schedule.Read _ -> true | _ -> false)
         rep.outcomes)
  in
  Alcotest.(check int) "all reads complete despite writer crash" 3
    completed_reads;
  Alcotest.(check bool) "regular" true
    (Histories.Checks.is_regular ~equal rep.history);
  (* each read returned v1 or v2 (both written or being written) *)
  List.iter
    (fun (o : R.outcome) ->
      match (o.op, o.result) with
      | Core.Schedule.Read _, Some v ->
          Alcotest.(check bool) "plausible value" true
            (Core.Value.equal v (Core.Value.v "v1")
            || Core.Value.equal v (Core.Value.v "v2"))
      | _ -> ())
    rep.outcomes

let test_writer_crash_before_any_ack () =
  (* Crash at the instant of the first write's invocation: no object may
     ever learn the value; reads return bottom and terminate. *)
  let schedule =
    [
      (10, Core.Schedule.Write (Core.Value.v "never"));
      (100, Core.Schedule.Read { reader = 1 });
    ]
  in
  let faults = { S.crashes = [ (Sim.Proc_id.Writer, 10) ]; byzantine = [] } in
  let rep =
    S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:14 ~delay:uniform ~faults
      schedule
  in
  match
    List.find_opt
      (fun (o : S.outcome) ->
        match o.op with Core.Schedule.Read _ -> true | _ -> false)
      rep.outcomes
  with
  | Some o ->
      Alcotest.(check bool) "read terminated" true (o.completed_at > 0);
      Alcotest.(check bool) "returned bottom" true
        (o.result = Some Core.Value.bottom)
  | None -> Alcotest.fail "read did not complete"

let test_optimized_reads_are_monotone_per_reader () =
  (* Session guarantee of the S5.1 cache: a reader never observes an
     older write than one it already returned (candidates are pruned
     below the cached timestamp). *)
  let rng = Sim.Prng.create ~seed:15 in
  let schedule =
    Core.Schedule.merge
      (List.init 10 (fun i ->
           (i * 60, Core.Schedule.Write (Workload.Generate.payload (i + 1)))))
      (Workload.Generate.poisson_reads ~rng ~readers:1 ~mean_gap:25.0
         ~horizon:650)
  in
  let rep =
    O.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:15 ~delay:uniform
      ~faults:O.no_faults schedule
  in
  let index_of = function
    | Core.Value.Bottom -> 0
    | Core.Value.V s -> int_of_string (String.sub s 1 (String.length s - 1))
  in
  let reads =
    List.filter_map
      (fun (o : O.outcome) ->
        match (o.op, o.result) with
        | Core.Schedule.Read _, Some v -> Some (index_of v)
        | _ -> None)
      rep.outcomes
  in
  Alcotest.(check bool) "several reads happened" true (List.length reads >= 5);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "reader never goes back in time" true (monotone reads)

let test_read_burst_races () =
  (* Five readers firing bursts at the same instant exercise the
     per-reader tsr discipline at the objects; everything terminates in
     <= 2 rounds and the history is regular. *)
  let schedule =
    Core.Schedule.merge
      [
        (0, Core.Schedule.Write (Core.Value.v "v1"));
        (50, Core.Schedule.Write (Core.Value.v "v2"));
      ]
      (Core.Schedule.merge
         (Workload.Generate.read_burst ~readers:5 ~reads_per_reader:3 ~at:30)
         (Workload.Generate.read_burst ~readers:5 ~reads_per_reader:2 ~at:60))
  in
  let rep =
    R.run ~cfg:(Quorum.Config.optimal ~t:2 ~b:1) ~seed:16 ~delay:uniform
      ~faults:R.no_faults schedule
  in
  Alcotest.(check int) "all ops complete" (List.length schedule)
    (List.length rep.outcomes);
  Alcotest.(check bool) "regular" true
    (Histories.Checks.is_regular ~equal rep.history);
  Alcotest.(check bool) "reads within two rounds" true
    (List.for_all
       (fun (o : R.outcome) ->
         match o.op with Core.Schedule.Read _ -> o.rounds <= 2 | _ -> true)
       rep.outcomes)

let test_report_determinism () =
  let go () =
    let rng = Sim.Prng.create ~seed:17 in
    let schedule =
      Workload.Generate.read_mostly ~rng ~writes:3 ~readers:2
        ~reads_per_reader:3 ~horizon:400
    in
    let rep =
      S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:17 ~delay:uniform
        ~faults:
          { S.crashes = []; byzantine = [ (1, Fault.Strategies.random_garbage) ] }
        schedule
    in
    List.map
      (fun (o : S.outcome) -> (o.invoked_at, o.completed_at, o.rounds, o.result))
      rep.outcomes
  in
  Alcotest.(check bool) "identical outcome streams" true (go () = go ())

let test_different_seed_differs () =
  let go seed =
    let rep =
      S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed ~delay:uniform
        ~faults:S.no_faults
        [
          (0, Core.Schedule.Write (Core.Value.v "v1"));
          (50, Core.Schedule.Read { reader = 1 });
        ]
    in
    List.map (fun (o : S.outcome) -> o.completed_at) rep.outcomes
  in
  Alcotest.(check bool) "different seeds give different timings" true
    (go 1 <> go 2)

let test_max_events_guard () =
  (* A tiny budget stops the run midway without raising. *)
  let rep =
    S.run ~max_events:5 ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:18
      ~delay:uniform ~faults:S.no_faults
      [ (0, Core.Schedule.Write (Core.Value.v "v1")) ]
  in
  Alcotest.(check int) "events capped" 5 rep.events_processed

let suite =
  ( "scenario-edge",
    [
      Alcotest.test_case "writer crash mid-write" `Quick test_writer_crash_mid_write;
      Alcotest.test_case "writer crash before any ack" `Quick
        test_writer_crash_before_any_ack;
      Alcotest.test_case "optimized reads monotone" `Quick
        test_optimized_reads_are_monotone_per_reader;
      Alcotest.test_case "read burst races" `Quick test_read_burst_races;
      Alcotest.test_case "report determinism" `Quick test_report_determinism;
      Alcotest.test_case "different seed differs" `Quick test_different_seed_differs;
      Alcotest.test_case "max_events guard" `Quick test_max_events_guard;
    ] )
