(* Multi-domain server group: sharding, backpressure, graceful drain.

   The start_group runtime promises (ISSUE 8):
   - graceful stop drains each connection's write queue before closing:
     a client that keeps reading sees only complete, decodable frames
     and then a clean EOF — never a truncated frame;
   - a slow reader's full write queue pauses only that connection (the
     server stops reading it until the queue drains) and no reply is
     ever dropped: every request eventually gets its complete response;
   - base objects are partitioned across worker domains (owner = slot
     mod domains) and no automaton is ever stepped outside its owner,
     across accept, reconnect and crash/restart churn;
   - the acceptor->worker handoff queue delivers every element exactly
     once, FIFO per producer, under concurrent multi-domain pushes;
   - the metrics JSONL export round-trips (the 'load' driver merges
     per-process registries through it). *)

let cfg4 = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0

let codec = Net.Codec.messages

let protocol = Net.Protocols.safe

let fresh_tmpdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "scaleout-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let start_group ?metrics ?queue_hi ~domains () =
  let dir = fresh_tmpdir () in
  let endpoints =
    Array.init 4 (fun i ->
        Net.Endpoint.Unix_sock
          (Filename.concat dir (Printf.sprintf "obj%d.sock" (i + 1))))
  in
  let servers =
    Net.Server.start_group ?metrics ?queue_hi ~domains ~protocol ~cfg:cfg4
      endpoints
  in
  (servers, Array.map Net.Server.endpoint servers, dir)

let seed_write endpoints =
  let w = Net.Client.connect ~protocol ~cfg:cfg4 ~role:`Writer endpoints in
  (match Net.Client.write w (Core.Value.v "durable") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed write failed: %s" e);
  Net.Client.close w

(* ----- raw-socket helpers ----------------------------------------------- *)

(* A hand-driven connection: lets the tests control exactly when bytes
   are read, which is how a "slow reader" is built. *)
let raw_connect ~sender ep =
  let fd = Unix.socket (Net.Endpoint.socket_domain ep) Unix.SOCK_STREAM 0 in
  Unix.connect fd (Net.Endpoint.to_sockaddr ep);
  Net.Codec.send fd
    (Net.Codec.encode_frame codec (Net.Codec.Hello { proto = "safe"; sender; obj = 0 }));
  let reader = Net.Codec.Reader.create () in
  let rec await_ack () =
    match Net.Codec.Reader.next codec reader with
    | Ok (`Frame (Net.Codec.Hello_ack _)) -> ()
    | Ok (`Frame f) ->
        Alcotest.failf "expected hello_ack, got %s"
          (Net.Codec.frame_info ~msg_info:(fun _ -> "msg") f)
    | Ok `Awaiting ->
        if Net.Codec.recv_into fd reader = 0 then
          Alcotest.fail "EOF before hello_ack"
        else await_ack ()
    | Error e -> Alcotest.failf "corrupt hello_ack: %s" e
  in
  await_ack ();
  (fd, reader)

(* Read frames until EOF; returns the decoded count.  Any decode error
   fails the test — that is the drain guarantee under scrutiny. *)
let drain_until_eof what fd reader =
  let n = ref 0 in
  let rec go () =
    match Net.Codec.Reader.next codec reader with
    | Ok (`Frame (Net.Codec.Msg_from _ | Net.Codec.Msg _)) ->
        incr n;
        go ()
    | Ok (`Frame f) ->
        Alcotest.failf "%s: unexpected frame %s" what
          (Net.Codec.frame_info ~msg_info:(fun _ -> "msg") f)
    | Ok `Awaiting ->
        if Net.Codec.recv_into fd reader = 0 then begin
          (* clean EOF: no partial frame may remain buffered *)
          Alcotest.(check int)
            (what ^ ": no truncated frame at EOF")
            0
            (Net.Codec.Reader.pending reader);
          !n
        end
        else go ()
    | Error e -> Alcotest.failf "%s: decode error mid-drain: %s" what e
  in
  go ()

let read1_frame ~sender ~tsr =
  Net.Codec.encode_frame codec
    (Net.Codec.Msg_from
       { sender; msg = Core.Messages.Read1 { tsr; from_ts = 0 } })

(* ----- graceful stop drains write queues -------------------------------- *)

let graceful_stop_drains_frames () =
  let servers, endpoints, _ = start_group ~domains:2 () in
  seed_write endpoints;
  let fd, reader = raw_connect ~sender:"r1" endpoints.(0) in
  (* pipeline a burst of requests, read nothing yet *)
  let burst = Buffer.create 4096 in
  for tsr = 1 to 500 do
    Buffer.add_string burst (read1_frame ~sender:"r1" ~tsr)
  done;
  Net.Codec.send fd (Buffer.contents burst);
  (* let the worker read and answer some of it, then stop under load *)
  Thread.delay 0.05;
  let stopper =
    Thread.create (fun () -> Array.iter Net.Server.stop servers) ()
  in
  let got = drain_until_eof "graceful stop" fd reader in
  Thread.join stopper;
  Unix.close fd;
  if got = 0 then
    Alcotest.fail "graceful stop drained nothing (expected queued replies)";
  Alcotest.(check bool) "at most one reply per request" true (got <= 500)

(* The same regression at the operation level: a pipelined mux with 16
   ops in flight while every server stops.  run_reads must return an
   outcome (Ok or a timeout error) for every op — no decode exception,
   no hang. *)
let stop_under_mux_inflight () =
  let servers, endpoints, _ = start_group ~domains:2 () in
  seed_write endpoints;
  let opts = { Net.Client.deadline = 0.05; retries = 0; backoff = 0.01 } in
  let mux =
    Net.Client.Mux.connect ~opts ~max_inflight:16 ~protocol ~cfg:cfg4
      ~readers:16 endpoints
  in
  let results = ref [||] in
  let runner =
    Thread.create (fun () -> results := Net.Client.Mux.run_reads mux 200) ()
  in
  Thread.delay 0.02;
  Array.iter Net.Server.stop servers;
  Thread.join runner;
  Net.Client.Mux.close mux;
  Alcotest.(check int) "every op got an outcome" 200 (Array.length !results);
  Array.iter
    (function
      | Ok (o : Net.Client.outcome) ->
          Alcotest.(check string)
            "completed op read the seeded value" "durable"
            (match o.value with Some v -> Core.Value.to_string v | None -> "")
      | Error _ -> ())
    !results

(* ----- backpressure isolates the slow connection ------------------------- *)

let backpressure_isolates_slow_reader () =
  let registries = Array.init 4 (fun _ -> Obs.Metrics.create ()) in
  let servers, endpoints, _ =
    start_group
      ~metrics:(fun i -> registries.(i))
      ~queue_hi:4096 ~domains:1 ()
  in
  seed_write endpoints;
  let total = 5000 in
  (* slow connection: floods object 1 with requests, reads nothing *)
  let fd, reader = raw_connect ~sender:"r9" endpoints.(0) in
  let feeder =
    Thread.create
      (fun () ->
        (* blocks once the server pauses the connection and the socket
           buffers fill — exactly the backpressure under test *)
        for tsr = 1 to total do
          Net.Codec.send fd (read1_frame ~sender:"r9" ~tsr)
        done)
      ()
  in
  Thread.delay 0.05;
  (* a well-behaved client on the same server must be unaffected *)
  let c = Net.Client.connect ~protocol ~cfg:cfg4 ~role:(`Reader 1) endpoints in
  for k = 1 to 50 do
    match Net.Client.read c with
    | Ok o ->
        Alcotest.(check string)
          (Printf.sprintf "concurrent read %d sees the write" k)
          "durable"
          (match o.value with Some v -> Core.Value.to_string v | None -> "")
    | Error e -> Alcotest.failf "read %d starved by backpressure: %s" k e
  done;
  Net.Client.close c;
  (* now drain the slow connection: every request must have its reply *)
  let got = ref 0 in
  let rec pump () =
    if !got < total then begin
      (match Net.Codec.Reader.next codec reader with
      | Ok (`Frame _) -> incr got
      | Ok `Awaiting ->
          if Net.Codec.recv_into fd reader = 0 then
            Alcotest.failf "EOF after %d/%d replies (frames dropped)" !got
              total
      | Error e -> Alcotest.failf "decode error after %d replies: %s" !got e);
      pump ()
    end
  in
  pump ();
  Thread.join feeder;
  Unix.close fd;
  Alcotest.(check int) "one reply per request, none dropped" total !got;
  (* the pause must actually have engaged, and been observed *)
  let stalls =
    match Obs.Metrics.find_histogram registries.(0) "wire.backpressure_stalls" with
    | Some h -> Obs.Metrics.Histogram.count h
    | None -> 0
  in
  if stalls = 0 then
    Alcotest.fail "no backpressure stall recorded (queue never paused?)";
  (match Obs.Metrics.find_histogram registries.(0) "wire.queue_depth" with
  | Some h ->
      if Obs.Metrics.Histogram.count h = 0 then
        Alcotest.fail "queue depth histogram empty"
  | None -> Alcotest.fail "wire.queue_depth not recorded");
  Array.iter Net.Server.stop servers

(* ----- domain partitioning under crash/restart churn --------------------- *)

let partition_safe_under_churn () =
  let servers, endpoints, _ = start_group ~domains:3 () in
  let servers = ref servers in
  seed_write endpoints;
  let opts = { Net.Client.deadline = 0.5; retries = 5; backoff = 0.02 } in
  let mux =
    Net.Client.Mux.connect ~opts ~max_inflight:8 ~protocol ~cfg:cfg4
      ~readers:8 endpoints
  in
  let churner =
    Thread.create
      (fun () ->
        (* crash/restart one object repeatedly: connections reset, the
           slot's worker loses and regains work, clients reconnect *)
        for _ = 1 to 3 do
          Thread.delay 0.03;
          Net.Server.crash !servers.(2);
          Thread.delay 0.03;
          !servers.(2) <- Net.Server.restart !servers.(2)
        done)
      ()
  in
  let failures = ref 0 in
  Array.iter
    (function Ok _ -> () | Error _ -> incr failures)
    (Net.Client.Mux.run_reads mux 600);
  Thread.join churner;
  Net.Client.Mux.close mux;
  (* at most t = 1 object was ever down: reads keep completing *)
  Alcotest.(check int) "reads survive the churn" 0 !failures;
  Alcotest.(check int) "no object stepped outside its owning domain" 0
    (Net.Server.partition_violations !servers.(0));
  Array.iter Net.Server.stop !servers

(* ----- handoff queue: exactly-once, FIFO per producer -------------------- *)

let handoff_multi_producer =
  let gen =
    QCheck.Gen.(list_size (1 -- 3) (list_size (0 -- 200) small_nat))
  in
  let arb =
    QCheck.make
      ~print:(fun ls ->
        Printf.sprintf "<%s>"
          (String.concat ";" (List.map (fun l -> string_of_int (List.length l)) ls)))
      gen
  in
  QCheck.Test.make ~name:"handoff delivers exactly once, FIFO per producer"
    ~count:25 arb (fun lists ->
      let q = Exec.Handoff.create () in
      let total = List.fold_left (fun a l -> a + List.length l) 0 lists in
      let producers =
        List.mapi
          (fun pid xs ->
            Domain.spawn (fun () ->
                List.iter (fun x -> Exec.Handoff.push q (pid, x)) xs))
          lists
      in
      (* consume concurrently with the producers *)
      let seen = ref [] in
      let n = ref 0 in
      while !n < total do
        match Exec.Handoff.drain q with
        | [] -> Domain.cpu_relax ()
        | batch ->
            seen := List.rev_append batch !seen;
            n := !n + List.length batch
      done;
      List.iter Domain.join producers;
      if Exec.Handoff.drain q <> [] then
        QCheck.Test.fail_report "elements appeared after full drain";
      let seen = List.rev !seen in
      (* per-producer order is the push order *)
      List.iteri
        (fun pid xs ->
          let got = List.filter_map
              (fun (p, x) -> if p = pid then Some x else None)
              seen
          in
          if got <> xs then
            QCheck.Test.fail_reportf "producer %d order broken" pid)
        lists;
      true)

(* ----- metrics JSONL round-trip (the 'load' merge path) ------------------ *)

let jsonl_roundtrip () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add reg "op.read.completed" 400;
  Obs.Metrics.incr reg "op.reconnects";
  Obs.Metrics.set_gauge reg "net.peak" 17.5;
  Obs.Metrics.observe_int reg "wire.batch_size"
    ~bounds:Obs.Metrics.batch_bounds 3;
  Obs.Metrics.observe_int reg "wire.batch_size"
    ~bounds:Obs.Metrics.batch_bounds 900 (* overflow bucket *);
  Obs.Metrics.observe reg "op.read.latency_us"
    ~bounds:Obs.Metrics.latency_bounds 123.0;
  let text = Obs.Export.metrics_jsonl ~labels:[ ("proc", "1") ] reg in
  let back =
    match Obs.Export.metrics_of_jsonl text with
    | Ok m -> m
    | Error e -> Alcotest.failf "reimport failed: %s" e
  in
  Alcotest.(check (list (pair string int)))
    "counters round-trip" (Obs.Metrics.counters reg)
    (Obs.Metrics.counters back);
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges round-trip" (Obs.Metrics.gauges reg) (Obs.Metrics.gauges back);
  List.iter2
    (fun (na, ha) (nb, hb) ->
      Alcotest.(check string) "histogram name" na nb;
      Alcotest.(check bool)
        (na ^ " buckets round-trip") true
        (Obs.Metrics.Histogram.equal ha hb);
      Alcotest.(check (float 1e-6))
        (na ^ " sum round-trips")
        (Obs.Metrics.Histogram.sum ha)
        (Obs.Metrics.Histogram.sum hb))
    (Obs.Metrics.histograms reg)
    (Obs.Metrics.histograms back);
  (* merging two exports into one registry = merge_into across processes *)
  let reg2 = Obs.Metrics.create () in
  Obs.Metrics.add reg2 "op.read.completed" 100;
  Obs.Metrics.observe_int reg2 "wire.batch_size"
    ~bounds:Obs.Metrics.batch_bounds 7;
  let merged =
    match
      Obs.Export.metrics_of_jsonl
        ~into:
          (match Obs.Export.metrics_of_jsonl text with
          | Ok m -> m
          | Error e -> Alcotest.failf "first import failed: %s" e)
        (Obs.Export.metrics_jsonl reg2)
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "merge import failed: %s" e
  in
  Alcotest.(check int) "counters add across processes" 500
    (Obs.Metrics.counter_value merged "op.read.completed");
  (match Obs.Metrics.find_histogram merged "wire.batch_size" with
  | Some h -> Alcotest.(check int) "histograms merge" 3 (Obs.Metrics.Histogram.count h)
  | None -> Alcotest.fail "merged histogram missing")

let suite =
  ( "scaleout",
    [
      Alcotest.test_case "graceful stop drains queued frames" `Quick
        graceful_stop_drains_frames;
      Alcotest.test_case "server stop under a 16-deep mux window" `Quick
        stop_under_mux_inflight;
      Alcotest.test_case "backpressure pauses only the slow connection" `Quick
        backpressure_isolates_slow_reader;
      Alcotest.test_case "partitioning holds under crash/restart churn" `Quick
        partition_safe_under_churn;
      QCheck_alcotest.to_alcotest handoff_multi_producer;
      Alcotest.test_case "metrics JSONL export/import round-trips" `Quick
        jsonl_roundtrip;
    ] )
