(* Unit tests of the Byzantine strategy library: drive each behaviour
   directly with protocol messages and check exactly how it lies. *)

open Core

let cfg = Quorum.Config.optimal ~t:1 ~b:1

let rng () = Sim.Prng.create ~seed:5

let make (factory : Fault.Strategies.t) =
  factory ~cfg ~index:2 ~rng:(rng ())

let tsval ts v = Tsval.make ~ts ~v:(Value.v v)

let wtuple ts v = Wtuple.make ~tsval:(tsval ts v) ~tsrarray:Tsr_matrix.empty

let apply_write behaviour ~ts v =
  (* feed a W message from the writer; return its sends *)
  behaviour.Byz.handle ~src:Sim.Proc_id.Writer ~now:0
    (Messages.W { ts; pw = tsval ts v; w = wtuple ts v })

let read1 behaviour ~tsr =
  behaviour.Byz.handle ~src:(Sim.Proc_id.Reader 1) ~now:0
    (Messages.Read1 { tsr; from_ts = 0 })

let test_mute_says_nothing () =
  let b = make Fault.Strategies.mute in
  Alcotest.(check int) "no reply to write" 0 (List.length (apply_write b ~ts:1 "a"));
  Alcotest.(check int) "no reply to read" 0 (List.length (read1 b ~tsr:1))

let test_forge_high_value () =
  let b = make (Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:5) in
  (* honest towards the writer *)
  (match apply_write b ~ts:3 "a" with
  | [ (Sim.Proc_id.Writer, Messages.W_ack { ts = 3 }) ] -> ()
  | _ -> Alcotest.fail "writer must get an honest ack");
  (* forged towards readers: honest ts 3 + boost 5 *)
  match read1 b ~tsr:1 with
  | [ (Sim.Proc_id.Reader 1, Messages.Read1_ack { tsr = 1; pw; w }) ] ->
      Alcotest.(check int) "forged pw ts" 8 pw.Tsval.ts;
      Alcotest.(check int) "forged w ts" 8 (Wtuple.ts w);
      Alcotest.(check bool) "forged value" true
        (Value.equal (Wtuple.value w) (Value.v "evil"))
  | _ -> Alcotest.fail "expected one forged READ1_ACK"

let test_replay_initial () =
  let b = make Fault.Strategies.replay_initial in
  let _ = apply_write b ~ts:3 "a" in
  match read1 b ~tsr:1 with
  | [ (_, Messages.Read1_ack { pw; w; _ }) ] ->
      Alcotest.(check bool) "pw is initial" true (Tsval.equal pw Tsval.init);
      Alcotest.(check bool) "w is initial" true (Wtuple.equal w Wtuple.init)
  | _ -> Alcotest.fail "expected READ1_ACK"

let test_simulate_unwritten_write () =
  let b = make (Fault.Strategies.simulate_unwritten_write ~value:"ghost" ~ts:7) in
  (* no write ever applied *)
  match read1 b ~tsr:1 with
  | [ (_, Messages.Read1_ack { pw; w; _ }) ] ->
      Alcotest.(check int) "fabricated ts" 7 pw.Tsval.ts;
      Alcotest.(check int) "fabricated w ts" 7 (Wtuple.ts w)
  | _ -> Alcotest.fail "expected READ1_ACK"

let test_defame_inserts_matrix_rows () =
  let b = make (Fault.Strategies.defame ~targets:[ 1; 3 ] ~boost:4) in
  let _ = apply_write b ~ts:2 "a" in
  match read1 b ~tsr:5 with
  | [ (_, Messages.Read1_ack { w; _ }) ] ->
      (* claimed = tsr echo + boost = 9 > tsrFR = 5 *)
      Alcotest.(check bool) "defames object 1" true
        (Tsr_matrix.exceeds w.Wtuple.tsrarray ~obj:1 ~reader:1 ~bound:5);
      Alcotest.(check bool) "defames object 3" true
        (Tsr_matrix.exceeds w.Wtuple.tsrarray ~obj:3 ~reader:1 ~bound:5);
      Alcotest.(check bool) "does not defame object 4" false
        (Tsr_matrix.exceeds w.Wtuple.tsrarray ~obj:4 ~reader:1 ~bound:5);
      Alcotest.(check bool) "keeps the honest value" true
        (Value.equal (Wtuple.value w) (Value.v "a"))
  | _ -> Alcotest.fail "expected READ1_ACK"

let test_equivocate_by_reader () =
  let b = make (Fault.Strategies.equivocate ~values:[ "x"; "y" ] ~ts_boost:2) in
  let to_reader j =
    match
      b.Byz.handle ~src:(Sim.Proc_id.Reader j) ~now:0
        (Messages.Read1 { tsr = 1; from_ts = 0 })
    with
    | [ (_, Messages.Read1_ack { w; _ }) ] -> Wtuple.value w
    | _ -> Alcotest.fail "expected READ1_ACK"
  in
  let v1 = to_reader 1 and v2 = to_reader 2 in
  Alcotest.(check bool) "different readers, different lies" false
    (Value.equal v1 v2)

let test_random_garbage_is_deterministic_per_seed () =
  let once () =
    let b = make Fault.Strategies.random_garbage in
    match read1 b ~tsr:1 with
    | [ (_, Messages.Read1_ack { w; _ }) ] -> (Wtuple.ts w, Wtuple.value w)
    | _ -> Alcotest.fail "expected READ1_ACK"
  in
  Alcotest.(check bool) "same seed, same garbage" true (once () = once ())

let test_stale_read_still_silent () =
  (* the wrapped honest automaton's timestamp discipline survives: a
     stale READ1 gets no reply even from a liar *)
  let b = make (Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:5) in
  let _ = read1 b ~tsr:5 in
  Alcotest.(check int) "stale read unanswered" 0 (List.length (read1 b ~tsr:5))

(* --- regular-protocol strategies --------------------------------------- *)

let apply_regular_write behaviour ~ts v =
  behaviour.Byz.handle ~src:Sim.Proc_id.Writer ~now:0
    (Messages.W { ts; pw = tsval ts v; w = wtuple ts v })

let read1_h behaviour ~tsr =
  behaviour.Byz.handle ~src:(Sim.Proc_id.Reader 1) ~now:0
    (Messages.Read1 { tsr; from_ts = 0 })

let test_forge_history_appends_entry () =
  let b = make (Fault.Strategies.forge_history ~value:"evil" ~ts_boost:5) in
  let _ = apply_regular_write b ~ts:2 "a" in
  match read1_h b ~tsr:1 with
  | [ (_, Messages.Read1_ack_h { history; _ }) ] ->
      (* honest entries 0..2 plus forged entry at 7 *)
      Alcotest.(check bool) "forged entry present" true
        (History_store.find history ~ts:7 <> None);
      Alcotest.(check bool) "honest entry preserved" true
        (History_store.find history ~ts:2 <> None)
  | _ -> Alcotest.fail "expected history ack"

let test_empty_history () =
  let b = make Fault.Strategies.empty_history in
  let _ = apply_regular_write b ~ts:2 "a" in
  match read1_h b ~tsr:1 with
  | [ (_, Messages.Read1_ack_h { history; _ }) ] ->
      Alcotest.(check int) "empty" 0 (History_store.length history)
  | _ -> Alcotest.fail "expected history ack"

let test_stale_history_keeps_prefix () =
  let b = make (Fault.Strategies.stale_history ~keep:1) in
  let _ = apply_regular_write b ~ts:1 "a" in
  let _ = apply_regular_write b ~ts:2 "b" in
  match read1_h b ~tsr:1 with
  | [ (_, Messages.Read1_ack_h { history; _ }) ] ->
      Alcotest.(check int) "only the oldest entry" 1 (History_store.length history);
      Alcotest.(check bool) "it is entry 0" true
        (History_store.find history ~ts:0 <> None)
  | _ -> Alcotest.fail "expected history ack"

let suite =
  ( "fault-strategies",
    [
      Alcotest.test_case "mute" `Quick test_mute_says_nothing;
      Alcotest.test_case "forge_high_value" `Quick test_forge_high_value;
      Alcotest.test_case "replay_initial" `Quick test_replay_initial;
      Alcotest.test_case "simulate_unwritten_write" `Quick
        test_simulate_unwritten_write;
      Alcotest.test_case "defame matrix rows" `Quick test_defame_inserts_matrix_rows;
      Alcotest.test_case "equivocate by reader" `Quick test_equivocate_by_reader;
      Alcotest.test_case "random garbage deterministic" `Quick
        test_random_garbage_is_deterministic_per_seed;
      Alcotest.test_case "stale read still silent" `Quick
        test_stale_read_still_silent;
      Alcotest.test_case "forge_history" `Quick test_forge_history_appends_entry;
      Alcotest.test_case "empty_history" `Quick test_empty_history;
      Alcotest.test_case "stale_history" `Quick test_stale_history_keeps_prefix;
    ] )
