(* Property tests of the engine's channel semantics: reliable exactly-once
   delivery to live processes, monotone virtual time, and fairness of the
   blocked-link buffer. *)

open Sim

type msg = Tagged of int

let msg_info (Tagged n) = string_of_int n

let qcheck_exactly_once =
  QCheck.Test.make ~name:"every message to a live process delivered exactly once"
    ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 1 30))
    (fun (seed, n) ->
      let eng =
        Engine.create ~msg_info ~seed ~delay:(Delay.uniform ~lo:1 ~hi:20) ()
      in
      let received = Hashtbl.create 16 in
      Engine.register eng (Proc_id.Obj 1) (fun env ->
          let (Tagged k) = env.Engine.msg in
          Hashtbl.replace received k
            (1 + Option.value (Hashtbl.find_opt received k) ~default:0));
      for k = 1 to n do
        Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Tagged k)
      done;
      ignore (Engine.run eng);
      List.for_all
        (fun k -> Hashtbl.find_opt received k = Some 1)
        (List.init n (fun i -> i + 1)))

let qcheck_time_monotone =
  QCheck.Test.make ~name:"delivery times never decrease" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let eng =
        Engine.create ~msg_info ~seed ~delay:(Delay.exponential ~mean:7.0) ()
      in
      let last = ref 0 in
      let ok = ref true in
      Engine.register eng (Proc_id.Obj 1) (fun _ ->
          let now = Engine.now eng in
          if now < !last then ok := false;
          last := now;
          (* objects replying keeps the run going a little *)
          Engine.send eng ~src:(Proc_id.Obj 1) ~dst:Proc_id.Writer (Tagged 0));
      Engine.register eng Proc_id.Writer (fun _ ->
          let now = Engine.now eng in
          if now < !last then ok := false;
          last := now);
      for k = 1 to 20 do
        Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Tagged k)
      done;
      ignore (Engine.run eng);
      !ok)

let qcheck_blocked_links_lose_nothing =
  QCheck.Test.make ~name:"blocking then unblocking loses no messages"
    ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 1 20))
    (fun (seed, n) ->
      let eng =
        Engine.create ~msg_info ~seed ~delay:(Delay.uniform ~lo:1 ~hi:5) ()
      in
      let count = ref 0 in
      Engine.register eng (Proc_id.Obj 1) (fun _ -> incr count);
      Engine.block_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
      for k = 1 to n do
        Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Tagged k)
      done;
      Engine.at eng ~time:50 (fun () ->
          Engine.unblock_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1));
      ignore (Engine.run eng);
      !count = n)

let qcheck_crash_stops_everything =
  QCheck.Test.make ~name:"after a crash a process never handles again"
    ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 1 30))
    (fun (seed, crash_after) ->
      let eng =
        Engine.create ~msg_info ~seed ~delay:(Delay.uniform ~lo:1 ~hi:10) ()
      in
      let handled_after_crash = ref false in
      let crashed = ref false in
      Engine.register eng (Proc_id.Obj 1) (fun _ ->
          if !crashed then handled_after_crash := true);
      for k = 1 to 30 do
        Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Tagged k)
      done;
      Engine.at eng ~time:crash_after (fun () ->
          crashed := true;
          Engine.crash eng (Proc_id.Obj 1));
      ignore (Engine.run eng);
      not !handled_after_crash)

let suite =
  ( "engine-props",
    [
      QCheck_alcotest.to_alcotest qcheck_exactly_once;
      QCheck_alcotest.to_alcotest qcheck_time_monotone;
      QCheck_alcotest.to_alcotest qcheck_blocked_links_lose_nothing;
      QCheck_alcotest.to_alcotest qcheck_crash_stops_everything;
    ] )
