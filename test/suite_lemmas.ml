(* The paper's lemmas as executable properties, at the state-machine
   level (no simulator: messages fed directly in adversarial orders).

   - Lemma 1 / Lemma 2: with only correct objects there is never a
     conflict, so round 1 completes exactly when the (s-t)-th distinct
     acknowledgment arrives — under ANY interleaving of writes and reads.
   - Lemma 3 (observable content): against arbitrary forged round-2
     evidence, the read decides by the time all correct objects'
     round-2 acknowledgments are in. *)

open Core

let cfg = Quorum.Config.optimal ~t:1 ~b:1 (* S = 4, quorum 3 *)

(* Apply a random number of full writes directly to a set of honest
   objects, with each object seeing a random prefix of the writes —
   modelling arbitrary write/network interleavings. *)
let random_object_states rng ~writes =
  let tuples =
    List.init writes (fun i ->
        let ts = i + 1 in
        let tsval = Tsval.make ~ts ~v:(Value.v (Printf.sprintf "w%d" ts)) in
        (ts, tsval, Wtuple.make ~tsval ~tsrarray:Tsr_matrix.empty))
  in
  List.init 4 (fun idx ->
      let seen = Sim.Prng.int rng ~bound:(writes + 1) in
      List.fold_left
        (fun o (ts, tsval, w) ->
          if ts > seen then o
          else
            let o, _ =
              Safe_object.handle o ~src:Sim.Proc_id.Writer
                (Messages.W { ts; pw = tsval; w })
            in
            o)
        (Safe_object.init ~index:(idx + 1))
        tuples)

let lemma1_no_conflict_among_correct =
  QCheck.Test.make
    ~name:"lemma 1/2: round 1 completes on the quorum-th honest ack" ~count:300
    QCheck.(pair (int_range 0 100_000) (int_range 0 5))
    (fun (seed, writes) ->
      let rng = Sim.Prng.create ~seed in
      let objects = random_object_states rng ~writes in
      let reader = Safe_reader.init ~cfg ~j:1 () in
      match Safe_reader.start_read reader with
      | Error _ -> false
      | Ok (reader, read1) ->
          (* honest acks, delivered in a random order *)
          let acks =
            List.mapi
              (fun idx o ->
                match
                  Safe_object.handle o ~src:(Sim.Proc_id.Reader 1) read1
                with
                | _, Some ack -> (idx + 1, ack)
                | _, None -> Alcotest.fail "honest object must ack READ1")
              objects
          in
          let order = Array.of_list acks in
          Sim.Prng.shuffle rng order;
          let quorum = Quorum.Config.quorum cfg in
          let _, _, completed_at =
            Array.fold_left
              (fun (reader, delivered, completed_at) (obj, ack) ->
                let reader, events = Safe_reader.on_message reader ~obj ack in
                let delivered = delivered + 1 in
                let round2_started =
                  List.exists
                    (function
                      | Safe_reader.Broadcast (Messages.Read2 _) -> true
                      | _ -> false)
                    events
                in
                match completed_at with
                | Some _ -> (reader, delivered, completed_at)
                | None ->
                    ( reader,
                      delivered,
                      if round2_started then Some delivered else None ))
              (reader, 0, None) order
          in
          (* no conflicts among correct objects: completion exactly at the
             quorum-th ack, never later *)
          completed_at = Some quorum)

let lemma3_decides_on_full_round2 =
  QCheck.Test.make
    ~name:"lemma 3: read decides once all correct round-2 acks are in"
    ~count:300
    QCheck.(pair (int_range 0 100_000) (int_range 1 5))
    (fun (seed, writes) ->
      let rng = Sim.Prng.create ~seed in
      (* objects 1..3 honest with random prefixes; object 4 byzantine,
         forging a random high candidate in both rounds *)
      let objects = random_object_states rng ~writes in
      let honest = List.filteri (fun i _ -> i < 3) objects in
      let forged_ts = writes + 1 + Sim.Prng.int rng ~bound:5 in
      let forged_tsval = Tsval.make ~ts:forged_ts ~v:(Value.v "forged") in
      let forged_w = Wtuple.make ~tsval:forged_tsval ~tsrarray:Tsr_matrix.empty in
      let reader = Safe_reader.init ~cfg ~j:1 () in
      match Safe_reader.start_read reader with
      | Error _ -> false
      | Ok (reader, read1) -> (
          (* round 1: byz ack then honest acks *)
          let honest_acks round_msg =
            List.mapi
              (fun idx o ->
                match
                  Safe_object.handle o ~src:(Sim.Proc_id.Reader 1) round_msg
                with
                | o', Some ack -> ((idx + 1, ack), o')
                | _, None -> Alcotest.fail "honest object must ack")
              honest
          in
          let r1 = honest_acks read1 in
          let byz_r1 =
            match read1 with
            | Messages.Read1 { tsr; _ } ->
                Messages.Read1_ack { tsr; pw = forged_tsval; w = forged_w }
            | _ -> assert false
          in
          let reader, _ = Safe_reader.on_message reader ~obj:4 byz_r1 in
          let reader, events =
            List.fold_left
              (fun (reader, events) ((obj, ack), _) ->
                let reader, e = Safe_reader.on_message reader ~obj ack in
                (reader, events @ e))
              (reader, []) r1
          in
          let read2 =
            List.find_map
              (function Safe_reader.Broadcast m -> Some m | _ -> None)
              events
          in
          let already_done =
            List.exists
              (function Safe_reader.Return _ -> true | _ -> false)
              events
          in
          if already_done then true
          else
            match read2 with
            | None -> false (* round 1 must have completed *)
            | Some read2 ->
                (* round 2: byz forges again, honest objects answer *)
                let byz_r2 =
                  match read2 with
                  | Messages.Read2 { tsr; _ } ->
                      Messages.Read2_ack { tsr; pw = forged_tsval; w = forged_w }
                  | _ -> assert false
                in
                let reader, e0 = Safe_reader.on_message reader ~obj:4 byz_r2 in
                let _, decided =
                  List.fold_left
                    (fun (reader, decided) ((obj, _), o) ->
                      match
                        Safe_object.handle o ~src:(Sim.Proc_id.Reader 1) read2
                      with
                      | _, Some ack ->
                          let reader, e = Safe_reader.on_message reader ~obj ack in
                          ( reader,
                            decided
                            || List.exists
                                 (function Safe_reader.Return _ -> true | _ -> false)
                                 e )
                      | _, None -> (reader, decided))
                    ( reader,
                      List.exists
                        (function Safe_reader.Return _ -> true | _ -> false)
                        e0 )
                    r1
                in
                decided))

let suite =
  ( "lemmas",
    [
      QCheck_alcotest.to_alcotest lemma1_no_conflict_among_correct;
      QCheck_alcotest.to_alcotest lemma3_decides_on_full_round2;
    ] )
