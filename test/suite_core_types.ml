(* Tests for the core data types: values, timestamp pairs, matrices,
   write tuples, history stores and message sizing. *)

open Core

let test_value () =
  Alcotest.(check bool) "bottom is bottom" true (Value.is_bottom Value.bottom);
  Alcotest.(check bool) "v is not bottom" false (Value.is_bottom (Value.v "x"));
  Alcotest.(check bool) "equal" true (Value.equal (Value.v "a") (Value.v "a"));
  Alcotest.(check bool) "unequal" false (Value.equal (Value.v "a") Value.bottom);
  Alcotest.(check bool) "bottom smallest" true
    (Value.compare Value.bottom (Value.v "") < 0);
  Alcotest.(check (option string)) "payload" (Some "a") (Value.payload (Value.v "a"));
  Alcotest.(check (option string)) "bottom payload" None (Value.payload Value.bottom);
  Alcotest.(check string) "to_string bottom" "_|_" (Value.to_string Value.bottom)

let test_tsval () =
  Alcotest.(check int) "init ts" 0 Tsval.init.Tsval.ts;
  Alcotest.(check bool) "init is bottom" true (Value.is_bottom Tsval.init.Tsval.v);
  let a = Tsval.make ~ts:1 ~v:(Value.v "a") in
  let b = Tsval.make ~ts:2 ~v:(Value.v "b") in
  Alcotest.(check bool) "newer" true (Tsval.newer b ~than:a);
  Alcotest.(check bool) "not newer" false (Tsval.newer a ~than:b);
  Alcotest.(check bool) "compare by ts" true (Tsval.compare a b < 0);
  Alcotest.(check bool) "equal" true (Tsval.equal a (Tsval.make ~ts:1 ~v:(Value.v "a")))

let test_tsr_matrix () =
  let m = Tsr_matrix.empty in
  Alcotest.(check (option int)) "nil row" None (Tsr_matrix.get m ~obj:1 ~reader:1);
  Alcotest.(check bool) "row absent" false (Tsr_matrix.row_present m ~obj:1);
  let row = Ints.Map.singleton 2 5 in
  let m = Tsr_matrix.set_row m ~obj:1 row in
  Alcotest.(check (option int)) "set entry" (Some 5)
    (Tsr_matrix.get m ~obj:1 ~reader:2);
  Alcotest.(check (option int)) "absent reader defaults to 0" (Some 0)
    (Tsr_matrix.get m ~obj:1 ~reader:9);
  Alcotest.(check (list int)) "rows present" [ 1 ] (Tsr_matrix.rows_present m);
  Alcotest.(check bool) "exceeds true" true
    (Tsr_matrix.exceeds m ~obj:1 ~reader:2 ~bound:4);
  Alcotest.(check bool) "exceeds false at bound" false
    (Tsr_matrix.exceeds m ~obj:1 ~reader:2 ~bound:5);
  Alcotest.(check bool) "exceeds false on nil row" false
    (Tsr_matrix.exceeds m ~obj:3 ~reader:2 ~bound:0)

let test_tsr_matrix_compare () =
  let row = Ints.Map.singleton 1 1 in
  let a = Tsr_matrix.set_row Tsr_matrix.empty ~obj:1 row in
  let b = Tsr_matrix.set_row Tsr_matrix.empty ~obj:1 row in
  Alcotest.(check bool) "structural equality" true (Tsr_matrix.equal a b);
  Alcotest.(check bool) "empty differs" false (Tsr_matrix.equal a Tsr_matrix.empty)

let test_wtuple () =
  Alcotest.(check int) "init ts 0" 0 (Wtuple.ts Wtuple.init);
  Alcotest.(check bool) "init value bottom" true
    (Value.is_bottom (Wtuple.value Wtuple.init));
  let tsval = Tsval.make ~ts:3 ~v:(Value.v "x") in
  let w = Wtuple.make ~tsval ~tsrarray:Tsr_matrix.empty in
  Alcotest.(check int) "ts" 3 (Wtuple.ts w);
  Alcotest.(check bool) "ordered by ts" true (Wtuple.compare Wtuple.init w < 0);
  (* same tsval, different matrix: distinct tuples *)
  let m = Tsr_matrix.set_row Tsr_matrix.empty ~obj:1 (Ints.Map.singleton 1 9) in
  let w' = Wtuple.make ~tsval ~tsrarray:m in
  Alcotest.(check bool) "matrix distinguishes" false (Wtuple.equal w w')

let test_history_store_init () =
  let h = History_store.init in
  Alcotest.(check int) "one entry" 1 (History_store.length h);
  match History_store.find h ~ts:0 with
  | Some { History_store.pw; w = Some w0 } ->
      Alcotest.(check bool) "pw0" true (Tsval.equal pw Tsval.init);
      Alcotest.(check bool) "w0" true (Wtuple.equal w0 Wtuple.init)
  | _ -> Alcotest.fail "entry 0 missing or nil"

let test_history_store_on_pw () =
  (* PW of write 2 certifies write 1's complete tuple retroactively. *)
  let tsval1 = Tsval.make ~ts:1 ~v:(Value.v "a") in
  let w1 = Wtuple.make ~tsval:tsval1 ~tsrarray:Tsr_matrix.empty in
  let tsval2 = Tsval.make ~ts:2 ~v:(Value.v "b") in
  let h = History_store.on_pw History_store.init ~ts':2 ~pw':tsval2 ~w':w1 in
  (match History_store.find h ~ts:2 with
  | Some { History_store.pw; w = None } ->
      Alcotest.(check bool) "pw of write 2" true (Tsval.equal pw tsval2)
  | _ -> Alcotest.fail "entry 2 wrong");
  match History_store.find h ~ts:1 with
  | Some { History_store.pw; w = Some w } ->
      Alcotest.(check bool) "pw of write 1" true (Tsval.equal pw tsval1);
      Alcotest.(check bool) "w of write 1" true (Wtuple.equal w w1)
  | _ -> Alcotest.fail "entry 1 wrong"

let test_history_store_on_w () =
  let tsval1 = Tsval.make ~ts:1 ~v:(Value.v "a") in
  let w1 = Wtuple.make ~tsval:tsval1 ~tsrarray:Tsr_matrix.empty in
  let h = History_store.on_w History_store.init ~ts':1 ~pw':tsval1 ~w':w1 in
  match History_store.find h ~ts:1 with
  | Some { History_store.w = Some w; _ } ->
      Alcotest.(check bool) "complete entry" true (Wtuple.equal w w1)
  | _ -> Alcotest.fail "entry 1 wrong"

let test_history_store_suffix () =
  let entry ts =
    let tsval = Tsval.make ~ts ~v:(Value.v (string_of_int ts)) in
    { History_store.pw = tsval; w = Some (Wtuple.make ~tsval ~tsrarray:Tsr_matrix.empty) }
  in
  let h =
    List.fold_left
      (fun h ts -> History_store.set h ~ts (entry ts))
      History_store.init [ 1; 2; 3; 4 ]
  in
  let s = History_store.suffix h ~from_ts:3 in
  Alcotest.(check int) "suffix length" 2 (History_store.length s);
  Alcotest.(check bool) "entry 2 pruned" true (History_store.find s ~ts:2 = None);
  Alcotest.(check bool) "entry 3 kept" true (History_store.find s ~ts:3 <> None);
  Alcotest.(check int) "max_ts" 4 (History_store.max_ts s);
  Alcotest.(check int) "max_ts of empty" (-1) (History_store.max_ts History_store.empty)

let test_history_store_tuples () =
  let tsval1 = Tsval.make ~ts:1 ~v:(Value.v "a") in
  let w1 = Wtuple.make ~tsval:tsval1 ~tsrarray:Tsr_matrix.empty in
  let tsval2 = Tsval.make ~ts:2 ~v:(Value.v "b") in
  let h = History_store.on_pw History_store.init ~ts':2 ~pw':tsval2 ~w':w1 in
  (* tuples: w0 (entry 0) and w1 (entry 1); entry 2 has nil w *)
  Alcotest.(check int) "non-nil tuples" 2 (List.length (History_store.tuples h))

let test_message_sizes () =
  let tsval = Tsval.make ~ts:1 ~v:(Value.v "payload") in
  let w = Wtuple.make ~tsval ~tsrarray:Tsr_matrix.empty in
  let small = Messages.size_words (Messages.W_ack { ts = 1 }) in
  let big = Messages.size_words (Messages.Pw { ts = 1; pw = tsval; w }) in
  Alcotest.(check bool) "ack smaller than data message" true (small < big);
  (* history acks grow with history length *)
  let h1 = History_store.init in
  let h4 =
    List.fold_left
      (fun h ts ->
        History_store.set h ~ts
          { History_store.pw = Tsval.make ~ts ~v:(Value.v "x"); w = None })
      h1 [ 1; 2; 3 ]
  in
  let words h = Messages.size_words (Messages.Read1_ack_h { tsr = 1; history = h }) in
  Alcotest.(check bool) "longer history, bigger message" true (words h4 > words h1)

let test_message_info () =
  Alcotest.(check string) "pw info" "PW(ts=3)"
    (Messages.info (Messages.Pw { ts = 3; pw = Tsval.init; w = Wtuple.init }));
  Alcotest.(check (option int)) "read round 1" (Some 1)
    (Messages.is_read_round (Messages.Read1 { tsr = 1; from_ts = 0 }));
  Alcotest.(check (option int)) "read round 2" (Some 2)
    (Messages.is_read_round (Messages.Read2 { tsr = 2; from_ts = 0 }));
  Alcotest.(check (option int)) "ack not a read round" None
    (Messages.is_read_round (Messages.W_ack { ts = 1 }))

let qcheck_tsval_order_total =
  QCheck.Test.make ~name:"tsval compare is a total order on ts" ~count:200
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let ta = Core.Tsval.make ~ts:a ~v:(Core.Value.v "x") in
      let tb = Core.Tsval.make ~ts:b ~v:(Core.Value.v "x") in
      (Core.Tsval.compare ta tb < 0) = (a < b)
      && (Core.Tsval.compare ta tb = 0) = (a = b))

let suite =
  ( "core-types",
    [
      Alcotest.test_case "value" `Quick test_value;
      Alcotest.test_case "tsval" `Quick test_tsval;
      Alcotest.test_case "tsr matrix" `Quick test_tsr_matrix;
      Alcotest.test_case "tsr matrix compare" `Quick test_tsr_matrix_compare;
      Alcotest.test_case "wtuple" `Quick test_wtuple;
      Alcotest.test_case "history init" `Quick test_history_store_init;
      Alcotest.test_case "history on_pw" `Quick test_history_store_on_pw;
      Alcotest.test_case "history on_w" `Quick test_history_store_on_w;
      Alcotest.test_case "history suffix" `Quick test_history_store_suffix;
      Alcotest.test_case "history tuples" `Quick test_history_store_tuples;
      Alcotest.test_case "message sizes" `Quick test_message_sizes;
      Alcotest.test_case "message info" `Quick test_message_info;
      QCheck_alcotest.to_alcotest qcheck_tsval_order_total;
    ] )
