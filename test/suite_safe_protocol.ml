(* Unit tests of the safe protocol's three automata driven directly with
   handcrafted messages — line-level checks against Figures 2, 3, 4. *)

open Core

let cfg = Quorum.Config.optimal ~t:1 ~b:1 (* S=4, quorum=3, b+1=2, t+b+1=3 *)

let tsval ts v = Tsval.make ~ts ~v:(Value.v v)

let wtuple ts v = Wtuple.make ~tsval:(tsval ts v) ~tsrarray:Tsr_matrix.empty

(* --- Safe_object (Figure 3) ------------------------------------------- *)

let test_object_pw_fresh () =
  let o = Safe_object.init ~index:1 in
  let pw = tsval 1 "a" in
  let w = Wtuple.init in
  match Safe_object.handle o ~src:Sim.Proc_id.Writer (Messages.Pw { ts = 1; pw; w }) with
  | o, Some (Messages.Pw_ack { ts = 1; _ }) ->
      Alcotest.(check int) "ts adopted" 1 (Safe_object.ts o);
      Alcotest.(check bool) "pw adopted" true (Tsval.equal (Safe_object.pw o) pw)
  | _ -> Alcotest.fail "expected PW_ACK"

let test_object_pw_stale_ignored () =
  let o = Safe_object.init ~index:1 in
  let o, _ =
    Safe_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.Pw { ts = 5; pw = tsval 5 "e"; w = wtuple 4 "d" })
  in
  match
    Safe_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.Pw { ts = 5; pw = tsval 5 "x"; w = wtuple 4 "y" })
  with
  | o, None ->
      Alcotest.(check bool) "state unchanged" true
        (Value.equal (Safe_object.pw o).Tsval.v (Value.v "e"))
  | _, Some _ -> Alcotest.fail "stale PW must not be acknowledged (Fig 3, l.4)"

let test_object_w_equal_ts_applied () =
  (* W uses >= so the W of the currently pre-written timestamp lands. *)
  let o = Safe_object.init ~index:1 in
  let o, _ =
    Safe_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.Pw { ts = 1; pw = tsval 1 "a"; w = Wtuple.init })
  in
  match
    Safe_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.W { ts = 1; pw = tsval 1 "a"; w = wtuple 1 "a" })
  with
  | o, Some (Messages.W_ack { ts = 1 }) ->
      Alcotest.(check int) "w installed" 1 (Wtuple.ts (Safe_object.w o))
  | _ -> Alcotest.fail "expected W_ACK"

let test_object_read_timestamp_discipline () =
  let o = Safe_object.init ~index:1 in
  (* READ1 with tsr 1: accepted, acked with echo *)
  let o, r1 =
    Safe_object.handle o ~src:(Sim.Proc_id.Reader 2)
      (Messages.Read1 { tsr = 1; from_ts = 0 })
  in
  (match r1 with
  | Some (Messages.Read1_ack { tsr = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected READ1_ACK echoing tsr");
  Alcotest.(check int) "tsr[2] stored" 1 (Safe_object.tsr o ~reader:2);
  Alcotest.(check int) "tsr[1] untouched" 0 (Safe_object.tsr o ~reader:1);
  (* duplicate / stale read: no ack (Fig 3, l.14) *)
  (match
     Safe_object.handle o ~src:(Sim.Proc_id.Reader 2)
       (Messages.Read1 { tsr = 1; from_ts = 0 })
   with
  | _, None -> ()
  | _ -> Alcotest.fail "stale READ must not be acknowledged");
  (* READ2 overtaking READ1: higher tsr accepted *)
  let o, r2 =
    Safe_object.handle o ~src:(Sim.Proc_id.Reader 2)
      (Messages.Read2 { tsr = 2; from_ts = 0 })
  in
  (match r2 with
  | Some (Messages.Read2_ack { tsr = 2; _ }) -> ()
  | _ -> Alcotest.fail "expected READ2_ACK");
  (* now the delayed READ1 with tsr below stored: silent *)
  match
    Safe_object.handle o ~src:(Sim.Proc_id.Reader 2)
      (Messages.Read1 { tsr = 1; from_ts = 0 })
  with
  | _, None -> ()
  | _ -> Alcotest.fail "overtaken READ1 must be silent"

let test_object_ignores_client_confusion () =
  (* PW from a reader is not a writer message: ignored. *)
  let o = Safe_object.init ~index:1 in
  match
    Safe_object.handle o ~src:(Sim.Proc_id.Reader 1)
      (Messages.Pw { ts = 1; pw = tsval 1 "a"; w = Wtuple.init })
  with
  | _, None -> ()
  | _ -> Alcotest.fail "PW from non-writer must be ignored"

(* --- Writer (Figure 2) -------------------------------------------------- *)

let pw_ack ts = Messages.Pw_ack { ts; tsr = Ints.Map.empty }

let test_writer_two_rounds () =
  let w = Writer.init ~cfg in
  Alcotest.(check bool) "idle initially" true (Writer.is_idle w);
  match Writer.start_write w (Value.v "a") with
  | Error e -> Alcotest.fail e
  | Ok (w, Messages.Pw { ts = 1; _ }) -> (
      Alcotest.(check bool) "busy" false (Writer.is_idle w);
      let w, e1 = Writer.on_message w ~obj:1 (pw_ack 1) in
      let w, e2 = Writer.on_message w ~obj:2 (pw_ack 1) in
      Alcotest.(check bool) "still collecting" true (e1 = Writer.Nothing && e2 = Writer.Nothing);
      match Writer.on_message w ~obj:3 (pw_ack 1) with
      | w, Writer.Broadcast (Messages.W { ts = 1; w = tuple; _ }) -> (
          Alcotest.(check int) "tuple ts" 1 (Wtuple.ts tuple);
          let w, _ = Writer.on_message w ~obj:1 (Messages.W_ack { ts = 1 }) in
          let w, _ = Writer.on_message w ~obj:2 (Messages.W_ack { ts = 1 }) in
          match Writer.on_message w ~obj:4 (Messages.W_ack { ts = 1 }) with
          | w, Writer.Done { rounds = 2 } ->
              Alcotest.(check bool) "idle again" true (Writer.is_idle w)
          | _ -> Alcotest.fail "expected Done after W quorum")
      | _ -> Alcotest.fail "expected W broadcast after PW quorum")
  | Ok _ -> Alcotest.fail "expected PW broadcast with ts=1"

let test_writer_collects_tsr_matrix () =
  let w = Writer.init ~cfg in
  match Writer.start_write w (Value.v "a") with
  | Error e -> Alcotest.fail e
  | Ok (w, _) -> (
      (* object 2 reports reader 1 at timestamp 7 *)
      let ack2 = Messages.Pw_ack { ts = 1; tsr = Ints.Map.singleton 1 7 } in
      let w, _ = Writer.on_message w ~obj:2 ack2 in
      let w, _ = Writer.on_message w ~obj:1 (pw_ack 1) in
      match Writer.on_message w ~obj:3 (pw_ack 1) with
      | _, Writer.Broadcast (Messages.W { w = tuple; _ }) ->
          Alcotest.(check (option int)) "matrix row from object 2" (Some 7)
            (Tsr_matrix.get tuple.Wtuple.tsrarray ~obj:2 ~reader:1);
          Alcotest.(check (option int)) "row of silent object is nil" None
            (Tsr_matrix.get tuple.Wtuple.tsrarray ~obj:4 ~reader:1)
      | _ -> Alcotest.fail "expected W broadcast")

let test_writer_duplicate_acks_ignored () =
  let w = Writer.init ~cfg in
  match Writer.start_write w (Value.v "a") with
  | Error e -> Alcotest.fail e
  | Ok (w, _) ->
      let w, _ = Writer.on_message w ~obj:1 (pw_ack 1) in
      let w, e1 = Writer.on_message w ~obj:1 (pw_ack 1) in
      let w, e2 = Writer.on_message w ~obj:1 (pw_ack 1) in
      ignore w;
      Alcotest.(check bool) "duplicates do not advance" true
        (e1 = Writer.Nothing && e2 = Writer.Nothing)

let test_writer_rejects_busy_and_bottom () =
  let w = Writer.init ~cfg in
  (match Writer.start_write w Value.bottom with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bottom must be rejected");
  match Writer.start_write w (Value.v "a") with
  | Error e -> Alcotest.fail e
  | Ok (w, _) -> (
      match Writer.start_write w (Value.v "b") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "concurrent write must be rejected")

let test_writer_stale_acks_ignored () =
  let w = Writer.init ~cfg in
  match Writer.start_write w (Value.v "a") with
  | Error e -> Alcotest.fail e
  | Ok (w, _) ->
      let w, e = Writer.on_message w ~obj:1 (pw_ack 99) in
      ignore w;
      Alcotest.(check bool) "wrong-ts ack ignored" true (e = Writer.Nothing)

(* --- Safe_reader (Figure 4) -------------------------------------------- *)

let read1_ack ~tsr ~pw ~w = Messages.Read1_ack { tsr; pw; w }

let read2_ack ~tsr ~pw ~w = Messages.Read2_ack { tsr; pw; w }

let start_reader () =
  let r = Safe_reader.init ~cfg ~j:1 () in
  match Safe_reader.start_read r with
  | Ok (r, Messages.Read1 { tsr; _ }) -> (r, tsr)
  | _ -> Alcotest.fail "expected READ1"

let test_reader_fast_path_unanimous () =
  (* All of a quorum report the same written tuple: the read decides on
     round-1 data (rounds = 1). *)
  let r, tsr = start_reader () in
  let w1 = wtuple 1 "a" in
  let pw1 = tsval 1 "a" in
  let feed r obj =
    Safe_reader.on_message r ~obj (read1_ack ~tsr ~pw:pw1 ~w:w1)
  in
  let r, e1 = feed r 1 in
  Alcotest.(check bool) "no decision yet" true (e1 = []);
  let r, e2 = feed r 2 in
  Alcotest.(check bool) "still none" true (e2 = []);
  let _, e3 = feed r 3 in
  match e3 with
  | [ Safe_reader.Broadcast (Messages.Read2 _);
      Safe_reader.Return { value; rounds = 1 } ] ->
      Alcotest.(check bool) "returns a" true (Value.equal value (Value.v "a"))
  | _ -> Alcotest.fail "expected round-2 broadcast plus immediate return"

let test_reader_initial_state_returns_bottom_value () =
  (* Before any write, the safe candidate is w0 and the read returns ⊥. *)
  let r, tsr = start_reader () in
  let feed r obj =
    Safe_reader.on_message r ~obj (read1_ack ~tsr ~pw:Tsval.init ~w:Wtuple.init)
  in
  let r, _ = feed r 1 in
  let r, _ = feed r 2 in
  let _, e = feed r 3 in
  match e with
  | [ Safe_reader.Broadcast _; Safe_reader.Return { value; rounds = 1 } ] ->
      Alcotest.(check bool) "bottom" true (Value.is_bottom value)
  | _ -> Alcotest.fail "expected fast bottom return"

let test_reader_forged_high_candidate_needs_round2 () =
  (* One forged high candidate blocks the fast path; round 2 dissent
     eliminates it and the genuine value is returned. *)
  let r, tsr = start_reader () in
  let w1 = wtuple 1 "a" and pw1 = tsval 1 "a" in
  let forged = wtuple 9 "ghost" and forged_pw = tsval 9 "ghost" in
  let r, _ = Safe_reader.on_message r ~obj:1 (read1_ack ~tsr ~pw:pw1 ~w:w1) in
  let r, _ = Safe_reader.on_message r ~obj:2 (read1_ack ~tsr ~pw:pw1 ~w:w1) in
  let r, e =
    Safe_reader.on_message r ~obj:3 (read1_ack ~tsr ~pw:forged_pw ~w:forged)
  in
  (match e with
  | [ Safe_reader.Broadcast (Messages.Read2 _) ] -> ()
  | _ -> Alcotest.fail "forged candidate must force a real round 2");
  (* round 2: honest objects answer without the forged tuple *)
  let tsr2 = tsr + 1 in
  let r, e1 = Safe_reader.on_message r ~obj:1 (read2_ack ~tsr:tsr2 ~pw:pw1 ~w:w1) in
  Alcotest.(check bool) "one dissent not enough" true (e1 = []);
  let r, e2 = Safe_reader.on_message r ~obj:2 (read2_ack ~tsr:tsr2 ~pw:pw1 ~w:w1) in
  Alcotest.(check bool) "two dissents not enough (t+b+1 = 3)" true (e2 = []);
  let _, e3 = Safe_reader.on_message r ~obj:4 (read2_ack ~tsr:tsr2 ~pw:pw1 ~w:w1) in
  match e3 with
  | [ Safe_reader.Return { value; rounds = 2 } ] ->
      Alcotest.(check bool) "genuine value after elimination" true
        (Value.equal value (Value.v "a"))
  | _ -> Alcotest.fail "expected 2-round return of the genuine value"

let test_reader_conflict_blocks_round1 () =
  (* A candidate whose matrix defames object 2 conflicts with object 2's
     own reply: the 3 replies contain no conflict-free quorum, so round 1
     must not complete. *)
  let r, tsr = start_reader () in
  let defaming =
    let m = Tsr_matrix.set_row Tsr_matrix.empty ~obj:2 (Ints.Map.singleton 1 (tsr + 5)) in
    Wtuple.make ~tsval:(tsval 2 "evil") ~tsrarray:m
  in
  let r, _ =
    Safe_reader.on_message r ~obj:1
      (read1_ack ~tsr ~pw:(tsval 2 "evil") ~w:defaming)
  in
  let r, _ =
    Safe_reader.on_message r ~obj:2 (read1_ack ~tsr ~pw:Tsval.init ~w:Wtuple.init)
  in
  let r, e =
    Safe_reader.on_message r ~obj:3 (read1_ack ~tsr ~pw:Tsval.init ~w:Wtuple.init)
  in
  Alcotest.(check bool) "round 1 not complete with conflict" true (e = []);
  (* a fourth reply provides a conflict-free quorum {2,3,4} (dropping the
     defamer s1) and also eliminates the forged candidate *)
  let _, e =
    Safe_reader.on_message r ~obj:4 (read1_ack ~tsr ~pw:Tsval.init ~w:Wtuple.init)
  in
  match e with
  | Safe_reader.Broadcast (Messages.Read2 _) :: _ -> ()
  | _ -> Alcotest.fail "round 1 should complete once a clean quorum exists"

let test_reader_stale_acks_ignored () =
  let r, tsr = start_reader () in
  let r, e = Safe_reader.on_message r ~obj:1 (read1_ack ~tsr:(tsr - 1) ~pw:Tsval.init ~w:Wtuple.init) in
  Alcotest.(check bool) "old-timestamp ack ignored" true (e = []);
  Alcotest.(check int) "no responder recorded" 0
    (Ints.Set.cardinal (Safe_reader.responded_round1 r));
  let r, _ = Safe_reader.on_message r ~obj:1 (read1_ack ~tsr ~pw:Tsval.init ~w:Wtuple.init) in
  let r, e = Safe_reader.on_message r ~obj:1 (read1_ack ~tsr ~pw:Tsval.init ~w:Wtuple.init) in
  ignore e;
  Alcotest.(check int) "duplicate object counted once" 1
    (Ints.Set.cardinal (Safe_reader.responded_round1 r))

let test_reader_busy_rejected () =
  let r, _ = start_reader () in
  match Safe_reader.start_read r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second READ while busy must be rejected"

let test_reader_timestamps_increase_across_reads () =
  (* Complete one read, start another: tsr keeps growing, never reused. *)
  let r, tsr1 = start_reader () in
  let w1 = wtuple 1 "a" and pw1 = tsval 1 "a" in
  let r, _ = Safe_reader.on_message r ~obj:1 (read1_ack ~tsr:tsr1 ~pw:pw1 ~w:w1) in
  let r, _ = Safe_reader.on_message r ~obj:2 (read1_ack ~tsr:tsr1 ~pw:pw1 ~w:w1) in
  let r, e = Safe_reader.on_message r ~obj:3 (read1_ack ~tsr:tsr1 ~pw:pw1 ~w:w1) in
  (match e with
  | [ _; Safe_reader.Return _ ] -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check int) "tsr after one read" (tsr1 + 1) (Safe_reader.tsr r);
  match Safe_reader.start_read r with
  | Ok (_, Messages.Read1 { tsr; _ }) ->
      Alcotest.(check int) "next read uses fresh tsr" (tsr1 + 2) tsr
  | _ -> Alcotest.fail "expected READ1"

let suite =
  ( "safe-protocol",
    [
      Alcotest.test_case "object: fresh PW" `Quick test_object_pw_fresh;
      Alcotest.test_case "object: stale PW ignored" `Quick
        test_object_pw_stale_ignored;
      Alcotest.test_case "object: W with equal ts" `Quick
        test_object_w_equal_ts_applied;
      Alcotest.test_case "object: read timestamp discipline" `Quick
        test_object_read_timestamp_discipline;
      Alcotest.test_case "object: ignores mis-sourced messages" `Quick
        test_object_ignores_client_confusion;
      Alcotest.test_case "writer: two rounds" `Quick test_writer_two_rounds;
      Alcotest.test_case "writer: collects tsr matrix" `Quick
        test_writer_collects_tsr_matrix;
      Alcotest.test_case "writer: duplicate acks" `Quick
        test_writer_duplicate_acks_ignored;
      Alcotest.test_case "writer: busy and bottom rejected" `Quick
        test_writer_rejects_busy_and_bottom;
      Alcotest.test_case "writer: stale acks ignored" `Quick
        test_writer_stale_acks_ignored;
      Alcotest.test_case "reader: fast path" `Quick test_reader_fast_path_unanimous;
      Alcotest.test_case "reader: initial bottom" `Quick
        test_reader_initial_state_returns_bottom_value;
      Alcotest.test_case "reader: forged high candidate" `Quick
        test_reader_forged_high_candidate_needs_round2;
      Alcotest.test_case "reader: conflict blocks round 1" `Quick
        test_reader_conflict_blocks_round1;
      Alcotest.test_case "reader: stale acks ignored" `Quick
        test_reader_stale_acks_ignored;
      Alcotest.test_case "reader: busy rejected" `Quick test_reader_busy_rejected;
      Alcotest.test_case "reader: timestamps increase" `Quick
        test_reader_timestamps_increase_across_reads;
    ] )

(* Property test for the bounded vertex-cover search behind the
   Resp1OK existence check (Figure 4 line 11): agree with brute force on
   random graphs. *)
let qcheck_coverable_matches_brute_force =
  let brute_force edges budget =
    (* vertices involved *)
    let vs =
      List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
    in
    let rec subsets = function
      | [] -> [ [] ]
      | v :: rest ->
          let s = subsets rest in
          s @ List.map (fun set -> v :: set) s
    in
    List.exists
      (fun cover ->
        List.length cover <= budget
        && List.for_all (fun (a, b) -> List.mem a cover || List.mem b cover) edges)
      (subsets vs)
  in
  QCheck.Test.make ~name:"coverable agrees with brute-force vertex cover"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 8)
           (pair (int_range 1 6) (int_range 1 6)))
        (int_range 0 4))
    (fun (raw_edges, budget) ->
      let edges = List.filter (fun (a, b) -> a <> b) raw_edges in
      Safe_reader.Private.coverable edges budget = brute_force edges budget)

let suite =
  (fst suite, snd suite @ [ QCheck_alcotest.to_alcotest qcheck_coverable_matches_brute_force ])
