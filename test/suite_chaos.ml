(* Chaos campaign engine: plan generation stays within the resilience
   budget, within-budget campaigns never break the robust protocols
   (Theorems 1-4), the naive-fast negative control breaks and its
   witness shrinks to a minimal deterministic reproduction, and the
   wait-freedom watchdog only accuses quiescent runs. *)

let cfg = Quorum.Config.optimal ~t:1 ~b:1

(* --- plan machinery ----------------------------------------------------- *)

let test_gen_within_budget () =
  let rng = Sim.Prng.create ~seed:7 in
  for _ = 1 to 200 do
    let plan = Fault.Plan.gen ~rng ~cfg ~budget:Fault.Plan.medium in
    if not (Fault.Plan.within_budget ~cfg plan) then
      Alcotest.failf "generated plan exceeds budget: %s"
        (Fault.Plan.to_compact plan)
  done

let test_budget_accounting () =
  let open Fault.Plan in
  let plan actions = { horizon = 800; actions } in
  Alcotest.(check bool)
    "persisted recovery is a crash fault, not Byzantine" true
    (within_budget ~cfg
       (plan [ Crash { obj = 1; at = 10 }; Recover { obj = 1; at = 50; wipe = false } ]));
  Alcotest.(check bool)
    "wiped recovery spends the Byzantine budget" false
    (within_budget ~cfg
       (plan
          [
            Byz { obj = 2; kind = Forge };
            Crash { obj = 1; at = 10 };
            Recover { obj = 1; at = 50; wipe = true };
          ]));
  Alcotest.(check bool)
    "two crashed objects exceed t = 1" false
    (within_budget ~cfg
       (plan [ Crash { obj = 1; at = 10 }; Crash { obj = 2; at = 20 } ]));
  Alcotest.(check bool)
    "network chaos is free" true
    (within_budget ~cfg
       (plan
          [
            Block { src = W; dst = O 1; from_ = 0; until = 400 };
            Isolate { obj = 2; from_ = 100; until = 300 };
            Duplicate { src = R 1; dst = O 3; copies = 2; from_ = 0; until = 800 };
          ]))

(* --- crash-recovery at the scenario level ------------------------------- *)

let test_crash_recovery_persisted_stays_safe () =
  let open Fault.Plan in
  let plan =
    {
      horizon = 800;
      actions =
        [ Crash { obj = 1; at = 100 }; Recover { obj = 1; at = 300; wipe = false } ];
    }
  in
  let v = Fault.Campaign.run_plan Fault.Campaign.Safe ~cfg ~seed:3 plan in
  Alcotest.(check bool) "quiescent" true v.Fault.Campaign.quiescent;
  Alcotest.(check int) "no safety violations" 0 v.Fault.Campaign.safety;
  Alcotest.(check int) "no wait-freedom violations" 0 v.Fault.Campaign.liveness;
  Alcotest.(check int)
    "every operation completed" v.Fault.Campaign.total v.Fault.Campaign.completed

let test_crash_recovery_wiped_stays_safe () =
  (* A wiped recovery consumes the whole b = 1 budget; the safe protocol
     must still hold (the recovered object behaves like a Byzantine one
     that forgot acknowledged writes). *)
  let open Fault.Plan in
  let plan =
    {
      horizon = 800;
      actions =
        [ Crash { obj = 2; at = 150 }; Recover { obj = 2; at = 400; wipe = true } ];
    }
  in
  Alcotest.(check bool) "within budget" true (within_budget ~cfg plan);
  let v = Fault.Campaign.run_plan Fault.Campaign.Safe ~cfg ~seed:5 plan in
  Alcotest.(check int) "no safety violations" 0 v.Fault.Campaign.safety;
  Alcotest.(check int) "no wait-freedom violations" 0 v.Fault.Campaign.liveness

(* --- the negative control and the shrinker ------------------------------ *)

let test_naive_fast_breaks_and_shrinks () =
  let seeds = List.init 10 (fun i -> i + 1) in
  let cell =
    Fault.Campaign.sweep_protocol Fault.Campaign.Naive_fast ~t:1 ~b:1 ~seeds
      ~budget:Fault.Plan.small
  in
  (match cell.Fault.Campaign.failures with
  | [] ->
      Alcotest.fail
        "naive-fast on S = 2t+2b survived 30 within-budget plans — the \
         Proposition 1 control found nothing"
  | (seed, plan) :: _ ->
      let repro =
        Fault.Campaign.violates Fault.Campaign.Naive_fast
          ~cfg:cell.Fault.Campaign.cfg ~seed
      in
      let o = Fault.Shrink.minimize ~repro plan in
      Alcotest.(check bool)
        "shrunk no larger than original" true
        (Fault.Plan.length o.Fault.Shrink.plan <= Fault.Plan.length plan);
      (* the minimal witness reproduces, deterministically *)
      Alcotest.(check bool) "witness reproduces" true (repro o.Fault.Shrink.plan);
      Alcotest.(check bool)
        "witness reproduces again" true (repro o.Fault.Shrink.plan);
      (* 1-minimality: removing any single action kills the repro *)
      List.iteri
        (fun i _ ->
          let weakened =
            {
              o.Fault.Shrink.plan with
              Fault.Plan.actions =
                List.filteri (fun j _ -> j <> i)
                  o.Fault.Shrink.plan.Fault.Plan.actions;
            }
          in
          if repro weakened then
            Alcotest.failf "witness not 1-minimal: action %d is removable" i)
        o.Fault.Shrink.plan.Fault.Plan.actions);
  Alcotest.(check bool) "some runs violated safety" true
    (cell.Fault.Campaign.safety_runs > 0)

let test_shrink_rejects_passing_plan () =
  let plan = Fault.Plan.empty ~horizon:800 in
  Alcotest.check_raises "non-reproducing input"
    (Invalid_argument "Shrink.minimize: plan does not reproduce the violation")
    (fun () -> ignore (Fault.Shrink.minimize ~repro:(fun _ -> false) plan))

(* --- wait-freedom watchdog ---------------------------------------------- *)

let pending_read : string Histories.Op.t =
  {
    Histories.Op.id = 1;
    action = Histories.Op.Read { reader = 1; result = None };
    invoked_at = 10;
    invoked_stamp = 1;
    responded_at = None;
    responded_stamp = None;
  }

let test_watchdog_abstains_without_quiescence () =
  Alcotest.(check int) "no verdict on truncated runs" 0
    (List.length
       (Histories.Checks.check_wait_freedom ~quiescent:false [ pending_read ]))

let test_watchdog_flags_quiescent_pending_read () =
  match Histories.Checks.check_wait_freedom ~quiescent:true [ pending_read ] with
  | [ v ] ->
      Alcotest.(check string) "rule" "wait-freedom" v.Histories.Checks.rule
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* --- qcheck: within-budget plans never break the robust protocols ------- *)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let robust_under_chaos name protocol ~check_regularity =
  QCheck.Test.make ~name ~count:40 arb_seed (fun seed ->
      let rng = Sim.Prng.create ~seed in
      let plan = Fault.Plan.gen ~rng ~cfg ~budget:Fault.Plan.small in
      let v = Fault.Campaign.run_plan protocol ~cfg ~seed plan in
      let ok =
        v.Fault.Campaign.safety = 0
        && v.Fault.Campaign.liveness = 0
        && ((not check_regularity) || v.Fault.Campaign.regularity = 0)
        && (not v.Fault.Campaign.quiescent
           || v.Fault.Campaign.completed = v.Fault.Campaign.total)
      in
      if not ok then
        QCheck.Test.fail_reportf
          "plan %s: safety=%d regularity=%d liveness=%d completed=%d/%d"
          (Fault.Plan.to_compact plan)
          v.Fault.Campaign.safety v.Fault.Campaign.regularity
          v.Fault.Campaign.liveness v.Fault.Campaign.completed
          v.Fault.Campaign.total;
      true)

(* Direct crash-recovery coverage: arbitrary crash time, downtime and
   wipe flag — the safe protocol must stay safe and wait-free. *)
let prop_crash_recovery_survives =
  let arb =
    QCheck.make
      ~print:(fun (obj, at, down, wipe) ->
        Printf.sprintf "crash(s%d@%d) recover@%d %s" obj at (at + down)
          (if wipe then "wiped" else "persisted"))
      QCheck.Gen.(
        quad (1 -- 4) (0 -- 700) (1 -- 400) bool)
  in
  QCheck.Test.make ~name:"crash-recovery within budget stays safe" ~count:40
    arb (fun (obj, at, down, wipe) ->
      let plan =
        {
          Fault.Plan.horizon = 800;
          actions =
            [
              Fault.Plan.Crash { obj; at };
              Fault.Plan.Recover { obj; at = min (at + down) 800; wipe };
            ];
        }
      in
      assert (Fault.Plan.within_budget ~cfg plan);
      let v = Fault.Campaign.run_plan Fault.Campaign.Safe ~cfg ~seed:11 plan in
      v.Fault.Campaign.safety = 0 && v.Fault.Campaign.liveness = 0)

let prop_safe_survives =
  robust_under_chaos "safe survives within-budget chaos" Fault.Campaign.Safe
    ~check_regularity:false

let prop_regular_survives =
  robust_under_chaos "regular survives within-budget chaos"
    Fault.Campaign.Regular ~check_regularity:true

let suite =
  ( "chaos",
    [
      Alcotest.test_case "generated plans within budget" `Quick
        test_gen_within_budget;
      Alcotest.test_case "budget accounting" `Quick test_budget_accounting;
      Alcotest.test_case "crash-recovery (persisted) stays safe" `Quick
        test_crash_recovery_persisted_stays_safe;
      Alcotest.test_case "crash-recovery (wiped) stays safe" `Quick
        test_crash_recovery_wiped_stays_safe;
      Alcotest.test_case "naive-fast breaks; witness shrinks" `Quick
        test_naive_fast_breaks_and_shrinks;
      Alcotest.test_case "shrinker rejects passing plan" `Quick
        test_shrink_rejects_passing_plan;
      Alcotest.test_case "watchdog abstains without quiescence" `Quick
        test_watchdog_abstains_without_quiescence;
      Alcotest.test_case "watchdog flags quiescent pending read" `Quick
        test_watchdog_flags_quiescent_pending_read;
      QCheck_alcotest.to_alcotest prop_crash_recovery_survives;
      QCheck_alcotest.to_alcotest prop_safe_survives;
      QCheck_alcotest.to_alcotest prop_regular_survives;
    ] )
