(* The parallel execution layer must be invisible: same bytes out of a
   campaign, a span export, or a metrics registry whatever the domain
   count.  These tests pin the pool's ordering and failure semantics,
   then check end-to-end determinism of the consumers that fan out
   through it, and the registry-merge algebra that makes the per-domain
   reduction sound. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ----- pool semantics ---------------------------------------------------- *)

let test_pool_order () =
  Alcotest.(check (array int))
    "init returns input-index order"
    (Array.init 257 (fun i -> i * i))
    (Exec.Pool.init ~jobs:4 257 (fun i -> i * i));
  Alcotest.(check (list int))
    "map preserves list order"
    (List.init 100 (fun i -> i + 1))
    (Exec.Pool.map ~jobs:3 (fun x -> x + 1) (List.init 100 Fun.id));
  Alcotest.(check (array int))
    "tiny chunks still cover everything"
    (Array.init 50 Fun.id)
    (Exec.Pool.init ~jobs:4 ~chunk:1 50 Fun.id)

let test_pool_edges () =
  Alcotest.(check (array int)) "n = 0" [||] (Exec.Pool.init ~jobs:4 0 Fun.id);
  Alcotest.(check (list int)) "empty map" [] (Exec.Pool.map ~jobs:2 Fun.id []);
  Alcotest.(check (array int))
    "jobs way beyond n" (Array.init 5 Fun.id)
    (Exec.Pool.init ~jobs:64 5 Fun.id);
  Alcotest.(check (array int))
    "jobs = 0 clamps to serial" (Array.init 5 Fun.id)
    (Exec.Pool.init ~jobs:0 5 Fun.id)

let test_pool_exception () =
  Alcotest.check_raises "the failing index's exception is re-raised"
    (Failure "boom 37") (fun () ->
      ignore
        (Exec.Pool.init ~jobs:4 100 (fun i ->
             if i = 37 then failwith "boom 37" else i)))

(* ----- campaign determinism ---------------------------------------------- *)

(* Every observable byte of a campaign result. *)
let fingerprint cells =
  String.concat ""
    (Stats.Table.to_string (Fault.Campaign.matrix_table cells)
     :: Stats.Table.to_string (Fault.Campaign.metrics_table cells)
     :: List.map
          (fun (c : Fault.Campaign.cell) ->
            Obs.Export.metrics_jsonl
              ~labels:
                [ ("protocol", Fault.Campaign.protocol_name c.protocol) ]
              c.metrics)
          cells)

let qcheck_campaign_jobs_invisible =
  QCheck.Test.make
    ~name:"campaign sweep: jobs=1 and jobs=4 byte-identical" ~count:4
    QCheck.(int_range 0 50)
    (fun k ->
      let sweep jobs =
        Fault.Campaign.sweep ~jobs ~budget:Fault.Plan.small ~plans_per_seed:2
          ~protocols:[ Fault.Campaign.Safe; Fault.Campaign.Regular ]
          ~t:1 ~b:1
          ~seeds:[ k + 1; k + 2 ]
          ()
      in
      String.equal (fingerprint (sweep 1)) (fingerprint (sweep 4)))

(* ----- span export determinism ------------------------------------------- *)

let spans_via_pool ~jobs =
  let module Sc = Core.Scenario.Make (Core.Proto_safe) in
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let one seed =
    let rng = Sim.Prng.create ~seed in
    let schedule =
      Workload.Generate.read_mostly ~rng ~writes:2 ~readers:2
        ~reads_per_reader:3 ~horizon:1_500
    in
    let rep =
      Sc.run ~cfg ~seed
        ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
        ~faults:{ Sc.crashes = []; byzantine = [] }
        schedule
    in
    Obs.Export.spans_jsonl rep.spans
  in
  String.concat "" (Exec.Pool.map ~jobs one (List.init 6 (fun i -> i + 1)))

let test_span_jsonl_determinism () =
  Alcotest.(check string)
    "span JSONL bytes independent of jobs" (spans_via_pool ~jobs:1)
    (spans_via_pool ~jobs:4)

(* ----- registry merge algebra under concurrent producers ----------------- *)

let qcheck_merge_associative =
  QCheck.Test.make
    ~name:"registry merge associative/commutative over domain producers"
    ~count:10
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let produce k () =
        let reg = Obs.Metrics.create () in
        let rng = Sim.Prng.create ~seed:(seed + k) in
        for _ = 1 to 200 do
          let n = Sim.Prng.int rng ~bound:5 in
          Obs.Metrics.incr reg (Printf.sprintf "c%d" n);
          Obs.Metrics.observe_int reg "h" ~bounds:Obs.Metrics.count_bounds n
        done;
        reg
      in
      (* four registries filled concurrently on their own domains *)
      let regs =
        List.init 4 (fun k -> Domain.spawn (produce k))
        |> List.map Domain.join
      in
      let render reg =
        Stats.Table.to_string (Obs.Metrics.table reg)
        ^ Obs.Export.metrics_jsonl reg
      in
      let sequential =
        let dst = Obs.Metrics.create () in
        List.iter (fun r -> Obs.Metrics.merge_into ~dst r) regs;
        render dst
      in
      let tree =
        match regs with
        | [ a; b; c; d ] ->
            let left = Obs.Metrics.create ()
            and right = Obs.Metrics.create () in
            Obs.Metrics.merge_into ~dst:left d;
            Obs.Metrics.merge_into ~dst:left c;
            Obs.Metrics.merge_into ~dst:right b;
            Obs.Metrics.merge_into ~dst:right a;
            let dst = Obs.Metrics.create () in
            Obs.Metrics.merge_into ~dst right;
            Obs.Metrics.merge_into ~dst left;
            render dst
        | _ -> assert false
      in
      String.equal sequential tree)

(* ----- structured cell errors -------------------------------------------- *)

let test_cell_error_contained () =
  let cfg = Fault.Campaign.default_cfg Fault.Campaign.Safe ~t:1 ~b:1 in
  (* Flaky with an inverted window makes Strategies.crash_recovery raise
     inside the run — exactly the class of abort the sweep must survive. *)
  let bad =
    {
      Fault.Plan.horizon = 800;
      actions =
        [
          Fault.Plan.Byz
            { obj = 1; kind = Fault.Plan.Flaky { down_from = 500; down_until = 100 } };
        ];
    }
  in
  (match Fault.Campaign.run_plan_result Fault.Campaign.Safe ~cfg ~seed:3 bad with
  | Error e ->
      Alcotest.(check int) "seed recorded" 3 e.Fault.Campaign.seed;
      Alcotest.(check bool) "plan recorded" true (e.Fault.Campaign.plan == bad);
      Alcotest.(check bool) "error names the cause" true
        (contains ~sub:"empty window" e.Fault.Campaign.error)
  | Ok _ -> Alcotest.fail "inverted Flaky window should abort the run");
  match
    Fault.Campaign.run_plan_result Fault.Campaign.Safe ~cfg ~seed:3
      (Fault.Plan.empty ~horizon:800)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean plan errored: %s" e.Fault.Campaign.error

let suite =
  ( "parallel",
    [
      Alcotest.test_case "pool preserves input order" `Quick test_pool_order;
      Alcotest.test_case "pool edge cases" `Quick test_pool_edges;
      Alcotest.test_case "pool re-raises worker exception" `Quick
        test_pool_exception;
      QCheck_alcotest.to_alcotest qcheck_campaign_jobs_invisible;
      Alcotest.test_case "span JSONL independent of jobs" `Quick
        test_span_jsonl_determinism;
      QCheck_alcotest.to_alcotest qcheck_merge_associative;
      Alcotest.test_case "cell errors contained, not fatal" `Quick
        test_cell_error_contained;
    ] )
