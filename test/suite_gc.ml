(* Tests for the garbage-collected regular objects (the storage-
   exhaustion extension the paper calls for in §1). *)

module Gc2 = Core.Proto_regular_gc.Make (struct
  let readers = 2
end)

module Sc = Core.Scenario.Make (Gc2)

let equal = String.equal

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

(* Drive a GC object directly: writes then reads with given from_ts. *)
let write_obj o ~ts v =
  let tsval = Core.Tsval.make ~ts ~v:(Core.Value.v v) in
  let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
  let o, _ =
    Core.Regular_object_gc.handle o ~src:Sim.Proc_id.Writer
      (Core.Messages.W { ts; pw = tsval; w })
  in
  o

let read_obj o ~reader ~tsr ~from_ts =
  Core.Regular_object_gc.handle o ~src:(Sim.Proc_id.Reader reader)
    (Core.Messages.Read1 { tsr; from_ts })

let test_no_pruning_until_all_readers_seen () =
  let o = Core.Regular_object_gc.init ~index:1 ~readers:2 in
  let o = List.fold_left (fun o k -> write_obj o ~ts:k (string_of_int k)) o [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "full history retained" 6
    (Core.Regular_object_gc.history_length o);
  (* one of two readers reports a high floor: still no pruning *)
  let o, _ = read_obj o ~reader:1 ~tsr:1 ~from_ts:4 in
  Alcotest.(check int) "still retained (reader 2 unseen)" 6
    (Core.Regular_object_gc.history_length o);
  Alcotest.(check int) "floor recorded" 4 (Core.Regular_object_gc.floor o ~reader:1)

let test_pruning_at_min_floor () =
  let o = Core.Regular_object_gc.init ~index:1 ~readers:2 in
  let o = List.fold_left (fun o k -> write_obj o ~ts:k (string_of_int k)) o [ 1; 2; 3; 4; 5 ] in
  let o, _ = read_obj o ~reader:1 ~tsr:1 ~from_ts:4 in
  let o, _ = read_obj o ~reader:2 ~tsr:1 ~from_ts:3 in
  (* min floor is 3: entries 0,1,2 dropped; 3,4,5 kept *)
  Alcotest.(check int) "pruned to min floor" 3
    (Core.Regular_object_gc.history_length o);
  Alcotest.(check bool) "entry 2 gone" true
    (Core.History_store.length
       (match read_obj o ~reader:1 ~tsr:2 ~from_ts:0 with
       | _, Some (Core.Messages.Read1_ack_h { history; _ }) -> history
       | _ -> Alcotest.fail "expected ack")
    = 3)

let test_latest_complete_never_pruned () =
  (* Floors above the newest write must not drop the latest complete
     entry. *)
  let o = Core.Regular_object_gc.init ~index:1 ~readers:1 in
  let o = write_obj o ~ts:1 "a" in
  let o, _ = read_obj o ~reader:1 ~tsr:1 ~from_ts:1 in
  let o, _ = read_obj o ~reader:1 ~tsr:2 ~from_ts:9 in
  Alcotest.(check bool) "latest complete entry survives" true
    (Core.Regular_object_gc.history_length o >= 1)

let test_end_to_end_regular_with_gc () =
  (* Full runs: GC objects + cached readers stay regular under byz. *)
  let schedule =
    List.concat
      (List.init 12 (fun i ->
           [
             (i * 100, Core.Schedule.Write (Workload.Generate.payload (i + 1)));
             ((i * 100) + 40, Core.Schedule.Read { reader = 1 });
             ((i * 100) + 60, Core.Schedule.Read { reader = 2 });
           ]))
  in
  let rep =
    Sc.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:19 ~delay:uniform
      ~faults:
        {
          Sc.crashes = [];
          byzantine =
            [ (2, Fault.Strategies.forge_history ~value:"evil" ~ts_boost:5) ];
        }
      schedule
  in
  Alcotest.(check int) "all complete" (List.length schedule)
    (List.length rep.outcomes);
  Alcotest.(check bool) "regular" true
    (Histories.Checks.is_regular ~equal rep.history)

let test_gc_reduces_traffic_vs_plain () =
  (* With per-object pruning AND suffix replies, total reader traffic of
     the GC variant matches the optimized protocol (the GC cannot do
     worse: it only removes entries the cached readers never ask for). *)
  let schedule =
    List.concat
      (List.init 15 (fun i ->
           [
             (i * 100, Core.Schedule.Write (Workload.Generate.payload (i + 1)));
             ((i * 100) + 40, Core.Schedule.Read { reader = 1 });
             ((i * 100) + 60, Core.Schedule.Read { reader = 2 });
           ]))
  in
  let module Plain = Core.Scenario.Make (Core.Proto_regular.Plain) in
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let rep_gc = Sc.run ~cfg ~seed:20 ~delay:uniform ~faults:Sc.no_faults schedule in
  let rep_plain =
    Plain.run ~cfg ~seed:20 ~delay:uniform ~faults:Plain.no_faults schedule
  in
  Alcotest.(check bool)
    (Printf.sprintf "gc traffic (%d) < plain traffic (%d)"
       rep_gc.words_to_readers rep_plain.words_to_readers)
    true
    (rep_gc.words_to_readers < rep_plain.words_to_readers)

let test_bounded_history_direct_drive () =
  (* Alternate writes and dual-reader reads: plain object history grows
     linearly; GC object history stays bounded. *)
  let gc = ref (Core.Regular_object_gc.init ~index:1 ~readers:2) in
  let plain = ref (Core.Regular_object.init ~index:1) in
  let lengths = ref [] in
  for k = 1 to 50 do
    gc := write_obj !gc ~ts:k (string_of_int k);
    (let tsval = Core.Tsval.make ~ts:k ~v:(Core.Value.v (string_of_int k)) in
     let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
     let p, _ =
       Core.Regular_object.handle !plain ~src:Sim.Proc_id.Writer
         (Core.Messages.W { ts = k; pw = tsval; w })
     in
     plain := p);
    (* both readers read with caches trailing by one write *)
    let from_ts = max 0 (k - 1) in
    let g, _ = read_obj !gc ~reader:1 ~tsr:(2 * k) ~from_ts in
    let g, _ = read_obj g ~reader:2 ~tsr:(2 * k) ~from_ts in
    gc := g;
    lengths := Core.Regular_object_gc.history_length !gc :: !lengths
  done;
  let max_gc = List.fold_left max 0 !lengths in
  Alcotest.(check bool)
    (Printf.sprintf "gc history bounded (max %d)" max_gc)
    true (max_gc <= 3);
  Alcotest.(check int) "plain history grew linearly" 51
    (Core.History_store.length (Core.Regular_object.history !plain))

let suite =
  ( "regular-gc",
    [
      Alcotest.test_case "no pruning until all readers seen" `Quick
        test_no_pruning_until_all_readers_seen;
      Alcotest.test_case "pruning at min floor" `Quick test_pruning_at_min_floor;
      Alcotest.test_case "latest complete never pruned" `Quick
        test_latest_complete_never_pruned;
      Alcotest.test_case "end-to-end regular with gc" `Quick
        test_end_to_end_regular_with_gc;
      Alcotest.test_case "gc reduces traffic" `Quick test_gc_reduces_traffic_vs_plain;
      Alcotest.test_case "bounded history (direct drive)" `Quick
        test_bounded_history_direct_drive;
    ] )
