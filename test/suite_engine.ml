(* Tests for the discrete-event engine: determinism, delivery, faults,
   link blocking — the devices the Proposition 1 runs are scripted with. *)

open Sim

type msg = Ping of int | Pong of int

let msg_info = function
  | Ping n -> "ping" ^ string_of_int n
  | Pong n -> "pong" ^ string_of_int n

let make ?trace ?(seed = 1) ?(delay = Delay.constant 5) () =
  Engine.create ?trace ~msg_info ~seed ~delay ()

let test_delivery_and_reply () =
  let eng = make () in
  let got = ref [] in
  Engine.register eng (Proc_id.Obj 1) (fun env ->
      match env.Engine.msg with
      | Ping n -> Engine.send eng ~src:(Proc_id.Obj 1) ~dst:env.Engine.src (Pong n)
      | Pong _ -> ());
  Engine.register eng Proc_id.Writer (fun env ->
      match env.Engine.msg with Pong n -> got := n :: !got | Ping _ -> ());
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 7);
  let events = Engine.run eng in
  Alcotest.(check int) "two deliveries" 2 events;
  Alcotest.(check (list int)) "pong received" [ 7 ] !got;
  Alcotest.(check int) "time advanced by two hops" 10 (Engine.now eng)

let test_deterministic_across_runs () =
  let run () =
    let eng = make ~seed:99 ~delay:(Delay.uniform ~lo:1 ~hi:20) () in
    let order = ref [] in
    Engine.register eng Proc_id.Writer (fun env ->
        match env.Engine.msg with Pong n -> order := n :: !order | Ping _ -> ());
    List.iter
      (fun i ->
        Engine.register eng (Proc_id.Obj i) (fun env ->
            match env.Engine.msg with
            | Ping n ->
                Engine.send eng ~src:(Proc_id.Obj i) ~dst:env.Engine.src (Pong n)
            | Pong _ -> ()))
      [ 1; 2; 3; 4 ];
    List.iter
      (fun i -> Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj i) (Ping i))
      [ 1; 2; 3; 4 ];
    ignore (Engine.run eng);
    !order
  in
  Alcotest.(check (list int)) "identical seeds, identical order" (run ()) (run ())

let test_crash_drops_deliveries () =
  let eng = make () in
  let got = ref 0 in
  Engine.register eng (Proc_id.Obj 1) (fun _ -> incr got);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  Engine.crash eng (Proc_id.Obj 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "no delivery to crashed process" 0 !got;
  Alcotest.(check int) "drop counted" 1 (Engine.dropped_count eng);
  Alcotest.(check bool) "is_crashed" true (Engine.is_crashed eng (Proc_id.Obj 1))

let test_crashed_process_cannot_send () =
  let eng = make () in
  let got = ref 0 in
  Engine.register eng (Proc_id.Obj 1) (fun _ -> incr got);
  Engine.crash eng Proc_id.Writer;
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "crashed source sends nothing" 0 !got

let test_timers_fire_in_order () =
  let eng = make () in
  let order = ref [] in
  Engine.at eng ~time:30 (fun () -> order := 30 :: !order);
  Engine.at eng ~time:10 (fun () -> order := 10 :: !order);
  Engine.at eng ~time:20 (fun () -> order := 20 :: !order);
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !order)

let test_after_schedules_relative () =
  let eng = make () in
  let fired_at = ref (-1) in
  Engine.at eng ~time:10 (fun () ->
      Engine.after eng ~delay:5 (fun () -> fired_at := Engine.now eng));
  ignore (Engine.run eng);
  Alcotest.(check int) "after fires at 15" 15 !fired_at

let test_tie_break_is_fifo () =
  let eng = make () in
  let order = ref [] in
  Engine.at eng ~time:10 (fun () -> order := 1 :: !order);
  Engine.at eng ~time:10 (fun () -> order := 2 :: !order);
  Engine.at eng ~time:10 (fun () -> order := 3 :: !order);
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "same-time events in schedule order" [ 1; 2; 3 ]
    (List.rev !order)

let test_block_unblock_link () =
  let eng = make () in
  let got_at = ref [] in
  Engine.register eng (Proc_id.Obj 1) (fun _ -> got_at := Engine.now eng :: !got_at);
  Engine.block_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  Engine.at eng ~time:100 (fun () ->
      Engine.unblock_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1));
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "released after unblock plus delay" [ 105 ] !got_at

let test_blocked_message_order_preserved () =
  let eng = make () in
  let got = ref [] in
  Engine.register eng (Proc_id.Obj 1) (fun env ->
      match env.Engine.msg with Ping n -> got := n :: !got | Pong _ -> ());
  Engine.block_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 2);
  Engine.unblock_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "constant delay keeps send order" [ 1; 2 ]
    (List.rev !got)

let test_run_until_horizon () =
  let eng = make () in
  let fired = ref 0 in
  Engine.at eng ~time:10 (fun () -> incr fired);
  Engine.at eng ~time:50 (fun () -> incr fired);
  let n = Engine.run ~until:20 eng in
  Alcotest.(check int) "one event within horizon" 1 n;
  Alcotest.(check int) "late event pending" 1 (Engine.pending_events eng)

let test_run_max_events () =
  let eng = make () in
  for i = 1 to 10 do
    Engine.at eng ~time:i (fun () -> ())
  done;
  let n = Engine.run ~max_events:4 eng in
  Alcotest.(check int) "stops at budget" 4 n;
  Alcotest.(check int) "rest pending" 6 (Engine.pending_events eng)

let test_trace_records () =
  let trace = Trace.create () in
  let eng = make ~trace () in
  Engine.register eng (Proc_id.Obj 1) (fun _ -> ());
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "one send traced" 1
    (Trace.sends_between trace ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1));
  Alcotest.(check int) "one delivery traced" 1
    (Trace.delivered_to trace ~dst:(Proc_id.Obj 1))

let test_crash_drops_buffered () =
  let eng = make () in
  let got = ref 0 in
  Engine.register eng (Proc_id.Obj 1) (fun _ -> incr got);
  Engine.block_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 2);
  Alcotest.(check int) "buffered, not dropped yet" 0 (Engine.dropped_count eng);
  Engine.crash eng (Proc_id.Obj 1);
  Alcotest.(check int) "crash drops buffered inbound immediately" 2
    (Engine.dropped_count eng);
  Engine.unblock_link eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "nothing released after unblock" 0 !got;
  Alcotest.(check int) "no double counting" 2 (Engine.dropped_count eng)

let test_recover_allows_delivery () =
  let eng = make () in
  let got = ref [] in
  Engine.register eng (Proc_id.Obj 1) (fun env ->
      match env.Engine.msg with Ping n -> got := n :: !got | Pong _ -> ());
  Engine.crash eng (Proc_id.Obj 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "lost while down" [] !got;
  Engine.recover eng (Proc_id.Obj 1);
  Alcotest.(check bool) "no longer crashed" false
    (Engine.is_crashed eng (Proc_id.Obj 1));
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 2);
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "delivered after recovery, earlier loss stays"
    [ 2 ] !got

let test_duplication_window () =
  let eng = make () in
  let got = ref 0 in
  Engine.register eng (Proc_id.Obj 1) (fun _ -> incr got);
  Engine.set_duplication eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) ~copies:2;
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "1 + 2 copies delivered" 3 !got;
  Engine.clear_duplication eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1);
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) (Ping 2);
  ignore (Engine.run eng);
  Alcotest.(check int) "back to single delivery" 4 !got

let test_no_handler_drops () =
  let eng = make () in
  Engine.send eng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 9) (Ping 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "unregistered destination drops" 1
    (Engine.dropped_count eng)

let suite =
  ( "engine",
    [
      Alcotest.test_case "delivery and reply" `Quick test_delivery_and_reply;
      Alcotest.test_case "determinism" `Quick test_deterministic_across_runs;
      Alcotest.test_case "crash drops deliveries" `Quick test_crash_drops_deliveries;
      Alcotest.test_case "crashed process cannot send" `Quick
        test_crashed_process_cannot_send;
      Alcotest.test_case "timers in order" `Quick test_timers_fire_in_order;
      Alcotest.test_case "after is relative" `Quick test_after_schedules_relative;
      Alcotest.test_case "tie-break FIFO" `Quick test_tie_break_is_fifo;
      Alcotest.test_case "block/unblock link" `Quick test_block_unblock_link;
      Alcotest.test_case "blocked order preserved" `Quick
        test_blocked_message_order_preserved;
      Alcotest.test_case "run until horizon" `Quick test_run_until_horizon;
      Alcotest.test_case "run max events" `Quick test_run_max_events;
      Alcotest.test_case "crash drops buffered" `Quick test_crash_drops_buffered;
      Alcotest.test_case "recover allows delivery" `Quick
        test_recover_allows_delivery;
      Alcotest.test_case "duplication window" `Quick test_duplication_window;
      Alcotest.test_case "trace records" `Quick test_trace_records;
      Alcotest.test_case "no handler drops" `Quick test_no_handler_drops;
    ] )
