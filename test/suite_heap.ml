(* Tests for the leftist min-heap backing the event queue. *)

module H = Sim.Heap.Make (Int)

let drain h =
  let rec go acc h =
    match H.pop h with None -> List.rev acc | Some (x, h') -> go (x :: acc) h'
  in
  go [] h

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (H.is_empty H.empty);
  Alcotest.(check int) "empty size" 0 (H.size H.empty);
  Alcotest.(check (option int)) "empty min" None (H.min H.empty);
  Alcotest.(check bool) "empty pop" true (H.pop H.empty = None)

let test_insert_pop_sorted () =
  let h = H.of_list [ 5; 3; 8; 1; 9; 2; 7 ] in
  Alcotest.(check (list int)) "ascending drain" [ 1; 2; 3; 5; 7; 8; 9 ] (drain h)

let test_duplicates () =
  let h = H.of_list [ 4; 4; 1; 4; 1 ] in
  Alcotest.(check (list int)) "duplicates preserved" [ 1; 1; 4; 4; 4 ] (drain h)

let test_size_tracks () =
  let h = H.of_list [ 10; 20; 30 ] in
  Alcotest.(check int) "size 3" 3 (H.size h);
  (match H.pop h with
  | Some (_, h') -> Alcotest.(check int) "size 2 after pop" 2 (H.size h')
  | None -> Alcotest.fail "unexpected empty");
  Alcotest.(check int) "original unchanged (persistent)" 3 (H.size h)

let test_merge () =
  let a = H.of_list [ 1; 5; 9 ] in
  let b = H.of_list [ 2; 6; 8 ] in
  Alcotest.(check (list int))
    "merged drain" [ 1; 2; 5; 6; 8; 9 ]
    (drain (H.merge a b))

let test_merge_empty () =
  let a = H.of_list [ 3 ] in
  Alcotest.(check (list int)) "merge with empty (l)" [ 3 ] (drain (H.merge H.empty a));
  Alcotest.(check (list int)) "merge with empty (r)" [ 3 ] (drain (H.merge a H.empty))

let test_to_sorted_list () =
  let h = H.of_list [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "sorted list" [ 1; 2; 3 ] (H.to_sorted_list h)

let test_fold_counts () =
  let h = H.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sums" 10 (H.fold ( + ) h 0)

let test_persistence_snapshots () =
  (* The model checker relies on old heap versions staying valid. *)
  let h0 = H.of_list [ 2; 4 ] in
  let h1 = H.insert h0 1 in
  let h2 = H.insert h0 3 in
  Alcotest.(check (list int)) "h0 intact" [ 2; 4 ] (drain h0);
  Alcotest.(check (list int)) "h1 fork" [ 1; 2; 4 ] (drain h1);
  Alcotest.(check (list int)) "h2 fork" [ 2; 3; 4 ] (drain h2)

let qcheck_sorted =
  QCheck.Test.make ~name:"heap drain equals List.sort" ~count:200
    QCheck.(list small_int)
    (fun xs -> drain (H.of_list xs) = List.sort compare xs)

let qcheck_merge_is_union =
  QCheck.Test.make ~name:"heap merge drains the multiset union" ~count:200
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      drain (H.merge (H.of_list xs) (H.of_list ys))
      = List.sort compare (xs @ ys))

let suite =
  ( "heap",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "insert/pop sorted" `Quick test_insert_pop_sorted;
      Alcotest.test_case "duplicates" `Quick test_duplicates;
      Alcotest.test_case "size tracks" `Quick test_size_tracks;
      Alcotest.test_case "merge" `Quick test_merge;
      Alcotest.test_case "merge with empty" `Quick test_merge_empty;
      Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list;
      Alcotest.test_case "fold" `Quick test_fold_counts;
      Alcotest.test_case "persistence" `Quick test_persistence_snapshots;
      QCheck_alcotest.to_alcotest qcheck_sorted;
      QCheck_alcotest.to_alcotest qcheck_merge_is_union;
    ] )
