(* Fuzzing the pure automata: arbitrary (including nonsensical) message
   sequences must never raise and must preserve basic invariants —
   timestamps never regress, idle machines stay idle on garbage. *)

open Core

let cfg = Quorum.Config.optimal ~t:1 ~b:1

(* Generator for arbitrary protocol messages. *)
let gen_msg =
  QCheck.Gen.(
    let value = oneof [ return Value.bottom; map Value.v (string_size (0 -- 6)) ] in
    let tsval = map2 (fun ts v -> Tsval.make ~ts ~v) (0 -- 10) value in
    let matrix =
      map
        (fun entries ->
          List.fold_left
            (fun m (i, j, ts) ->
              let row =
                Option.value (Tsr_matrix.row m ~obj:i) ~default:Ints.Map.empty
              in
              Tsr_matrix.set_row m ~obj:i (Ints.Map.add j ts row))
            Tsr_matrix.empty entries)
        (list_size (0 -- 3) (triple (1 -- 4) (1 -- 2) (0 -- 8)))
    in
    let wtuple = map2 (fun tsval tsrarray -> Wtuple.make ~tsval ~tsrarray) tsval matrix in
    let history =
      map
        (fun entries ->
          List.fold_left
            (fun h (ts, pw, w) ->
              History_store.set h ~ts { History_store.pw; w })
            History_store.init entries)
        (list_size (0 -- 3) (triple (0 -- 10) tsval (option wtuple)))
    in
    oneof
      [
        map2 (fun ts (pw, w) -> Messages.Pw { ts; pw; w }) (0 -- 10) (pair tsval wtuple);
        map2 (fun ts (pw, w) -> Messages.W { ts; pw; w }) (0 -- 10) (pair tsval wtuple);
        map2
          (fun ts tsr -> Messages.Pw_ack { ts; tsr = Ints.Map.singleton 1 tsr })
          (0 -- 10) (0 -- 10);
        map (fun ts -> Messages.W_ack { ts }) (0 -- 10);
        map2 (fun tsr from_ts -> Messages.Read1 { tsr; from_ts }) (0 -- 10) (0 -- 5);
        map2 (fun tsr from_ts -> Messages.Read2 { tsr; from_ts }) (0 -- 10) (0 -- 5);
        map2
          (fun tsr (pw, w) -> Messages.Read1_ack { tsr; pw; w })
          (0 -- 10) (pair tsval wtuple);
        map2
          (fun tsr (pw, w) -> Messages.Read2_ack { tsr; pw; w })
          (0 -- 10) (pair tsval wtuple);
        map2 (fun tsr history -> Messages.Read1_ack_h { tsr; history }) (0 -- 10) history;
        map2 (fun tsr history -> Messages.Read2_ack_h { tsr; history }) (0 -- 10) history;
      ])

let gen_src =
  QCheck.Gen.(
    oneof
      [
        return Sim.Proc_id.Writer;
        map (fun j -> Sim.Proc_id.Reader j) (1 -- 3);
        map (fun i -> Sim.Proc_id.Obj i) (1 -- 4);
      ])

let gen_feed = QCheck.Gen.(list_size (0 -- 40) (pair gen_src gen_msg))

let arb_feed = QCheck.make ~print:(fun l -> Printf.sprintf "<%d msgs>" (List.length l)) gen_feed

let fuzz_safe_object =
  QCheck.Test.make ~name:"safe object survives arbitrary messages" ~count:300
    arb_feed
    (fun feed ->
      let final =
        List.fold_left
          (fun o (src, m) ->
            let o', _ = Safe_object.handle o ~src m in
            (* writer timestamp never regresses *)
            assert (Safe_object.ts o' >= Safe_object.ts o);
            o')
          (Safe_object.init ~index:1) feed
      in
      Safe_object.ts final >= 0)

let fuzz_regular_object =
  QCheck.Test.make ~name:"regular object survives arbitrary messages" ~count:300
    arb_feed
    (fun feed ->
      let final =
        List.fold_left
          (fun o (src, m) ->
            let o', _ = Regular_object.handle o ~src m in
            assert (Regular_object.ts o' >= Regular_object.ts o);
            o')
          (Regular_object.init ~index:1) feed
      in
      (* entry 0 only disappears via explicit pruning, never via handle *)
      History_store.find (Regular_object.history final) ~ts:0 <> None)

let fuzz_gc_object =
  QCheck.Test.make ~name:"gc object survives arbitrary messages" ~count:300
    arb_feed
    (fun feed ->
      let final =
        List.fold_left
          (fun o (src, m) -> fst (Regular_object_gc.handle o ~src m))
          (Regular_object_gc.init ~index:1 ~readers:2)
          feed
      in
      Regular_object_gc.history_length final >= 0)

let fuzz_writer =
  QCheck.Test.make ~name:"writer survives arbitrary acks" ~count:300 arb_feed
    (fun feed ->
      let w = Writer.init ~cfg in
      let w =
        match Writer.start_write w (Value.v "x") with
        | Ok (w, _) -> w
        | Error _ -> w
      in
      let _ =
        List.fold_left
          (fun w (src, m) ->
            match src with
            | Sim.Proc_id.Obj i -> fst (Writer.on_message w ~obj:i m)
            | _ -> w)
          w feed
      in
      true)

let fuzz_safe_reader =
  QCheck.Test.make ~name:"safe reader survives arbitrary acks" ~count:300
    arb_feed
    (fun feed ->
      let r = Safe_reader.init ~cfg ~j:1 () in
      let r = match Safe_reader.start_read r with Ok (r, _) -> r | Error _ -> r in
      let _ =
        List.fold_left
          (fun r (src, m) ->
            match src with
            | Sim.Proc_id.Obj i ->
                let r', events = Safe_reader.on_message r ~obj:i m in
                (* a read returns at most once *)
                let returns =
                  List.length
                    (List.filter
                       (function Safe_reader.Return _ -> true | _ -> false)
                       events)
                in
                assert (returns <= 1);
                r'
            | _ -> r)
          r feed
      in
      true)

let fuzz_regular_reader =
  QCheck.Test.make ~name:"regular reader survives arbitrary acks" ~count:300
    arb_feed
    (fun feed ->
      let r = Regular_reader.init ~cfg ~j:1 ~cached:true () in
      let r =
        match Regular_reader.start_read r with Ok (r, _) -> r | Error _ -> r
      in
      let _ =
        List.fold_left
          (fun r (src, m) ->
            match src with
            | Sim.Proc_id.Obj i -> fst (Regular_reader.on_message r ~obj:i m)
            | _ -> r)
          r feed
      in
      true)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest fuzz_safe_object;
      QCheck_alcotest.to_alcotest fuzz_regular_object;
      QCheck_alcotest.to_alcotest fuzz_gc_object;
      QCheck_alcotest.to_alcotest fuzz_writer;
      QCheck_alcotest.to_alcotest fuzz_safe_reader;
      QCheck_alcotest.to_alcotest fuzz_regular_reader;
    ] )
