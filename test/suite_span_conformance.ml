(* Round-count conformance, asserted on spans: the paper's Theorems 1-4
   say every READ and WRITE of the safe and regular protocols completes
   in exactly 2 rounds, under any within-budget fault plan — and
   Theorem 4's fast-safe reads in exactly 1 round at S >= 2t+2b+1.
   Spans count rounds *initiated*, so this is the client-visible message
   pattern, not the early-decide shortcut [reported_rounds] records. *)

let span_rounds_ok ~expect_read ~expect_write (sp : Obs.Span.t) =
  if not (Obs.Span.completed sp) then true
  else
    match sp.kind with
    | Obs.Span.Read _ -> sp.rounds = expect_read
    | Obs.Span.Write -> sp.rounds = expect_write

let check_protocol ~name protocol ~expect_read ~expect_write =
  QCheck.Test.make
    ~name:(name ^ ": completed spans have the theorem's round count")
    ~count:40
    QCheck.(int_range 1 50_000)
    (fun seed ->
      let cfg = Fault.Campaign.default_cfg protocol ~t:1 ~b:1 in
      let rng = Sim.Prng.create ~seed in
      let plan = Fault.Plan.gen ~rng ~cfg ~budget:Fault.Plan.medium in
      let v = Fault.Campaign.run_plan protocol ~cfg ~seed plan in
      v.spans <> []
      && List.for_all (span_rounds_ok ~expect_read ~expect_write) v.spans)

let qcheck_safe =
  check_protocol ~name:"safe" Fault.Campaign.Safe ~expect_read:2 ~expect_write:2

let qcheck_regular =
  check_protocol ~name:"regular" Fault.Campaign.Regular ~expect_read:2
    ~expect_write:2

let qcheck_regular_opt =
  check_protocol ~name:"regular-opt" Fault.Campaign.Regular_opt ~expect_read:2
    ~expect_write:2

let qcheck_fast_safe =
  check_protocol ~name:"fast-safe" Fault.Campaign.Fast_safe ~expect_read:1
    ~expect_write:1

(* The metrics pipeline must agree with the spans: a campaign cell's
   op.read.rounds histogram concentrates every observation on the
   theorem's round count. *)
let test_cell_round_histograms () =
  let cell =
    Fault.Campaign.sweep_protocol Fault.Campaign.Safe ~t:1 ~b:1
      ~seeds:[ 1; 2; 3 ]
  in
  match Obs.Metrics.find_histogram cell.metrics "op.read.rounds" with
  | None -> Alcotest.fail "cell has no op.read.rounds histogram"
  | Some h ->
      let completed =
        Obs.Metrics.counter_value cell.metrics "op.read.completed"
      in
      Alcotest.(check bool) "some reads completed" true (completed > 0);
      Alcotest.(check int) "histogram covers every completed read" completed
        (Obs.Metrics.Histogram.count h);
      Alcotest.(check (float 1e-9)) "all reads took 2 rounds (min)" 2.0
        (Obs.Metrics.Histogram.min_exn h);
      Alcotest.(check (float 1e-9)) "all reads took 2 rounds (max)" 2.0
        (Obs.Metrics.Histogram.max_exn h)

(* Negative control: the conformance predicate is falsifiable — ABD reads
   at its crash-only configuration are 1-round (no write-back needed in a
   sequential schedule), so demanding 2 everywhere must fail. *)
let test_predicate_is_falsifiable () =
  let cfg = Fault.Campaign.default_cfg Fault.Campaign.Abd ~t:1 ~b:0 in
  let v =
    Fault.Campaign.run_plan Fault.Campaign.Abd ~cfg ~seed:1
      (Fault.Plan.empty ~horizon:800)
  in
  Alcotest.(check bool) "ABD spans exist" true (v.spans <> []);
  Alcotest.(check bool) "2-round claim fails for ABD" false
    (List.for_all (span_rounds_ok ~expect_read:2 ~expect_write:2) v.spans)

let suite =
  ( "span-conformance",
    [
      QCheck_alcotest.to_alcotest qcheck_safe;
      QCheck_alcotest.to_alcotest qcheck_regular;
      QCheck_alcotest.to_alcotest qcheck_regular_opt;
      QCheck_alcotest.to_alcotest qcheck_fast_safe;
      Alcotest.test_case "cell round histograms" `Quick
        test_cell_round_histograms;
      Alcotest.test_case "predicate falsifiable" `Quick
        test_predicate_is_falsifiable;
    ] )
