(* Tests for the deterministic splitmix64 generator. *)

let test_determinism () =
  let a = Sim.Prng.create ~seed:42 in
  let b = Sim.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Sim.Prng.next_int64 a) (Sim.Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Prng.create ~seed:1 in
  let b = Sim.Prng.create ~seed:2 in
  Alcotest.(check bool)
    "different seeds diverge" true
    (Sim.Prng.next_int64 a <> Sim.Prng.next_int64 b)

let test_copy_independent () =
  let a = Sim.Prng.create ~seed:7 in
  let _ = Sim.Prng.next_int64 a in
  let b = Sim.Prng.copy a in
  let xa = Sim.Prng.next_int64 a in
  let xb = Sim.Prng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  let _ = Sim.Prng.next_int64 a in
  let ya = Sim.Prng.next_int64 a in
  let yb = Sim.Prng.next_int64 b in
  Alcotest.(check bool) "streams then diverge by position" true (ya <> yb)

let test_split_diverges () =
  let a = Sim.Prng.create ~seed:9 in
  let b = Sim.Prng.split a in
  let xs = List.init 10 (fun _ -> Sim.Prng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Sim.Prng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let g = Sim.Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Sim.Prng.int g ~bound:17 in
    Alcotest.(check bool) "0 <= x < 17" true (x >= 0 && x < 17)
  done

let test_int_rejects_bad_bound () =
  let g = Sim.Prng.create ~seed:3 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Sim.Prng.int g ~bound:0))

let test_int_in_range () =
  let g = Sim.Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Sim.Prng.int_in_range g ~lo:5 ~hi:9 in
    Alcotest.(check bool) "5 <= x <= 9" true (x >= 5 && x <= 9)
  done

let test_int_in_range_degenerate () =
  let g = Sim.Prng.create ~seed:4 in
  Alcotest.(check int) "singleton range" 6 (Sim.Prng.int_in_range g ~lo:6 ~hi:6)

let test_float_bounds () =
  let g = Sim.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Sim.Prng.float g ~bound:2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_exponential_positive () =
  let g = Sim.Prng.create ~seed:6 in
  for _ = 1 to 1000 do
    Alcotest.(check bool)
      "exponential draws are positive" true
      (Sim.Prng.exponential g ~mean:3.0 > 0.0)
  done

let test_exponential_mean () =
  let g = Sim.Prng.create ~seed:8 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Sim.Prng.exponential g ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean %.2f within 10%% of 5.0" mean)
    true
    (mean > 4.5 && mean < 5.5)

let test_shuffle_is_permutation () =
  let g = Sim.Prng.create ~seed:10 in
  let a = Array.init 50 Fun.id in
  Sim.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_pick_member () =
  let g = Sim.Prng.create ~seed:11 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element is a member" true
      (Array.mem (Sim.Prng.pick g a) a)
  done

let test_bool_both_values () =
  let g = Sim.Prng.create ~seed:12 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Sim.Prng.bool g then incr trues
  done;
  Alcotest.(check bool) "coin not fully biased" true (!trues > 100 && !trues < 900)

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"prng int covers every residue" ~count:50
    QCheck.(int_range 2 20)
    (fun bound ->
      let g = Sim.Prng.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Sim.Prng.int g ~bound) <- true
      done;
      Array.for_all Fun.id seen)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy independent" `Quick test_copy_independent;
      Alcotest.test_case "split diverges" `Quick test_split_diverges;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
      Alcotest.test_case "int_in_range bounds" `Quick test_int_in_range;
      Alcotest.test_case "int_in_range degenerate" `Quick
        test_int_in_range_degenerate;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "shuffle is a permutation" `Quick
        test_shuffle_is_permutation;
      Alcotest.test_case "pick returns member" `Quick test_pick_member;
      Alcotest.test_case "bool takes both values" `Quick test_bool_both_values;
      QCheck_alcotest.to_alcotest qcheck_int_uniformish;
    ] )
