(* Live-cluster integration tests: real sockets, real threads.

   The acceptance bar (ISSUE 4): a loopback cluster at S = 4 (t = 1,
   b = 0) completes 1000 READs with zero failures while one server is
   crashed partway through and restarted later, and the spans/metrics it
   emits flow through the existing exporters.

   These tests use Unix-domain sockets in a private tmpdir, so they are
   free of port collisions and run in well under a second each. *)

let cfg4 = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0

let value_of (o : Net.Client.outcome) =
  match o.value with
  | Some v -> Core.Value.to_string v
  | None -> "<none>"

let ok_exn what = function
  | Ok o -> o
  | Error e -> Alcotest.failf "%s failed: %s" what e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ----- basic write/read over every packed protocol ---------------------- *)

let roundtrip_all_protocols () =
  List.iter
    (fun protocol ->
      let name = Net.Protocols.name protocol in
      let c = Net.Cluster.start ~protocol ~cfg:cfg4 ~readers:1 () in
      Fun.protect
        ~finally:(fun () -> Net.Cluster.stop c)
        (fun () ->
          let _ = ok_exn (name ^ " write") (Net.Cluster.write c (Core.Value.v "x1")) in
          let o = ok_exn (name ^ " read") (Net.Cluster.read c ~reader:1) in
          Alcotest.(check string) (name ^ " reads the write") "x1" (value_of o)))
    Net.Protocols.all

let fast_read_is_one_round () =
  (* S = 4 > 2t + 2b with b = 0: the safe protocol's fast path applies,
     and over a quiet network a READ really is a single round trip. *)
  let c = Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "v")) in
      let o = ok_exn "read" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check int) "reported rounds" 1 o.rounds)

(* ----- the 1000-READ crash/restart acceptance run ----------------------- *)

let acceptance_1000_reads () =
  let c =
    Net.Cluster.start ~metrics:true ~protocol:Net.Protocols.safe ~cfg:cfg4
      ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "durable")) in
      let failures = ref 0 in
      for k = 1 to 1000 do
        if k = 250 then Net.Cluster.crash c 3;
        if k = 750 then Net.Cluster.restart_exn c 3;
        match Net.Cluster.read c ~reader:1 with
        | Ok o ->
            if value_of o <> "durable" then begin
              incr failures;
              Format.eprintf "read %d returned %s@." k (value_of o)
            end
        | Error e ->
            incr failures;
            Format.eprintf "read %d failed: %s@." k e
      done;
      Alcotest.(check int) "zero failed reads across crash+restart" 0 !failures;
      Alcotest.(check (list int)) "all servers back up" [ 1; 2; 3; 4 ]
        (Net.Cluster.alive c);
      (* the history is a real one: 1 write + 1000 reads, all safe *)
      let history = Net.Cluster.history c in
      Alcotest.(check int) "ops recorded" 1001 (List.length history);
      Alcotest.(check bool) "history safe" true
        (Histories.Checks.is_safe ~equal:String.equal history);
      Alcotest.(check bool) "history regular" true
        (Histories.Checks.is_regular ~equal:String.equal history);
      (* spans flow through the standard exporter, one line per op *)
      let spans = Net.Cluster.spans c in
      Alcotest.(check int) "all spans completed" 1001
        (List.length (List.filter Obs.Span.completed spans));
      let jsonl = Obs.Export.spans_jsonl spans in
      Alcotest.(check int) "one JSONL line per span" 1001
        (List.length
           (List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)));
      (* merged metrics carry the op.* families the simulator uses *)
      match Net.Cluster.metrics c with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some reg ->
          let table = Stats.Table.to_string (Obs.Metrics.table reg) in
          List.iter
            (fun needle ->
              if not (contains table needle) then
                Alcotest.failf "metric %s missing from:@.%s" needle table)
            [ "op.read.completed"; "op.read.rounds"; "op.write.completed" ])

(* ----- crash semantics --------------------------------------------------- *)

let reads_survive_crashed_minority () =
  let c = Net.Cluster.start ~protocol:Net.Protocols.regular ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "a")) in
      Net.Cluster.crash c 1;
      Alcotest.(check (list int)) "one down" [ 2; 3; 4 ] (Net.Cluster.alive c);
      let o = ok_exn "read with s1 down" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "value survives the crash" "a" (value_of o);
      (* writes too: the writer only ever waits for S - t acks *)
      let _ = ok_exn "write with s1 down" (Net.Cluster.write c (Core.Value.v "b")) in
      let o = ok_exn "read sees it" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "newest value" "b" (value_of o))

let wiped_restart_is_tolerated () =
  (* a replica that loses its disk is just another failure the quorum
     absorbs: reads still return the last written value *)
  let c = Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "keep")) in
      Net.Cluster.crash c 2;
      Net.Cluster.restart_exn ~wipe:true c 2;
      let o = ok_exn "read after wiped restart" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "value survives the wipe" "keep" (value_of o))

(* ----- Byzantine-silent endpoint ----------------------------------------- *)

(* A listener that accepts connections and never answers a byte: the
   loudest kind of silence a Byzantine object can produce without
   forging.  Clients must complete operations without it. *)
let silent_listener () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 16;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop = Atomic.make false in
  let conns = ref [] in
  let t =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ fd ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept fd with
              | c, _ -> conns := c :: !conns
              | exception Unix.Unix_error _ -> ())
        done)
      ()
  in
  let cleanup () =
    Atomic.set stop true;
    Thread.join t;
    List.iter (fun c -> try Unix.close c with Unix.Unix_error _ -> ()) !conns;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  (Net.Endpoint.Tcp { host = "127.0.0.1"; port }, cleanup)

let byzantine_silent_endpoint () =
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1 in
  let protocol = Net.Protocols.safe in
  let servers =
    List.init 3 (fun i ->
        Net.Server.start ~protocol ~cfg ~index:(i + 1)
          (Net.Endpoint.Tcp { host = "127.0.0.1"; port = 0 }))
  in
  let silent_ep, silent_cleanup = silent_listener () in
  Fun.protect
    ~finally:(fun () ->
      silent_cleanup ();
      List.iter Net.Server.stop servers)
    (fun () ->
      let endpoints =
        Array.of_list (List.map Net.Server.endpoint servers @ [ silent_ep ])
      in
      let writer =
        Net.Client.connect ~protocol ~cfg ~role:`Writer endpoints
      in
      let reader =
        Net.Client.connect ~protocol ~cfg ~role:(`Reader 1) endpoints
      in
      Fun.protect
        ~finally:(fun () ->
          Net.Client.close writer;
          Net.Client.close reader)
        (fun () ->
          let _ =
            ok_exn "write despite silent object"
              (Net.Client.write writer (Core.Value.v "loud"))
          in
          let o =
            ok_exn "read despite silent object" (Net.Client.read reader)
          in
          Alcotest.(check string) "correct value" "loud"
            (match o.value with Some v -> Core.Value.to_string v | None -> "?")))

(* ----- failure reporting ------------------------------------------------- *)

let too_many_failures_times_out () =
  (* crash beyond t: operations must fail with a clean timeout error,
     not hang or raise *)
  let opts = { Net.Client.deadline = 0.05; retries = 1; backoff = 0.01 } in
  let c = Net.Cluster.start ~opts ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "v")) in
      Net.Cluster.crash c 1;
      Net.Cluster.crash c 2;
      (* quorum is S - t = 3; only 2 objects remain *)
      match Net.Cluster.read c ~reader:1 with
      | Ok o -> Alcotest.failf "read completed (%s) with 2 of 4 objects" (value_of o)
      | Error e ->
          Alcotest.(check bool) "error mentions the timeout" true
            (contains e "timed out");
          (* the cluster recovers once the objects come back *)
          Net.Cluster.restart_exn c 1;
          Net.Cluster.restart_exn c 2;
          let o = ok_exn "read after recovery" (Net.Cluster.read c ~reader:1) in
          Alcotest.(check string) "resumed op still returns the value" "v"
            (value_of o))

(* ----- concurrency ------------------------------------------------------- *)

let concurrent_readers_are_safe () =
  let readers = 3 in
  let per_reader = 30 in
  let c =
    Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "w0")) in
      let failures = Atomic.make 0 in
      let body j () =
        for _ = 1 to per_reader do
          match Net.Cluster.read c ~reader:j with
          | Ok _ -> ()
          | Error _ -> Atomic.incr failures
        done
      in
      let threads =
        List.init readers (fun j -> Thread.create (body (j + 1)) ())
      in
      (* writes race the reads from the main thread *)
      for i = 1 to 5 do
        match Net.Cluster.write c (Core.Value.v (Printf.sprintf "w%d" i)) with
        | Ok _ -> ()
        | Error _ -> Atomic.incr failures
      done;
      List.iter Thread.join threads;
      Alcotest.(check int) "no failed operations" 0 (Atomic.get failures);
      let history = Net.Cluster.history c in
      Alcotest.(check int) "all ops recorded"
        (1 + 5 + (readers * per_reader))
        (List.length history);
      Alcotest.(check bool) "concurrent live history is safe" true
        (Histories.Checks.is_safe ~equal:String.equal history))

(* ----- pipelined reads (ISSUE 5) ----------------------------------------- *)

let pipelined_chaos_zero_failures () =
  (* max_inflight = 16 across a server crash and restart, the crash
     landing mid-batch from another thread: every op must complete and
     the recorded history (with its real concurrency) must check out. *)
  let c =
    Net.Cluster.start ~metrics:true ~protocol:Net.Protocols.safe ~cfg:cfg4
      ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "durable")) in
      let failures = ref 0 in
      let run n =
        Net.Cluster.read_pipelined c ~inflight:16 ~ops:n
        |> Array.iteri (fun k -> function
             | Ok o ->
                 if value_of o <> "durable" then begin
                   incr failures;
                   Format.eprintf "pipelined read %d returned %s@." k
                     (value_of o)
                 end
             | Error e ->
                 incr failures;
                 Format.eprintf "pipelined read %d failed: %s@." k e)
      in
      let chaos =
        Thread.create
          (fun () ->
            Thread.delay 0.005;
            Net.Cluster.crash c 3;
            Thread.delay 0.05;
            Net.Cluster.restart_exn c 3)
          ()
      in
      run 600;
      Thread.join chaos;
      (* and a batch with the full quorum back *)
      run 100;
      Alcotest.(check int) "zero failed pipelined ops" 0 !failures;
      Alcotest.(check (list int)) "all servers back up" [ 1; 2; 3; 4 ]
        (Net.Cluster.alive c);
      let history = Net.Cluster.history c in
      Alcotest.(check int) "ops recorded" 701 (List.length history);
      Alcotest.(check bool) "pipelined history safe" true
        (Histories.Checks.is_safe ~equal:String.equal history);
      Alcotest.(check bool) "pipelined history regular" true
        (Histories.Checks.is_regular ~equal:String.equal history);
      match Net.Cluster.metrics c with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some reg ->
          let table = Stats.Table.to_string (Obs.Metrics.table reg) in
          List.iter
            (fun needle ->
              if not (contains table needle) then
                Alcotest.failf "metric %s missing from:@.%s" needle table)
            [ "wire.batch_size"; "wire.flush_us"; "op.read.completed" ])

let pipelined_byzantine_silent () =
  (* one Byzantine-silent endpoint, 16 ops in flight: the window must
     not let the mute object starve any of them *)
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1 in
  let protocol = Net.Protocols.safe in
  let servers =
    List.init 3 (fun i ->
        Net.Server.start ~protocol ~cfg ~index:(i + 1)
          (Net.Endpoint.Tcp { host = "127.0.0.1"; port = 0 }))
  in
  let silent_ep, silent_cleanup = silent_listener () in
  Fun.protect
    ~finally:(fun () ->
      silent_cleanup ();
      List.iter Net.Server.stop servers)
    (fun () ->
      let endpoints =
        Array.of_list (List.map Net.Server.endpoint servers @ [ silent_ep ])
      in
      let writer = Net.Client.connect ~protocol ~cfg ~role:`Writer endpoints in
      let mux =
        Net.Client.Mux.connect ~protocol ~cfg ~readers:16 ~max_inflight:16
          endpoints
      in
      Fun.protect
        ~finally:(fun () ->
          Net.Client.close writer;
          Net.Client.Mux.close mux)
        (fun () ->
          let _ =
            ok_exn "write despite silent object"
              (Net.Client.write writer (Core.Value.v "loud"))
          in
          let results = Net.Client.Mux.run_reads mux 200 in
          let failures = ref 0 in
          Array.iter
            (function
              | Ok o ->
                  if
                    (match o.Net.Client.value with
                    | Some v -> Core.Value.to_string v
                    | None -> "?")
                    <> "loud"
                  then incr failures
              | Error _ -> incr failures)
            results;
          Alcotest.(check int) "zero failed ops despite silent endpoint" 0
            !failures))

let pipelined_matches_serial () =
  (* same cluster, same value: the pipelined path must return exactly
     what the serial client returns, op for op *)
  let c = Net.Cluster.start ~protocol:Net.Protocols.regular ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "same")) in
      let serial = List.init 20 (fun _ ->
          value_of (ok_exn "serial read" (Net.Cluster.read c ~reader:1)))
      in
      let piped =
        Net.Cluster.read_pipelined c ~inflight:4 ~ops:20
        |> Array.to_list
        |> List.map (fun r -> value_of (ok_exn "pipelined read" r))
      in
      Alcotest.(check (list string)) "pipelined values match serial" serial piped)

(* ----- poll event-loop server mode ---------------------------------------- *)

let poll_loop_cluster () =
  (* all four objects hosted by one select-driven thread; wire behaviour
     (including crash/restart and pipelining) must be indistinguishable *)
  let c =
    Net.Cluster.start ~loop:`Poll ~protocol:Net.Protocols.safe ~cfg:cfg4
      ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "poll")) in
      let o = ok_exn "read" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "value over poll loop" "poll" (value_of o);
      Net.Cluster.crash c 2;
      Alcotest.(check (list int)) "one down" [ 1; 3; 4 ] (Net.Cluster.alive c);
      let o = ok_exn "read with s2 down" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "quorum absorbs the crash" "poll" (value_of o);
      Net.Cluster.restart_exn c 2;
      Alcotest.(check (list int)) "all back" [ 1; 2; 3; 4 ]
        (Net.Cluster.alive c);
      let failures = ref 0 in
      Net.Cluster.read_pipelined c ~inflight:8 ~ops:200
      |> Array.iter (function
           | Ok o -> if value_of o <> "poll" then incr failures
           | Error _ -> incr failures);
      Alcotest.(check int) "pipelined over poll loop: zero failures" 0
        !failures;
      Alcotest.(check bool) "history safe" true
        (Histories.Checks.is_safe ~equal:String.equal (Net.Cluster.history c)))

(* ----- TCP transport ----------------------------------------------------- *)

let tcp_transport_works () =
  let c =
    Net.Cluster.start ~transport:`Tcp ~protocol:Net.Protocols.abd ~cfg:cfg4
      ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "tcp")) in
      let o = ok_exn "read" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "value over tcp" "tcp" (value_of o))

let suite =
  ( "net",
    [
      Alcotest.test_case "write/read round-trips on every protocol" `Quick
        roundtrip_all_protocols;
      Alcotest.test_case "safe READ is fast (one round) live" `Quick
        fast_read_is_one_round;
      Alcotest.test_case "1000 READs across a crash and restart" `Slow
        acceptance_1000_reads;
      Alcotest.test_case "reads and writes survive a crashed minority" `Quick
        reads_survive_crashed_minority;
      Alcotest.test_case "wiped restart is absorbed by the quorum" `Quick
        wiped_restart_is_tolerated;
      Alcotest.test_case "Byzantine-silent endpoint cannot block ops" `Quick
        byzantine_silent_endpoint;
      Alcotest.test_case "crashes beyond t time out cleanly and recover" `Quick
        too_many_failures_times_out;
      Alcotest.test_case "concurrent readers over live sockets stay safe" `Quick
        concurrent_readers_are_safe;
      Alcotest.test_case "TCP loopback transport" `Quick tcp_transport_works;
      Alcotest.test_case "pipelined reads under chaos (inflight=16)" `Slow
        pipelined_chaos_zero_failures;
      Alcotest.test_case "pipelined reads with Byzantine-silent endpoint"
        `Quick pipelined_byzantine_silent;
      Alcotest.test_case "pipelined results match serial" `Quick
        pipelined_matches_serial;
      Alcotest.test_case "poll event-loop server mode" `Quick poll_loop_cluster;
    ] )
