(* Read coalescing (ISSUE 10): hot-key reads sharing one quorum round.

   Four angles, matching the design's obligations:

   - the batch structure's algebra (width bounds, join order, the
     close-means-no-more-joins rule) under random join/close schedules;
   - a live qcheck property: random hot-keyspace schedules driven with
     coalescing ON through a real loopback cluster still yield per-key
     histories that pass the paper's safety AND regularity checkers —
     join-before-broadcast is exactly why;
   - chaos: a server crash in the middle of a coalesced hot-key run
     must not fail any op (a batch is one quorum round; the lead's
     retransmit machinery carries every member) nor admit a violation;
   - golden structure: a width-k batch completes k logical ops (k
     spans, k results, k history entries) but initiates ONE round —
     one span with replies, k-1 with none. *)

let cfg3 = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0

let cfg4 = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0

let ok_exn what = function
  | Ok o -> o
  | Error e -> Alcotest.failf "%s failed: %s" what e

(* ----- batch algebra ------------------------------------------------------ *)

let gen_batch_schedule =
  QCheck.Gen.(
    map3
      (fun cap attempts close_at -> (cap, attempts, close_at))
      (int_range (-2) 64) (int_range 0 100) (int_range 0 100))

let arb_batch_schedule =
  QCheck.make
    ~print:(fun (cap, attempts, close_at) ->
      Printf.sprintf "cap=%d attempts=%d close_at=%d" cap attempts close_at)
    gen_batch_schedule

let batch_algebra =
  QCheck.Test.make
    ~name:"batch: width <= cap, join order kept, closed means no joins"
    ~count:500 arb_batch_schedule (fun (cap, attempts, close_at) ->
      let b = Net.Coalesce.create ~cap in
      let eff_cap = Stdlib.max 1 cap in
      let ok = ref (Net.Coalesce.cap b = eff_cap && Net.Coalesce.width b = 1) in
      let accepted = ref [] in
      for i = 0 to attempts - 1 do
        if i = close_at then Net.Coalesce.close b;
        let open_before = Net.Coalesce.is_open b in
        let width_before = Net.Coalesce.width b in
        let joined = Net.Coalesce.try_join b i in
        (* try_join succeeds exactly when open and below cap *)
        if joined <> (open_before && width_before < eff_cap) then ok := false;
        if joined then accepted := i :: !accepted
        else begin
          (* and join must refuse precisely the same schedules *)
          match Net.Coalesce.join b i with
          | () -> ok := false
          | exception Invalid_argument _ -> ()
        end
      done;
      if attempts > close_at && Net.Coalesce.is_open b then ok := false;
      let accepted = List.rev !accepted in
      !ok
      && Net.Coalesce.width b = 1 + List.length accepted
      && Net.Coalesce.width b <= eff_cap
      && Net.Coalesce.joiners b = accepted
      &&
      (* iter_joiners agrees with the list, in order *)
      let seen = ref [] in
      Net.Coalesce.iter_joiners (fun x -> seen := x :: !seen) b;
      List.rev !seen = accepted)

let batch_close_is_idempotent () =
  let b = Net.Coalesce.create ~cap:4 in
  Net.Coalesce.join b 1;
  Net.Coalesce.close b;
  Net.Coalesce.close b;
  Alcotest.(check bool) "closed" false (Net.Coalesce.is_open b);
  Alcotest.(check bool) "no joins after close" false (Net.Coalesce.try_join b 2);
  Alcotest.(check int) "width survives close" 2 (Net.Coalesce.width b)

(* ----- live qcheck: coalesced schedules stay regular ---------------------- *)

(* Random hot-keyspace schedules through one shared loopback cluster,
   coalescing ON.  Every case gets a disjoint key range (so per-key
   histories never mix write values across cases) and every sampled
   key's history must pass the single-register safety and regularity
   checkers.  regular-gc at S = 3 = 2t+2b+1 also keeps the fast-read
   path in play, so batches ride one-round reads where admissible. *)
let coalesced_schedules_are_regular () =
  let c =
    Net.Cluster.start ~metrics:true
      ~protocol:(Net.Protocols.regular_gc ~readers:1)
      ~cfg:cfg3 ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let map = Shard.Map.make_exn ~keys:16384 ~fleet:3 ~cfg:cfg3 () in
      let case = ref 0 in
      let gen =
        QCheck.Gen.(
          map3
            (fun keys skew (coalesce, seed) -> (keys, skew, coalesce, seed))
            (int_range 1 6)
            (oneofl [ 0.0; 0.99; 1.5 ])
            (pair (int_range 2 8) (int_range 0 1000)))
      in
      let arb =
        QCheck.make
          ~print:(fun (keys, skew, coalesce, seed) ->
            Printf.sprintf "keys=%d skew=%g coalesce=%d seed=%d" keys skew
              coalesce seed)
          gen
      in
      let prop (keys, skew, coalesce, seed) =
        let base = 8 * !case in
        incr case;
        let wgen =
          Workload.Keyspace.make_exn ~skew ~write_ratio:0.3 ~keys ~seed ()
        in
        let kops =
          Array.map
            (fun op ->
              match op with
              | Workload.Keyspace.Read { key } ->
                  Net.Client.Keyed.Read { key = base + key }
              | Workload.Keyspace.Write { key; value } ->
                  Net.Client.Keyed.Write { key = base + key; value })
            (Workload.Keyspace.ops wgen 60)
        in
        let results = Net.Cluster.run_keyed ~inflight:32 ~coalesce c ~map kops in
        Array.for_all (function Ok _ -> true | Error _ -> false) results
        && List.for_all
             (fun (key, h) ->
               key < base
               || (Histories.Checks.is_safe ~equal:String.equal h
                  && Histories.Checks.is_regular ~equal:String.equal h))
             (Net.Cluster.keyed_histories c)
      in
      QCheck.Test.check_exn
        (QCheck.Test.make ~name:"coalesced keyed schedules" ~count:10 arb prop);
      (* the schedules above must actually have exercised coalescing *)
      match Net.Cluster.metrics c with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some m ->
          Alcotest.(check bool) "some reads coalesced" true
            (Obs.Metrics.counter_value m "op.coalesced_reads" > 0))

(* ----- chaos: crash mid-coalesced-batch ----------------------------------- *)

let crash_mid_coalesced_run () =
  let c =
    Net.Cluster.start ~metrics:true
      ~opts:{ Net.Client.deadline = 0.5; retries = 8; backoff = 0.01 }
      ~protocol:(Net.Protocols.regular_gc ~readers:1)
      ~cfg:cfg4 ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let map = Shard.Map.make_exn ~keys:4 ~fleet:4 ~cfg:cfg4 () in
      let wgen =
        Workload.Keyspace.make_exn ~skew:1.2 ~write_ratio:0.1 ~keys:4 ~seed:7
          ()
      in
      let kops =
        Array.map
          (fun op ->
            match op with
            | Workload.Keyspace.Read { key } -> Net.Client.Keyed.Read { key }
            | Workload.Keyspace.Write { key; value } ->
                Net.Client.Keyed.Write { key; value })
          (Workload.Keyspace.ops wgen 200)
      in
      (* Kill a server while the coalesced hot-key window is in flight;
         t = 1, so the lead rounds retransmit around the hole and every
         batch member must still complete. *)
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.02;
            Net.Cluster.crash c 3)
          ()
      in
      let results = Net.Cluster.run_keyed ~inflight:32 ~coalesce:16 c ~map kops in
      Thread.join killer;
      let failures =
        Array.to_list results
        |> List.filter_map (function Ok _ -> None | Error e -> Some e)
      in
      Alcotest.(check (list string)) "no failed ops across the crash" []
        failures;
      ok_exn "restart after run"
        (Result.map_error
           (fun _ -> "still alive")
           (Net.Cluster.restart c 3));
      List.iter
        (fun (key, h) ->
          Alcotest.(check bool)
            (Printf.sprintf "key %d history is safe" key)
            true
            (Histories.Checks.is_safe ~equal:String.equal h);
          Alcotest.(check bool)
            (Printf.sprintf "key %d history is regular" key)
            true
            (Histories.Checks.is_regular ~equal:String.equal h))
        (Net.Cluster.keyed_histories c);
      Alcotest.(check int) "no partition violations" 0
        (Net.Cluster.partition_violations c);
      match Net.Cluster.metrics c with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some m ->
          Alcotest.(check bool) "coalescing engaged across the crash" true
            (Obs.Metrics.counter_value m "op.coalesced_reads" > 0))

(* ----- golden structure: width-k batch = k ops, 1 round ------------------- *)

let fresh_tmpdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "coalesce-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let start_group ~protocol ~cfg () =
  let dir = fresh_tmpdir () in
  let endpoints =
    Array.init cfg.Quorum.Config.s (fun i ->
        Net.Endpoint.Unix_sock
          (Filename.concat dir (Printf.sprintf "obj%d.sock" (i + 1))))
  in
  let servers = Net.Server.start_group ~domains:1 ~protocol ~cfg endpoints in
  (servers, Array.map Net.Server.endpoint servers)

let read_spans spans =
  List.filter
    (fun (s : Obs.Span.t) ->
      match s.Obs.Span.kind with Obs.Span.Read _ -> true | Obs.Span.Write -> false)
    spans

(* One write, then 5 same-key reads admitted in one pump sweep with
   cap >= 5: the first leads, the other 4 join.  Five logical ops
   complete — 5 results, 5 spans, the per-op metrics — but only ONE
   round hits the wire: one read span heard replies, the joiners heard
   none and initiated no round of their own. *)
let keyed_width5_batch_structure () =
  let protocol = Net.Protocols.regular_gc ~readers:1 in
  let servers, endpoints = start_group ~protocol ~cfg:cfg3 () in
  Fun.protect
    ~finally:(fun () -> Array.iter Net.Server.stop servers)
    (fun () ->
      let map = Shard.Map.make_exn ~keys:4 ~fleet:3 ~cfg:cfg3 () in
      let registry = Obs.Metrics.create () in
      let keyed =
        Net.Client.Keyed.connect ~metrics:registry ~max_inflight:16 ~reader:1
          ~coalesce:8 ~protocol ~map endpoints
      in
      Fun.protect
        ~finally:(fun () -> Net.Client.Keyed.close keyed)
        (fun () ->
          let seed =
            Net.Client.Keyed.run_ops keyed
              [| Net.Client.Keyed.Write { key = 0; value = Core.Value.v "v0" } |]
          in
          ignore (ok_exn "seed write" seed.(0));
          let joined_invokes = ref 0 and joined_responds = ref 0 in
          let on_event = function
            | Net.Client.Keyed.Invoke { joined = true; _ } ->
                incr joined_invokes
            | Net.Client.Keyed.Respond { joined = true; _ } ->
                incr joined_responds
            | _ -> ()
          in
          let results =
            Net.Client.Keyed.run_ops ~on_event keyed
              (Array.init 5 (fun _ -> Net.Client.Keyed.Read { key = 0 }))
          in
          Array.iteri
            (fun i r ->
              let o = ok_exn (Printf.sprintf "read %d" i) r in
              match o.Net.Client.value with
              | Some v ->
                  Alcotest.(check string)
                    (Printf.sprintf "read %d value" i)
                    "v0" (Core.Value.to_string v)
              | None -> Alcotest.failf "read %d returned no value" i)
            results;
          Alcotest.(check int) "4 joined invokes" 4 !joined_invokes;
          Alcotest.(check int) "4 joined responds" 4 !joined_responds;
          Alcotest.(check int) "op.coalesced_reads" 4
            (Obs.Metrics.counter_value registry "op.coalesced_reads");
          (match Obs.Metrics.find_histogram registry "op.coalesce_width" with
          | None -> Alcotest.fail "op.coalesce_width histogram absent"
          | Some h ->
              Alcotest.(check int) "width observed once per member" 5
                (Obs.Metrics.Histogram.count h);
              Alcotest.(check bool) "width p50 above the lone-read bucket" true
                (Obs.Metrics.Histogram.quantile h 50. > 1.0));
          let reads = read_spans (Net.Client.Keyed.spans keyed) in
          Alcotest.(check int) "5 read spans" 5 (List.length reads);
          List.iter
            (fun (s : Obs.Span.t) ->
              Alcotest.(check bool) "span completed" true (Obs.Span.completed s))
            reads;
          let leads, joiners =
            List.partition (fun (s : Obs.Span.t) -> s.Obs.Span.replies > 0) reads
          in
          Alcotest.(check int) "exactly one span heard replies" 1
            (List.length leads);
          List.iter
            (fun (s : Obs.Span.t) ->
              Alcotest.(check int)
                "joiner initiated no round of its own" 1 s.Obs.Span.rounds;
              Alcotest.(check (option int))
                "joiner reports the lead's round count"
                (List.hd leads).Obs.Span.reported_rounds
                s.Obs.Span.reported_rounds)
            joiners;
          (* cap 1 (the default) must leave no coalescing trace at all *)
          let reg_off = Obs.Metrics.create () in
          let off =
            Net.Client.Keyed.connect ~metrics:reg_off ~max_inflight:16
              ~reader:2 ~protocol ~map endpoints
          in
          Fun.protect
            ~finally:(fun () -> Net.Client.Keyed.close off)
            (fun () ->
              let joined = ref 0 in
              let on_event = function
                | Net.Client.Keyed.Invoke { joined = true; _ }
                | Net.Client.Keyed.Respond { joined = true; _ } ->
                    incr joined
                | _ -> ()
              in
              let results =
                Net.Client.Keyed.run_ops ~on_event off
                  (Array.init 3 (fun _ -> Net.Client.Keyed.Read { key = 0 }))
              in
              Array.iteri
                (fun i r -> ignore (ok_exn (Printf.sprintf "off read %d" i) r))
                results;
              Alcotest.(check int) "no joined events when off" 0 !joined;
              Alcotest.(check int) "no coalesced reads when off" 0
                (Obs.Metrics.counter_value reg_off "op.coalesced_reads");
              Alcotest.(check bool) "no width histogram when off" true
                (Obs.Metrics.find_histogram reg_off "op.coalesce_width" = None))))

(* The mux path: one reader slot, window 1, cap 8 — joining is the only
   way 8 reads can be admitted in one sweep, and joined reads must not
   count against max_inflight. *)
let mux_width8_batch_structure () =
  let protocol = Net.Protocols.regular_gc ~readers:1 in
  let servers, endpoints = start_group ~protocol ~cfg:cfg3 () in
  Fun.protect
    ~finally:(fun () -> Array.iter Net.Server.stop servers)
    (fun () ->
      let w =
        Net.Client.connect ~protocol ~cfg:cfg3 ~role:`Writer endpoints
      in
      (match Net.Client.write w (Core.Value.v "m0") with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "seed write failed: %s" e);
      Net.Client.close w;
      let registry = Obs.Metrics.create () in
      let mux =
        Net.Client.Mux.connect ~metrics:registry ~max_inflight:1
          ~first_reader:2 ~coalesce:8 ~protocol ~cfg:cfg3 ~readers:1 endpoints
      in
      Fun.protect
        ~finally:(fun () -> Net.Client.Mux.close mux)
        (fun () ->
          let joined = ref 0 in
          let on_event = function
            | Net.Client.Mux.Respond { joined = true; _ } -> incr joined
            | _ -> ()
          in
          let results = Net.Client.Mux.run_reads ~on_event mux 8 in
          Array.iteri
            (fun i r ->
              let o = ok_exn (Printf.sprintf "mux read %d" i) r in
              match o.Net.Client.value with
              | Some v ->
                  Alcotest.(check string)
                    (Printf.sprintf "mux read %d value" i)
                    "m0" (Core.Value.to_string v)
              | None -> Alcotest.failf "mux read %d returned no value" i)
            results;
          Alcotest.(check int) "7 joined responds" 7 !joined;
          Alcotest.(check int) "op.coalesced_reads" 7
            (Obs.Metrics.counter_value registry "op.coalesced_reads");
          (match Obs.Metrics.find_histogram registry "op.coalesce_width" with
          | None -> Alcotest.fail "op.coalesce_width histogram absent"
          | Some h ->
              Alcotest.(check int) "width observed once per member" 8
                (Obs.Metrics.Histogram.count h);
              Alcotest.(check bool) "width p50 above the lone-read bucket" true
                (Obs.Metrics.Histogram.quantile h 50. > 1.0));
          let reads = read_spans (Net.Client.Mux.spans mux) in
          Alcotest.(check int) "8 read spans" 8 (List.length reads);
          let leads, joiners =
            List.partition (fun (s : Obs.Span.t) -> s.Obs.Span.replies > 0) reads
          in
          Alcotest.(check int) "exactly one span heard replies" 1
            (List.length leads);
          List.iter
            (fun (s : Obs.Span.t) ->
              Alcotest.(check int)
                "joiner initiated no round of its own" 1 s.Obs.Span.rounds)
            joiners))

let suite =
  ( "coalesce",
    [
      QCheck_alcotest.to_alcotest batch_algebra;
      Alcotest.test_case "batch close is idempotent" `Quick
        batch_close_is_idempotent;
      Alcotest.test_case "coalesced schedules stay regular (live qcheck)"
        `Quick coalesced_schedules_are_regular;
      Alcotest.test_case "crash mid-coalesced hot-key run" `Quick
        crash_mid_coalesced_run;
      Alcotest.test_case "keyed width-5 batch: 5 ops, 1 round" `Quick
        keyed_width5_batch_structure;
      Alcotest.test_case "mux width-8 batch: 8 ops, 1 round" `Quick
        mux_width8_batch_structure;
    ] )
