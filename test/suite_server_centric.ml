(* Tests for the server-centric model (paper §6): pushes are allowed,
   0-round reads from pushed state are unsafe under asynchrony, and the
   1-round poll obeys the same 2t+2b threshold as the data-centric
   model. *)

let equal = String.equal

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

let cfg_above = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "v2"));
    (300, Core.Schedule.Read { reader = 1 });
  ]

let test_quiescent_pushes_give_zero_round_reads () =
  let rep =
    Server_centric.Push_register.run ~cfg:cfg_above ~seed:1 ~delay:uniform
      schedule
  in
  Alcotest.(check int) "completes" 4 (List.length rep.outcomes);
  Alcotest.(check bool) "pushes flowed" true (rep.pushes_delivered > 0);
  Alcotest.(check int) "both reads answered from pushed state" 2
    rep.zero_round_reads;
  Alcotest.(check bool) "quiescent runs look safe" true
    (Histories.Checks.is_safe ~equal rep.history)

let test_delayed_pushes_break_zero_round_reads () =
  (* The §6 asynchrony adversary: let wr1's pushes through, freeze the
     server->reader links, complete wr2, then read.  The 0-round read
     answers from the stale pushed state — safety violated at ANY S. *)
  let rep =
    Server_centric.Push_register.run ~cfg:cfg_above ~seed:2 ~delay:uniform
      ~freeze_pushes_at:150 ~unfreeze_pushes_at:5_000 schedule
  in
  Alcotest.(check int) "completes" 4 (List.length rep.outcomes);
  let stale_read =
    List.exists
      (fun (o : Server_centric.Push_register.outcome) ->
        o.invoked_at >= 300
        && o.mode = Some Server_centric.Push_register.Pushed
        && o.result = Some (Core.Value.v "v1"))
      rep.outcomes
  in
  Alcotest.(check bool) "the late read returned the stale v1" true stale_read;
  Alcotest.(check bool) "safety violated" false
    (Histories.Checks.is_safe ~equal rep.history)

let test_polling_mode_survives_the_same_adversary () =
  (* Same freeze window, 0-round path disabled: the read polls; the
     freeze delays poll replies too, so the read simply completes after
     the unfreeze, with the correct value. *)
  let rep =
    Server_centric.Push_register.run ~zero_round:false ~cfg:cfg_above ~seed:2
      ~delay:uniform ~freeze_pushes_at:150 ~unfreeze_pushes_at:500 schedule
  in
  Alcotest.(check int) "completes" 4 (List.length rep.outcomes);
  Alcotest.(check int) "all reads polled" 2 rep.polled_reads;
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history)

let test_polling_safe_above_threshold_with_byz () =
  let rep =
    Server_centric.Push_register.run ~zero_round:false ~cfg:cfg_above ~seed:3
      ~delay:uniform ~byz_forgers:[ 2 ] schedule
  in
  Alcotest.(check int) "completes" 4 (List.length rep.outcomes);
  Alcotest.(check bool) "safe (forger cannot reach b+1 endorsements)" true
    (Histories.Checks.is_safe ~equal rep.history)

let test_zero_round_forgery_resistance () =
  (* Even on the fast path a forger cannot assemble b+1 endorsements, so
     a Byzantine push never becomes a read result (staleness, not
     forgery, is the 0-round weakness). *)
  let rep =
    Server_centric.Push_register.run ~cfg:cfg_above ~seed:4 ~delay:uniform
      ~byz_forgers:[ 1 ] schedule
  in
  Alcotest.(check bool) "forged value never returned" true
    (List.for_all
       (fun (o : Server_centric.Push_register.outcome) ->
         o.result <> Some (Core.Value.v "forged"))
       rep.outcomes)

let test_crash_tolerated () =
  let rep =
    Server_centric.Push_register.run ~cfg:cfg_above ~seed:5 ~delay:uniform
      ~crashes:[ (Sim.Proc_id.Obj 4, 50) ]
      schedule
  in
  Alcotest.(check int) "wait-free" 4 (List.length rep.outcomes)

let test_below_threshold_poll_unsafe_somewhere () =
  (* At S = 2t+2b the poll-based read inherits the data-centric
     impossibility; a stale-ish adversary plus scheduling finds it.  We
     reuse the same freeze trick: wr2's write messages reach the servers,
     but one server's state is old because it crashed... simplest
     concrete witness: freeze before wr2 pushes AND poll during the
     freeze is impossible (links blocked), so instead verify the
     structural fact directly: endorsement needs b+1 = 2 but the poll
     quorum may contain only 1 fresh honest server. *)
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1 in
  Alcotest.(check bool) "s = 2t+2b lacks the endorsement margin" true
    (Quorum.Config.quorum cfg - cfg.Quorum.Config.t - cfg.Quorum.Config.b
     < cfg.Quorum.Config.b + 1);
  Alcotest.(check bool) "s = 2t+2b+1 has it" true
    (Quorum.Config.quorum cfg_above
     - cfg_above.Quorum.Config.t - cfg_above.Quorum.Config.b
     >= cfg_above.Quorum.Config.b + 1)

let test_determinism () =
  let go () =
    let rep =
      Server_centric.Push_register.run ~cfg:cfg_above ~seed:8 ~delay:uniform
        ~byz_forgers:[ 2 ] schedule
    in
    List.map
      (fun (o : Server_centric.Push_register.outcome) ->
        (o.invoked_at, o.completed_at, o.result))
      rep.outcomes
  in
  Alcotest.(check bool) "identical reruns" true (go () = go ())

let suite =
  ( "server-centric",
    [
      Alcotest.test_case "pushes give zero-round reads" `Quick
        test_quiescent_pushes_give_zero_round_reads;
      Alcotest.test_case "delayed pushes break zero-round reads" `Quick
        test_delayed_pushes_break_zero_round_reads;
      Alcotest.test_case "polling survives the same adversary" `Quick
        test_polling_mode_survives_the_same_adversary;
      Alcotest.test_case "polling safe above threshold with byz" `Quick
        test_polling_safe_above_threshold_with_byz;
      Alcotest.test_case "zero-round forgery resistance" `Quick
        test_zero_round_forgery_resistance;
      Alcotest.test_case "crash tolerated" `Quick test_crash_tolerated;
      Alcotest.test_case "threshold arithmetic" `Quick
        test_below_threshold_poll_unsafe_somewhere;
      Alcotest.test_case "determinism" `Quick test_determinism;
    ] )
