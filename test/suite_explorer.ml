(* Tests for the bounded model checker (E5 in miniature): exhaustive
   delivery-order exploration on small scenarios. *)

module ES = Mc.Explorer.Make (Core.Proto_safe)
module ER = Mc.Explorer.Make (Core.Proto_regular.Plain)
module EF = Mc.Explorer.Make (Baseline.Naive_fast)
module EA = Mc.Explorer.Make (Baseline.Abd.Regular)

let cfg_core = Quorum.Config.optimal ~t:1 ~b:1

let forge_naive : EF.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        match m with
        | Baseline.Naive_fast.Read_ack { rid; ts; v = _ } ->
            [
              Baseline.Naive_fast.Read_ack
                { rid; ts = ts + 10; v = Core.Value.v "ghost" };
            ]
        | m -> [ m ]);
  }

let forge_safe : ES.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        let forged_pair () =
          let tsval = Core.Tsval.make ~ts:9 ~v:(Core.Value.v "ghost") in
          (tsval, Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty)
        in
        match m with
        | Core.Messages.Read1_ack { tsr; _ } ->
            let pw, w = forged_pair () in
            [ Core.Messages.Read1_ack { tsr; pw; w } ]
        | Core.Messages.Read2_ack { tsr; _ } ->
            let pw, w = forged_pair () in
            [ Core.Messages.Read2_ack { tsr; pw; w } ]
        | m -> [ m ]);
  }

let test_safe_read_only_byz_exhaustive () =
  let r =
    ES.check ~max_states:100_000
      {
        ES.cfg = cfg_core;
        writes = [];
        reads = [ (1, 1) ];
        sequential = false;
        byz = [ (1, forge_safe) ];
        crashed = [];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check int) "no violations" 0 (List.length r.violations);
  Alcotest.(check bool) "explored non-trivially" true (r.explored > 100)

let test_safe_read_only_crash_exhaustive () =
  let r =
    ES.check ~max_states:100_000
      {
        ES.cfg = cfg_core;
        writes = [];
        reads = [ (1, 1) ];
        sequential = false;
        byz = [];
        crashed = [ 4 ];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check int) "no violations (incl. wait-freedom)" 0
    (List.length r.violations)

let test_safe_sequential_write_read_bounded () =
  (* The full space fits in ~750k states; explore a 150k-state prefix in
     the quick suite (the bench harness runs it exhaustively). *)
  let r =
    ES.check ~max_states:150_000
      {
        ES.cfg = cfg_core;
        writes = [ Core.Value.v "a" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [];
        crashed = [];
      }
  in
  Alcotest.(check int) "no violations in explored prefix" 0
    (List.length r.violations)

let test_naive_violation_found_automatically () =
  let r =
    EF.check ~max_states:100_000
      {
        EF.cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        writes = [ Core.Value.v "a" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [ (1, forge_naive) ];
        crashed = [];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check bool) "violation found" true (List.length r.violations > 0);
  Alcotest.(check bool) "it is a safety violation" true
    (List.exists (fun (v : EF.violation) -> v.kind = "safety") r.violations)

let test_naive_run5_shape_found () =
  let r =
    EF.check ~max_states:50_000
      {
        EF.cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        writes = [];
        reads = [ (1, 1) ];
        sequential = false;
        byz = [ (1, forge_naive) ];
        crashed = [];
      }
  in
  Alcotest.(check bool) "violation without any write" true
    (List.length r.violations > 0)

let test_naive_clean_without_byz () =
  let r =
    EF.check ~max_states:200_000
      {
        EF.cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        writes = [ Core.Value.v "a" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [];
        crashed = [ 2 ];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check int) "crash-only is clean" 0 (List.length r.violations)

let test_abd_atomicity_check_exhaustive () =
  let r =
    EA.check ~max_states:400_000 ~property:`Regular
      {
        EA.cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0;
        writes = [ Core.Value.v "a" ];
        reads = [ (1, 1) ];
        sequential = false;
        byz = [];
        crashed = [];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check int) "regular in all interleavings" 0 (List.length r.violations)

let test_regular_sequential_write_read_bounded () =
  (* ~758k states exhaustively in the bench harness; a 150k-state prefix
     here keeps the suite fast. *)
  let r =
    ER.check ~max_states:150_000 ~property:`Regular
      {
        ER.cfg = cfg_core;
        writes = [ Core.Value.v "a" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [];
        crashed = [];
      }
  in
  Alcotest.(check int) "no violations in explored prefix" 0
    (List.length r.violations)

let test_regular_read_only_exhaustive () =
  let r =
    ER.check ~max_states:150_000 ~property:`Regular
      {
        ER.cfg = cfg_core;
        writes = [];
        reads = [ (1, 1) ];
        sequential = false;
        byz = [];
        crashed = [ 2 ];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check int) "no violations" 0 (List.length r.violations)

let test_wait_freedom_detects_stuck_protocols () =
  (* Crash one more object than the budget allows: the quorum can never
     form, reads hang, and the checker must report it. *)
  let r =
    ES.check ~max_states:50_000
      {
        ES.cfg = cfg_core;
        writes = [];
        reads = [ (1, 1) ];
        sequential = false;
        byz = [];
        crashed = [ 1; 2 ];  (* two crashes, t = 1 *)
      }
  in
  Alcotest.(check bool) "wait-freedom violation reported" true
    (List.exists (fun (v : ES.violation) -> v.kind = "wait-freedom") r.violations)

let suite =
  ( "explorer",
    [
      Alcotest.test_case "safe read-only + byz exhaustive" `Quick
        test_safe_read_only_byz_exhaustive;
      Alcotest.test_case "safe read-only + crash exhaustive" `Quick
        test_safe_read_only_crash_exhaustive;
      Alcotest.test_case "safe sequential W;R bounded" `Slow
        test_safe_sequential_write_read_bounded;
      Alcotest.test_case "naive violation found" `Quick
        test_naive_violation_found_automatically;
      Alcotest.test_case "naive run5 shape found" `Quick test_naive_run5_shape_found;
      Alcotest.test_case "naive clean without byz" `Slow test_naive_clean_without_byz;
      Alcotest.test_case "abd regular exhaustive" `Slow
        test_abd_atomicity_check_exhaustive;
      Alcotest.test_case "regular read-only exhaustive" `Quick
        test_regular_read_only_exhaustive;
      Alcotest.test_case "regular sequential W;R bounded" `Slow
        test_regular_sequential_write_read_bounded;
      Alcotest.test_case "wait-freedom detector" `Quick
        test_wait_freedom_detects_stuck_protocols;
    ] )
