(* Tests for the above-threshold fast protocol: safe with 1-round
   operations at S >= 2t+2b+1, doomed at S = 2t+2b — the tightness of
   Proposition 1 seen from both sides. *)

module F = Core.Scenario.Make (Baseline.Fast_safe)
module LB = Mc.Lower_bound.Make (Baseline.Fast_safe)

let equal = String.equal

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "v2"));
    (300, Core.Schedule.Read { reader = 1 });
    (310, Core.Schedule.Read { reader = 2 });
  ]

let above_threshold ~t ~b = Quorum.Config.make_exn ~s:((2 * t) + (2 * b) + 1) ~t ~b

let test_crash_free_above_threshold () =
  let rep =
    F.run ~cfg:(above_threshold ~t:1 ~b:1) ~seed:1 ~delay:uniform
      ~faults:F.no_faults schedule
  in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history);
  Alcotest.(check bool) "all single round" true
    (List.for_all (fun (o : F.outcome) -> o.rounds = 1) rep.outcomes)

let test_byzantine_forger_above_threshold () =
  List.iter
    (fun (t, b) ->
      let byz =
        List.init b (fun i ->
            (i + 1, Baseline.Fast_safe.byz_forge_high ~value:"evil" ~ts_boost:9))
      in
      let rep =
        F.run ~cfg:(above_threshold ~t ~b) ~seed:2 ~delay:uniform
          ~faults:{ F.crashes = []; byzantine = byz }
          schedule
      in
      Alcotest.(check bool)
        (Printf.sprintf "safe at t=%d b=%d" t b)
        true
        (Histories.Checks.is_safe ~equal rep.history);
      Alcotest.(check int) "completes" 5 (List.length rep.outcomes))
    [ (1, 1); (2, 1); (2, 2) ]

let test_colluding_endorsers_fall_short () =
  (* b Byzantine objects all vouch for the same forged pair: b < b+1, so
     the endorsement bar holds. *)
  let t = 2 and b = 2 in
  let byz =
    List.init b (fun i ->
        (i + 1, Baseline.Fast_safe.byz_endorse_forgery ~value:"ghost" ~ts:50))
  in
  let rep =
    F.run ~cfg:(above_threshold ~t ~b) ~seed:3 ~delay:uniform
      ~faults:{ F.crashes = []; byzantine = byz }
      schedule
  in
  Alcotest.(check bool) "collusion fails" true
    (Histories.Checks.is_safe ~equal rep.history);
  (* no read ever returned the forged value *)
  Alcotest.(check bool) "ghost never returned" true
    (List.for_all
       (fun (o : F.outcome) ->
         match o.result with
         | Some v -> not (Core.Value.equal v (Core.Value.v "ghost"))
         | None -> true)
       rep.outcomes)

let test_crashes_above_threshold () =
  let cfg = above_threshold ~t:2 ~b:1 in
  let faults =
    { F.crashes = [ (Sim.Proc_id.Obj 1, 0); (Sim.Proc_id.Obj 2, 150) ]; byzantine = [] }
  in
  let rep = F.run ~cfg ~seed:4 ~delay:uniform ~faults schedule in
  Alcotest.(check int) "wait-free" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history)

let test_at_threshold_lower_bound_bites () =
  (* Forced to S = 2t+2b by the Proposition 1 construction, the fast
     reader decides and violates. *)
  let o = LB.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  match o.verdict with
  | LB.Violates_run4 _ | LB.Violates_run5 _ -> ()
  | LB.Not_fast -> Alcotest.fail "fast-safe must be classified fast"

module E = Mc.Explorer.Make (Baseline.Fast_safe)

let test_at_threshold_byzantine_breaks_it () =
  (* Deployed one object short, a Byzantine object replaying the initial
     state breaks safety: quorums now overlap the write quorum in only
     b+1 objects, so the adversary pairs its stale replay with an honest
     object that legitimately has not yet received the (completed)
     write, reaching the b+1 endorsement bar for the OLD value.  The
     schedule is subtle — the model checker finds it unaided. *)
  let replay_initial : E.pure_byz =
    {
      rewrite =
        (fun ~src:_ m ->
          match m with
          | Baseline.Fast_safe.Read_ack { rid; _ } ->
              [ Baseline.Fast_safe.Read_ack { rid; ts = 0; v = Core.Value.bottom } ]
          | m -> [ m ]);
    }
  in
  let r =
    E.check ~max_states:200_000
      {
        E.cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        writes = [ Core.Value.v "v1" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [ (1, replay_initial) ];
        crashed = [];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check bool) "MC finds the below-threshold violation" true
    (List.exists (fun (v : E.violation) -> v.kind = "safety") r.violations)

let test_above_threshold_mc_clean () =
  (* Same adversary, one more object: exhaustively clean. *)
  let replay_initial : E.pure_byz =
    {
      rewrite =
        (fun ~src:_ m ->
          match m with
          | Baseline.Fast_safe.Read_ack { rid; _ } ->
              [ Baseline.Fast_safe.Read_ack { rid; ts = 0; v = Core.Value.bottom } ]
          | m -> [ m ]);
    }
  in
  let r =
    E.check ~max_states:400_000
      {
        E.cfg = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1;
        writes = [ Core.Value.v "v1" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [ (1, replay_initial) ];
        crashed = [];
      }
  in
  Alcotest.(check bool) "exhaustive" false r.truncated;
  Alcotest.(check int) "no violations at s = 2t+2b+1" 0
    (List.length r.violations)

let qcheck_safe_above_threshold =
  QCheck.Test.make ~name:"fast-safe: random byz runs above threshold stay safe"
    ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 1 5))
    (fun (seed, byz_obj) ->
      let cfg = above_threshold ~t:1 ~b:1 in
      let rng = Sim.Prng.create ~seed in
      let schedule =
        Workload.Generate.read_mostly ~rng ~writes:3 ~readers:2
          ~reads_per_reader:3 ~horizon:600
      in
      let rep =
        F.run ~cfg ~seed ~delay:uniform
          ~faults:
            {
              F.crashes = [];
              byzantine =
                [
                  ( byz_obj,
                    Baseline.Fast_safe.byz_forge_high ~value:"evil" ~ts_boost:7 );
                ];
            }
          schedule
      in
      Histories.Checks.is_safe ~equal rep.history
      && List.for_all (fun (o : F.outcome) -> o.rounds = 1) rep.outcomes)

let suite =
  ( "fast-safe",
    [
      Alcotest.test_case "crash-free above threshold" `Quick
        test_crash_free_above_threshold;
      Alcotest.test_case "byzantine forger above threshold" `Quick
        test_byzantine_forger_above_threshold;
      Alcotest.test_case "colluding endorsers fall short" `Quick
        test_colluding_endorsers_fall_short;
      Alcotest.test_case "crashes above threshold" `Quick
        test_crashes_above_threshold;
      Alcotest.test_case "lower bound bites at 2t+2b" `Quick
        test_at_threshold_lower_bound_bites;
      Alcotest.test_case "byzantine breaks it below threshold" `Quick
        test_at_threshold_byzantine_breaks_it;
      Alcotest.test_case "MC clean above threshold" `Quick
        test_above_threshold_mc_clean;
      QCheck_alcotest.to_alcotest qcheck_safe_above_threshold;
    ] )
