(* Tests for resilience configurations, quorum intersection laws and the
   Proposition 1 block partition. *)

let test_make_validation () =
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Quorum.Config.make ~s:4 ~t:1 ~b:1));
  Alcotest.(check bool) "b negative rejected" true
    (Result.is_error (Quorum.Config.make ~s:4 ~t:1 ~b:(-1)));
  Alcotest.(check bool) "b > t rejected" true
    (Result.is_error (Quorum.Config.make ~s:4 ~t:1 ~b:2));
  Alcotest.(check bool) "s = 0 rejected" true
    (Result.is_error (Quorum.Config.make ~s:0 ~t:0 ~b:0))

let test_optimal_s () =
  Alcotest.(check int) "2t+b+1 for t=b=1" 4 (Quorum.Config.optimal_s ~t:1 ~b:1);
  Alcotest.(check int) "2t+b+1 for t=2 b=1" 6 (Quorum.Config.optimal_s ~t:2 ~b:1);
  Alcotest.(check int) "2t+b+1 for t=3 b=2" 9 (Quorum.Config.optimal_s ~t:3 ~b:2);
  Alcotest.(check int) "ABD majority when b=0" 3 (Quorum.Config.optimal_s ~t:1 ~b:0)

let test_predicates () =
  let c = Quorum.Config.optimal ~t:1 ~b:1 in
  Alcotest.(check bool) "optimal is optimal" true
    (Quorum.Config.is_optimally_resilient c);
  Alcotest.(check bool) "meets bound" true (Quorum.Config.meets_resilience_bound c);
  Alcotest.(check int) "quorum = s-t" 3 (Quorum.Config.quorum c);
  (* S = 4 = 2t+2b: exactly at the fast-read impossibility threshold *)
  Alcotest.(check bool) "fast reads not admissible at 2t+2b" false
    (Quorum.Config.fast_read_admissible c);
  let c5 = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1 in
  Alcotest.(check bool) "fast reads admissible above 2t+2b" true
    (Quorum.Config.fast_read_admissible c5);
  Alcotest.(check bool) "s=5 not optimal" false
    (Quorum.Config.is_optimally_resilient c5)

let test_min_intersection_closed_form () =
  (* validate against brute force *)
  for s = 2 to 8 do
    for q = 1 to s do
      let subsets = Quorum.Intersect.subsets_of_size s ~size:q in
      let brute =
        List.fold_left
          (fun acc q1 ->
            List.fold_left
              (fun acc q2 ->
                min acc
                  (Quorum.Intersect.Int_set.cardinal
                     (Quorum.Intersect.Int_set.inter q1 q2)))
              acc subsets)
          max_int subsets
      in
      Alcotest.(check int)
        (Printf.sprintf "s=%d q=%d" s q)
        brute
        (Quorum.Intersect.min_pairwise_intersection ~s ~q)
    done
  done

let test_choose () =
  Alcotest.(check int) "C(5,2)" 10 (Quorum.Intersect.choose 5 2);
  Alcotest.(check int) "C(6,3)" 20 (Quorum.Intersect.choose 6 3);
  Alcotest.(check int) "C(n,0)" 1 (Quorum.Intersect.choose 7 0);
  Alcotest.(check int) "C(n,n)" 1 (Quorum.Intersect.choose 7 7);
  Alcotest.(check int) "out of range" 0 (Quorum.Intersect.choose 3 5)

let test_subsets () =
  Alcotest.(check int) "number of subsets" 10
    (List.length (Quorum.Intersect.subsets_of_size 5 ~size:2));
  Alcotest.(check int) "empty subset" 1
    (List.length (Quorum.Intersect.subsets_of_size 5 ~size:0))

let test_byzantine_intersection_at_optimal () =
  (* At s = 2t+b+1, two quorums of size s-t intersect in >= b+1 objects
     (one correct survivor) and write quorums keep b+1 correct members
     forever — together the transfer properties behind Theorem 1. *)
  List.iter
    (fun (t, b) ->
      let c = Quorum.Config.optimal ~t ~b in
      Alcotest.(check bool)
        (Printf.sprintf "intersection t=%d b=%d" t b)
        true
        (Quorum.Intersect.check_byzantine_intersection c);
      Alcotest.(check bool)
        (Printf.sprintf "persistence t=%d b=%d" t b)
        true
        (Quorum.Intersect.check_write_persistence c))
    [ (1, 1); (2, 1); (2, 2); (3, 2) ]

let test_byzantine_intersection_below_optimal () =
  (* One object fewer breaks the property. *)
  List.iter
    (fun (t, b) ->
      let s = Quorum.Config.optimal_s ~t ~b - 1 in
      match Quorum.Config.make ~s ~t ~b with
      | Error _ -> Alcotest.fail "config should build"
      | Ok c ->
          Alcotest.(check bool)
            (Printf.sprintf "fails at s-1, t=%d b=%d" t b)
            false
            (Quorum.Intersect.check_byzantine_intersection c))
    [ (1, 1); (2, 1); (2, 2) ]

let test_enumeration_agrees () =
  List.iter
    (fun (s, t, b) ->
      let c = Quorum.Config.make_exn ~s ~t ~b in
      Alcotest.(check bool)
        (Printf.sprintf "enum = closed form s=%d t=%d b=%d" s t b)
        (Quorum.Intersect.check_byzantine_intersection c)
        (Quorum.Intersect.check_byzantine_intersection_by_enumeration c))
    [ (4, 1, 1); (5, 1, 1); (3, 1, 0); (6, 2, 1); (5, 2, 1) ]

let test_crash_intersection () =
  Alcotest.(check bool) "majority ok" true
    (Quorum.Intersect.check_crash_intersection
       (Quorum.Config.make_exn ~s:3 ~t:1 ~b:0));
  Alcotest.(check bool) "s=2t fails" false
    (Quorum.Intersect.check_crash_intersection
       (Quorum.Config.make_exn ~s:2 ~t:1 ~b:0))

let test_blocks_partition () =
  let p = Quorum.Blocks.partition_exn ~t:2 ~b:1 in
  Alcotest.(check int) "size 2t+2b" 6 (Quorum.Blocks.size p);
  Alcotest.(check (list int)) "T1" [ 1; 2 ] (Quorum.Blocks.members p `T1);
  Alcotest.(check (list int)) "T2" [ 3; 4 ] (Quorum.Blocks.members p `T2);
  Alcotest.(check (list int)) "B1" [ 5 ] (Quorum.Blocks.members p `B1);
  Alcotest.(check (list int)) "B2" [ 6 ] (Quorum.Blocks.members p `B2);
  Alcotest.(check (list int)) "complement of T1,B2" [ 3; 4; 5 ]
    (Quorum.Blocks.complement p [ `T1; `B2 ]);
  Alcotest.(check bool) "block_of roundtrip" true
    (List.for_all
       (fun i -> Quorum.Blocks.members p (Quorum.Blocks.block_of p i) |> List.mem i)
       (Quorum.Blocks.all_objects p))

let test_blocks_validation () =
  Alcotest.(check bool) "t=0 rejected" true
    (Result.is_error (Quorum.Blocks.partition ~t:0 ~b:1));
  Alcotest.(check bool) "b=0 rejected" true
    (Result.is_error (Quorum.Blocks.partition ~t:1 ~b:0))

let qcheck_optimal_configs_have_transfer =
  QCheck.Test.make ~name:"optimal configs satisfy byzantine intersection"
    ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (t, b') ->
      let b = min t b' in
      let c = Quorum.Config.optimal ~t ~b in
      Quorum.Intersect.check_byzantine_intersection c
      && Quorum.Intersect.check_write_persistence c)

let qcheck_subset_count_is_choose =
  QCheck.Test.make ~name:"subset enumeration count equals C(n,k)" ~count:100
    QCheck.(pair (int_range 0 8) (int_range 0 8))
    (fun (n, k) ->
      List.length (Quorum.Intersect.subsets_of_size n ~size:k)
      = Quorum.Intersect.choose n k)

let qcheck_blocks_partition_universe =
  QCheck.Test.make ~name:"blocks partition the universe exactly" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (t, b') ->
      let b = min t b' in
      let p = Quorum.Blocks.partition_exn ~t ~b in
      Quorum.Blocks.all_objects p = List.init ((2 * t) + (2 * b)) (fun i -> i + 1))

let suite =
  ( "quorum",
    [
      Alcotest.test_case "config validation" `Quick test_make_validation;
      Alcotest.test_case "optimal_s" `Quick test_optimal_s;
      Alcotest.test_case "predicates" `Quick test_predicates;
      Alcotest.test_case "min intersection closed form" `Quick
        test_min_intersection_closed_form;
      Alcotest.test_case "choose" `Quick test_choose;
      Alcotest.test_case "subsets" `Quick test_subsets;
      Alcotest.test_case "byzantine intersection at optimal" `Quick
        test_byzantine_intersection_at_optimal;
      Alcotest.test_case "byzantine intersection below optimal" `Quick
        test_byzantine_intersection_below_optimal;
      Alcotest.test_case "enumeration agrees" `Quick test_enumeration_agrees;
      Alcotest.test_case "crash intersection" `Quick test_crash_intersection;
      Alcotest.test_case "blocks partition" `Quick test_blocks_partition;
      Alcotest.test_case "blocks validation" `Quick test_blocks_validation;
      QCheck_alcotest.to_alcotest qcheck_optimal_configs_have_transfer;
      QCheck_alcotest.to_alcotest qcheck_subset_count_is_choose;
      QCheck_alcotest.to_alcotest qcheck_blocks_partition_universe;
    ] )
