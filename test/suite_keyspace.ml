(* Keyspace tests (ISSUE 9): the shard placement function, the zipfian
   workload generator, and the keyed client/server path live against a
   real cluster.

   Placement is a pure function both sides recompute independently, so
   its algebra (member/rank inverse, balanced rotation, range bounds)
   is exactly what keeps clients and server domains agreeing without a
   placement service — worth property-testing hard. *)

let cfg3 = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0

(* ----- Shard.Map properties --------------------------------------------- *)

let gen_map_params =
  QCheck.Gen.(
    map3
      (fun keys extra placement ->
        (keys, cfg3.Quorum.Config.s + extra, placement))
      (1 -- 200) (0 -- 5)
      (oneofl [ Shard.Map.Hash; Shard.Map.Range ]))

let arb_map_params =
  QCheck.make
    ~print:(fun (keys, fleet, p) ->
      Printf.sprintf "keys=%d fleet=%d placement=%s" keys fleet
        (Shard.Map.placement_to_string p))
    gen_map_params

let map_placement_well_formed =
  QCheck.Test.make ~name:"every key lands on a shard of s distinct slots"
    ~count:300 arb_map_params (fun (keys, fleet, placement) ->
      let m = Shard.Map.make_exn ~placement ~keys ~fleet ~cfg:cfg3 () in
      let s = cfg3.Quorum.Config.s in
      let ok = ref true in
      for key = 0 to keys - 1 do
        let sh = Shard.Map.shard_of_key m key in
        if sh < 0 || sh >= Shard.Map.shards m then ok := false;
        let mem = Shard.Map.members m ~shard:sh in
        if Array.length mem <> s then ok := false;
        Array.iter (fun slot -> if slot < 0 || slot >= fleet then ok := false) mem;
        (* distinct members: a quorum of s replies must mean s distinct
           base objects, never one server counted twice *)
        let sorted = Array.copy mem in
        Array.sort compare sorted;
        for i = 1 to s - 1 do
          if sorted.(i) = sorted.(i - 1) then ok := false
        done
      done;
      !ok)

let map_member_rank_inverse =
  QCheck.Test.make
    ~name:"rank_of_slot inverts member; non-members are None" ~count:300
    arb_map_params (fun (keys, fleet, placement) ->
      let m = Shard.Map.make_exn ~placement ~keys ~fleet ~cfg:cfg3 () in
      let s = cfg3.Quorum.Config.s in
      let ok = ref true in
      for sh = 0 to Shard.Map.shards m - 1 do
        let mem = Shard.Map.members m ~shard:sh in
        for rank = 0 to s - 1 do
          if Shard.Map.member m ~shard:sh ~rank <> mem.(rank) then ok := false;
          match Shard.Map.rank_of_slot m ~shard:sh ~slot:mem.(rank) with
          | Some r when r = rank -> ()
          | _ -> ok := false
        done;
        for slot = 0 to fleet - 1 do
          if not (Array.exists (( = ) slot) mem) then
            match Shard.Map.rank_of_slot m ~shard:sh ~slot with
            | None -> ()
            | Some _ -> ok := false
        done
      done;
      !ok)

let map_rotation_is_balanced =
  QCheck.Test.make
    ~name:"default sharding loads every fleet slot with s memberships"
    ~count:200 arb_map_params (fun (keys, fleet, placement) ->
      (* shards defaults to fleet: one rotation per starting slot, so
         each slot serves exactly s shards *)
      let m = Shard.Map.make_exn ~placement ~keys ~fleet ~cfg:cfg3 () in
      let load = Array.make fleet 0 in
      for sh = 0 to Shard.Map.shards m - 1 do
        Array.iter
          (fun slot -> load.(slot) <- load.(slot) + 1)
          (Shard.Map.members m ~shard:sh)
      done;
      Array.for_all (( = ) cfg3.Quorum.Config.s) load)

let map_range_is_monotone =
  QCheck.Test.make ~name:"Range placement maps contiguous keys to shards"
    ~count:200 arb_map_params (fun (keys, fleet, _) ->
      let m =
        Shard.Map.make_exn ~placement:Shard.Map.Range ~keys ~fleet ~cfg:cfg3 ()
      in
      let ok = ref true in
      for key = 1 to keys - 1 do
        if Shard.Map.shard_of_key m key < Shard.Map.shard_of_key m (key - 1)
        then ok := false
      done;
      !ok)

let map_rejects_bad_params () =
  (match Shard.Map.make ~keys:0 ~fleet:3 ~cfg:cfg3 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "keys=0 accepted");
  (match Shard.Map.make ~keys:4 ~fleet:2 ~cfg:cfg3 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fleet < s accepted");
  match Shard.Map.make ~keys:4 ~fleet:3 ~shards:0 ~cfg:cfg3 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shards=0 accepted"

let mix_is_nonnegative =
  QCheck.Test.make ~name:"Shard.Map.mix is nonnegative on all ints" ~count:500
    QCheck.int (fun k -> Shard.Map.mix k >= 0)

(* ----- Workload.Keyspace ------------------------------------------------- *)

let gen_keyspace_params =
  QCheck.Gen.(
    map3
      (fun keys skew (wr, seed) -> (keys, skew, wr, seed))
      (1 -- 500)
      (* both draw paths: YCSB closed form (< 1) and exact CDF (>= 1) *)
      (oneofl [ 0.0; 0.5; 0.9; 0.99; 1.0; 1.2; 2.0 ])
      (pair (oneofl [ 0.0; 0.05; 0.3; 1.0 ]) (0 -- 1000)))

let arb_keyspace_params =
  QCheck.make
    ~print:(fun (keys, skew, wr, seed) ->
      Printf.sprintf "keys=%d skew=%.2f wr=%.2f seed=%d" keys skew wr seed)
    gen_keyspace_params

let keyspace_is_deterministic =
  QCheck.Test.make ~name:"same (keys, skew, ratio, seed) => same op stream"
    ~count:200 arb_keyspace_params (fun (keys, skew, wr, seed) ->
      let mk () =
        Workload.Keyspace.make_exn ~skew ~write_ratio:wr ~keys ~seed ()
      in
      Workload.Keyspace.ops (mk ()) 200 = Workload.Keyspace.ops (mk ()) 200)

let keyspace_keys_in_range =
  QCheck.Test.make ~name:"every drawn key is inside [0, keys)" ~count:200
    arb_keyspace_params (fun (keys, skew, wr, seed) ->
      let t = Workload.Keyspace.make_exn ~skew ~write_ratio:wr ~keys ~seed () in
      Array.for_all
        (fun op ->
          let k = Workload.Keyspace.op_key op in
          k >= 0 && k < keys)
        (Workload.Keyspace.ops t 500))

let keyspace_write_values_distinct =
  QCheck.Test.make
    ~name:"write values are distinct and name their key" ~count:100
    arb_keyspace_params (fun (keys, skew, _, seed) ->
      let t =
        Workload.Keyspace.make_exn ~skew ~write_ratio:0.5 ~keys ~seed ()
      in
      let seen = Hashtbl.create 64 in
      Array.for_all
        (fun op ->
          match op with
          | Workload.Keyspace.Read _ -> true
          | Workload.Keyspace.Write { key; value } ->
              let v = Core.Value.to_string value in
              let fresh = not (Hashtbl.mem seen v) in
              Hashtbl.replace seen v ();
              let prefix = Printf.sprintf "k%d." key in
              fresh
              && String.length v > String.length prefix
              && String.sub v 0 (String.length prefix) = prefix)
        (Workload.Keyspace.ops t 300))

let keyspace_write_filter_respected =
  QCheck.Test.make
    ~name:"write_filter converts non-owned write draws into reads"
    ~count:100 arb_keyspace_params (fun (keys, skew, _, seed) ->
      let owns k = Shard.Map.mix k mod 2 = 0 in
      let t =
        Workload.Keyspace.make_exn ~skew ~write_ratio:1.0 ~write_filter:owns
          ~keys ~seed ()
      in
      Array.for_all
        (fun op ->
          match op with
          | Workload.Keyspace.Write { key; _ } -> owns key
          | Workload.Keyspace.Read { key } -> not (owns key))
        (Workload.Keyspace.ops t 300))

let keyspace_ratio_extremes () =
  let all_reads =
    Workload.Keyspace.ops
      (Workload.Keyspace.make_exn ~write_ratio:0.0 ~keys:16 ~seed:1 ())
      200
  in
  Alcotest.(check bool)
    "write_ratio 0 draws no writes" false
    (Array.exists Workload.Keyspace.op_is_write all_reads);
  let all_writes =
    Workload.Keyspace.ops
      (Workload.Keyspace.make_exn ~write_ratio:1.0 ~keys:16 ~seed:1 ())
      200
  in
  Alcotest.(check bool)
    "write_ratio 1 draws only writes" true
    (Array.for_all Workload.Keyspace.op_is_write all_writes)

let keyspace_zipf_skews_toward_low_keys () =
  (* skew 0.99 over 100 keys: rank 0 carries ~19% of the mass, the last
     rank ~0.2% — with a fixed seed the gap is decisive, not noisy *)
  let t =
    Workload.Keyspace.make_exn ~skew:0.99 ~write_ratio:0.0 ~keys:100 ~seed:42
      ()
  in
  let counts = Array.make 100 0 in
  Array.iter
    (fun op ->
      let k = Workload.Keyspace.op_key op in
      counts.(k) <- counts.(k) + 1)
    (Workload.Keyspace.ops t 4000);
  Alcotest.(check bool)
    (Printf.sprintf "key 0 (%d draws) dominates key 99 (%d draws)" counts.(0)
       counts.(99))
    true
    (counts.(0) > 10 * (counts.(99) + 1))

let keyspace_rejects_bad_params () =
  (match Workload.Keyspace.make ~keys:0 ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "keys=0 accepted");
  (match Workload.Keyspace.make ~skew:(-0.1) ~keys:4 ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "skew<0 accepted");
  (match Workload.Keyspace.make ~skew:Float.infinity ~keys:4 ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "skew=inf accepted");
  (* skew >= 1 is the proper-Zipf CDF path: valid, and even hotter *)
  (match Workload.Keyspace.make ~skew:1.2 ~keys:4 ~seed:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "skew=1.2 rejected: %s" e);
  match Workload.Keyspace.make ~write_ratio:1.5 ~keys:4 ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write_ratio>1 accepted"

(* ----- live keyed cluster ------------------------------------------------ *)

let ok_exn what = function
  | Ok o -> o
  | Error e -> Alcotest.failf "%s failed: %s" what e

(* A keyed mix over a real loopback cluster: every op completes, every
   sampled key's history passes the single-register checkers, and no
   base object is ever stepped outside its owning domain. *)
let keyed_cluster_histories_check () =
  let c =
    Net.Cluster.start ~metrics:true ~protocol:Net.Protocols.safe ~cfg:cfg3
      ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let map = Shard.Map.make_exn ~keys:8 ~fleet:3 ~cfg:cfg3 () in
      let gen =
        Workload.Keyspace.make_exn ~skew:0.5 ~write_ratio:0.3 ~keys:8 ~seed:11
          ()
      in
      let kops =
        Array.map
          (fun op ->
            match op with
            | Workload.Keyspace.Read { key } -> Net.Client.Keyed.Read { key }
            | Workload.Keyspace.Write { key; value } ->
                Net.Client.Keyed.Write { key; value })
          (Workload.Keyspace.ops gen 120)
      in
      let results = Net.Cluster.run_keyed c ~map kops in
      Array.iteri
        (fun i r -> ignore (ok_exn (Printf.sprintf "keyed op %d" i) r))
        results;
      Alcotest.(check bool) "touched several keys" true
        (Net.Cluster.keys_touched c > 1);
      let histories = Net.Cluster.keyed_histories c in
      Alcotest.(check bool) "recorded per-key histories" true
        (List.length histories > 1);
      List.iter
        (fun (key, h) ->
          Alcotest.(check bool)
            (Printf.sprintf "key %d history is safe" key)
            true
            (Histories.Checks.is_safe ~equal:String.equal h);
          Alcotest.(check bool)
            (Printf.sprintf "key %d history is regular" key)
            true
            (Histories.Checks.is_regular ~equal:String.equal h))
        histories;
      Alcotest.(check int) "no partition violations" 0
        (Net.Cluster.partition_violations c);
      (* at S = 3 = 2t+2b+1 the fast path is admissible on every shard
         that served a read *)
      match Net.Cluster.metrics c with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some m ->
          for sh = 0 to Shard.Map.shards map - 1 do
            let reads =
              Obs.Metrics.counter_value m (Printf.sprintf "shard.%d.reads" sh)
            in
            let fast =
              Obs.Metrics.counter_value m
                (Printf.sprintf "shard.%d.fast_reads" sh)
            in
            if reads > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "shard %d fast reads engaged" sh)
                true (fast > 0)
          done)

(* Untagged frames address key 0: a legacy (pre-keyspace) writer and a
   keyed reader of key 0 see the same register. *)
let key_zero_is_the_legacy_register () =
  let c =
    Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg3 ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ =
        ok_exn "legacy write" (Net.Cluster.write c (Core.Value.v "legacy"))
      in
      let map = Shard.Map.make_exn ~keys:4 ~fleet:3 ~cfg:cfg3 () in
      (* don't record: the legacy write lives in the main history, so a
         keyed key-0 history would see a read of a write it never saw *)
      let results =
        Net.Cluster.run_keyed c ~map
          ~sample:(fun _ -> false)
          [| Net.Client.Keyed.Read { key = 0 } |]
      in
      let o = ok_exn "keyed read of key 0" results.(0) in
      match o.Net.Client.value with
      | Some v ->
          Alcotest.(check string) "keyed read sees the untagged write"
            "legacy" (Core.Value.to_string v)
      | None -> Alcotest.fail "keyed read of key 0 returned no value")

let suite =
  ( "keyspace",
    [
      QCheck_alcotest.to_alcotest map_placement_well_formed;
      QCheck_alcotest.to_alcotest map_member_rank_inverse;
      QCheck_alcotest.to_alcotest map_rotation_is_balanced;
      QCheck_alcotest.to_alcotest map_range_is_monotone;
      Alcotest.test_case "Shard.Map rejects bad params" `Quick
        map_rejects_bad_params;
      QCheck_alcotest.to_alcotest mix_is_nonnegative;
      QCheck_alcotest.to_alcotest keyspace_is_deterministic;
      QCheck_alcotest.to_alcotest keyspace_keys_in_range;
      QCheck_alcotest.to_alcotest keyspace_write_values_distinct;
      QCheck_alcotest.to_alcotest keyspace_write_filter_respected;
      Alcotest.test_case "write_ratio extremes" `Quick keyspace_ratio_extremes;
      Alcotest.test_case "zipf skews toward low keys" `Quick
        keyspace_zipf_skews_toward_low_keys;
      Alcotest.test_case "Keyspace rejects bad params" `Quick
        keyspace_rejects_bad_params;
      Alcotest.test_case "keyed cluster: per-key histories check" `Quick
        keyed_cluster_histories_check;
      Alcotest.test_case "key 0 is the legacy register" `Quick
        key_zero_is_the_legacy_register;
    ] )
