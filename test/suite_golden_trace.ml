(* Golden-trace determinism: the span JSONL export is a pure function of
   (protocol, cfg, seed, delay, schedule) — byte-identical across runs in
   one process, across processes, and across commits.  The checked-in
   golden files pin the exact byte stream; regenerate them (see
   test/golden/README.md) only for a deliberate format change. *)

module Safe = Core.Scenario.Make (Core.Proto_safe)
module Regular = Core.Scenario.Make (Core.Proto_regular.Plain)

let delay = Sim.Delay.uniform ~lo:1 ~hi:10

(* Exactly the workload `robustread trace -p <proto> --writes 2 --reads 2
   --seed 42` drives, so the goldens are regenerable from the CLI (see
   golden/README.md). *)
let schedule =
  let rng = Sim.Prng.create ~seed:42 in
  Core.Schedule.merge
    (Workload.Generate.sequential ~writes:2 ~readers:2 ~gap:60)
    (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:2
       ~reads_per_reader:2 ~horizon:720)

let cfg = Quorum.Config.optimal ~t:1 ~b:1

let safe_export () =
  let rep = Safe.run ~trace:true ~cfg ~seed:42 ~delay ~faults:Safe.no_faults schedule in
  Obs.Export.spans_jsonl rep.spans

let regular_export () =
  let rep =
    Regular.run ~trace:true ~cfg ~seed:42 ~delay ~faults:Regular.no_faults
      schedule
  in
  Obs.Export.spans_jsonl rep.spans

let read_golden name =
  (* cwd is test/ under `dune runtest` but the project root under
     `dune exec test/test_main.exe` — accept both. *)
  let candidates =
    [
      Filename.concat "golden" name;
      Filename.concat (Filename.concat "test" "golden") name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail ("golden file not found: " ^ name)
  | Some path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let test_two_runs_identical export () =
  Alcotest.(check string) "byte-identical across runs" (export ()) (export ())

let test_matches_golden name export () =
  Alcotest.(check string)
    (name ^ " matches checked-in golden")
    (read_golden name) (export ())

let test_metrics_two_runs_identical () =
  let collect () =
    let m = Obs.Metrics.create () in
    ignore (Safe.run ~metrics:m ~cfg ~seed:42 ~delay ~faults:Safe.no_faults schedule);
    Obs.Export.metrics_jsonl m
  in
  Alcotest.(check string) "metrics byte-identical" (collect ()) (collect ())

let suite =
  ( "golden-trace",
    [
      Alcotest.test_case "safe: two runs byte-identical" `Quick
        (test_two_runs_identical safe_export);
      Alcotest.test_case "regular: two runs byte-identical" `Quick
        (test_two_runs_identical regular_export);
      Alcotest.test_case "safe matches golden" `Quick
        (test_matches_golden "safe_spans.jsonl" safe_export);
      Alcotest.test_case "regular matches golden" `Quick
        (test_matches_golden "regular_spans.jsonl" regular_export);
      Alcotest.test_case "metrics export byte-identical" `Quick
        test_metrics_two_runs_identical;
    ] )
