(* Tests for the Proposition 1 mechanization: every fast protocol on
   2t+2b objects violates safety in run4 or run5; the paper's two-round
   protocols escape as "not fast". *)

module LB_naive = Mc.Lower_bound.Make (Baseline.Naive_fast)
module LB_abd = Mc.Lower_bound.Make (Baseline.Abd.Regular)
module LB_safe = Mc.Lower_bound.Make (Core.Proto_safe)
module LB_regular = Mc.Lower_bound.Make (Core.Proto_regular.Plain)
module LB_opt = Mc.Lower_bound.Make (Core.Proto_regular.Optimized)
module LB_nonmod = Mc.Lower_bound.Make (Baseline.Nonmod)

let grid = [ (1, 1); (2, 1); (2, 2); (3, 2); (3, 3) ]

let test_naive_fast_violates_everywhere () =
  List.iter
    (fun (t, b) ->
      let o = LB_naive.analyse ~t ~b ~value:(Core.Value.v "v1") in
      Alcotest.(check bool)
        (Printf.sprintf "replies equal t=%d b=%d" t b)
        true o.replies_equal;
      match o.verdict with
      | LB_naive.Violates_run4 _ | LB_naive.Violates_run5 _ -> ()
      | LB_naive.Not_fast ->
          Alcotest.fail "naive fast protocol must be classified fast")
    grid

let test_naive_fast_returns_v1_in_run5 () =
  let o = LB_naive.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  match o.verdict with
  | LB_naive.Violates_run5 { returned } ->
      Alcotest.(check bool) "returned the never-written v1" true
        (Core.Value.equal returned (Core.Value.v "v1"))
  | _ -> Alcotest.fail "expected run5 violation for the naive protocol"

let test_abd_also_violates () =
  (* A crash-only protocol placed in the Byzantine setting is fast and
     therefore doomed. *)
  let o = LB_abd.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  match o.verdict with
  | LB_abd.Violates_run4 _ | LB_abd.Violates_run5 _ -> ()
  | LB_abd.Not_fast -> Alcotest.fail "ABD reads are one round; must be fast"

let test_core_protocols_escape () =
  List.iter
    (fun (t, b) ->
      let o = LB_safe.analyse ~t ~b ~value:(Core.Value.v "v1") in
      (match o.verdict with
      | LB_safe.Not_fast -> ()
      | _ -> Alcotest.fail "safe protocol must not decide on round-1 replies");
      Alcotest.(check int)
        (Printf.sprintf "write is 2 rounds t=%d b=%d" t b)
        2 o.write_rounds)
    grid;
  (match (LB_regular.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1")).verdict with
  | LB_regular.Not_fast -> ()
  | _ -> Alcotest.fail "regular protocol must escape");
  match (LB_opt.analyse ~t:2 ~b:2 ~value:(Core.Value.v "v1")).verdict with
  | LB_opt.Not_fast -> ()
  | _ -> Alcotest.fail "optimized regular protocol must escape"

let test_nonmod_escapes () =
  (* The non-modifying baseline also refuses to decide fast (it needs
     b+1 vouchers, which one honest post-write reply cannot supply). *)
  let o = LB_nonmod.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  match o.verdict with
  | LB_nonmod.Not_fast -> ()
  | _ -> Alcotest.fail "nonmod must not decide on these replies"

let test_indistinguishability_always () =
  List.iter
    (fun (t, b) ->
      List.iter
        (fun check ->
          Alcotest.(check bool)
            (Printf.sprintf "indistinguishable t=%d b=%d" t b)
            true (check t b))
        [
          (fun t b -> (LB_naive.analyse ~t ~b ~value:(Core.Value.v "x")).replies_equal);
          (fun t b -> (LB_safe.analyse ~t ~b ~value:(Core.Value.v "x")).replies_equal);
          (fun t b ->
            (LB_regular.analyse ~t ~b ~value:(Core.Value.v "x")).replies_equal);
        ])
    grid

let test_transcript_narrates () =
  let o = LB_naive.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  Alcotest.(check bool) "transcript non-empty" true (List.length o.transcript >= 5)

let test_rejects_bottom () =
  Alcotest.(check bool) "bottom rejected" true
    (try
       ignore (LB_naive.analyse ~t:1 ~b:1 ~value:Core.Value.bottom);
       false
     with Invalid_argument _ -> true)

let test_figure_rendering () =
  let o = LB_naive.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  let fig = LB_naive.figure o in
  Alcotest.(check bool) "five panels plus header" true (List.length fig >= 26);
  Alcotest.(check bool) "marks the malicious blocks" true
    (List.exists (fun l -> String.length l > 6 && String.sub l 4 3 = "B1@") fig
    && List.exists (fun l -> String.length l > 6 && String.sub l 4 3 = "B2@") fig)

let test_blocks_have_proof_shape () =
  let o = LB_naive.analyse ~t:3 ~b:2 ~value:(Core.Value.v "v1") in
  Alcotest.(check int) "|T1| = t" 3
    (List.length (Quorum.Blocks.members o.blocks `T1));
  Alcotest.(check int) "|B2| = b" 2
    (List.length (Quorum.Blocks.members o.blocks `B2));
  Alcotest.(check int) "universe = 2t+2b" 10 (Quorum.Blocks.size o.blocks)

let suite =
  ( "lower-bound",
    [
      Alcotest.test_case "naive fast violates everywhere" `Quick
        test_naive_fast_violates_everywhere;
      Alcotest.test_case "naive fast returns v1 in run5" `Quick
        test_naive_fast_returns_v1_in_run5;
      Alcotest.test_case "abd also violates" `Quick test_abd_also_violates;
      Alcotest.test_case "core protocols escape" `Quick test_core_protocols_escape;
      Alcotest.test_case "nonmod escapes" `Quick test_nonmod_escapes;
      Alcotest.test_case "indistinguishability" `Quick
        test_indistinguishability_always;
      Alcotest.test_case "transcript narrates" `Quick test_transcript_narrates;
      Alcotest.test_case "rejects bottom" `Quick test_rejects_bottom;
      Alcotest.test_case "blocks have proof shape" `Quick
        test_blocks_have_proof_shape;
      Alcotest.test_case "figure rendering" `Quick test_figure_rendering;
    ] )
