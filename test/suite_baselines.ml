(* Tests for the baseline protocols: ABD (crash-only), the non-modifying
   b+1-round reader, the authenticated register and the naive fast
   strawman. *)

module A = Core.Scenario.Make (Baseline.Abd.Regular)
module At = Core.Scenario.Make (Baseline.Abd.Atomic)
module N = Core.Scenario.Make (Baseline.Nonmod)
module Au = Core.Scenario.Make (Baseline.Auth)
module F = Core.Scenario.Make (Baseline.Naive_fast)

let equal = String.equal

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "v2"));
    (300, Core.Schedule.Read { reader = 1 });
    (310, Core.Schedule.Read { reader = 2 });
  ]

(* --- ABD ---------------------------------------------------------------- *)

let test_abd_regular_crash_free () =
  let cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0 in
  let rep = A.run ~cfg ~seed:1 ~delay:uniform ~faults:A.no_faults schedule in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "regular" true (Histories.Checks.is_regular ~equal rep.history);
  Alcotest.(check bool) "all ops single round" true
    (List.for_all (fun (o : A.outcome) -> o.rounds = 1) rep.outcomes)

let test_abd_regular_with_crash () =
  let cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0 in
  let faults = { A.crashes = [ (Sim.Proc_id.Obj 2, 50) ]; byzantine = [] } in
  let rep = A.run ~cfg ~seed:2 ~delay:uniform ~faults schedule in
  Alcotest.(check int) "wait-free under crash" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "regular" true (Histories.Checks.is_regular ~equal rep.history)

let test_abd_atomic_write_back () =
  let cfg = Quorum.Config.make_exn ~s:5 ~t:2 ~b:0 in
  let faults = { At.crashes = [ (Sim.Proc_id.Obj 1, 0) ]; byzantine = [] } in
  let rep = At.run ~cfg ~seed:3 ~delay:(Sim.Delay.uniform ~lo:1 ~hi:40) ~faults schedule in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "atomic" true (Histories.Checks.is_atomic ~equal rep.history);
  Alcotest.(check bool) "reads take at most 2 rounds" true
    (List.for_all (fun (o : At.outcome) -> o.rounds <= 2) rep.outcomes)

let test_abd_broken_by_byzantine () =
  (* Negative control: ABD was never designed for b > 0. *)
  let cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0 in
  let faults =
    {
      A.crashes = [];
      byzantine = [ (1, Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:10) ];
    }
  in
  let rep = A.run ~cfg ~seed:4 ~delay:uniform ~faults schedule in
  Alcotest.(check bool) "safety violated" false
    (Histories.Checks.is_safe ~equal rep.history)

(* --- Non-modifying readers --------------------------------------------- *)

let test_nonmod_crash_free () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let rep = N.run ~cfg ~seed:5 ~delay:uniform ~faults:N.no_faults schedule in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history)

let test_nonmod_byzantine_costs_phases () =
  (* Byzantine vouching for fake candidates stays safe but burns extra
     read phases — the round gap the core protocol closes. *)
  let cfg = Quorum.Config.optimal ~t:2 ~b:2 in
  let faults =
    {
      N.crashes = [];
      byzantine =
        [
          (1, Baseline.Nonmod.byz_forge_high ~value:"e1" ~ts_boost:5);
          (2, Baseline.Nonmod.byz_forge_high ~value:"e2" ~ts_boost:8);
        ];
    }
  in
  let rep = N.run ~cfg ~seed:6 ~delay:uniform ~faults schedule in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history);
  let max_phases =
    List.fold_left
      (fun acc (o : N.outcome) ->
        match o.op with Core.Schedule.Read _ -> max acc o.rounds | _ -> acc)
      0 rep.outcomes
  in
  Alcotest.(check bool)
    (Printf.sprintf "some read needed more than one phase (max=%d)" max_phases)
    true (max_phases >= 2)

let test_nonmod_phase_growth_vs_safe_two_rounds () =
  (* The round-complexity gap the paper closes: with a Byzantine forger
     plus one very slow honest object, the non-modifying reader keeps
     re-polling (its fake top candidate can neither gather b+1 vouchers
     nor t+b+1 dissents until the straggler answers), while the Figure 4
     reader never exceeds its two rounds. *)
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let slow =
    Sim.Delay.slow_process
      ~slow:(Sim.Proc_id.Set.singleton (Sim.Proc_id.Obj 4))
      ~factor:30
      (Sim.Delay.uniform ~lo:1 ~hi:10)
  in
  let sched =
    [
      (0, Core.Schedule.Write (Core.Value.v "v1"));
      (100, Core.Schedule.Read { reader = 1 });
    ]
  in
  let nonmod_phases =
    let faults =
      {
        N.crashes = [];
        byzantine = [ (1, Baseline.Nonmod.byz_forge_high ~value:"evil" ~ts_boost:9) ];
      }
    in
    let rep = N.run ~cfg ~seed:33 ~delay:slow ~faults sched in
    Alcotest.(check bool) "nonmod safe" true
      (Histories.Checks.is_safe ~equal rep.history);
    List.fold_left
      (fun acc (o : N.outcome) ->
        match o.op with Core.Schedule.Read _ -> max acc o.rounds | _ -> acc)
      0 rep.outcomes
  in
  let module S = Core.Scenario.Make (Core.Proto_safe) in
  let safe_rounds =
    let faults =
      {
        S.crashes = [];
        byzantine =
          [ (1, Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:9) ];
      }
    in
    let rep = S.run ~cfg ~seed:33 ~delay:slow ~faults sched in
    Alcotest.(check bool) "safe protocol safe" true
      (Histories.Checks.is_safe ~equal rep.history);
    List.fold_left
      (fun acc (o : S.outcome) ->
        match o.op with Core.Schedule.Read _ -> max acc o.rounds | _ -> acc)
      0 rep.outcomes
  in
  Alcotest.(check bool)
    (Printf.sprintf "nonmod needed %d phases, safe %d rounds" nonmod_phases
       safe_rounds)
    true
    (nonmod_phases >= 3 && safe_rounds <= 2)

let test_nonmod_stale_byz_safe () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let faults = { N.crashes = []; byzantine = [ (3, Baseline.Nonmod.byz_stale) ] } in
  let rep = N.run ~cfg ~seed:7 ~delay:uniform ~faults schedule in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history)

(* --- Authenticated ------------------------------------------------------ *)

let test_auth_fast_and_regular () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let rep = Au.run ~cfg ~seed:8 ~delay:uniform ~faults:Au.no_faults schedule in
  Alcotest.(check int) "completes" 5 (List.length rep.outcomes);
  Alcotest.(check bool) "regular" true (Histories.Checks.is_regular ~equal rep.history);
  Alcotest.(check bool) "all single round" true
    (List.for_all (fun (o : Au.outcome) -> o.rounds = 1) rep.outcomes)

let test_auth_immune_to_forgery () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let faults =
    {
      Au.crashes = [];
      byzantine = [ (2, Baseline.Auth.byz_forge ~value:"evil" ~ts_boost:10) ];
    }
  in
  let rep = Au.run ~cfg ~seed:9 ~delay:uniform ~faults schedule in
  Alcotest.(check bool) "regular despite forger" true
    (Histories.Checks.is_regular ~equal rep.history)

let test_auth_replay_stale_safe () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let faults =
    { Au.crashes = []; byzantine = [ (2, Baseline.Auth.byz_replay_stale) ] }
  in
  let rep = Au.run ~cfg ~seed:10 ~delay:uniform ~faults schedule in
  Alcotest.(check bool) "safe despite replayer" true
    (Histories.Checks.is_safe ~equal rep.history)

(* --- Naive fast --------------------------------------------------------- *)

let test_naive_fast_ok_without_byzantine () =
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1 in
  let rep = F.run ~cfg ~seed:11 ~delay:uniform ~faults:F.no_faults schedule in
  Alcotest.(check bool) "crash-only runs look fine" true
    (Histories.Checks.is_safe ~equal rep.history)

let test_naive_fast_broken_by_one_byzantine () =
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1 in
  let faults =
    {
      F.crashes = [];
      byzantine =
        [ (1, Baseline.Naive_fast.byz_forge_high ~value:"ghost" ~ts_boost:10) ];
    }
  in
  let rep = F.run ~cfg ~seed:12 ~delay:uniform ~faults schedule in
  Alcotest.(check bool) "safety violated" false
    (Histories.Checks.is_safe ~equal rep.history)

let test_naive_fast_run5_adversary () =
  (* No write ever happens; a malicious object simulates one. *)
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1 in
  let faults =
    {
      F.crashes = [];
      byzantine =
        [ (1, Baseline.Naive_fast.byz_simulate_write ~value:"ghost" ~ts:5) ];
    }
  in
  let rep =
    F.run ~cfg ~seed:13 ~delay:uniform ~faults
      [ (0, Core.Schedule.Read { reader = 1 }) ]
  in
  match Histories.Checks.check_safety ~equal rep.history with
  | [ v ] -> Alcotest.(check string) "rule" "safety" v.Histories.Checks.rule
  | vs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one violation, got %d" (List.length vs))

let suite =
  ( "baselines",
    [
      Alcotest.test_case "abd regular crash-free" `Quick test_abd_regular_crash_free;
      Alcotest.test_case "abd regular with crash" `Quick test_abd_regular_with_crash;
      Alcotest.test_case "abd atomic write-back" `Quick test_abd_atomic_write_back;
      Alcotest.test_case "abd broken by byzantine" `Quick
        test_abd_broken_by_byzantine;
      Alcotest.test_case "nonmod crash-free" `Quick test_nonmod_crash_free;
      Alcotest.test_case "nonmod byzantine costs phases" `Quick
        test_nonmod_byzantine_costs_phases;
      Alcotest.test_case "nonmod stale byz safe" `Quick test_nonmod_stale_byz_safe;
      Alcotest.test_case "nonmod phase growth vs safe" `Quick
        test_nonmod_phase_growth_vs_safe_two_rounds;
      Alcotest.test_case "auth fast and regular" `Quick test_auth_fast_and_regular;
      Alcotest.test_case "auth immune to forgery" `Quick test_auth_immune_to_forgery;
      Alcotest.test_case "auth replay stale safe" `Quick test_auth_replay_stale_safe;
      Alcotest.test_case "naive fast ok without byzantine" `Quick
        test_naive_fast_ok_without_byzantine;
      Alcotest.test_case "naive fast broken by one byzantine" `Quick
        test_naive_fast_broken_by_one_byzantine;
      Alcotest.test_case "naive fast run5 adversary" `Quick
        test_naive_fast_run5_adversary;
    ] )
