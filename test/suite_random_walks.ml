(* Tests for the Monte-Carlo schedule sampler: scenarios too large to
   exhaust still get meaningful coverage, and the sampler finds the
   known naive-fast violation quickly. *)

module ES = Mc.Explorer.Make (Core.Proto_safe)
module ER = Mc.Explorer.Make (Core.Proto_regular.Plain)
module EF = Mc.Explorer.Make (Baseline.Naive_fast)

let forge_naive : EF.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        match m with
        | Baseline.Naive_fast.Read_ack { rid; ts; v = _ } ->
            [
              Baseline.Naive_fast.Read_ack
                { rid; ts = ts + 10; v = Core.Value.v "ghost" };
            ]
        | m -> [ m ]);
  }

let test_safe_two_writes_two_readers () =
  (* 2 writes, 2 readers x 2 reads: far beyond the exhaustive budget;
     2000 random schedules, all safe. *)
  let r =
    ES.random_walks ~walks:2000 ~seed:7
      {
        ES.cfg = Quorum.Config.optimal ~t:1 ~b:1;
        writes = [ Core.Value.v "a"; Core.Value.v "b" ];
        reads = [ (1, 2); (2, 2) ];
        sequential = false;
        byz = [];
        crashed = [];
      }
  in
  Alcotest.(check int) "all walks completed" 2000 r.terminals;
  Alcotest.(check int) "no violations" 0 (List.length r.violations);
  Alcotest.(check bool) "non-trivial walks" true (r.explored > 10_000)

let test_regular_walks_with_byz () =
  let forge : ER.pure_byz =
    {
      rewrite =
        (fun ~src:_ m ->
          let corrupt h =
            let tsval = Core.Tsval.make ~ts:9 ~v:(Core.Value.v "ghost") in
            let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
            Core.History_store.set h ~ts:9
              { Core.History_store.pw = tsval; w = Some w }
          in
          match m with
          | Core.Messages.Read1_ack_h { tsr; history } ->
              [ Core.Messages.Read1_ack_h { tsr; history = corrupt history } ]
          | Core.Messages.Read2_ack_h { tsr; history } ->
              [ Core.Messages.Read2_ack_h { tsr; history = corrupt history } ]
          | m -> [ m ]);
    }
  in
  let r =
    ER.random_walks ~walks:500 ~property:`Regular ~seed:8
      {
        ER.cfg = Quorum.Config.optimal ~t:1 ~b:1;
        writes = [ Core.Value.v "a"; Core.Value.v "b" ];
        reads = [ (1, 2) ];
        sequential = false;
        byz = [ (2, forge) ];
        crashed = [];
      }
  in
  Alcotest.(check int) "no violations" 0 (List.length r.violations)

let test_sampler_finds_naive_violation () =
  let r =
    EF.random_walks ~walks:200 ~seed:9
      {
        EF.cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        writes = [ Core.Value.v "a" ];
        reads = [ (1, 1) ];
        sequential = true;
        byz = [ (1, forge_naive) ];
        crashed = [];
      }
  in
  Alcotest.(check bool) "violation sampled" true (List.length r.violations > 0)

let test_sampler_deterministic () =
  let go () =
    let r =
      ES.random_walks ~walks:50 ~seed:3
        {
          ES.cfg = Quorum.Config.optimal ~t:1 ~b:1;
          writes = [ Core.Value.v "a" ];
          reads = [ (1, 1) ];
          sequential = false;
          byz = [];
          crashed = [];
        }
    in
    r.explored
  in
  Alcotest.(check int) "same seed, same walk lengths" (go ()) (go ())

let suite =
  ( "random-walks",
    [
      Alcotest.test_case "safe 2W/2R x 2 sampled" `Quick
        test_safe_two_writes_two_readers;
      Alcotest.test_case "regular with byz sampled" `Quick
        test_regular_walks_with_byz;
      Alcotest.test_case "finds naive violation" `Quick
        test_sampler_finds_naive_violation;
      Alcotest.test_case "deterministic per seed" `Quick test_sampler_deterministic;
    ] )
