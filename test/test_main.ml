(* Aggregates every suite; `dune runtest` runs this executable. *)

let () =
  Alcotest.run "robust_read"
    [
      Suite_prng.suite;
      Suite_heap.suite;
      Suite_engine.suite;
      Suite_sim_misc.suite;
      Suite_engine_props.suite;
      Suite_stats.suite;
      Suite_quorum.suite;
      Suite_histories.suite;
      Suite_core_types.suite;
      Suite_safe_protocol.suite;
      Suite_regular_protocol.suite;
      Suite_gc.suite;
      Suite_scenario.suite;
      Suite_fault.suite;
      Suite_chaos.suite;
      Suite_scenario_edge.suite;
      Suite_baselines.suite;
      Suite_fast_safe.suite;
      Suite_server_centric.suite;
      Suite_lower_bound.suite;
      Suite_lemmas.suite;
      Suite_explorer.suite;
      Suite_random_walks.suite;
      Suite_workload.suite;
      Suite_fuzz.suite;
      Suite_conformance.suite;
      Suite_obs.suite;
      Suite_golden_trace.suite;
      Suite_span_conformance.suite;
      Suite_parallel.suite;
      Suite_net_codec.suite;
      Suite_net.suite;
      Suite_chaos_live.suite;
      Suite_fast_read.suite;
      Suite_scaleout.suite;
      Suite_keyspace.suite;
      Suite_coalesce.suite;
    ]
