(* End-to-end simulated runs of the paper's protocols: safety/regularity
   under crashes, Byzantine strategies, contention and random schedules —
   Theorems 1-4 exercised empirically. *)

module S = Core.Scenario.Make (Core.Proto_safe)
module R = Core.Scenario.Make (Core.Proto_regular.Plain)
module O = Core.Scenario.Make (Core.Proto_regular.Optimized)

let equal = String.equal

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

let basic_schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "v2"));
    (300, Core.Schedule.Read { reader = 1 });
    (300, Core.Schedule.Read { reader = 2 });
    (400, Core.Schedule.Write (Core.Value.v "v3"));
    (500, Core.Schedule.Read { reader = 2 });
  ]

let read_rounds outcomes =
  List.filter_map
    (fun (o : S.outcome) ->
      match o.op with Core.Schedule.Read _ -> Some o.rounds | _ -> None)
    outcomes

let test_safe_crash_free () =
  let rep =
    S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:1 ~delay:uniform
      ~faults:S.no_faults basic_schedule
  in
  Alcotest.(check int) "all ops complete" 7 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history);
  Alcotest.(check bool) "regular" true
    (Histories.Checks.is_regular ~equal rep.history);
  Alcotest.(check bool) "reads within 2 rounds" true
    (List.for_all (fun r -> r >= 1 && r <= 2) (read_rounds rep.outcomes))

let test_safe_with_crashes () =
  (* t = 2 crashes (one before, one mid-run) with b = 1 budgeted. *)
  let cfg = Quorum.Config.optimal ~t:2 ~b:1 in
  let faults =
    { S.crashes = [ (Sim.Proc_id.Obj 1, 0); (Sim.Proc_id.Obj 5, 250) ]; byzantine = [] }
  in
  let rep = S.run ~cfg ~seed:3 ~delay:uniform ~faults basic_schedule in
  Alcotest.(check int) "wait-freedom despite crashes" 7 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history)

let test_safe_reader_crash_does_not_block_writer () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let faults = { S.crashes = [ (Sim.Proc_id.Reader 1, 105) ]; byzantine = [] } in
  let rep = S.run ~cfg ~seed:4 ~delay:uniform ~faults basic_schedule in
  let writes_done =
    List.length
      (List.filter
         (fun (o : S.outcome) ->
           match o.op with Core.Schedule.Write _ -> true | _ -> false)
         rep.outcomes)
  in
  Alcotest.(check int) "writes unaffected" 3 writes_done;
  Alcotest.(check bool) "history stays safe" true
    (Histories.Checks.is_safe ~equal rep.history)

let all_strategies =
  [
    ("mute", Fault.Strategies.mute);
    ("forge_high", Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:5);
    ("replay_initial", Fault.Strategies.replay_initial);
    ("simulate_unwritten",
     Fault.Strategies.simulate_unwritten_write ~value:"ghost" ~ts:7);
    ("defame", Fault.Strategies.defame ~targets:[ 1; 3; 4 ] ~boost:10);
    ("equivocate", Fault.Strategies.equivocate ~values:[ "x"; "y" ] ~ts_boost:3);
    ("random_garbage", Fault.Strategies.random_garbage);
  ]

let test_safe_under_every_strategy () =
  List.iter
    (fun (name, strat) ->
      let rep =
        S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:11 ~delay:uniform
          ~faults:{ S.crashes = []; byzantine = [ (2, strat) ] }
          basic_schedule
      in
      Alcotest.(check int) (name ^ ": completes") 7 (List.length rep.outcomes);
      Alcotest.(check bool) (name ^ ": safe") true
        (Histories.Checks.is_safe ~equal rep.history);
      Alcotest.(check bool) (name ^ ": <= 2 rounds") true
        (List.for_all (fun r -> r <= 2) (read_rounds rep.outcomes)))
    all_strategies

let test_safe_byzantine_plus_crash () =
  (* The full fault budget at once: t=2, b=1 — one Byzantine forger and
     one crash. *)
  let cfg = Quorum.Config.optimal ~t:2 ~b:1 in
  let faults =
    {
      S.crashes = [ (Sim.Proc_id.Obj 6, 150) ];
      byzantine = [ (2, Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:9) ];
    }
  in
  let rep = S.run ~cfg ~seed:17 ~delay:uniform ~faults basic_schedule in
  Alcotest.(check int) "completes" 7 (List.length rep.outcomes);
  Alcotest.(check bool) "safe" true (Histories.Checks.is_safe ~equal rep.history)

let regular_strategies =
  [
    ("forge_history", Fault.Strategies.forge_history ~value:"evil" ~ts_boost:5);
    ("empty_history", Fault.Strategies.empty_history);
    ("stale_history", Fault.Strategies.stale_history ~keep:1);
    ("defame_history", Fault.Strategies.defame_history ~targets:[ 1; 3 ] ~boost:5);
  ]

let run_regular ?(schedule = basic_schedule) ~faults () =
  R.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:23 ~delay:uniform ~faults
    schedule

let test_regular_crash_free () =
  let rep = run_regular ~faults:R.no_faults () in
  Alcotest.(check int) "completes" 7 (List.length rep.outcomes);
  Alcotest.(check bool) "regular" true
    (Histories.Checks.is_regular ~equal rep.history);
  Alcotest.(check bool) "atomic here (sequential reads)" true
    (Histories.Checks.is_atomic ~equal rep.history)

let test_regular_under_every_strategy () =
  List.iter
    (fun (name, strat) ->
      let rep = run_regular ~faults:{ R.crashes = []; byzantine = [ (3, strat) ] } () in
      Alcotest.(check int) (name ^ ": completes") 7 (List.length rep.outcomes);
      Alcotest.(check bool) (name ^ ": regular") true
        (Histories.Checks.is_regular ~equal rep.history))
    regular_strategies

let test_optimized_matches_plain_results () =
  let schedule = basic_schedule in
  let run_o () =
    O.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed:23 ~delay:uniform
      ~faults:O.no_faults schedule
  in
  let rep_o = run_o () in
  Alcotest.(check bool) "optimized regular" true
    (Histories.Checks.is_regular ~equal rep_o.history);
  (* identical runs are deterministic *)
  let rep_o' = run_o () in
  Alcotest.(check int) "deterministic words" rep_o.words_to_readers
    rep_o'.words_to_readers

let test_optimized_sends_fewer_words () =
  (* Long write history: the §5.1 suffix pruning must shrink replies. *)
  let schedule =
    List.concat
      (List.init 10 (fun i ->
           [
             (i * 100, Core.Schedule.Write (Core.Value.v (Printf.sprintf "v%d" (i + 1))));
             ((i * 100) + 50, Core.Schedule.Read { reader = 1 });
           ]))
  in
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let rep_plain = R.run ~cfg ~seed:5 ~delay:uniform ~faults:R.no_faults schedule in
  let rep_opt = O.run ~cfg ~seed:5 ~delay:uniform ~faults:O.no_faults schedule in
  Alcotest.(check bool) "both regular" true
    (Histories.Checks.is_regular ~equal rep_plain.history
    && Histories.Checks.is_regular ~equal rep_opt.history);
  Alcotest.(check bool)
    (Printf.sprintf "opt (%d) < plain (%d) words" rep_opt.words_to_readers
       rep_plain.words_to_readers)
    true
    (rep_opt.words_to_readers < rep_plain.words_to_readers)

let test_contention_storm () =
  (* Writes every 10 with reads in between: heavy read/write concurrency.
     Safety constrains only non-concurrent reads; regularity all. *)
  let schedule =
    Workload.Generate.write_storm ~writes:10 ~readers:3 ~every:10
  in
  let rep =
    R.run ~cfg:(Quorum.Config.optimal ~t:2 ~b:2) ~seed:31
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:30) ~faults:R.no_faults schedule
  in
  Alcotest.(check int) "all complete" (List.length schedule)
    (List.length rep.outcomes);
  Alcotest.(check bool) "regular under contention" true
    (Histories.Checks.is_regular ~equal rep.history)

let qcheck_safe_random_schedules =
  QCheck.Test.make ~name:"safe protocol: random seeds/schedules stay safe"
    ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Sim.Prng.create ~seed in
      let schedule =
        Workload.Generate.read_mostly ~rng ~writes:3 ~readers:2
          ~reads_per_reader:3 ~horizon:500
      in
      let rep =
        S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed ~delay:uniform
          ~faults:S.no_faults schedule
      in
      Histories.Checks.is_safe ~equal rep.history
      && Histories.Checks.is_regular ~equal rep.history
      && List.length rep.outcomes = List.length schedule)

let qcheck_safe_byzantine_random =
  QCheck.Test.make
    ~name:"safe protocol: random byzantine runs stay safe and live" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 1 4))
    (fun (seed, byz_obj) ->
      let rng = Sim.Prng.create ~seed in
      let schedule =
        Workload.Generate.read_mostly ~rng ~writes:2 ~readers:2
          ~reads_per_reader:2 ~horizon:400
      in
      let rep =
        S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed ~delay:uniform
          ~faults:
            {
              S.crashes = [];
              byzantine = [ (byz_obj, Fault.Strategies.random_garbage) ];
            }
          schedule
      in
      Histories.Checks.is_safe ~equal rep.history
      && List.length rep.outcomes = List.length schedule)

let qcheck_regular_byzantine_random =
  QCheck.Test.make
    ~name:"regular protocol: random byzantine runs stay regular" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 1 4))
    (fun (seed, byz_obj) ->
      let rng = Sim.Prng.create ~seed in
      let schedule =
        Workload.Generate.read_mostly ~rng ~writes:2 ~readers:2
          ~reads_per_reader:2 ~horizon:400
      in
      let rep =
        R.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed ~delay:uniform
          ~faults:
            {
              R.crashes = [];
              byzantine =
                [ (byz_obj, Fault.Strategies.forge_history ~value:"evil" ~ts_boost:3) ];
            }
          schedule
      in
      Histories.Checks.is_regular ~equal rep.history
      && List.length rep.outcomes = List.length schedule)

let qcheck_rounds_never_exceed_two =
  QCheck.Test.make ~name:"reads and writes never exceed two rounds" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Sim.Prng.create ~seed in
      let schedule =
        Workload.Generate.read_mostly ~rng ~writes:3 ~readers:3
          ~reads_per_reader:3 ~horizon:300
      in
      let rep =
        S.run ~cfg:(Quorum.Config.optimal ~t:1 ~b:1) ~seed
          ~delay:(Sim.Delay.exponential ~mean:8.0)
          ~faults:
            { S.crashes = []; byzantine = [ (1, Fault.Strategies.random_garbage) ] }
          schedule
      in
      List.for_all (fun (o : S.outcome) -> o.rounds <= 2) rep.outcomes)

let suite =
  ( "scenario",
    [
      Alcotest.test_case "safe crash-free" `Quick test_safe_crash_free;
      Alcotest.test_case "safe with crashes" `Quick test_safe_with_crashes;
      Alcotest.test_case "reader crash isolated" `Quick
        test_safe_reader_crash_does_not_block_writer;
      Alcotest.test_case "safe under every strategy" `Quick
        test_safe_under_every_strategy;
      Alcotest.test_case "safe byzantine + crash" `Quick test_safe_byzantine_plus_crash;
      Alcotest.test_case "regular crash-free" `Quick test_regular_crash_free;
      Alcotest.test_case "regular under every strategy" `Quick
        test_regular_under_every_strategy;
      Alcotest.test_case "optimized deterministic" `Quick
        test_optimized_matches_plain_results;
      Alcotest.test_case "optimized sends fewer words" `Quick
        test_optimized_sends_fewer_words;
      Alcotest.test_case "contention storm" `Quick test_contention_storm;
      QCheck_alcotest.to_alcotest qcheck_safe_random_schedules;
      QCheck_alcotest.to_alcotest qcheck_safe_byzantine_random;
      QCheck_alcotest.to_alcotest qcheck_regular_byzantine_random;
      QCheck_alcotest.to_alcotest qcheck_rounds_never_exceed_two;
    ] )
