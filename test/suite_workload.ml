(* Tests for the workload generators. *)

let count_ops schedule =
  (Core.Schedule.writes schedule, Core.Schedule.reads schedule)

let test_payload_distinct () =
  Alcotest.(check bool) "payloads distinct" true
    (not (Core.Value.equal (Workload.Generate.payload 1) (Workload.Generate.payload 2)))

let test_sequential_counts () =
  let s = Workload.Generate.sequential ~writes:3 ~readers:2 ~gap:10 in
  Alcotest.(check (pair int int)) "3 writes, 6 reads" (3, 6) (count_ops s)

let test_sequential_no_overlap () =
  (* Every op starts strictly after the previous one's slot. *)
  let s = Workload.Generate.sequential ~writes:2 ~readers:1 ~gap:10 in
  let times = List.map fst s in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "times strictly increase" true (strictly_increasing times)

let test_read_mostly_counts_and_horizon () =
  let rng = Sim.Prng.create ~seed:1 in
  let s =
    Workload.Generate.read_mostly ~rng ~writes:4 ~readers:3 ~reads_per_reader:5
      ~horizon:1000
  in
  Alcotest.(check (pair int int)) "counts" (4, 15) (count_ops s);
  Alcotest.(check bool) "within horizon" true
    (List.for_all (fun (t, _) -> t >= 0 && t <= 1000) s)

let test_read_mostly_deterministic () =
  let gen seed =
    let rng = Sim.Prng.create ~seed in
    Workload.Generate.read_mostly ~rng ~writes:2 ~readers:2 ~reads_per_reader:3
      ~horizon:500
  in
  Alcotest.(check bool) "same seed, same schedule" true (gen 5 = gen 5);
  Alcotest.(check bool) "different seed, different schedule" true (gen 5 <> gen 6)

let test_write_storm_shape () =
  let s = Workload.Generate.write_storm ~writes:5 ~readers:2 ~every:10 in
  Alcotest.(check (pair int int)) "counts" (5, 10) (count_ops s);
  Alcotest.(check (list int)) "reader indices" [ 1; 2 ]
    (Core.Schedule.reader_indices s)

let test_read_burst () =
  let s = Workload.Generate.read_burst ~readers:3 ~reads_per_reader:4 ~at:100 in
  Alcotest.(check (pair int int)) "counts" (0, 12) (count_ops s);
  Alcotest.(check bool) "all at t=100" true (List.for_all (fun (t, _) -> t = 100) s)

let test_poisson_reads () =
  let rng = Sim.Prng.create ~seed:2 in
  let s = Workload.Generate.poisson_reads ~rng ~readers:2 ~mean_gap:20.0 ~horizon:1000 in
  Alcotest.(check bool) "non-empty" true (List.length s > 10);
  Alcotest.(check bool) "only reads" true (Core.Schedule.writes s = 0);
  Alcotest.(check bool) "sorted by time" true
    (let times = List.map fst s in
     List.sort Int.compare times = times)

let test_schedule_merge_sorted () =
  let a = [ (10, Core.Schedule.Write (Core.Value.v "a")) ] in
  let b = [ (5, Core.Schedule.Read { reader = 1 }) ] in
  match Core.Schedule.merge a b with
  | [ (5, _); (10, _) ] -> ()
  | _ -> Alcotest.fail "merge must sort by time"

let suite =
  ( "workload",
    [
      Alcotest.test_case "payload distinct" `Quick test_payload_distinct;
      Alcotest.test_case "sequential counts" `Quick test_sequential_counts;
      Alcotest.test_case "sequential no overlap" `Quick test_sequential_no_overlap;
      Alcotest.test_case "read_mostly counts/horizon" `Quick
        test_read_mostly_counts_and_horizon;
      Alcotest.test_case "read_mostly deterministic" `Quick
        test_read_mostly_deterministic;
      Alcotest.test_case "write_storm shape" `Quick test_write_storm_shape;
      Alcotest.test_case "read_burst" `Quick test_read_burst;
      Alcotest.test_case "poisson reads" `Quick test_poisson_reads;
      Alcotest.test_case "schedule merge sorted" `Quick test_schedule_merge_sorted;
    ] )
