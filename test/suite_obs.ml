(* The observability layer: histogram algebra (merge is associative and
   commutative, quantiles agree with Stats.Summary at bucket resolution),
   registry aggregation, span invariants over real scenario runs, and the
   byte-determinism of the JSONL exporters. *)

module H = Obs.Metrics.Histogram
module S = Core.Scenario.Make (Core.Proto_safe)

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

(* ----- histogram units -------------------------------------------------- *)

let test_histogram_bad_bounds () =
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.create: no bounds")
    (fun () -> ignore (H.create ~bounds:[||]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Histogram.create: bounds not strictly increasing")
    (fun () -> ignore (H.create ~bounds:[| 1.0; 1.0 |]))

let test_histogram_placement () =
  let h = H.create ~bounds:[| 1.0; 2.0; 5.0 |] in
  List.iter (H.observe h) [ 1.0; 1.5; 2.0; 5.0; 7.0 ];
  (* inclusive upper bounds: 1.0 -> b0, 1.5 and 2.0 -> b1, 5.0 -> b2,
     7.0 -> overflow *)
  Alcotest.(check (array int)) "counts" [| 1; 2; 1; 1 |] (H.counts h);
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 16.5 (H.sum h);
  Alcotest.(check (float 1e-9)) "mean" 3.3 (H.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (H.min_exn h);
  Alcotest.(check (float 1e-9)) "max" 7.0 (H.max_exn h)

let test_histogram_buckets () =
  let h = H.create ~bounds:[| 2.0; 4.0 |] in
  H.observe_int h 1;
  H.observe_int h 3;
  H.observe_int h 9;
  match H.buckets h with
  | [ (lo0, hi0, c0); (_, hi1, c1); (lo2, hi2, c2) ] ->
      Alcotest.(check bool) "first lo = -inf" true (lo0 = neg_infinity);
      Alcotest.(check (float 1e-9)) "first hi" 2.0 hi0;
      Alcotest.(check int) "b0" 1 c0;
      Alcotest.(check (float 1e-9)) "second hi" 4.0 hi1;
      Alcotest.(check int) "b1" 1 c1;
      Alcotest.(check (float 1e-9)) "overflow lo" 4.0 lo2;
      Alcotest.(check bool) "overflow hi = inf" true (hi2 = infinity);
      Alcotest.(check int) "overflow" 1 c2
  | _ -> Alcotest.fail "expected 3 buckets"

let test_histogram_merge_mismatch () =
  let a = H.create ~bounds:[| 1.0; 2.0 |] in
  let b = H.create ~bounds:[| 1.0; 3.0 |] in
  Alcotest.(check bool) "incompatible" false (H.compatible a b);
  Alcotest.check_raises "merge raises"
    (Invalid_argument "Histogram.merge: bounds differ") (fun () ->
      ignore (H.merge a b))

let test_histogram_quantile_edges () =
  let h = H.create ~bounds:Obs.Metrics.round_bounds in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Histogram.quantile: empty") (fun () ->
      ignore (H.quantile h 50.0));
  H.observe_int h 2;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Histogram.quantile: p not in [0,100]") (fun () ->
      ignore (H.quantile h 101.0));
  Alcotest.(check (float 1e-9)) "single sample" 2.0 (H.quantile h 50.0);
  (* overflow bucket reports the observed maximum, not infinity *)
  H.observe h 1000.0;
  Alcotest.(check (float 1e-9)) "overflow = max" 1000.0 (H.quantile h 100.0)

(* ----- registry units --------------------------------------------------- *)

let test_registry_counters_gauges () =
  let m = Obs.Metrics.create () in
  Alcotest.(check int) "untouched counter" 0 (Obs.Metrics.counter_value m "x");
  Obs.Metrics.incr m "b";
  Obs.Metrics.add m "a" 5;
  Obs.Metrics.incr m "b";
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("a", 5); ("b", 2) ]
    (Obs.Metrics.counters m);
  Obs.Metrics.max_gauge m "g" 3.0;
  Obs.Metrics.max_gauge m "g" 1.0;
  Alcotest.(check (option (float 1e-9))) "max gauge" (Some 3.0)
    (Obs.Metrics.gauge_value m "g");
  Obs.Metrics.set_gauge m "g" 0.5;
  Alcotest.(check (option (float 1e-9))) "set overrides" (Some 0.5)
    (Obs.Metrics.gauge_value m "g")

let test_registry_merge_into () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add a "c" 2;
  Obs.Metrics.add b "c" 3;
  Obs.Metrics.max_gauge a "g" 1.0;
  Obs.Metrics.max_gauge b "g" 9.0;
  Obs.Metrics.observe_int a "h" ~bounds:Obs.Metrics.round_bounds 1;
  Obs.Metrics.observe_int b "h" ~bounds:Obs.Metrics.round_bounds 2;
  Obs.Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "counters add" 5 (Obs.Metrics.counter_value a "c");
  Alcotest.(check (option (float 1e-9))) "gauges max" (Some 9.0)
    (Obs.Metrics.gauge_value a "g");
  (match Obs.Metrics.find_histogram a "h" with
  | Some h -> Alcotest.(check int) "histograms merge" 2 (H.count h)
  | None -> Alcotest.fail "merged histogram missing");
  (* src untouched *)
  Alcotest.(check int) "src counter" 3 (Obs.Metrics.counter_value b "c");
  match Obs.Metrics.find_histogram b "h" with
  | Some h -> Alcotest.(check int) "src histogram" 1 (H.count h)
  | None -> Alcotest.fail "src histogram missing"

let test_wire_rendering () =
  Alcotest.(check string) "read req" "read.r1.req"
    (Obs.Wire.to_string (Obs.Wire.read ~round:1 ~request:true));
  Alcotest.(check string) "write ack" "write.r2.ack"
    (Obs.Wire.to_string (Obs.Wire.write ~round:2 ~request:false));
  Alcotest.(check string) "other" "other" (Obs.Wire.to_string Obs.Wire.other)

(* ----- qcheck: histogram algebra ---------------------------------------- *)

let of_samples xs =
  let h = H.create ~bounds:Obs.Metrics.latency_bounds in
  List.iter (H.observe h) xs;
  h

let samples_gen = QCheck.(list_of_size (Gen.int_range 0 60) (float_range 0. 3000.))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"histogram merge is commutative" ~count:200
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = of_samples xs and b = of_samples ys in
      H.equal (H.merge a b) (H.merge b a))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let a = of_samples xs and b = of_samples ys and c = of_samples zs in
      H.equal (H.merge (H.merge a b) c) (H.merge a (H.merge b c)))

(* The histogram must agree with the exact Stats.Summary on count and
   mean, and its nearest-rank quantile must be the upper bound of the
   bucket holding Summary's nearest-rank percentile (the observed max
   for the overflow bucket) — "within bucket resolution". *)
let qcheck_agrees_with_summary =
  QCheck.Test.make ~name:"histogram agrees with Summary at bucket resolution"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 80) (float_range 0. 4000.))
        (float_range 1. 100.))
    (fun (xs, p) ->
      let h = of_samples xs in
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let counts_agree = H.count h = Stats.Summary.count s in
      let means_agree = abs_float (H.mean h -. Stats.Summary.mean s) < 1e-6 in
      let sq = Stats.Summary.percentile s p and hq = H.quantile h p in
      let expected =
        match
          Array.fold_left
            (fun acc bnd ->
              match acc with Some _ -> acc | None -> if sq <= bnd then Some bnd else None)
            None Obs.Metrics.latency_bounds
        with
        | Some bnd -> bnd
        | None -> Stats.Summary.max s (* overflow bucket *)
      in
      counts_agree && means_agree && abs_float (hq -. expected) < 1e-9)

(* ----- spans over real runs --------------------------------------------- *)

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (40, Core.Schedule.Read { reader = 1 });
    (90, Core.Schedule.Write (Core.Value.v "v2"));
    (130, Core.Schedule.Read { reader = 2 });
    (130, Core.Schedule.Read { reader = 1 });
  ]

let run_spans ~seed =
  let rep =
    S.run ~trace:true
      ~cfg:(Quorum.Config.optimal ~t:1 ~b:1)
      ~seed ~delay:uniform ~faults:S.no_faults schedule
  in
  rep

let qcheck_span_invariants =
  QCheck.Test.make ~name:"span invariants on random runs" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rep = run_spans ~seed in
      let s = 4 in
      List.length rep.spans = List.length schedule
      && List.for_all
           (fun (sp : Obs.Span.t) ->
             let ends_after =
               match sp.completed_at with
               | Some e -> e >= sp.started_at
               | None -> true
             in
             ends_after && sp.rounds >= 1
             && List.length (Obs.Span.transitions sp) = sp.rounds - 1
             && List.for_all
                  (fun o -> o >= 1 && o <= s)
                  (Obs.Span.contacted sp)
             && sp.trace_first >= 0
             && (not (Obs.Span.completed sp))
                || sp.trace_len >= 0)
           rep.spans)

let qcheck_span_times_match_outcomes =
  QCheck.Test.make ~name:"completed spans mirror scenario outcomes" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rep = run_spans ~seed in
      let completed = List.filter Obs.Span.completed rep.spans in
      List.length completed = List.length rep.outcomes
      && List.for_all
           (fun (o : S.outcome) ->
             List.exists
               (fun (sp : Obs.Span.t) ->
                 sp.started_at = o.invoked_at
                 && sp.completed_at = Some o.completed_at
                 && sp.reported_rounds = Some o.rounds)
               completed)
           rep.outcomes)

(* ----- export determinism ----------------------------------------------- *)

let test_span_export_deterministic () =
  let a = run_spans ~seed:7 and b = run_spans ~seed:7 in
  Alcotest.(check string) "span JSONL byte-identical"
    (Obs.Export.spans_jsonl a.spans)
    (Obs.Export.spans_jsonl b.spans)

let test_metrics_export_deterministic () =
  let collect () =
    let m = Obs.Metrics.create () in
    let rep =
      S.run ~metrics:m
        ~cfg:(Quorum.Config.optimal ~t:1 ~b:1)
        ~seed:11 ~delay:uniform ~faults:S.no_faults schedule
    in
    ignore rep;
    Obs.Export.metrics_jsonl ~labels:[ ("protocol", "safe") ] m
  in
  Alcotest.(check string) "metrics JSONL byte-identical" (collect ()) (collect ())

let test_json_escaping () =
  let open Obs.Export.Json in
  Alcotest.(check string) "escapes" {|"a\"b\\c\n\u0001"|}
    (to_string (Str "a\"b\\c\n\001"));
  Alcotest.(check string) "ints as ints" "42" (to_string (Int 42));
  Alcotest.(check string) "integral float" "7" (to_string (Float 7.0));
  Alcotest.(check string) "non-finite" {|"inf"|} (to_string (Float infinity))

let suite =
  ( "obs",
    [
      Alcotest.test_case "histogram bad bounds" `Quick test_histogram_bad_bounds;
      Alcotest.test_case "histogram placement" `Quick test_histogram_placement;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "histogram merge mismatch" `Quick
        test_histogram_merge_mismatch;
      Alcotest.test_case "histogram quantile edges" `Quick
        test_histogram_quantile_edges;
      Alcotest.test_case "registry counters/gauges" `Quick
        test_registry_counters_gauges;
      Alcotest.test_case "registry merge_into" `Quick test_registry_merge_into;
      Alcotest.test_case "wire rendering" `Quick test_wire_rendering;
      Alcotest.test_case "span export deterministic" `Quick
        test_span_export_deterministic;
      Alcotest.test_case "metrics export deterministic" `Quick
        test_metrics_export_deterministic;
      Alcotest.test_case "json escaping" `Quick test_json_escaping;
      QCheck_alcotest.to_alcotest qcheck_merge_commutative;
      QCheck_alcotest.to_alcotest qcheck_merge_associative;
      QCheck_alcotest.to_alcotest qcheck_agrees_with_summary;
      QCheck_alcotest.to_alcotest qcheck_span_invariants;
      QCheck_alcotest.to_alcotest qcheck_span_times_match_outcomes;
    ] )
